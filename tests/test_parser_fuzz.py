"""Parser robustness: fuzzing and describe round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.errors import ReproError
from repro.objects.types import FieldKind
from repro.query.language import parse_statement
from repro.schema.parser import parse_type_definition, split_script


# ---------------------------------------------------------------------------
# fuzz: garbage in, ParseError (or another ReproError) out -- never a crash
# ---------------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=120))
def test_query_parser_never_crashes(text):
    try:
        parse_statement(text)
    except ReproError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=200))
def test_ddl_parser_never_crashes(text):
    db = Database()
    from repro.schema.parser import execute_ddl

    try:
        execute_ddl(db, text)
    except ReproError:
        pass


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=300))
def test_split_script_never_crashes(text):
    statements = split_script(text)
    assert all(isinstance(s, str) for s in statements)


# ---------------------------------------------------------------------------
# round-trip: a rendered type parses back to itself
# ---------------------------------------------------------------------------

_identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)

_field = st.one_of(
    st.tuples(_identifiers, st.just("int"), st.just(0)),
    st.tuples(_identifiers, st.just("float"), st.just(0)),
    st.tuples(_identifiers, st.just("char"), st.integers(1, 64)),
)


@settings(max_examples=60, deadline=None)
@given(
    name=st.from_regex(r"[A-Z][A-Z0-9_]{0,8}", fullmatch=True),
    fields=st.lists(_field, min_size=1, max_size=8, unique_by=lambda f: f[0]),
)
def test_type_definition_round_trip(name, fields):
    parts = []
    for fname, kind, size in fields:
        rendered = f"char[{size}]" if kind == "char" else kind
        parts.append(f"{fname}: {rendered}")
    text = f"define type {name} ( {', '.join(parts)} )"
    parsed = parse_type_definition(text)
    assert parsed.name == name
    assert len(parsed.fields) == len(fields)
    for fdef, (fname, kind, size) in zip(parsed.fields, fields):
        assert fdef.name == fname
        assert fdef.kind == FieldKind(kind)
        if kind == "char":
            assert fdef.size == size


def test_describe_type_parses_back(company):
    from repro.schema.describe import describe_type

    text = describe_type(company["db"], "EMP")
    parsed = parse_type_definition(text)
    original = company["db"].registry.get("EMP")
    assert parsed.name == original.name
    assert [f.name for f in parsed.fields] == [f.name for f in original.fields]
    assert [f.kind for f in parsed.fields] == [f.kind for f in original.fields]


# ---------------------------------------------------------------------------
# inverse via a separate 2-level path's (shared) first link
# ---------------------------------------------------------------------------


def test_inverse_uses_separate_paths_link(company):
    from repro.replication.inverse import referencers

    db = company["db"]
    db.replicate("Emp1.dept.org.name", strategy="separate")  # keeps Emp1.dept^-1
    result = referencers(db, "Emp1", "dept", company["depts"]["toys"])
    assert result.via_link
    assert set(result.referencers) == {company["emps"]["alice"], company["emps"]["bob"]}
