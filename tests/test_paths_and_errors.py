"""Reference-path resolution, OID codec, and error-hierarchy tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import errors
from repro.errors import InvalidPathError
from repro.schema.paths import ALL, resolve_path
from repro.storage.oid import NULL_OID, OID, is_null


# ---------------------------------------------------------------------------
# path resolution
# ---------------------------------------------------------------------------


def lookups(db):
    return db.catalog.set_type_of, db.registry.get


def test_resolve_one_level(company):
    db = company["db"]
    r = resolve_path("Emp1.dept.name", *lookups(db))
    assert r.source_set == "Emp1"
    assert r.ref_chain == ("dept",)
    assert r.terminal == "name"
    assert r.level == 1
    assert r.terminal_type == "DEPT"
    assert [f.name for f in r.replicated_fields] == ["name"]
    assert r.text == "Emp1.dept.name"
    assert not r.is_full_object


def test_resolve_two_level_and_prefixes(company):
    r = resolve_path("Emp1.dept.org.budget", *lookups(company["db"]))
    assert r.level == 2
    assert r.type_names[-1] == "ORG"
    assert list(r.prefix_chains()) == [("dept",), ("dept", "org")]


def test_resolve_all(company):
    r = resolve_path("Emp1.dept.all", *lookups(company["db"]))
    assert r.is_full_object
    assert r.terminal == ALL
    assert {f.name for f in r.replicated_fields} == {"name", "budget", "org"}


def test_resolve_ref_terminal(company):
    r = resolve_path("Emp1.dept.org", *lookups(company["db"]))
    assert r.level == 1
    assert r.replicated_fields[0].ref_type == "ORG"


@pytest.mark.parametrize(
    "bad",
    [
        "Emp1.name",              # too short: nothing to join
        "Emp1",                   # way too short
        "Emp1.salary.name",       # salary is not a reference
        "Emp1.dept.nothere",      # unknown terminal
        "Emp1.nothere.name",      # unknown ref
        "Nope.dept.name",         # unknown set
    ],
)
def test_resolve_rejects(company, bad):
    from repro.errors import UnknownSetError

    with pytest.raises((InvalidPathError, UnknownSetError)):
        resolve_path(bad, *lookups(company["db"]))


def test_resolve_rejects_hidden_terminal(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.name")
    with pytest.raises(InvalidPathError):
        resolve_path(f"Emp1.{path.hidden_fields[0]}.x", *lookups(db))


# ---------------------------------------------------------------------------
# OID codec
# ---------------------------------------------------------------------------


@given(
    f=st.integers(0, 0xFFFF),
    p=st.integers(0, 0xFFFFFFFF),
    s=st.integers(0, 0xFFFF),
)
def test_oid_pack_roundtrip(f, p, s):
    oid = OID(f, p, s)
    assert OID.unpack(oid.pack()) == oid
    assert len(oid.pack()) == 8


def test_oid_ordering_is_physical():
    assert OID(1, 0, 5) < OID(1, 1, 0) < OID(2, 0, 0)


def test_null_oid():
    assert is_null(NULL_OID)
    assert not is_null(OID(1, 2, 3))
    assert OID.unpack(NULL_OID.pack()) == NULL_OID


# ---------------------------------------------------------------------------
# error hierarchy
# ---------------------------------------------------------------------------


def test_every_error_is_a_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj is not errors.ReproError:
            assert issubclass(obj, errors.ReproError), name


def test_error_grouping():
    assert issubclass(errors.PageFullError, errors.StorageError)
    assert issubclass(errors.UnknownSetError, errors.SchemaError)
    assert issubclass(errors.IntegrityError, errors.ReplicationError)
    assert issubclass(errors.PlanningError, errors.QueryError)
    assert issubclass(errors.ParseError, errors.SchemaError)


def test_registry_root_name(company):
    db = company["db"]
    emp1 = db.catalog.get_set("Emp1")
    assert db.registry.root_name(emp1.type_name) == "EMP"
    db.replicate("Emp1.dept.name")
    assert db.registry.root_name(db.catalog.get_set("Emp1").type_def.name) == "EMP"
    assert db.registry.root_name("ORG") == "ORG"
