"""Per-file I/O attribution: queries touch exactly the files the model says.

These tests decompose measured query I/O the way the paper decomposes cost
terms (C_read/index, C_read/R, C_read/S, C_read/L, C_update/S', ...), and
assert the *composition*, not just the totals.
"""

import random

import pytest

from repro.workloads import WorkloadConfig, build_model_database


def build(strategy, **kw):
    cfg = WorkloadConfig(n_s=200, f=3, f_r=0.02, f_s=0.02, strategy=strategy, **kw)
    return build_model_database(cfg)


def run_read(mdb):
    mdb.db.cold_cache()
    before = mdb.db.stats.snapshot()
    mdb.db.execute(
        "retrieve (R.field_r, R.sref.repfield) "
        "where R.field_r >= 100 and R.field_r <= 111",
        materialize=False,
    )
    return mdb.db.stats.snapshot() - before


def run_update(mdb):
    mdb.db.cold_cache()
    before = mdb.db.stats.snapshot()
    mdb.db.execute("replace (S.repfield = 'znew') where S.field_s >= 50 and S.field_s <= 53")
    mdb.db.storage.pool.flush_all()
    return mdb.db.stats.snapshot() - before


def fid(mdb, name):
    return mdb.db.storage.file(name).file_id


def test_read_none_joins_s(company):
    mdb = build("none")
    cost = run_read(mdb)
    breakdown = mdb.db.storage.io_breakdown(cost)
    assert breakdown["R"][0] > 0          # R pages read
    assert breakdown["S"][0] > 0          # the functional join into S
    assert cost.physical_writes == 0      # reads write nothing


def test_read_inplace_never_touches_s():
    mdb = build("inplace")
    cost = run_read(mdb)
    assert cost.reads_for(fid(mdb, "S")) == 0  # the join is gone
    assert cost.reads_for(fid(mdb, "R")) > 0


def test_read_separate_joins_s_prime_not_s():
    mdb = build("separate")
    cost = run_read(mdb)
    path = mdb.db.catalog.get_path("R.sref.repfield")
    s_prime = mdb.db.storage.file(path.replica_set).file_id
    assert cost.reads_for(fid(mdb, "S")) == 0
    assert cost.reads_for(s_prime) > 0
    # S' is far smaller than S: the join reads fewer pages than none's would
    assert cost.reads_for(s_prime) <= mdb.db.storage.file(path.replica_set).num_pages()


def test_update_none_touches_only_s_and_its_index():
    mdb = build("none")
    cost = run_update(mdb)
    breakdown = mdb.db.storage.io_breakdown(cost)
    touched = set(breakdown)
    assert "S" in touched
    assert "R" not in touched
    assert breakdown["S"][1] > 0          # written back


def test_update_inplace_propagates_into_r_via_links():
    mdb = build("inplace")
    cost = run_update(mdb)
    path = mdb.db.catalog.get_path("R.sref.repfield")
    link = mdb.db.catalog.get_link(path.link_sequence[0])
    assert cost.reads_for(link.file.heap.file_id) > 0   # C_read/L
    assert cost.writes_for(fid(mdb, "R")) > 0           # C_update/R
    assert cost.writes_for(fid(mdb, "S")) > 0


def test_update_separate_touches_s_prime_not_r():
    mdb = build("separate")
    cost = run_update(mdb)
    path = mdb.db.catalog.get_path("R.sref.repfield")
    s_prime = mdb.db.storage.file(path.replica_set).file_id
    assert cost.writes_for(s_prime) > 0                 # C_update/S'
    assert cost.io_for(fid(mdb, "R")) == 0              # R untouched


def test_snapshot_subtraction_by_file():
    mdb = build("none")
    a = mdb.db.stats.snapshot()
    run_read(mdb)
    b = mdb.db.stats.snapshot()
    delta = b - a
    assert delta.touched_files()
    assert (b - b).touched_files() == set()
    assert delta.io_for(999999) == 0


def test_breakdown_names_indexes():
    mdb = build("none")
    cost = run_read(mdb)
    names = set(mdb.db.storage.io_breakdown(cost))
    assert any(name.startswith("__idx_") for name in names)  # the B+-tree read


@pytest.mark.parametrize("strategy", ["none", "inplace", "separate"])
def test_total_equals_sum_of_files(strategy):
    mdb = build(strategy)
    rng = random.Random(3)
    cost = run_update(mdb)
    assert cost.physical_reads == sum(
        cost.reads_for(f) for f in cost.touched_files()
    )
    assert cost.physical_writes == sum(
        cost.writes_for(f) for f in cost.touched_files()
    )
