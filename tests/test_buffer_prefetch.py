"""Buffer-pool group-fetch and read-ahead: pinning, eviction guard, counters."""

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.stats import IOStatistics
from repro.telemetry.metrics import MetricsRegistry


@pytest.fixture()
def disk():
    return SimulatedDisk(IOStatistics())


def _file_with_pages(disk, n):
    fid = disk.create_file()
    for __ in range(n):
        disk.allocate_page(fid)
    return fid


# -- fetch_many / unpin_many -------------------------------------------------


def test_fetch_many_pins_each_page_once(disk):
    pool = BufferPool(disk, capacity=8)
    fid = _file_with_pages(disk, 4)
    keys = [(fid, 0), (fid, 1), (fid, 1), (fid, 2)]
    group = pool.fetch_many(keys)
    assert sorted(group) == [(fid, 0), (fid, 1), (fid, 2)]
    assert sorted(pool.pinned_keys()) == [(fid, 0), (fid, 1), (fid, 2)]
    pool.unpin_many(group)
    assert pool.pinned_keys() == []


def test_fetch_many_group_members_protected_by_pins(disk):
    """A later miss in the group cannot evict an earlier member."""
    pool = BufferPool(disk, capacity=2)
    fid = _file_with_pages(disk, 2)
    group = pool.fetch_many([(fid, 0), (fid, 1)])
    assert sorted(pool.resident_keys()) == [(fid, 0), (fid, 1)]
    pool.unpin_many(group)


def test_fetch_many_unwinds_pins_on_failure(disk):
    """If the pool can't hold the group, already-taken pins are released."""
    pool = BufferPool(disk, capacity=2)
    fid = _file_with_pages(disk, 3)
    with pytest.raises(BufferPoolError):
        pool.fetch_many([(fid, 0), (fid, 1), (fid, 2)])
    assert pool.pinned_keys() == []


# -- prefetch ----------------------------------------------------------------


def test_prefetch_loads_pages_and_counts(disk):
    pool = BufferPool(disk, capacity=8)
    fid = _file_with_pages(disk, 4)
    loaded = pool.prefetch(fid, range(4))
    assert loaded == 4
    assert pool.stats.prefetch_issued == 4
    assert pool.stats.physical_reads == 4
    assert pool.pinned_keys() == []  # read-ahead never pins


def test_prefetch_hit_counted_on_first_demand_fetch_only(disk):
    pool = BufferPool(disk, capacity=8)
    fid = _file_with_pages(disk, 2)
    pool.prefetch(fid, range(2))
    with pool.page(fid, 0):
        pass
    with pool.page(fid, 0):  # second demand: a plain hit, not a prefetch hit
        pass
    assert pool.stats.prefetch_hits == 1
    assert pool.stats.buffer_hits == 2
    # the demand fetch of a prefetched page does no physical read
    assert pool.stats.physical_reads == 2


def test_prefetch_skips_resident_pages(disk):
    pool = BufferPool(disk, capacity=8)
    fid = _file_with_pages(disk, 3)
    with pool.page(fid, 1):
        pass
    assert pool.prefetch(fid, range(3)) == 2
    assert pool.stats.prefetch_issued == 2
    # page 1 was demand-loaded, so fetching it again is not a prefetch hit
    with pool.page(fid, 1):
        pass
    assert pool.stats.prefetch_hits == 0


def test_prefetch_never_evicts_pinned_or_same_window_pages(disk):
    pool = BufferPool(disk, capacity=2)
    fid = _file_with_pages(disk, 4)
    page = pool.fetch(fid, 0)  # pinned
    assert page is not None
    # one free frame: the window loads page 1, then stops -- it must not
    # evict the pinned page 0 nor the just-loaded page 1
    assert pool.prefetch(fid, [1, 2, 3]) == 1
    assert sorted(pool.resident_keys()) == [(fid, 0), (fid, 1)]
    pool.unpin(fid, 0)


def test_prefetch_best_effort_on_fully_pinned_pool(disk):
    pool = BufferPool(disk, capacity=1)
    fid = _file_with_pages(disk, 2)
    pool.fetch(fid, 0)
    assert pool.prefetch(fid, [1]) == 0  # no raise, nothing loaded
    pool.unpin(fid, 0)


def test_prefetch_metrics_registered(disk):
    registry = MetricsRegistry()
    pool = BufferPool(disk, capacity=8, metrics=registry)
    fid = _file_with_pages(disk, 2)
    pool.prefetch(fid, range(2))
    with pool.page(fid, 0):
        pass
    assert registry.value("bufferpool_prefetch_issued_total") == 2
    assert registry.value("bufferpool_prefetch_hits_total") == 1


# -- pinned_keys -------------------------------------------------------------


def test_pinned_keys_tracks_pin_counts(disk):
    pool = BufferPool(disk, capacity=4)
    fid = _file_with_pages(disk, 2)
    assert pool.pinned_keys() == []
    pool.fetch(fid, 0)
    pool.fetch(fid, 0)
    assert pool.pinned_keys() == [(fid, 0)]
    pool.unpin(fid, 0)
    assert pool.pinned_keys() == [(fid, 0)]  # one pin still outstanding
    pool.unpin(fid, 0)
    assert pool.pinned_keys() == []


def test_snapshot_carries_prefetch_and_dedup_counters(disk):
    pool = BufferPool(disk, capacity=4)
    fid = _file_with_pages(disk, 2)
    before = pool.stats.snapshot()
    pool.prefetch(fid, range(2))
    with pool.page(fid, 0):
        pass
    pool.stats.count_batch_dedup(3)
    delta = pool.stats.snapshot() - before
    assert delta.prefetch_issued == 2
    assert delta.prefetch_hits == 1
    assert delta.batch_dedup_saved == 3
