"""Database-level crash safety: atomic statements, recovery, the doctor."""

import pytest

from repro import Database, TypeDefinition, char_field, int_field, ref_field
from repro.errors import DiskFault
from repro.objects.instance import ReplicaEntry
from repro.snapshot import SnapshotError, load_database, save_database


def make_db(**kwargs) -> Database:
    """A WAL-enabled database with wide records (real page traffic)."""
    db = Database(wal=True, buffer_frames=kwargs.pop("buffer_frames", 8), **kwargs)
    db.define_type(TypeDefinition("DEPT", [char_field("name", 200),
                                           int_field("budget")]))
    db.define_type(TypeDefinition("EMP", [char_field("name", 200),
                                          int_field("salary"),
                                          ref_field("dept", "DEPT")]))
    db.create_set("Dept", "DEPT")
    db.create_set("Emp", "EMP")
    return db


def populate(db: Database, emps: int = 12):
    depts = [db.insert("Dept", {"name": f"dept{i}", "budget": 100 * i})
             for i in range(3)]
    oids = [db.insert("Emp", {"name": f"emp{i}", "salary": 1000 + i,
                              "dept": depts[i % 3]})
            for i in range(emps)]
    return depts, oids


# ---------------------------------------------------------------------------
# live rollback (logical errors do not need a restart)
# ---------------------------------------------------------------------------


def test_live_rollback_undoes_nested_work():
    db = make_db()
    depts, oids = populate(db)
    db.replicate("Emp.dept.name")
    db.checkpoint()
    before_count = db.catalog.get_set("Emp").count()
    with pytest.raises(RuntimeError, match="boom"):
        with db.recovery.statement("manual"):
            db.insert("Emp", {"name": "ghost", "salary": 1, "dept": depts[0]})
            db.update("Dept", depts[0], {"name": "never-happened"})
            raise RuntimeError("boom")
    assert db.catalog.get_set("Emp").count() == before_count
    assert db.get("Dept", depts[0]).values["name"] == "dept0"
    assert not db.recovery.wal.has_records  # the statement left no trace
    db.verify()
    # the session keeps working without any recovery step
    db.insert("Emp", {"name": "after", "salary": 2, "dept": depts[0]})
    db.verify()


def test_refused_delete_rolls_back_cleanly():
    db = make_db()
    depts, __ = populate(db)
    db.replicate("Emp.dept.name")
    with pytest.raises(Exception):
        db.delete("Dept", depts[0])  # still referenced through the path
    db.verify()
    assert db.get("Dept", depts[0]).values["name"] == "dept0"


# ---------------------------------------------------------------------------
# crash + recover
# ---------------------------------------------------------------------------


def crash_mid_updates(torn: bool, fault_point: int = 3):
    db = make_db(buffer_frames=6)
    depts, oids = populate(db, emps=60)
    db.replicate("Emp.dept.name")
    db.checkpoint()
    db.faults.fail_after_writes(fault_point, torn=torn)
    crashed = False
    try:
        for i, dept in enumerate(depts):
            db.update("Dept", dept, {"name": f"renamed{i}" * 20})
        for oid in oids:
            db.update("Emp", oid, {"salary": 9999})
    except DiskFault:
        crashed = True
    assert crashed, "workload too small to reach the fault point"
    return db, depts, oids


@pytest.mark.parametrize("torn", [False, True])
def test_crash_then_recover_is_all_or_nothing(torn):
    db, depts, oids = crash_mid_updates(torn)
    assert db.recovery.needs_recovery
    # the disk is down: statements fail until the database is recovered
    with pytest.raises(DiskFault):
        db.insert("Dept", {"name": "x", "budget": 1})
    report = db.recover()
    assert not db.recovery.needs_recovery
    assert report.verified
    db.verify()
    # every dept rename is atomic: fully old or fully new, propagation included
    path = db.catalog.get_path("Emp.dept.name")
    hidden = path.hidden_field_for("name")
    for i, dept in enumerate(depts):
        name = db.get("Dept", dept).values["name"]
        assert name in ("dept%d" % i, f"renamed{i}" * 20)
        for oid in oids:
            emp = db.get("Emp", oid)
            if emp.values["dept"] == dept:
                assert emp.values[hidden] == name
    # and the session is fully usable again
    db.insert("Emp", {"name": "post-crash", "salary": 5, "dept": depts[0]})
    db.verify()


def test_recovery_report_and_counter():
    db, __, __ = crash_mid_updates(torn=True)
    before = db.telemetry.metrics.value("recoveries_total")
    report = db.recover()
    assert db.telemetry.metrics.value("recoveries_total") == before + 1
    assert report.statements_replayed + report.statements_discarded >= 1
    text = str(report)
    assert "statement(s) redone" in text and "rolled back" in text


def test_recover_without_wal_is_refused():
    db = Database()  # wal off
    with pytest.raises(DiskFault, match="write-ahead log"):
        db.recover()


def test_checkpoint_truncates_the_log():
    db = make_db()
    populate(db, emps=4)
    assert db.recovery.wal.has_records
    db.checkpoint()
    assert not db.recovery.wal.has_records
    db.verify()


def test_wal_counters_accounted_separately_from_disk_io():
    db = make_db()
    metrics = db.telemetry.metrics
    writes_before = db.stats.physical_writes
    populate(db, emps=6)
    assert metrics.value("wal_records_total", kind="commit") > 0
    assert metrics.value("wal_flushes_total") > 0
    assert metrics.value("wal_bytes_total") > 0
    # the log lives on its own device: appends never touch the data disk
    db2 = Database(buffer_frames=8)
    db2.define_type(db.registry.get("DEPT"))
    db2.define_type(db.registry.get("EMP"))
    db2.create_set("Dept", "DEPT")
    db2.create_set("Emp", "EMP")
    writes2_before = db2.stats.physical_writes
    populate(db2, emps=6)
    assert (db.stats.physical_writes - writes_before
            == db2.stats.physical_writes - writes2_before)


# ---------------------------------------------------------------------------
# crashed snapshots
# ---------------------------------------------------------------------------


def test_crashed_snapshot_recovers_on_load(tmp_path):
    db, depts, oids = crash_mid_updates(torn=True)
    target = tmp_path / "crashed.frdb"
    save_database(db, str(target))  # saved as-is: pages + WAL tail
    db2 = load_database(str(target))
    assert not db2.recovery.needs_recovery  # replayed during load
    db2.verify()
    assert db2.catalog.get_set("Emp").count() == len(oids)
    db2.update("Dept", depts[0], {"budget": 42})
    db2.verify()


def test_healthy_wal_snapshot_round_trips(tmp_path):
    db = make_db()
    depts, __ = populate(db)
    db.replicate("Emp.dept.name")
    target = tmp_path / "healthy.frdb"
    save_database(db, str(target))
    assert not db.recovery.wal.has_records  # saving checkpointed it
    db2 = load_database(str(target))
    assert db2.recovery.enabled
    db2.update("Dept", depts[0], {"name": "fresh"})
    db2.verify()


# ---------------------------------------------------------------------------
# the doctor
# ---------------------------------------------------------------------------


def separate_db():
    db = Database(wal=True, buffer_frames=32)
    db.define_type(TypeDefinition("ORG", [char_field("name", 20),
                                          int_field("budget")]))
    db.define_type(TypeDefinition("DEPT", [char_field("name", 20),
                                           ref_field("org", "ORG")]))
    db.define_type(TypeDefinition("EMP", [char_field("name", 20),
                                          ref_field("dept", "DEPT")]))
    db.create_set("Org", "ORG")
    db.create_set("Dept", "DEPT")
    db.create_set("Emp", "EMP")
    orgs = [db.insert("Org", {"name": f"org{i}", "budget": i * 10})
            for i in range(2)]
    depts = [db.insert("Dept", {"name": f"dept{i}", "org": orgs[i % 2]})
             for i in range(3)]
    for i in range(6):
        db.insert("Emp", {"name": f"emp{i}", "dept": depts[i % 3]})
    path = db.replicate("Emp.dept.org.budget", strategy="separate")
    return db, path, orgs


def test_doctor_reports_healthy():
    db = make_db()
    populate(db)
    db.replicate("Emp.dept.name")
    report = db.doctor()
    assert report.healthy
    assert report.objects_checked > 0 and report.paths_checked == 1
    assert "no problems found" in report.render()


def test_doctor_detects_and_repairs_inplace_drift():
    db = make_db()
    depts, oids = populate(db)
    path = db.replicate("Emp.dept.name")
    hidden = path.hidden_field_for("name")
    emp_set = db.catalog.get_set("Emp")
    db.replication.apply_hidden_changes(emp_set, oids[0], {hidden: "WRONG"})
    with pytest.raises(Exception):
        db.verify()  # verify sees the drift but cannot say more
    diagnosis = db.doctor()
    assert not diagnosis.healthy
    assert any(f.category == "inplace-value" and f.repairable
               for f in diagnosis.findings)
    cure = db.doctor(repair=True)
    assert cure.repairs >= 1
    db.verify()
    assert db.doctor().healthy
    assert db.telemetry.metrics.value(
        "doctor_repairs_total", category="inplace-value") >= 1


def test_doctor_rebuilds_missing_replica():
    db, path, orgs = separate_db()
    replica_set = db.replication.replica_sets[path.path_id]
    roid, __ = next(iter(replica_set.scan()))
    replica_set.raw_delete(roid)  # vandalise: drop a replica object
    diagnosis = db.doctor()
    assert any(f.category == "replica-set" and f.repairable
               for f in diagnosis.findings)
    cure = db.doctor(repair=True)
    assert cure.repairs >= 1
    db.verify()
    assert db.doctor().healthy


def test_doctor_repairs_stale_replica_and_refcount():
    db, path, orgs = separate_db()
    replica_set = db.replication.replica_sets[path.path_id]
    roid, replica = next(iter(replica_set.scan()))
    replica.set("budget", -777)
    replica_set.raw_update(roid, replica)
    terminal_oid = orgs[0]
    terminal = db.store.read(terminal_oid)
    entry = terminal.replica_entry_for(path.path_id)
    terminal.set_replica_entry(
        ReplicaEntry(entry.replica_oid, entry.refcount + 5, path.path_id))
    db.store.update(terminal_oid, terminal)
    diagnosis = db.doctor()
    categories = {f.category for f in diagnosis.findings}
    assert "replica-value" in categories
    assert "replica-refcount" in categories
    db.doctor(repair=True)
    db.verify()
    assert db.doctor().healthy


def test_doctor_removes_orphan_replicas():
    db, path, orgs = separate_db()
    replica_set = db.replication.replica_sets[path.path_id]
    orphan = replica_set.make_object({"budget": 123456})
    replica_set.raw_insert(orphan)
    diagnosis = db.doctor()
    assert any(f.category == "replica-orphan" for f in diagnosis.findings)
    db.doctor(repair=True)
    db.verify()
    assert db.doctor().healthy


def test_doctor_reports_structural_damage_without_guessing():
    db = make_db()
    depts, oids = populate(db, emps=3)
    db.catalog.get_set("Dept").raw_delete(depts[0])  # dangling forward refs
    report = db.doctor(repair=True)
    assert any(f.category == "dangling-ref" and not f.repairable
               for f in report.findings)
    assert all(not f.repaired for f in report.findings
               if f.category == "dangling-ref")


# ---------------------------------------------------------------------------
# snapshot hardening (malformed images raise SnapshotError, never tracebacks)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "payload",
    [
        b"",                                    # empty file
        b"FRE",                                 # shorter than the magic
        b"XXXXXXXX" + b"\x00" * 64,             # wrong magic
        b"FREPDB01",                            # magic, no header length
        b"FREPDB01" + b"\xff" * 8,              # absurd header length
        b"FREPDB01" + (2**40).to_bytes(8, "big"),
        b"FREPDB01" + (20).to_bytes(8, "big") + b"not json at all!!!!!",
        b"FREPDB01" + (2).to_bytes(8, "big") + b"[]",   # JSON, wrong shape
        b"FREPDB01" + (2).to_bytes(8, "big") + b"{}",   # header missing keys
    ],
)
def test_malformed_snapshot_raises_snapshot_error(tmp_path, payload):
    target = tmp_path / "image.frdb"
    target.write_bytes(payload)
    with pytest.raises(SnapshotError):
        load_database(str(target))


def test_truncated_snapshot_pages_raise_snapshot_error(tmp_path):
    db = make_db()
    populate(db, emps=4)
    target = tmp_path / "image.frdb"
    save_database(db, str(target))
    blob = target.read_bytes()
    target.write_bytes(blob[: len(blob) - 100])
    with pytest.raises(SnapshotError):
        load_database(str(target))
