"""``order by`` / ``limit`` tests."""

import pytest

from repro.errors import ParseError
from repro.query.language import parse_statement


def test_parse_order_by_and_limit():
    stmt = parse_statement(
        "retrieve (Emp1.name) where Emp1.age > 1 order by Emp1.salary desc limit 3"
    )
    assert stmt.order_by.field == "salary"
    assert stmt.descending
    assert stmt.limit == 3
    assert stmt.where is not None


def test_parse_order_by_defaults_ascending():
    stmt = parse_statement("retrieve (Emp1.name) order by Emp1.salary")
    assert not stmt.descending
    assert stmt.limit is None


def test_parse_rejects_order_with_aggregates():
    with pytest.raises(ParseError):
        parse_statement("retrieve (count(Emp1.name)) order by Emp1.salary")


def test_parse_rejects_foreign_order_field():
    with pytest.raises(ParseError):
        parse_statement("retrieve (Emp1.name) order by Dept.budget")


def test_order_by_ascending(company):
    res = company["db"].execute("retrieve (Emp1.name) order by Emp1.salary")
    assert [r[0] for r in res.rows] == ["alice", "bob", "carol", "dave", "erin", "frank"]


def test_order_by_descending_with_limit(company):
    res = company["db"].execute(
        "retrieve (Emp1.name) order by Emp1.salary desc limit 2"
    )
    assert [r[0] for r in res.rows] == ["frank", "erin"]
    assert "sort(" in res.plan and "limit(2)" in res.plan


def test_limit_without_order(company):
    res = company["db"].execute("retrieve (Emp1.name) limit 4")
    assert len(res) == 4


def test_order_by_string_field(company):
    res = company["db"].execute("retrieve (Emp1.salary) order by Emp1.name desc limit 1")
    # 'frank' sorts last alphabetically, so desc limit 1 yields his salary
    assert res.rows == [(100_000,)]


def test_order_by_replicated_path(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    res = db.execute("retrieve (Emp1.name) order by Emp1.dept.name limit 2")
    assert sorted(r[0] for r in res.rows) == ["erin", "frank"]  # dept 'shoes' first
    assert "sort(replicated" in res.plan


def test_order_by_functional_join_path(company):
    db = company["db"]
    res = db.execute(
        "retrieve (Emp1.name, Emp1.dept.budget) order by Emp1.dept.budget desc limit 2"
    )
    assert [r[1] for r in res.rows] == [300, 300]


def test_order_by_with_nulls_last(company):
    db = company["db"]
    db.insert("Emp1", {"name": "nix", "age": 1, "salary": 0, "dept": None})
    res = db.execute("retrieve (Emp1.name) order by Emp1.dept.budget")
    assert res.rows[-1] == ("nix",)
    res = db.execute("retrieve (Emp1.name) order by Emp1.dept.budget desc")
    assert res.rows[-1] == ("nix",)