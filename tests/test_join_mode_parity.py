"""Naive-vs-batched parity over the query corpus, locks, crash recovery."""

import random

import pytest

from repro import Database, TypeDefinition, char_field, int_field, ref_field
from repro.errors import DiskFault, PlanningError
from repro.query.language import parse_statement
from repro.server import footprint_for_statement
from repro.workloads import WorkloadConfig, build_model_database, run_read_query

# -- a company with mid-chain NULLs and enough spread for every clause -------


def _populate(db: Database, dangling_org: bool = True) -> None:
    db.define_type(TypeDefinition("ORG", [char_field("name", 20),
                                          int_field("budget")]))
    db.define_type(TypeDefinition(
        "DEPT", [char_field("name", 20), int_field("budget"),
                 ref_field("org", "ORG")]))
    db.define_type(TypeDefinition(
        "EMP", [char_field("name", 20), int_field("age"), int_field("salary"),
                ref_field("dept", "DEPT")]))
    db.create_set("Org", "ORG")
    db.create_set("Dept", "DEPT")
    db.create_set("Emp1", "EMP")
    orgs = [db.insert("Org", {"name": f"org{i}", "budget": 1000 * i})
            for i in range(3)]
    depts = []
    for i in range(5):
        org = None if dangling_org and i == 4 else orgs[i % 3]
        depts.append(db.insert("Dept", {"name": f"dept{i}",
                                        "budget": 100 * i, "org": org}))
    for i in range(40):
        dept = None if i % 13 == 0 else depts[i % 5]  # some emps lack a dept
        db.insert("Emp1", {"name": f"emp{i:02d}", "age": 20 + i % 17,
                           "salary": 40_000 + 997 * (i * 7 % 40),
                           "dept": dept})


#: replication layouts the corpus runs under
_LAYOUTS = {
    "none": (),
    "inplace": (("Emp1.dept.name", {}), ("Emp1.dept.org.name", {})),
    "separate": (("Emp1.dept.name", {"strategy": "separate"}),),
    "lazy": (("Emp1.dept.name", {"lazy": True}),),
    "collapsed": (("Emp1.dept.org.name", {"collapsed": True}),),
}

_CORPUS = (
    "retrieve (Emp1.name)",
    "retrieve (Emp1.all)",
    "retrieve (Emp1.name, Emp1.dept.name)",
    "retrieve (Emp1.name, Emp1.dept.org.name)",
    "retrieve (Emp1.name) where Emp1.salary >= 60000 and Emp1.salary <= 70000",
    "retrieve (Emp1.name) where Emp1.dept.name = 'dept2'",
    "retrieve (Emp1.name, Emp1.dept.org.name) where Emp1.dept.org.name = 'org1'",
    "retrieve (Emp1.name, Emp1.salary) order by Emp1.salary desc limit 7",
    "retrieve (Emp1.name) order by Emp1.dept.name",
    "retrieve (Emp1.dept.name, count(Emp1.name), sum(Emp1.salary)) "
    "group by Emp1.dept.name",
    "retrieve (Emp1.dept.org.name, avg(Emp1.salary), max(Emp1.age)) "
    "group by Emp1.dept.org.name",
    "retrieve (count(Emp1.name), min(Emp1.salary))",
)


def _build(join_mode: str, layout: str, **kwargs) -> Database:
    db = Database(join_mode=join_mode, **kwargs)
    # collapsed paths refuse null mid-chain refs, so that layout gets none
    _populate(db, dangling_org=(layout != "collapsed"))
    for path_text, opts in _LAYOUTS[layout]:
        db.replicate(path_text, **opts)
    return db


@pytest.mark.parametrize("layout", sorted(_LAYOUTS))
def test_corpus_rows_identical_across_modes(layout):
    naive = _build("naive", layout)
    batched = _build("batched", layout, join_batch_rows=7)  # force multi-batch
    for query in _CORPUS:
        try:
            a = naive.execute(query, materialize=False)
        except PlanningError:
            # a path filter with no index/replica is rejected at planning
            # time -- mode-independently, so batched must reject it too
            with pytest.raises(PlanningError):
                batched.execute(query, materialize=False)
            continue
        b = batched.execute(query, materialize=False)
        assert a.columns == b.columns, query
        assert a.rows == b.rows, query
        assert naive.storage.pool.pinned_keys() == []
        assert batched.storage.pool.pinned_keys() == []


def test_lazy_refresh_then_parity():
    naive = _build("naive", "lazy")
    batched = _build("batched", "lazy")
    for db in (naive, batched):
        dept = db.execute("retrieve (Dept.name)").rows  # touch, then mutate
        assert dept
        victims = [oid for oid, __ in db.catalog.get_set("Dept").scan()][:2]
        for i, oid in enumerate(victims):
            db.update("Dept", oid, {"name": f"renamed{i}"})
        db.refresh("Emp1.dept.name")
    q = "retrieve (Emp1.name, Emp1.dept.name)"
    assert naive.execute(q).rows == batched.execute(q).rows


def test_analyze_matches_plain_under_batched():
    db = _build("batched", "inplace")
    for query in _CORPUS:
        db.cold_cache()
        plain = db.execute(query, materialize=False)
        db.cold_cache()
        analyzed = db.explain_analyze(query, materialize=False)
        assert analyzed.rows == plain.rows, query
        assert analyzed.io.total_io == plain.io.total_io, query


# -- lock footprints do not depend on the executor ---------------------------


def test_lock_footprint_identical_across_modes():
    db = _build("batched", "inplace")
    for text in _CORPUS + (
        "replace (Emp1.salary = 1) where Emp1.name = 'emp01'",
        "delete from Emp1 where Emp1.name = 'emp02'",
    ):
        stmt = parse_statement(text)
        db.join_mode = "batched"
        batched_fp = footprint_for_statement(db, stmt)
        db.join_mode = "naive"
        naive_fp = footprint_for_statement(db, stmt)
        assert batched_fp == naive_fp, text


# -- crash safety is mode-independent ----------------------------------------


def _crash_build(join_mode: str) -> Database:
    """A WAL database with wide records (real page traffic under 8 frames)."""
    db = Database(wal=True, buffer_frames=8, join_mode=join_mode)
    db.define_type(TypeDefinition("DEPT", [char_field("name", 200),
                                           int_field("budget")]))
    db.define_type(TypeDefinition("EMP", [char_field("name", 200),
                                          int_field("salary"),
                                          ref_field("dept", "DEPT")]))
    db.create_set("Dept", "DEPT")
    db.create_set("Emp", "EMP")
    depts = [db.insert("Dept", {"name": f"dept{i}", "budget": 100 * i})
             for i in range(3)]
    for i in range(60):
        db.insert("Emp", {"name": f"emp{i}", "salary": 1000 + i,
                          "dept": depts[i % 3]})
    db.replicate("Emp.dept.name")
    db.checkpoint()
    return db


@pytest.mark.parametrize("torn", [False, True])
def test_crash_recover_query_parity_under_batched(torn):
    db = _crash_build("batched")
    depts = [oid for oid, __ in db.catalog.get_set("Dept").scan()]
    db.faults.fail_after_writes(3, torn=torn)
    crashed = False
    try:
        for i, dept in enumerate(depts):
            db.update("Dept", dept, {"name": f"renamed{i}" * 20})
    except DiskFault:
        crashed = True
    assert crashed, "workload too small to reach the fault point"
    assert db.recovery.needs_recovery
    report = db.recover()
    assert report.verified
    db.verify()
    # post-recovery, the two executors still agree on chained queries
    for query in (
        "retrieve (Emp.name, Emp.dept.name)",
        "retrieve (Emp.dept.name, count(Emp.name)) group by Emp.dept.name",
        "retrieve (Emp.name) order by Emp.salary desc limit 5",
    ):
        db.join_mode = "batched"
        b = db.execute(query, materialize=False)
        db.join_mode = "naive"
        n = db.execute(query, materialize=False)
        assert b.rows == n.rows, query


# -- the sorted-probe formula stays inside the drift tolerance ---------------

_DRIFT_CONFIG = dict(n_s=300, f=5, f_r=0.01, f_s=0.01, clustered=False)


@pytest.mark.parametrize("strategy", ["none", "separate"])
def test_batched_read_drift_under_15_percent(strategy):
    cfg = WorkloadConfig(strategy=strategy, join_mode="batched",
                         **_DRIFT_CONFIG)
    mdb = build_model_database(cfg)
    rng = random.Random(cfg.seed + 1)
    for __ in range(6):
        run_read_query(mdb, rng)
    drift = mdb.db.telemetry.drift
    assert len(drift.select(kind="read", strategy=strategy)) == 6
    assert drift.mean_rel_error("read", strategy) < 0.15
