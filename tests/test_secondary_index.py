"""Direct unit tests for secondary indexes (composite keys, ranges)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.secondary import SecondaryIndex
from repro.objects.types import char_field, float_field, int_field
from repro.storage.manager import StorageManager
from repro.storage.oid import OID


def make_index(field):
    sm = StorageManager(buffer_frames=32)
    fid = sm.disk.create_file()
    return SecondaryIndex("t", sm.pool, fid, field, "S")


def oid(i: int) -> OID:
    return OID(1, i, 0)


def test_lookup_with_duplicates():
    idx = make_index(int_field("x"))
    idx.insert(5, oid(1))
    idx.insert(5, oid(2))
    idx.insert(7, oid(3))
    assert sorted(idx.lookup(5)) == [oid(1), oid(2)]
    assert idx.lookup(7) == [oid(3)]
    assert idx.lookup(6) == []


def test_delete_specific_entry_of_duplicate_group():
    idx = make_index(int_field("x"))
    idx.insert(5, oid(1))
    idx.insert(5, oid(2))
    assert idx.delete(5, oid(1))
    assert not idx.delete(5, oid(1))
    assert idx.lookup(5) == [oid(2)]


def test_update_moves_entry():
    idx = make_index(int_field("x"))
    idx.insert(5, oid(1))
    idx.update(5, 9, oid(1))
    assert idx.lookup(5) == []
    assert idx.lookup(9) == [oid(1)]
    idx.update(9, 9, oid(1))  # no-op
    assert idx.count() == 1


def test_range_bounds_inclusive_exclusive():
    idx = make_index(int_field("x"))
    for i in range(10):
        idx.insert(i, oid(i))
    assert [v for v, __ in idx.range(3, 6)] == [3, 4, 5, 6]
    assert [v for v, __ in idx.range(3, 6, include_hi=False)] == [3, 4, 5]
    assert [v for v, __ in idx.range(lo=8)] == [8, 9]
    assert [v for v, __ in idx.range(hi=1)] == [0, 1]
    assert [v for v, __ in idx.items()] == list(range(10))


def test_range_with_duplicates_at_bounds():
    idx = make_index(int_field("x"))
    for i in range(3):
        idx.insert(5, oid(i))
        idx.insert(6, oid(10 + i))
    got = [v for v, __ in idx.range(5, 6, include_hi=False)]
    assert got == [5, 5, 5]


def test_char_keys():
    idx = make_index(char_field("name", 12))
    for i, name in enumerate(["delta", "alpha", "charlie", "bravo"]):
        idx.insert(name, oid(i))
    assert [v for v, __ in idx.items()] == ["alpha", "bravo", "charlie", "delta"]
    assert idx.lookup("charlie") == [oid(2)]


def test_float_keys_with_negatives():
    idx = make_index(float_field("score"))
    values = [3.5, -2.25, 0.0, -10.0, 7.125]
    for i, v in enumerate(values):
        idx.insert(v, oid(i))
    assert [v for v, __ in idx.items()] == sorted(values)
    assert [v for v, __ in idx.range(-5.0, 1.0)] == [-2.25, 0.0]


def test_height_property_grows():
    idx = make_index(int_field("x"))
    assert idx.height == 1
    for i in range(3000):
        idx.insert(i, oid(i % 1000))
    assert idx.height >= 2


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(-1000, 1000), st.integers(0, 10**6)),
        unique_by=lambda t: t[1],
        max_size=150,
    )
)
def test_property_index_matches_sorted_multimap(pairs):
    idx = make_index(int_field("x"))
    for value, i in pairs:
        idx.insert(value, oid(i))
    expected = sorted((value, oid(i)) for value, i in pairs)
    assert list(idx.items()) == expected
    # every key's lookup returns exactly its group
    for value, __ in pairs[:10]:
        assert sorted(idx.lookup(value)) == sorted(
            o for v, o in expected if v == value
        )
