"""Direct unit tests for the system catalog."""

import pytest

from repro.errors import (
    DuplicateNameError,
    UnknownIndexError,
    UnknownReplicationPathError,
    UnknownSetError,
)


def test_set_registry(company):
    catalog = company["db"].catalog
    assert catalog.set_names() == ["Dept", "Emp1", "Emp2", "Org"]
    assert catalog.set_type_of("Emp1").startswith("EMP")
    with pytest.raises(UnknownSetError):
        catalog.get_set("Nope")
    emp1 = catalog.get_set("Emp1")
    assert catalog.set_of_file(emp1.file_id) is emp1
    assert catalog.set_of_file(99999) is None


def test_duplicate_set_rejected(company):
    db = company["db"]
    with pytest.raises(DuplicateNameError):
        db.create_set("Emp1", "EMP")


def test_index_registry(company):
    db = company["db"]
    info = db.build_index("Emp1.salary")
    catalog = db.catalog
    assert catalog.get_index(info.name) is info
    assert catalog.index_on_field("Emp1", "salary") is info
    assert catalog.index_on_field("Emp1", "age") is None
    assert catalog.indexes_on_set("Emp1") == [info]
    assert catalog.indexes_on_set("Dept") == []
    with pytest.raises(UnknownIndexError):
        catalog.get_index("nope")
    db.drop_index(info.name)
    assert catalog.index_on_field("Emp1", "salary") is None


def test_path_registry_and_lookup(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.name")
    catalog = db.catalog
    assert catalog.get_path("Emp1.dept.name") is path
    assert catalog.get_path_by_id(path.path_id) is path
    assert catalog.paths_on_source("Emp1") == [path]
    assert catalog.paths_on_source("Emp2") == []
    with pytest.raises(UnknownReplicationPathError):
        catalog.get_path("Emp1.dept.budget")
    with pytest.raises(UnknownReplicationPathError):
        catalog.get_path_by_id(99)


def test_find_path_exact_and_all_subsumption(company):
    db = company["db"]
    db.replicate("Emp1.dept.all")
    catalog = db.catalog
    # .all covers each scalar terminal of the same chain
    assert catalog.find_path("Emp1", ("dept",), "name") is not None
    assert catalog.find_path("Emp1", ("dept",), "budget") is not None
    assert catalog.find_path("Emp1", ("dept",), "nothere") is None
    assert catalog.find_path("Emp1", ("dept", "org"), "name") is None
    assert catalog.find_path("Emp2", ("dept",), "name") is None


def test_paths_using_link_positions(company):
    db = company["db"]
    p1 = db.replicate("Emp1.dept.name")
    p2 = db.replicate("Emp1.dept.org.name")
    catalog = db.catalog
    uses = catalog.paths_using_link(p1.link_sequence[0])
    assert {(u.path.text, u.position) for u in uses} == {
        ("Emp1.dept.name", 1),
        ("Emp1.dept.org.name", 1),
    }
    deep = catalog.paths_using_link(p2.link_sequence[1])
    assert {(u.path.text, u.position) for u in deep} == {("Emp1.dept.org.name", 2)}


def test_child_and_root_links(company):
    db = company["db"]
    p1 = db.replicate("Emp1.dept.name")
    p2 = db.replicate("Emp1.dept.org.name")
    catalog = db.catalog
    roots = catalog.root_links("Emp1")
    assert [l.link_id for l in roots] == [p1.link_sequence[0]]
    children = catalog.child_links(roots[0])
    assert [l.link_id for l in children] == [p2.link_sequence[1]]
    # dropping the deep path makes its link dead -> no longer a child
    db.drop_replication("Emp1.dept.org.name")
    assert catalog.child_links(roots[0]) == []


def test_link_for_prefix_sharing_key(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.name")
    catalog = db.catalog
    link = catalog.link_for_prefix("Emp1", ("dept",))
    assert link is not None and link.link_id == path.link_sequence[0]
    assert catalog.link_for_prefix("Emp2", ("dept",)) is None
    assert link.position == 1


def test_duplicate_index_name_rejected(company):
    db = company["db"]
    db.build_index("Emp1.salary", name="myindex")
    with pytest.raises(DuplicateNameError):
        db.build_index("Emp1.age", name="myindex")
