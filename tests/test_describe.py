"""Schema introspection tests."""

from repro.schema.describe import (
    describe_database,
    describe_path,
    describe_set,
    describe_type,
)


def test_describe_type_renders_fields(company):
    text = describe_type(company["db"], "EMP")
    assert "define type EMP" in text
    assert "name: char[20]" in text
    assert "dept: ref DEPT" in text


def test_describe_type_marks_hidden_fields(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    text = describe_type(db, db.catalog.get_set("Emp1").type_name)
    assert "hidden (replicated)" in text


def test_describe_set(company):
    text = describe_set(company["db"], "Emp1")
    assert "create Emp1: {own ref EMP}" in text
    assert "6 objects" in text


def test_describe_path_shows_links_and_sharing(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    db.replicate("Emp1.dept.budget")
    text = describe_path(db, "Emp1.dept.name")
    assert "link sequence (1,)" in text
    assert "shared with ['Emp1.dept.budget']" in text
    assert "Emp1.dept^-1" in text


def test_describe_separate_path_shows_replicas(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", strategy="separate")
    text = describe_path(db, "Emp1.dept.name")
    assert "separate" in text
    assert "3 shared replicas" in text


def test_describe_database_covers_everything(company):
    db = company["db"]
    db.replicate("Emp1.dept.org.name")
    db.build_index("Emp1.salary")
    db.build_index("Emp1.dept.org.name")
    text = describe_database(db)
    for fragment in (
        "define type ORG",
        "define type DEPT",
        "define type EMP",
        "create Dept",
        "replicate Emp1.dept.org.name",
        "build btree on Emp1.salary",
        "build btree on Emp1.dept.org.name",
    ):
        assert fragment in text, fragment
