"""Shared fixtures: the paper's employee database (Figure 1)."""

import pytest

from repro import Database, TypeDefinition, char_field, int_field, ref_field


def define_employee_schema(db: Database) -> None:
    """``define type ORG / DEPT / EMP`` and create the four sets."""
    db.define_type(TypeDefinition("ORG", [char_field("name", 20), int_field("budget")]))
    db.define_type(
        TypeDefinition(
            "DEPT",
            [char_field("name", 20), int_field("budget"), ref_field("org", "ORG")],
        )
    )
    db.define_type(
        TypeDefinition(
            "EMP",
            [
                char_field("name", 20),
                int_field("age"),
                int_field("salary"),
                ref_field("dept", "DEPT"),
            ],
        )
    )
    db.create_set("Org", "ORG")
    db.create_set("Dept", "DEPT")
    db.create_set("Emp1", "EMP")
    db.create_set("Emp2", "EMP")


@pytest.fixture()
def db():
    database = Database()
    define_employee_schema(database)
    yield database
    # pin-leak regression guard: whatever ran, every buffer frame must be
    # unpinned once the statements are done (group-fetches included)
    assert database.storage.pool.pinned_keys() == []


@pytest.fixture()
def company(db):
    """A small populated company: 2 orgs, 3 depts, 6 employees in Emp1."""
    orgs = {
        "acme": db.insert("Org", {"name": "acme", "budget": 1_000_000}),
        "globex": db.insert("Org", {"name": "globex", "budget": 2_000_000}),
    }
    depts = {
        "toys": db.insert("Dept", {"name": "toys", "budget": 100, "org": orgs["acme"]}),
        "tools": db.insert("Dept", {"name": "tools", "budget": 200, "org": orgs["acme"]}),
        "shoes": db.insert("Dept", {"name": "shoes", "budget": 300, "org": orgs["globex"]}),
    }
    emps = {}
    for i, (ename, dname) in enumerate(
        [
            ("alice", "toys"),
            ("bob", "toys"),
            ("carol", "tools"),
            ("dave", "tools"),
            ("erin", "shoes"),
            ("frank", "shoes"),
        ]
    ):
        emps[ename] = db.insert(
            "Emp1",
            {"name": ename, "age": 30 + i, "salary": 50_000 + 10_000 * i, "dept": depts[dname]},
        )
    return {"db": db, "orgs": orgs, "depts": depts, "emps": emps}
