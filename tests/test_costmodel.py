"""Cost-model tests: Yao's function, the equations, and the paper's cells."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import (
    PAPER_FIGURE12,
    PAPER_FIGURE14,
    CostParameters,
    ModelStrategy,
    Setting,
    check_all_claims,
    figure12,
    figure14,
    percent_difference,
    read_cost,
    rounded_up,
    sweep,
    total_cost,
    update_cost,
    yao,
)
from repro.errors import CostModelError


# ---------------------------------------------------------------------------
# Yao's function
# ---------------------------------------------------------------------------


def test_yao_boundaries():
    assert yao(100, 10, 0) == 0.0
    assert yao(100, 0, 5) == 0.0
    assert yao(100, 100, 1) == 1.0
    assert yao(100, 10, 95) == 1.0  # c > a - b
    assert yao(100, 10, 100) == 1.0


def test_yao_single_choice_equals_density():
    # choosing one object touches a page with probability b/a
    assert yao(1000, 25, 1) == pytest.approx(25 / 1000)


def test_yao_matches_exact_small_case():
    # a=5, b=2, c=2: 1 - C(3,2)/C(5,2) = 1 - 3/10
    assert yao(5, 2, 2) == pytest.approx(0.7)


def test_yao_rejects_bad_arguments():
    with pytest.raises(CostModelError):
        yao(10, 2, 11)
    with pytest.raises(CostModelError):
        yao(-1, 2, 1)


@settings(max_examples=100, deadline=None)
@given(
    a=st.integers(min_value=1, max_value=10**6),
    b=st.integers(min_value=0, max_value=10**4),
    c=st.integers(min_value=0, max_value=10**4),
)
def test_yao_properties(a, b, c):
    b = min(b, a)
    c = min(c, a)
    p = yao(a, b, c)
    assert 0.0 <= p <= 1.0 + 1e-12
    # monotone in c
    if c + 1 <= a:
        assert yao(a, b, c + 1) >= p - 1e-12


# ---------------------------------------------------------------------------
# derived parameters
# ---------------------------------------------------------------------------


def test_derived_objects_per_page_match_paper():
    p = CostParameters(f=1, f_r=0.002)
    none = p.derive(ModelStrategy.NO_REPLICATION)
    assert none.o_r == 4056 // 120 == 33
    assert none.o_s == 4056 // 220 == 18
    assert none.p_r == math.ceil(10_000 / 33)
    inp = p.derive(ModelStrategy.IN_PLACE)
    assert inp.r == 120 and inp.o_r == 4056 // 140 == 28
    sep = p.derive(ModelStrategy.SEPARATE)
    assert sep.s_prime == 22 and sep.o_s_prime == 4056 // 42 == 96
    assert inp.l == 1 + 2 + 8 * 1


def test_index_cost_formula():
    d = CostParameters(f=1, f_r=0.002).derive(ModelStrategy.NO_REPLICATION)
    # ceil(log350 10000) = 2, leaf term 20/350 - 1 < 0 -> 0
    assert d.index_r == 2
    big = CostParameters(f=20, f_r=0.002).derive(ModelStrategy.NO_REPLICATION)
    # ceil(log350 200000) = 3, ceil(400/350 - 1) = 1
    assert big.index_r == 4


def test_parameter_validation():
    with pytest.raises(CostModelError):
        CostParameters(f=0)
    with pytest.raises(CostModelError):
        CostParameters(f_r=0.0)
    with pytest.raises(CostModelError):
        CostParameters(f_s=2.0)


# ---------------------------------------------------------------------------
# the published tables (Figures 12 and 14)
# ---------------------------------------------------------------------------

# Rounding-convention deltas the authors' own program introduced (see
# EXPERIMENTS.md); every cell must land within this tolerance.
TOLERANCE = 2


@pytest.mark.parametrize("f", [1, 20])
@pytest.mark.parametrize(
    "strategy",
    [ModelStrategy.NO_REPLICATION, ModelStrategy.IN_PLACE, ModelStrategy.SEPARATE],
)
def test_figure12_cells(f, strategy):
    params = CostParameters(f=f, f_r=0.002)
    want_read, want_update = PAPER_FIGURE12[f][strategy]
    got_read = rounded_up(read_cost(params, strategy, Setting.UNCLUSTERED))
    got_update = rounded_up(update_cost(params, strategy, Setting.UNCLUSTERED))
    assert abs(got_read - want_read) <= TOLERANCE
    assert abs(got_update - want_update) <= TOLERANCE


@pytest.mark.parametrize("f", [1, 20])
@pytest.mark.parametrize(
    "strategy",
    [ModelStrategy.NO_REPLICATION, ModelStrategy.IN_PLACE, ModelStrategy.SEPARATE],
)
def test_figure14_cells(f, strategy):
    params = CostParameters(f=f, f_r=0.002)
    want_read, want_update = PAPER_FIGURE14[f][strategy]
    got_read = rounded_up(read_cost(params, strategy, Setting.CLUSTERED))
    got_update = rounded_up(update_cost(params, strategy, Setting.CLUSTERED))
    assert abs(got_read - want_read) <= TOLERANCE
    assert abs(got_update - want_update) <= TOLERANCE


def test_exact_cell_count_is_high():
    """At least 17 of the 24 published cells must reproduce exactly."""
    exact = 0
    for setting, paper, table in (
        (Setting.UNCLUSTERED, PAPER_FIGURE12, figure12()),
        (Setting.CLUSTERED, PAPER_FIGURE14, figure14()),
    ):
        for row in table:
            want_read, want_update = paper[row.f][row.strategy]
            exact += row.c_read == want_read
            exact += row.c_update == want_update
    assert exact >= 17


def test_singleton_link_elimination_is_what_matches_f1():
    """Without Section 4.3.1 the f=1 in-place update cell misses by ~9 I/Os."""
    with_opt = update_cost(
        CostParameters(f=1, f_r=0.002), ModelStrategy.IN_PLACE, Setting.UNCLUSTERED
    )
    without = update_cost(
        CostParameters(f=1, f_r=0.002, eliminate_singleton_links=False),
        ModelStrategy.IN_PLACE,
        Setting.UNCLUSTERED,
    )
    assert rounded_up(with_opt) == 42
    assert without - with_opt > 5


# ---------------------------------------------------------------------------
# C_total mixing and sweeps
# ---------------------------------------------------------------------------


def test_total_cost_endpoints():
    params = CostParameters(f=10, f_r=0.002)
    for strategy in ModelStrategy:
        r = read_cost(params, strategy, Setting.UNCLUSTERED)
        u = update_cost(params, strategy, Setting.UNCLUSTERED)
        assert total_cost(params, strategy, Setting.UNCLUSTERED, 0.0) == pytest.approx(r)
        assert total_cost(params, strategy, Setting.UNCLUSTERED, 1.0) == pytest.approx(u)
        assert total_cost(params, strategy, Setting.UNCLUSTERED, 0.5) == pytest.approx(
            (r + u) / 2
        )


def test_total_cost_rejects_bad_probability():
    with pytest.raises(CostModelError):
        total_cost(CostParameters(), ModelStrategy.IN_PLACE, Setting.UNCLUSTERED, 1.5)


def test_percent_difference_sign():
    params = CostParameters(f=10, f_r=0.002)
    # read-heavy mix: replication wins (negative)
    assert percent_difference(params, ModelStrategy.IN_PLACE, Setting.UNCLUSTERED, 0.0) < 0
    # update-only mix: in-place loses (positive)
    assert percent_difference(params, ModelStrategy.IN_PLACE, Setting.UNCLUSTERED, 1.0) > 0


def test_sweep_shape_and_crossover():
    params = CostParameters(f=10, f_r=0.002)
    series = sweep(params, ModelStrategy.IN_PLACE, Setting.UNCLUSTERED, points=101)
    assert len(series.percents) == 101
    cross = series.crossover()
    assert cross is not None and 0.1 < cross < 0.5
    # monotone: in-place only gets relatively worse as updates grow
    assert all(a <= b + 1e-9 for a, b in zip(series.percents, series.percents[1:]))


def test_separate_crossover_is_late_or_never():
    params = CostParameters(f=10, f_r=0.002)
    series = sweep(params, ModelStrategy.SEPARATE, Setting.UNCLUSTERED, points=101)
    cross = series.crossover()
    assert cross is None or cross > 0.8


# ---------------------------------------------------------------------------
# prose claims
# ---------------------------------------------------------------------------


def test_all_paper_claims_hold():
    results = check_all_claims()
    failing = [r for r in results if not r.holds]
    assert not failing, "; ".join(f"claim {r.claim_id}: {r.detail}" for r in failing)
