"""Parser tests for the query language."""

import pytest

from repro.errors import ParseError
from repro.query.language import (
    Comparison,
    Delete,
    FieldRef,
    Replace,
    Retrieve,
    parse_statement,
)


def test_parse_paper_read_query():
    stmt = parse_statement(
        "retrieve (Emp1.name, Emp1.salary, Emp1.dept.name) where Emp1.salary > 100000"
    )
    assert isinstance(stmt, Retrieve)
    assert stmt.targets == (
        FieldRef("Emp1", (), "name"),
        FieldRef("Emp1", (), "salary"),
        FieldRef("Emp1", ("dept",), "name"),
    )
    assert stmt.where.clauses == (Comparison(FieldRef("Emp1", (), "salary"), ">", 100000),)


def test_parse_retrieve_without_where():
    stmt = parse_statement("retrieve (Emp1.name)")
    assert stmt.where is None


def test_parse_two_level_target():
    stmt = parse_statement("retrieve (Emp1.dept.org.name)")
    assert stmt.targets[0] == FieldRef("Emp1", ("dept", "org"), "name")


def test_parse_string_literal_and_ops():
    for op in ("<", "<=", "=", "!=", ">=", ">"):
        stmt = parse_statement(f"retrieve (S.a) where S.b {op} 'x y'")
        clause = stmt.where.clauses[0]
        assert clause.op == op
        assert clause.value == "x y"


def test_parse_float_literal():
    stmt = parse_statement("retrieve (S.a) where S.b >= 1.5")
    assert stmt.where.clauses[0].value == 1.5


def test_parse_conjunction():
    stmt = parse_statement("retrieve (S.a) where S.b > 1 and S.c < 2")
    assert len(stmt.where.clauses) == 2


def test_parse_replace():
    stmt = parse_statement(
        'replace (S.name = "newname", S.budget = 42) where S.budget = 7'
    )
    assert isinstance(stmt, Replace)
    assert stmt.set_name == "S"
    assert stmt.assignments == (("name", "newname"), ("budget", 42))
    assert stmt.where.clauses[0].value == 7


def test_parse_delete():
    stmt = parse_statement("delete from Emp1 where Emp1.age >= 65")
    assert isinstance(stmt, Delete)
    assert stmt.set_name == "Emp1"


def test_parse_delete_without_where():
    stmt = parse_statement("delete from Emp1")
    assert stmt.where is None


def test_trailing_semicolon_ok():
    parse_statement("retrieve (S.a);")


@pytest.mark.parametrize(
    "bad",
    [
        "select * from t",
        "retrieve Emp1.name",
        "retrieve ()",
        "retrieve (Emp1.name, Emp2.name)",
        "retrieve (Emp1.name) where Emp1.salary >",
        "retrieve (Emp1.name) where Emp1.salary ~ 3",
        "retrieve (Emp1.name) where Emp1.salary = unquoted",
        "replace (S.a = 1, T.b = 2)",
        "replace (S.dept.name = 'x')",
        "replace (S.a) where S.b = 1",
        "delete Emp1",
        "delete from 9bad",
        "retrieve (Emp1.name extra",
        "retrieve (Emp1.9name)",
    ],
)
def test_parse_errors(bad):
    with pytest.raises(ParseError):
        parse_statement(bad)


def test_comparison_matches():
    c = Comparison(FieldRef("S", (), "x"), "<=", 5)
    assert c.matches(5) and c.matches(4) and not c.matches(6)
    c2 = Comparison(FieldRef("S", (), "x"), "!=", "a")
    assert c2.matches("b") and not c2.matches("a")


def test_statement_text_rendering():
    stmt = parse_statement("retrieve (S.a) where S.b > 1 and S.c = 'z'")
    assert stmt.where.text == "S.b > 1 and S.c = \"z\""
