"""Multiple replication paths: link sharing and link IDs (Section 4.1.4)."""



def test_paths_with_common_prefix_share_link(company):
    db = company["db"]
    p1 = db.replicate("Emp1.dept.budget")
    p2 = db.replicate("Emp1.dept.name")
    p3 = db.replicate("Emp1.dept.org.name")
    # The paper's example: link sequences (1), (1), (1, 2).
    assert p1.link_sequence == p2.link_sequence
    assert p3.link_sequence[0] == p1.link_sequence[0]
    assert len(p3.link_sequence) == 2
    db.verify()


def test_different_source_set_gets_new_link(company):
    db = company["db"]
    db.insert("Emp2", {"name": "zoe", "age": 2, "salary": 2, "dept": company["depts"]["toys"]})
    p1 = db.replicate("Emp1.dept.budget")
    p4 = db.replicate("Emp2.dept.org")
    # Emp2.dept^-1 cannot be shared with Emp1 paths.
    assert p4.link_sequence[0] != p1.link_sequence[0]
    db.verify()


def test_shared_link_stores_one_link_object_per_owner(company):
    db = company["db"]
    p1 = db.replicate("Emp1.dept.budget")
    db.replicate("Emp1.dept.name")
    link = db.catalog.get_link(p1.link_sequence[0])
    owners = [lo.owner for __oid, lo in link.file.scan()]
    assert sorted(owners) == sorted(company["depts"].values())
    # D carries exactly one (link-OID, link-ID) pair despite two paths.
    dept = db.get("Dept", company["depts"]["toys"])
    assert len(dept.link_entries) == 1


def test_update_propagates_all_sharing_paths(company):
    db = company["db"]
    p1 = db.replicate("Emp1.dept.budget")
    p2 = db.replicate("Emp1.dept.name")
    db.update("Dept", company["depts"]["toys"], {"name": "games", "budget": 777})
    obj = db.get("Emp1", company["emps"]["alice"])
    assert obj.values[p1.hidden_field_for("budget")] == 777
    assert obj.values[p2.hidden_field_for("name")] == "games"
    db.verify()


def test_paper_figure5_configuration(company):
    """The four paths of Figure 5, all live at once."""
    db = company["db"]
    db.insert("Emp2", {"name": "zoe", "age": 2, "salary": 2, "dept": company["depts"]["toys"]})
    db.replicate("Emp1.dept.budget")
    db.replicate("Emp1.dept.name")
    db.replicate("Emp1.dept.org.name")
    db.replicate("Emp2.dept.org", strategy="inplace")
    # toys lies on Emp1 paths and the Emp2 path: two link entries.
    dept = db.get("Dept", company["depts"]["toys"])
    assert len(dept.link_entries) == 2
    db.update("Dept", company["depts"]["toys"], {"org": company["orgs"]["globex"]})
    db.verify()
    db.update("Org", company["orgs"]["globex"], {"name": "globex2"})
    db.verify()


def test_ref_update_with_sharing_and_divergent_paths(company):
    db = company["db"]
    p_name = db.replicate("Emp1.dept.org.name")
    p_budget = db.replicate("Emp1.dept.org.budget")
    assert p_name.link_sequence == p_budget.link_sequence  # full sharing
    db.update("Dept", company["depts"]["toys"], {"org": company["orgs"]["globex"]})
    obj = db.get("Emp1", company["emps"]["alice"])
    assert obj.values[p_name.hidden_field_for("name")] == "globex"
    assert obj.values[p_budget.hidden_field_for("budget")] == 2_000_000
    db.verify()


def test_three_level_path(db):
    """A 3-level chain: REGION <- ORG <- DEPT <- EMP."""
    from repro import TypeDefinition, char_field, int_field, ref_field

    db.define_type(TypeDefinition("REGION", [char_field("name", 16)]))
    db.define_type(
        TypeDefinition("ORG3", [char_field("name", 16), ref_field("region", "REGION")])
    )
    db.define_type(
        TypeDefinition("DEPT3", [char_field("name", 16), ref_field("org", "ORG3")])
    )
    db.define_type(
        TypeDefinition("EMP3", [char_field("name", 16), int_field("salary"), ref_field("dept", "DEPT3")])
    )
    for name, tname in [("Region", "REGION"), ("Org3", "ORG3"), ("Dept3", "DEPT3"), ("Emp3", "EMP3")]:
        db.create_set(name, tname)
    west = db.insert("Region", {"name": "west"})
    east = db.insert("Region", {"name": "east"})
    org = db.insert("Org3", {"name": "acme", "region": west})
    dept = db.insert("Dept3", {"name": "toys", "org": org})
    emps = [db.insert("Emp3", {"name": f"e{i}", "salary": i, "dept": dept}) for i in range(4)]
    path = db.replicate("Emp3.dept.org.region.name")
    assert len(path.link_sequence) == 3
    obj = db.get("Emp3", emps[0])
    assert obj.values[path.hidden_field_for("name")] == "west"
    db.verify()
    # terminal data update ripples three links
    db.update("Region", west, {"name": "northwest"})
    assert db.get("Emp3", emps[1]).values[path.hidden_field_for("name")] == "northwest"
    db.verify()
    # middle-of-chain ref update
    db.update("Org3", org, {"region": east})
    assert db.get("Emp3", emps[2]).values[path.hidden_field_for("name")] == "east"
    db.verify()


def test_inplace_and_separate_on_same_exact_path_fields(company):
    db = company["db"]
    p_in = db.replicate("Emp1.dept.budget", strategy="inplace")
    p_sep = db.replicate("Emp1.dept.org.budget", strategy="separate")
    db.update("Dept", company["depts"]["tools"], {"budget": 5, "org": company["orgs"]["globex"]})
    obj = db.get("Emp1", company["emps"]["carol"])
    assert obj.values[p_in.hidden_field_for("budget")] == 5
    rep = db.replication.replica_sets[p_sep.path_id].read(obj.values[p_sep.hidden_ref])
    assert rep.values["budget"] == 2_000_000
    db.verify()
