"""A real ``python -m repro.server`` process under sustained mixed load.

Marked ``soak``: excluded from the default (tier-1) run, exercised by
the CI server job.  Duration is tunable via ``REPRO_SOAK_SECONDS``.
"""

import os
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import RemoteError
from repro.server import connect
from repro.snapshot import open_database, save_database
from tests.conftest import define_employee_schema

SOAK_SECONDS = float(os.environ.get("REPRO_SOAK_SECONDS", "30"))


def _build_snapshot(path):
    from repro import Database

    db = Database()
    define_employee_schema(db)
    orgs = [db.insert("Org", {"name": f"org{i}", "budget": i}) for i in range(2)]
    depts = [
        db.insert("Dept", {"name": f"dept{i}", "budget": 1000 + i,
                           "org": orgs[i % 2]})
        for i in range(4)
    ]
    for i in range(24):
        db.insert("Emp1", {"name": f"emp{i}", "age": 20 + i,
                           "salary": 1_000 * i, "dept": depts[i % 4]})
    db.replicate("Emp1.dept.name")
    save_database(db, path)


@pytest.mark.soak
def test_server_process_survives_sustained_mixed_load(tmp_path):
    snapshot = tmp_path / "soak.frdb"
    saved = tmp_path / "after.frdb"
    _build_snapshot(str(snapshot))

    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0",
         "--snapshot", str(snapshot), "--save", str(saved),
         "--workers", "4", "--queue-depth", "64", "--lock-timeout", "10",
         "--metrics-port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
    try:
        line = proc.stdout.readline().strip()
        assert line.startswith("listening on "), line
        host, port = line.split()[-1].rsplit(":", 1)
        address = (host, int(port))
        line = proc.stdout.readline().strip()
        assert line.startswith("metrics on "), line
        mhost, mport = line.split()[-1].rsplit(":", 1)
        metrics_base = f"http://{mhost}:{mport}"

        deadline = time.monotonic() + SOAK_SECONDS
        counts = {"reads": 0, "writes": 0, "busy": 0, "lock": 0, "scrapes": 0}
        counts_mutex = threading.Lock()
        failures = []

        def scraper():
            """Hammer the sidecar during the soak: every scrape must 200."""
            from urllib.request import urlopen

            try:
                while time.monotonic() < deadline:
                    for path in ("/metrics", "/health", "/slow"):
                        with urlopen(metrics_base + path, timeout=10.0) as rsp:
                            assert rsp.status == 200, (path, rsp.status)
                            body = rsp.read().decode("utf-8")
                        if path == "/metrics":
                            assert "lock_wait_seconds" in body
                    with counts_mutex:
                        counts["scrapes"] += 1
                    time.sleep(0.25)
            except Exception as exc:
                failures.append(f"scraper: {exc!r}")

        def worker(idx):
            try:
                with connect(*address, timeout=30.0) as client:
                    i = 0
                    while time.monotonic() < deadline:
                        i += 1
                        try:
                            if idx % 2:
                                rows = client.execute(
                                    "retrieve (Emp1.name, Emp1.dept.name)").rows
                                assert len(rows) == 24
                                with counts_mutex:
                                    counts["reads"] += 1
                            else:
                                dept = (idx + i) % 4
                                client.execute(
                                    f'replace (Dept.name = "dept{dept}-{idx}-{i}") '
                                    f"where Dept.budget = {1000 + dept}")
                                with counts_mutex:
                                    counts["writes"] += 1
                        except RemoteError as exc:
                            # explicit verdicts are allowed; anything else is not
                            if exc.code in ("server_busy",):
                                with counts_mutex:
                                    counts["busy"] += 1
                                time.sleep(0.01)
                            elif exc.code in ("lock_timeout", "deadlock"):
                                with counts_mutex:
                                    counts["lock"] += 1
                            else:
                                raise
            except Exception as exc:
                failures.append(f"worker {idx}: {exc!r}")

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        threads.append(threading.Thread(target=scraper))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=SOAK_SECONDS + 60.0)
        assert failures == []
        assert counts["reads"] > 0 and counts["writes"] > 0
        assert counts["scrapes"] > 0

        with connect(*address, timeout=30.0) as client:
            assert "invariants hold" in client.meta("verify")
            assert "no problems found" in client.meta("doctor")
            stats = client.stats()
            assert stats["connections_total"] >= 8
            client.shutdown()

        assert proc.wait(timeout=60.0) == 0
        out, err = proc.stdout.read(), proc.stderr.read()
        assert "server drained" in out
        assert f"saved snapshot to {saved}" in out, err
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)

    # the drained snapshot reloads cleanly and is internally consistent
    reloaded = open_database(str(saved))
    reloaded.verify()
    assert len(reloaded.execute("retrieve (Emp1.name)").rows) == 24


@pytest.mark.soak
def test_server_process_concurrency_stress(tmp_path):
    """Read-heavy 16-client stress against a real server process.

    Gated on ``REPRO_CONCURRENCY_STRESS=1`` (the CI soak job's stress
    variant).  14 readers and 2 writers hammer the server while a
    scraper polls ``/metrics``; the run must finish without deadlock or
    protocol failures, and the scraped ``concurrent_statements_peak``
    gauge must exceed 1 -- proof that footprint admission really
    executed statements concurrently in a production-shaped process.
    """
    if os.environ.get("REPRO_CONCURRENCY_STRESS") != "1":
        pytest.skip("set REPRO_CONCURRENCY_STRESS=1 to run the stress soak")
    clients = 16
    snapshot = tmp_path / "stress.frdb"
    _build_snapshot(str(snapshot))

    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0",
         "--snapshot", str(snapshot),
         "--workers", str(clients), "--queue-depth", "128",
         "--max-connections", str(clients + 4), "--lock-timeout", "10",
         "--group-commit-ms", "2", "--metrics-port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
    try:
        line = proc.stdout.readline().strip()
        assert line.startswith("listening on "), line
        host, port = line.split()[-1].rsplit(":", 1)
        address = (host, int(port))
        line = proc.stdout.readline().strip()
        assert line.startswith("metrics on "), line
        mhost, mport = line.split()[-1].rsplit(":", 1)
        metrics_base = f"http://{mhost}:{mport}"

        deadline = time.monotonic() + SOAK_SECONDS
        counts = {"reads": 0, "writes": 0, "busy": 0, "lock": 0}
        counts_mutex = threading.Lock()
        failures = []
        peaks = []

        def scraper():
            from urllib.request import urlopen

            try:
                while time.monotonic() < deadline:
                    with urlopen(metrics_base + "/metrics",
                                 timeout=10.0) as rsp:
                        assert rsp.status == 200
                        body = rsp.read().decode("utf-8")
                    for raw in body.splitlines():
                        if raw.startswith("concurrent_statements_peak"):
                            peaks.append(float(raw.split()[-1]))
                    time.sleep(0.25)
            except Exception as exc:
                failures.append(f"scraper: {exc!r}")

        def worker(idx):
            is_writer = idx < 2  # read-heavy: 2 of 16 write
            try:
                with connect(*address, timeout=30.0) as client:
                    i = 0
                    while time.monotonic() < deadline:
                        i += 1
                        try:
                            if is_writer:
                                dept = (idx + i) % 4
                                client.execute(
                                    f'replace (Dept.name = "s{dept}-{idx}-{i}") '
                                    f"where Dept.budget = {1000 + dept}")
                                with counts_mutex:
                                    counts["writes"] += 1
                            else:
                                rows = client.execute(
                                    "retrieve (Emp1.name, Emp1.dept.name)"
                                ).rows
                                assert len(rows) == 24
                                with counts_mutex:
                                    counts["reads"] += 1
                        except RemoteError as exc:
                            if exc.code in ("server_busy",):
                                with counts_mutex:
                                    counts["busy"] += 1
                                time.sleep(0.01)
                            elif exc.code in ("lock_timeout", "deadlock"):
                                with counts_mutex:
                                    counts["lock"] += 1
                            else:
                                raise
            except Exception as exc:
                failures.append(f"worker {idx}: {exc!r}")

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(clients)]
        threads.append(threading.Thread(target=scraper))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=SOAK_SECONDS + 60.0)
        assert failures == []
        assert counts["reads"] > 0 and counts["writes"] > 0
        # the tentpole's proof in a real process: statements overlapped
        assert peaks and max(peaks) > 1, peaks

        with connect(*address, timeout=30.0) as client:
            assert "invariants hold" in client.meta("verify")
            client.shutdown()
        assert proc.wait(timeout=60.0) == 0
        assert "server drained" in proc.stdout.read()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)
