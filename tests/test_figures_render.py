"""Rendering tests for the figure/table generators."""

from repro.costmodel import (
    PAPER_FIGURE12,
    CostParameters,
    ModelStrategy,
    Setting,
    figure11,
    figure12,
    render_selected_values,
    render_series_table,
    sweep,
)
from repro.costmodel.figures import SHARING_LEVELS, render_ascii_plot


def test_selected_values_table_renders_both_f_columns():
    text = render_selected_values(figure12(), Setting.UNCLUSTERED)
    assert "f=1" in text and "f=20" in text
    assert "no replication" in text
    assert "(paper)" not in text  # only with the reference argument


def test_selected_values_with_paper_reference():
    text = render_selected_values(figure12(), Setting.UNCLUSTERED, PAPER_FIGURE12)
    assert text.count("(paper)") == 3
    assert "691" in text  # the paper's headline cell


def test_series_table_covers_all_panels():
    graphs = figure11(points=5)
    text = render_series_table(graphs, Setting.UNCLUSTERED)
    for f in SHARING_LEVELS:
        assert f"f = {f}," in text
    assert text.count("P_update") == len(SHARING_LEVELS)


def test_figure11_structure():
    graphs = figure11(points=5)
    assert set(graphs) == set(SHARING_LEVELS)
    series = graphs[10][ModelStrategy.IN_PLACE][0.002]
    assert len(series.p_updates) == 5
    assert series.p_updates[0] == 0.0 and series.p_updates[-1] == 1.0


def test_ascii_plot_renders():
    params = CostParameters(f=10, f_r=0.002)
    series = {
        "in-place": sweep(params, ModelStrategy.IN_PLACE, Setting.UNCLUSTERED, 11),
        "separate": sweep(params, ModelStrategy.SEPARATE, Setting.UNCLUSTERED, 11),
    }
    text = render_ascii_plot(series)
    assert "a = in-place" in text
    assert "b = separate" in text
    assert "P_update ->" in text
    assert "+50%" in text.replace(" ", "")
