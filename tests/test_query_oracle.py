"""Oracle equivalence: replication must never change query answers.

Two databases are loaded with identical data from the same seed; one gets
replication paths (and indexes), the other stays plain.  Every query must
return identical rows on both, before and after a random mutation burst.
This is the strongest possible correctness statement about field
replication: it is *transparent* -- purely a performance mechanism.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database

from tests.conftest import define_employee_schema

QUERIES = [
    "retrieve (Emp1.name, Emp1.salary)",
    "retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary >= 3000",
    "retrieve (Emp1.dept.budget) where Emp1.salary < 2000",
    "retrieve (Emp1.name, Emp1.dept.org.name) where Emp1.age = 30",
    "retrieve (Emp1.dept.org.budget, Emp1.dept.name)",
]

PATH_SETS = [
    [("Emp1.dept.name", {}), ("Emp1.dept.budget", {})],
    [("Emp1.dept.name", {"strategy": "separate"}),
     ("Emp1.dept.org.name", {"strategy": "separate"})],
    [("Emp1.dept.org.name", {}), ("Emp1.dept.org", {})],
    [("Emp1.dept.all", {}), ("Emp1.dept.org.name", {"collapsed": True})],
    [("Emp1.dept.name", {"lazy": True})],
]


def build_pair(seed: int, paths, inline=False):
    dbs = []
    for replicated in (False, True):
        rng = random.Random(seed)
        db = Database(inline_singleton_links=inline and replicated)
        define_employee_schema(db)
        orgs = [db.insert("Org", {"name": f"org{i}", "budget": i * 7}) for i in range(4)]
        depts = [
            db.insert("Dept", {"name": f"dept{i}", "budget": i * 11, "org": orgs[rng.randrange(4)]})
            for i in range(12)
        ]
        for i in range(60):
            db.insert(
                "Emp1",
                {
                    "name": f"e{i:03d}",
                    "age": 25 + rng.randrange(10),
                    "salary": rng.randrange(5000),
                    "dept": depts[rng.randrange(12)],
                },
            )
        if replicated:
            for text, kwargs in paths:
                db.replicate(text, **kwargs)
            db.build_index("Emp1.salary")
        dbs.append((db, orgs, depts))
    return dbs


def mutate(db, orgs, depts, rng, steps=10):
    emp_oids = [oid for oid, __ in db.catalog.get_set("Emp1").scan()]
    for __ in range(steps):
        op = rng.randrange(5)
        if op == 0:
            db.update("Dept", depts[rng.randrange(len(depts))],
                      {"name": f"renamed{rng.randrange(100)}"})
        elif op == 1:
            db.update("Dept", depts[rng.randrange(len(depts))],
                      {"org": orgs[rng.randrange(len(orgs))]})
        elif op == 2:
            db.update("Org", orgs[rng.randrange(len(orgs))],
                      {"budget": rng.randrange(10_000)})
        elif op == 3:
            db.update("Emp1", emp_oids[rng.randrange(len(emp_oids))],
                      {"dept": depts[rng.randrange(len(depts))]})
        else:
            emp_oids.append(
                db.insert("Emp1", {"name": f"new{rng.randrange(10_000)}",
                                   "age": 30, "salary": rng.randrange(5000),
                                   "dept": depts[rng.randrange(len(depts))]})
            )


@pytest.mark.parametrize("paths", PATH_SETS, ids=lambda p: "+".join(t for t, __ in p))
def test_replication_is_transparent(paths):
    (plain, p_orgs, p_depts), (replicated, r_orgs, r_depts) = build_pair(11, paths)
    for query in QUERIES:
        assert sorted(plain.execute(query).rows) == sorted(replicated.execute(query).rows), query
    # identical mutation bursts on both
    mutate(plain, p_orgs, p_depts, random.Random(99))
    mutate(replicated, r_orgs, r_depts, random.Random(99))
    replicated.verify()
    for query in QUERIES:
        assert sorted(plain.execute(query).rows) == sorted(replicated.execute(query).rows), query


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10**6), mseed=st.integers(0, 10**6))
def test_property_transparency_under_random_seeds(seed, mseed):
    paths = [("Emp1.dept.name", {}), ("Emp1.dept.org.name", {"strategy": "separate"})]
    (plain, p_orgs, p_depts), (replicated, r_orgs, r_depts) = build_pair(
        seed, paths, inline=True
    )
    mutate(plain, p_orgs, p_depts, random.Random(mseed))
    mutate(replicated, r_orgs, r_depts, random.Random(mseed))
    replicated.verify()
    for query in QUERIES:
        assert sorted(plain.execute(query).rows) == sorted(replicated.execute(query).rows)
