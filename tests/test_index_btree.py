"""Unit + property tests for the B+-tree and key codecs."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.index.btree import BPlusTree
from repro.index.keycodec import (
    decode_char,
    decode_float,
    decode_int,
    encode_char,
    encode_float,
    encode_int,
)
from repro.storage.manager import StorageManager
from repro.storage.oid import OID


def make_tree(key_width=8, frames=64):
    sm = StorageManager(buffer_frames=frames)
    fid = sm.disk.create_file()
    return sm, BPlusTree(sm.pool, fid, key_width)


def key(i: int, width=8) -> bytes:
    return i.to_bytes(width, "big")


def oid(i: int) -> OID:
    return OID(1, i, 0)


# ---------------------------------------------------------------------------
# key codecs
# ---------------------------------------------------------------------------


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_int_codec_roundtrip(v):
    assert decode_int(encode_int(v)) == v


@given(
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
)
def test_int_codec_order_preserving(a, b):
    assert (a < b) == (encode_int(a) < encode_int(b))


@given(st.floats(allow_nan=False))
def test_float_codec_roundtrip(v):
    assert decode_float(encode_float(v)) == v or (v == 0 and decode_float(encode_float(v)) == 0)


@given(st.floats(allow_nan=False), st.floats(allow_nan=False))
def test_float_codec_order_preserving(a, b):
    if a < b:
        assert encode_float(a) < encode_float(b)


@given(st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=12))
def test_char_codec_roundtrip(s):
    assert decode_char(encode_char(s, 12)) == s


def test_int_out_of_range_raises():
    from repro.errors import SerializationError

    with pytest.raises(SerializationError):
        encode_int(2**31)


# ---------------------------------------------------------------------------
# tree basics
# ---------------------------------------------------------------------------


def test_empty_tree_search_returns_none():
    __, tree = make_tree()
    assert tree.search(key(5)) is None
    assert list(tree.items()) == []
    assert tree.count() == 0
    assert tree.height == 1


def test_insert_search_small():
    __, tree = make_tree()
    for i in [5, 3, 9, 1, 7]:
        tree.insert(key(i), oid(i))
    for i in [1, 3, 5, 7, 9]:
        assert tree.search(key(i)) == oid(i)
    assert tree.search(key(4)) is None
    assert [k for k, __ in tree.items()] == [key(i) for i in [1, 3, 5, 7, 9]]


def test_duplicate_key_raises():
    __, tree = make_tree()
    tree.insert(key(1), oid(1))
    with pytest.raises(StorageError):
        tree.insert(key(1), oid(2))


def test_wrong_key_width_raises():
    __, tree = make_tree(key_width=8)
    with pytest.raises(StorageError):
        tree.insert(b"short", oid(1))
    with pytest.raises(StorageError):
        tree.search(b"waytoolongforthetree")


def test_large_insert_forces_splits_and_height_growth():
    __, tree = make_tree()
    n = 2000
    order = list(range(n))
    random.Random(7).shuffle(order)
    for i in order:
        tree.insert(key(i), oid(i))
    assert tree.height >= 2
    assert tree.count() == n
    tree.check_invariants()
    for i in range(0, n, 97):
        assert tree.search(key(i)) == oid(i)


def test_sequential_and_reverse_insertion():
    for direction in (1, -1):
        __, tree = make_tree()
        for i in range(500)[::direction]:
            tree.insert(key(i), oid(i))
        tree.check_invariants()
        assert [k for k, __ in tree.items()] == [key(i) for i in range(500)]


def test_range_scan_bounds():
    __, tree = make_tree()
    for i in range(0, 100, 2):
        tree.insert(key(i), oid(i))
    got = [k for k, __ in tree.range_scan(key(10), key(20))]
    assert got == [key(i) for i in range(10, 21, 2)]
    got = [k for k, __ in tree.range_scan(key(10), key(20), include_hi=False)]
    assert got == [key(i) for i in range(10, 20, 2)]
    got = [k for k, __ in tree.range_scan(key(11), key(19))]
    assert got == [key(i) for i in range(12, 19, 2)]
    assert list(tree.range_scan(key(98), None)) == [(key(98), oid(98))]
    assert [k for k, __ in tree.range_scan(None, key(4))] == [key(0), key(2), key(4)]


def test_range_scan_crosses_leaf_boundaries():
    __, tree = make_tree()
    n = 3000
    for i in range(n):
        tree.insert(key(i), oid(i))
    got = [k for k, __ in tree.range_scan(key(500), key(2500))]
    assert got == [key(i) for i in range(500, 2501)]


def test_delete_basic_behavior():
    __, tree = make_tree()
    for i in range(200):
        tree.insert(key(i), oid(i))
    for i in range(0, 200, 2):
        assert tree.delete(key(i))
    assert not tree.delete(key(0))  # already gone
    assert tree.count() == 100
    assert tree.search(key(2)) is None
    assert tree.search(key(3)) == oid(3)
    tree.check_invariants()


def test_delete_then_reinsert():
    __, tree = make_tree()
    for i in range(300):
        tree.insert(key(i), oid(i))
    for i in range(300):
        tree.delete(key(i))
    assert tree.count() == 0
    for i in range(300):
        tree.insert(key(i), oid(i + 1000))
    assert tree.search(key(7)) == oid(1007)
    tree.check_invariants()


def test_clear_resets_tree():
    __, tree = make_tree()
    for i in range(500):
        tree.insert(key(i), oid(i))
    tree.clear()
    assert tree.count() == 0
    assert tree.height == 1
    tree.insert(key(1), oid(1))
    assert tree.search(key(1)) == oid(1)


def test_persistence_across_reopen():
    sm, tree = make_tree()
    for i in range(1000):
        tree.insert(key(i), oid(i))
    sm.pool.flush_all()
    reopened = BPlusTree.open(sm.pool, tree.file_id, 8)
    assert reopened.height == tree.height
    assert reopened.search(key(123)) == oid(123)
    assert reopened.count() == 1000


def test_open_with_wrong_width_raises():
    sm, tree = make_tree(key_width=8)
    tree.insert(key(1), oid(1))
    sm.pool.flush_all()
    with pytest.raises(StorageError):
        BPlusTree.open(sm.pool, tree.file_id, 4)


def test_tree_survives_tiny_buffer_pool():
    sm = StorageManager(buffer_frames=4)
    fid = sm.disk.create_file()
    tree = BPlusTree(sm.pool, fid, 8)
    for i in range(1500):
        tree.insert(key(i), oid(i))
    tree.check_invariants()
    assert tree.search(key(777)) == oid(777)


def test_index_io_is_counted():
    sm, tree = make_tree()
    for i in range(2000):
        tree.insert(key(i), oid(i))
    sm.cold_cache()
    cost = sm.measure(lambda: tree.search(key(1234)))
    # Root-to-leaf descent: height pages read, nothing written.
    assert cost.physical_reads == tree.height
    assert cost.physical_writes == 0


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=10_000), unique=True, max_size=400),
    st.randoms(use_true_random=False),
)
def test_property_tree_matches_sorted_dict(keys, rng):
    """Insert/delete in random order; the tree equals a sorted dict."""
    __, tree = make_tree()
    shuffled = list(keys)
    rng.shuffle(shuffled)
    model = {}
    for i in shuffled:
        tree.insert(key(i), oid(i))
        model[key(i)] = oid(i)
    doomed = shuffled[::3]
    for i in doomed:
        tree.delete(key(i))
        del model[key(i)]
    assert dict(tree.items()) == dict(sorted(model.items()))
    tree.check_invariants()
