"""Lazy (deferred) propagation -- the paper's future-work extension."""

import pytest

from repro.errors import ReplicationError


def test_lazy_requires_inplace(company):
    db = company["db"]
    with pytest.raises(ReplicationError):
        db.replicate("Emp1.dept.name", strategy="separate", lazy=True)


def test_lazy_update_defers_propagation(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.name", lazy=True)
    db.update("Dept", company["depts"]["toys"], {"name": "games"})
    # not yet propagated
    stale = db.get("Emp1", company["emps"]["alice"]).values[path.hidden_fields[0]]
    assert stale == "toys"
    assert db.replication.lazy.pending_count(path) == 1
    refreshed = db.refresh("Emp1.dept.name")
    assert refreshed == 1
    fresh = db.get("Emp1", company["emps"]["alice"]).values[path.hidden_fields[0]]
    assert fresh == "games"
    assert db.replication.lazy.pending_count(path) == 0
    db.verify()


def test_lazy_many_updates_one_refresh(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.name", lazy=True)
    for i in range(10):
        db.update("Dept", company["depts"]["toys"], {"name": f"v{i}"})
    assert db.replication.lazy.pending_count(path) == 1  # deduplicated
    db.refresh()
    assert db.get("Emp1", company["emps"]["bob"]).values[path.hidden_fields[0]] == "v9"
    db.verify()


def test_lazy_update_cost_beats_eager(company):
    db = company["db"]
    db.replicate("Emp1.dept.budget")  # eager
    lazy_path = db.replicate("Emp1.dept.name", lazy=True)
    db.cold_cache()
    eager_cost = db.measure(
        lambda: db.update("Dept", company["depts"]["toys"], {"budget": 1})
    )
    db.cold_cache()
    lazy_cost = db.measure(
        lambda: db.update("Dept", company["depts"]["toys"], {"name": "z"})
    )
    assert lazy_cost.total_io <= eager_cost.total_io
    db.refresh()
    db.verify()
    assert db.replication.lazy.pending_count(lazy_path) == 0


def test_verify_refreshes_lazy_paths_first(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", lazy=True)
    db.update("Dept", company["depts"]["toys"], {"name": "games"})
    db.verify()  # must not raise: verify refreshes first


def test_lazy_no_index_allowed(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", lazy=True)
    with pytest.raises(ReplicationError):
        db.build_index("Emp1.dept.name")


def test_lazy_refresh_skips_deleted_owner(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", lazy=True)
    db.update("Dept", company["depts"]["toys"], {"name": "games"})
    # remove the referencing employees, then the department itself
    db.delete("Emp1", company["emps"]["alice"])
    db.delete("Emp1", company["emps"]["bob"])
    db.delete("Dept", company["depts"]["toys"])
    assert db.refresh() == 0
    db.verify()


def test_drop_lazy_path_cleans_queue(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", lazy=True)
    db.update("Dept", company["depts"]["toys"], {"name": "games"})
    db.drop_replication("Emp1.dept.name")
    db.verify()
