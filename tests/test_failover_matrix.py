"""The failover matrix: kill the primary at stride k, promote, prove zero loss.

Each entry starts a real primary/two-follower topology with a sync
quorum of one, kills the primary abruptly after k acknowledged
statements, promotes the most caught-up follower, and asserts the
promoted engine is doctor-clean and **byte-identical** on disk to a
single-node oracle that executed exactly the acknowledged statements.

``REPRO_FAILOVER_STRIDE=1`` makes the sweep exhaustive (CI replication
job); the default samples every other kill point to keep tier-1 fast.
The 30-second primary/2-follower chaos soak is marked ``soak``.
"""

import os
import random
import threading
import time

import pytest

from repro.recovery.faults import NetFaultInjector
from repro.recovery.harness import (FailoverOutcome, failover_matrix,
                                    failover_once)

STRIDE = int(os.environ.get("REPRO_FAILOVER_STRIDE", "2"))


def _seed_depts(db):
    db.insert("Dept1", {"name": "toys", "floor": 3})
    db.insert("Dept1", {"name": "tools", "floor": 1})


def _hire(name, age, dept_name):
    def step(db):
        dept = next(oid for oid, obj in db.catalog.get_set("Dept1").scan()
                    if obj.values["name"].strip() == dept_name)
        db.insert("Emp1", {"name": name, "age": age, "dept": dept})
    return step


SETUP = [
    "define type DEPT (name: char[12], floor: int)",
    "define type EMP (name: char[12], age: int, dept: ref DEPT)",
    "create Dept1: {own ref DEPT}",
    "create Emp1: {own ref EMP}",
    "replicate Emp1.dept.name",
    _seed_depts,
]

STATEMENTS = [
    _hire("alice", 30, "toys"),
    _hire("bob", 40, "tools"),
    'replace (Emp1.age = 31) where Emp1.name = "alice"',
    "retrieve (Emp1.name, Emp1.dept.name)",   # ships nothing, must not skew
    "delete from Emp1 where Emp1.age = 40",
    'replace (Dept1.floor = 5) where Dept1.name = "toys"',
    _hire("carol", 25, "toys"),
]


def _assert_clean(outcome: FailoverOutcome) -> None:
    assert outcome.doctor_healthy, (
        f"k={outcome.kill_after}: doctor found damage on the promoted node")
    assert not outcome.diffs, (
        f"k={outcome.kill_after}: promoted node diverged from the oracle: "
        f"{outcome.diffs[:5]}")
    assert outcome.promoted_applied_lsn == outcome.primary_last_lsn, (
        f"k={outcome.kill_after}: acknowledged statements lost "
        f"(applied {outcome.promoted_applied_lsn} "
        f"< primary {outcome.primary_last_lsn})")


def test_failover_matrix_zero_acknowledged_write_loss():
    outcomes = failover_matrix(SETUP, STATEMENTS, stride=STRIDE)
    assert outcomes  # covers k=0 .. len(STATEMENTS)
    for outcome in outcomes:
        _assert_clean(outcome)
        assert outcome.promotion_seconds < 10.0


def test_failover_matrix_under_network_faults():
    def faults(k):
        return [NetFaultInjector(seed=1000 + k, drop=0.05, delay=0.05,
                                 duplicate=0.05, truncate=0.05,
                                 delay_seconds=0.002),
                None]

    outcomes = failover_matrix(SETUP, STATEMENTS, stride=max(2, STRIDE),
                               faults_factory=faults)
    for outcome in outcomes:
        _assert_clean(outcome)


def test_failover_with_scripted_truncate_on_the_only_synced_follower():
    # pin a truncate onto an early frame of follower 0's link while
    # follower 1 rides clean: the quorum must still hold every ack
    faults = [NetFaultInjector(script=["ok", "truncate", "drop", "ok"]),
              None]
    outcome = failover_once(SETUP, STATEMENTS, kill_after=4,
                            follower_faults=faults)
    _assert_clean(outcome)


def test_failover_after_nothing_but_setup():
    outcome = failover_once(SETUP, STATEMENTS, kill_after=0, followers=1)
    _assert_clean(outcome)


# ---------------------------------------------------------------------------
# chaos soak: sustained write load against a faulty two-follower topology
# ---------------------------------------------------------------------------


SOAK_SECONDS = float(os.environ.get("REPRO_SOAK_SECONDS", "30"))


@pytest.mark.soak
def test_chaos_soak_primary_two_followers():
    """Write-heavy load with both links under random faults for
    ``REPRO_SOAK_SECONDS``; followers must converge afterwards and a
    final failover must keep every acknowledged write."""
    from repro.schema.database import Database
    from repro.server.client import connect
    from repro.server.replica import Replica, ReplicaServer
    from repro.server.service import Server

    primary = Server(Database(wal=True), port=0, sync_replicas=1,
                     sync_timeout=30.0).start()
    followers = []
    for i in range(2):
        faults = NetFaultInjector(seed=i + 1, drop=0.03, delay=0.05,
                                  duplicate=0.03, truncate=0.02,
                                  delay_seconds=0.002)
        followers.append(ReplicaServer(
            Replica(primary.address, name=f"soak-{i}", poll_wait=0.05,
                    link_timeout=0.5, min_backoff=0.01, max_backoff=0.2,
                    jitter_seed=i, net_faults=faults),
            port=0).start())
    stop = threading.Event()
    errors: list[BaseException] = []

    def reader(address):
        rng = random.Random(99)
        try:
            with connect(*address, retry=True, retry_backoff=0.05) as c:
                while not stop.is_set():
                    try:
                        c.execute("retrieve (Emp1.name)")
                    except Exception as exc:  # stale is allowed under chaos
                        if getattr(exc, "code", "") not in (
                                "replica_stale", "read_only_replica"):
                            raise
                    time.sleep(rng.uniform(0.0, 0.01))
        except BaseException as exc:
            errors.append(exc)

    try:
        with connect(*primary.address) as client:
            for text in ("define type EMP (name: char[12], age: int)",
                         "create Emp1: {own ref EMP}"):
                client.execute(text)
            threads = [threading.Thread(target=reader, args=(f.address,),
                                        daemon=True) for f in followers]
            for t in threads:
                t.start()
            deadline = time.perf_counter() + SOAK_SECONDS
            writes = 0
            while time.perf_counter() < deadline:
                with primary.sessions.latch:
                    primary.db.insert(
                        "Emp1", {"name": f"e{writes}", "age": writes % 80})
                writes += 1
                if writes % 10 == 0:
                    client.execute(
                        f'replace (Emp1.age = 1) where Emp1.name = "e{writes - 5}"')
            stop.set()
            for t in threads:
                t.join(timeout=10.0)
        assert writes > 0
        assert not errors, errors[:3]
        # both followers converge once the chaos stops feeding new faults
        deadline = time.perf_counter() + 60.0
        target = primary.hub.log.last_lsn
        while time.perf_counter() < deadline:
            if all(f.replica.applied_lsn >= target for f in followers):
                break
            time.sleep(0.05)
        primary.die()
        best = max(followers, key=lambda f: f.replica.applied_lsn)
        assert best.replica.applied_lsn >= target
        promotion = best.replica.promote()
        assert promotion["kind"] == "promoted"
        assert best.replica.db.doctor().healthy
        with connect(*best.address) as rc:
            rows = rc.execute("retrieve (Emp1.name)").rows
        assert len(rows) >= 1
    finally:
        stop.set()
        primary.die()
        for f in followers:
            f.die()
