"""Multi-page (large) record tests.

The paper's link objects can hold "a large number of OIDs" -- a department
of a thousand employees needs an 8 KB link object.  The heap file chains
such payloads over chunk records behind one stable rid.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.constants import PAGE_SIZE
from repro.storage.manager import StorageManager


@pytest.fixture()
def heap():
    return StorageManager(buffer_frames=64).create_file("big")


@pytest.mark.parametrize("size", [4085, 5000, 12_345, 3 * PAGE_SIZE, 100_000])
def test_large_roundtrip(heap, size):
    payload = bytes(i % 251 for i in range(size))
    rid = heap.insert(payload)
    assert heap.read(rid) == payload


def test_boundary_sizes(heap):
    # the largest inline payload and the first chunked one
    for size in (4082, 4083, 4084, 4085):
        rid = heap.insert(b"b" * size)
        assert heap.read(rid) == b"b" * size


def test_scan_assembles_and_skips_chunks(heap):
    small = heap.insert(b"small")
    big = heap.insert(b"B" * 10_000)
    small2 = heap.insert(b"small2")
    scanned = dict(heap.scan())
    assert scanned == {small: b"small", big: b"B" * 10_000, small2: b"small2"}
    assert heap.count() == 3


def test_delete_large_frees_chunks(heap):
    rid = heap.insert(b"X" * 50_000)
    pages_used = heap.num_pages()
    heap.delete(rid)
    assert heap.count() == 0
    # the freed space is reused: a same-sized insert allocates no new pages
    heap.insert(b"Y" * 50_000)
    assert heap.num_pages() == pages_used


def test_update_small_to_large_and_back(heap):
    rid = heap.insert(b"tiny")
    heap.update(rid, b"L" * 20_000)
    assert heap.read(rid) == b"L" * 20_000
    heap.update(rid, b"tiny again")
    assert heap.read(rid) == b"tiny again"
    assert heap.count() == 1


def test_update_large_to_large(heap):
    rid = heap.insert(b"A" * 9_000)
    heap.update(rid, b"B" * 30_000)
    assert heap.read(rid) == b"B" * 30_000
    heap.update(rid, b"C" * 5_000)
    assert heap.read(rid) == b"C" * 5_000


def test_large_record_after_forwarding(heap):
    # force a forward stub first, then grow through it
    rid = heap.insert(b"A" * 100)
    for __ in range(4):
        heap.insert(b"F" * 900)
    heap.update(rid, b"B" * 2_000)  # relocated (normal sized)
    heap.update(rid, b"C" * 9_999)  # now grows into a large record
    assert heap.read(rid) == b"C" * 9_999
    assert heap.count() == 5


def test_thousand_member_link_object(company):
    """The paper's motivating scale: one dept, one thousand employees."""
    db = company["db"]
    emps = [
        db.insert("Emp1", {"name": f"m{i}", "age": 1, "salary": 1,
                           "dept": company["depts"]["toys"]})
        for i in range(1000)
    ]
    db.replicate("Emp1.dept.name")
    db.verify()
    db.update("Dept", company["depts"]["toys"], {"name": "huge"})
    path = db.catalog.get_path("Emp1.dept.name")
    assert db.get("Emp1", emps[500]).values[path.hidden_field_for("name")] == "huge"
    db.verify()
    # shrink it back down below a page and keep going
    for emp in emps[:900]:
        db.delete("Emp1", emp)
    db.verify()


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "update", "delete"]),
            st.integers(min_value=0, max_value=15_000),
        ),
        max_size=12,
    )
)
def test_property_mixed_sizes_match_model(ops):
    sm = StorageManager(buffer_frames=64)
    heap = sm.create_file("prop")
    model = {}
    for i, (op, size) in enumerate(ops):
        payload = bytes([i % 256]) * size
        if op == "insert":
            model[heap.insert(payload)] = payload
        elif op == "update" and model:
            rid = next(iter(model))
            heap.update(rid, payload)
            model[rid] = payload
        elif op == "delete" and model:
            rid = next(reversed(model))
            heap.delete(rid)
            del model[rid]
    assert dict(heap.scan()) == model
    for rid, payload in model.items():
        assert heap.read(rid) == payload
