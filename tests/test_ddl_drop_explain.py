"""``drop`` and ``explain`` statements in the DDL/query surface."""

import io

import pytest

from repro.cli import Shell
from repro.errors import ParseError
from repro.schema.parser import execute_ddl, run_script


def test_drop_replicate_statement(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    execute_ddl(db, "drop replicate Emp1.dept.name")
    assert "Emp1.dept.name" not in db.catalog.paths
    db.verify()


def test_drop_index_statement(company):
    db = company["db"]
    info = db.build_index("Emp1.salary", name="sal_idx")
    execute_ddl(db, "drop index sal_idx")
    assert "sal_idx" not in db.catalog.indexes


def test_drop_set_statement(company):
    db = company["db"]
    execute_ddl(db, "drop set Emp2")
    assert "Emp2" not in db.catalog.set_names()


def test_drop_unknown_kind_rejected(company):
    with pytest.raises(ParseError):
        execute_ddl(company["db"], "drop table Emp1")


def test_explain_in_script(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    results = run_script(db, "explain retrieve (Emp1.dept.name)")
    assert len(results) == 1
    assert "replicated(Emp1.dept.name" in results[0]


def test_explain_in_shell(company):
    out = io.StringIO()
    shell = Shell(out=out)
    shell.db = company["db"]
    shell.run_block("explain retrieve (Emp1.name) where Emp1.salary > 1")
    text = out.getvalue()
    assert "FileScan(Emp1)" in text
    assert "row(s)" not in text  # the query did not actually run


def test_explain_does_not_touch_data(company):
    db = company["db"]
    db.cold_cache()
    before = db.stats.snapshot()
    run_script(db, "explain retrieve (Emp1.name, Emp1.dept.name)")
    cost = db.stats.snapshot() - before
    assert cost.physical_reads == 0


def test_full_lifecycle_script(company):
    db = company["db"]
    results = run_script(db, """
replicate Emp1.dept.name
build btree on Emp1.dept.name

retrieve (Emp1.name) where Emp1.dept.name = 'toys'

drop index idx1_Emp1___rep1_name
drop replicate Emp1.dept.name
""")
    assert len(results[0]) == 2
    assert db.catalog.paths == {}
    db.verify()
