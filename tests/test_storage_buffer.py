"""Unit tests for the simulated disk and LRU buffer pool."""

import pytest

from repro.errors import BufferPoolError, FileNotFoundInStoreError
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page
from repro.storage.stats import IOStatistics


@pytest.fixture()
def disk():
    return SimulatedDisk(IOStatistics())


def test_disk_create_and_drop_file(disk):
    fid = disk.create_file()
    assert disk.file_exists(fid)
    assert disk.num_pages(fid) == 0
    disk.drop_file(fid)
    assert not disk.file_exists(fid)


def test_disk_unknown_file_raises(disk):
    with pytest.raises(FileNotFoundInStoreError):
        disk.read_page(999, 0)
    with pytest.raises(FileNotFoundInStoreError):
        disk.num_pages(999)


def test_disk_page_out_of_range_raises(disk):
    fid = disk.create_file()
    with pytest.raises(FileNotFoundInStoreError):
        disk.read_page(fid, 0)


def test_disk_counts_physical_io(disk):
    fid = disk.create_file()
    pno = disk.allocate_page(fid)
    assert disk.stats.physical_reads == 0
    disk.read_page(fid, pno)
    assert disk.stats.physical_reads == 1
    disk.write_page(fid, pno, bytes(4096))
    assert disk.stats.physical_writes == 1


def test_disk_write_wrong_size_raises(disk):
    fid = disk.create_file()
    pno = disk.allocate_page(fid)
    with pytest.raises(ValueError):
        disk.write_page(fid, pno, b"short")


def test_buffer_hit_costs_no_physical_read(disk):
    pool = BufferPool(disk, capacity=4)
    fid = disk.create_file()
    pno, page = pool.new_page(fid)
    page.insert(b"x")
    pool.mark_dirty(fid, pno)
    pool.unpin(fid, pno)
    base = disk.stats.physical_reads
    with pool.page(fid, pno):
        pass
    with pool.page(fid, pno):
        pass
    assert disk.stats.physical_reads == base  # both were hits
    assert disk.stats.buffer_hits >= 2


def test_eviction_writes_back_dirty_page(disk):
    pool = BufferPool(disk, capacity=2)
    fid = disk.create_file()
    pno, page = pool.new_page(fid)
    slot = page.insert(b"durable")
    pool.mark_dirty(fid, pno)
    pool.unpin(fid, pno)
    # Fill the pool so (fid, pno) is evicted.
    for __ in range(3):
        n, __page = pool.new_page(fid)
        pool.unpin(fid, n)
    pool.flush_all()
    raw = disk.read_page(fid, pno)
    assert Page(raw).read(slot) == b"durable"


def test_lru_evicts_least_recently_used(disk):
    pool = BufferPool(disk, capacity=2)
    fid = disk.create_file()
    pages = []
    for __ in range(2):
        pno, __page = pool.new_page(fid)
        pool.unpin(fid, pno)
        pages.append(pno)
    # Touch page 0 so page 1 becomes LRU.
    with pool.page(fid, pages[0]):
        pass
    pno3, __ = pool.new_page(fid)
    pool.unpin(fid, pno3)
    assert (fid, pages[0]) in pool.resident_keys()
    assert (fid, pages[1]) not in pool.resident_keys()


def test_pinned_pages_are_not_evicted(disk):
    pool = BufferPool(disk, capacity=2)
    fid = disk.create_file()
    p0 = pool.new_page(fid)[0]  # left pinned
    p1 = pool.new_page(fid)[0]
    pool.unpin(fid, p1)
    p2 = pool.new_page(fid)[0]  # must evict p1, not p0
    pool.unpin(fid, p2)
    assert (fid, p0) in pool.resident_keys()
    pool.unpin(fid, p0)


def test_all_pinned_raises(disk):
    pool = BufferPool(disk, capacity=1)
    fid = disk.create_file()
    pool.new_page(fid)  # pinned
    with pytest.raises(BufferPoolError):
        pool.new_page(fid)


def test_unpin_without_pin_raises(disk):
    pool = BufferPool(disk, capacity=2)
    fid = disk.create_file()
    pno = pool.new_page(fid)[0]
    pool.unpin(fid, pno)
    with pytest.raises(BufferPoolError):
        pool.unpin(fid, pno)


def test_mark_dirty_nonresident_raises(disk):
    pool = BufferPool(disk, capacity=2)
    fid = disk.create_file()
    with pytest.raises(BufferPoolError):
        pool.mark_dirty(fid, 0)


def test_invalidate_all_forces_cold_reads(disk):
    pool = BufferPool(disk, capacity=8)
    fid = disk.create_file()
    pno, page = pool.new_page(fid)
    page.insert(b"cold")
    pool.mark_dirty(fid, pno)
    pool.unpin(fid, pno)
    pool.invalidate_all()
    before = disk.stats.physical_reads
    with pool.page(fid, pno) as page2:
        assert page2.read(0) == b"cold"
    assert disk.stats.physical_reads == before + 1


def test_capacity_must_be_positive(disk):
    with pytest.raises(ValueError):
        BufferPool(disk, capacity=0)


def test_drop_file_pages_discards_frames(disk):
    pool = BufferPool(disk, capacity=4)
    fid = disk.create_file()
    pno = pool.new_page(fid)[0]
    pool.unpin(fid, pno)
    pool.drop_file_pages(fid)
    assert (fid, pno) not in pool.resident_keys()
