"""Lock footprints from plans + the lock manager's waiting semantics."""

import dataclasses
import threading

import pytest

from repro.errors import DeadlockError, LockTimeoutError
from repro.query.language import parse_statement
from repro.query.planner import plan_replace
from repro.server.locks import (
    EXCLUSIVE,
    SCHEMA_RESOURCE,
    SHARED,
    LockFootprint,
    LockManager,
    ddl_footprint,
    footprint_for_statement,
    maintenance_footprint,
)
from repro.telemetry.metrics import MetricsRegistry


def footprint(db, text):
    return footprint_for_statement(db, parse_statement(text))


# ---------------------------------------------------------------------------
# footprint computation
# ---------------------------------------------------------------------------


def test_local_read_locks_scanned_set_and_schema(company):
    fp = footprint(company["db"], "retrieve (Emp1.name)")
    assert fp.shared == {"Emp1", SCHEMA_RESOURCE}
    assert fp.exclusive == frozenset()


def test_unreplicated_join_locks_every_traversed_set(company):
    fp = footprint(company["db"], "retrieve (Emp1.name, Emp1.dept.org.name)")
    assert fp.shared == {"Emp1", "Dept", "Org", SCHEMA_RESOURCE}
    assert fp.exclusive == frozenset()


def test_replicated_read_needs_only_the_scanned_set(company):
    """In-place replication answers the path from hidden fields -- the
    footprint shrinking to the scanned set is the point of replication."""
    db = company["db"]
    db.replicate("Emp1.dept.name")
    fp = footprint(db, "retrieve (Emp1.name, Emp1.dept.name)")
    assert fp.shared == {"Emp1", SCHEMA_RESOURCE}
    assert fp.exclusive == frozenset()


def test_separate_replica_read_share_locks_the_replica_set(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.name", strategy="separate")
    fp = footprint(db, "retrieve (Emp1.name, Emp1.dept.name)")
    assert path.replica_set in fp.shared
    assert "Dept" not in fp.shared  # still no base-set traversal


def test_lazy_path_read_is_exclusive_on_the_source_set(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", lazy=True)
    fp = footprint(db, "retrieve (Emp1.name, Emp1.dept.name)")
    assert "Emp1" in fp.exclusive  # the read drains the queue: writes


def test_local_write_locks_only_its_set(company):
    fp = footprint(company["db"], 'replace (Emp1.salary = 1) where Emp1.name = "alice"')
    assert fp.exclusive == {"Emp1"}
    assert fp.shared == {SCHEMA_RESOURCE}


def test_replicated_field_write_locks_every_referencing_set(company):
    """replace on S.repfield write-locks S, S', and the referencing sets."""
    db = company["db"]
    db.replicate("Emp1.dept.name")
    fp = footprint(db, 'replace (Dept.name = "games") where Dept.name = "toys"')
    assert {"Dept", "Emp1"} <= fp.exclusive
    assert fp.shared == {SCHEMA_RESOURCE}


def test_write_to_unreplicated_field_does_not_fan_out(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    fp = footprint(db, "replace (Dept.budget = 7)")
    assert fp.exclusive == {"Dept"}


def test_separate_replica_write_locks_the_replica_set_too(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.name", strategy="separate")
    fp = footprint(db, 'replace (Dept.name = "games")')
    assert {"Dept", "Emp1", path.replica_set} <= fp.exclusive


def test_two_level_path_write_at_the_top_locks_the_whole_chain(company):
    db = company["db"]
    db.replicate("Emp1.dept.org.name")
    fp = footprint(db, 'replace (Org.name = "initech")')
    assert {"Org", "Dept", "Emp1"} <= fp.exclusive


def test_ref_surgery_locks_the_downstream_sets(company):
    """Rewriting Emp1.dept restructures the path's link entries."""
    db = company["db"]
    db.replicate("Emp1.dept.name")
    base = plan_replace(db, parse_statement("replace (Emp1.salary = 1)"))
    plan = dataclasses.replace(base, assignments=(("dept", None),))
    from repro.server.locks import footprint_for_plan

    fp = footprint_for_plan(db, plan)
    assert {"Emp1", "Dept"} <= fp.exclusive


def test_delete_from_source_set_locks_the_replication_structures(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    fp = footprint(db, 'delete from Emp1 where Emp1.name = "alice"')
    assert {"Emp1", "Dept"} <= fp.exclusive


def test_ddl_and_maintenance_are_exclusive_on_the_schema(company):
    assert ddl_footprint().exclusive == {SCHEMA_RESOURCE}
    assert maintenance_footprint().exclusive == {SCHEMA_RESOURCE}
    # every DML footprint share-locks the same resource, so DDL
    # serializes against all of them
    fp = footprint(company["db"], "retrieve (Emp1.name)")
    assert SCHEMA_RESOURCE in fp.shared


def test_footprint_exclusive_subsumes_shared():
    fp = LockFootprint(shared=frozenset({"a", "b"}), exclusive=frozenset({"b"}))
    assert fp.shared == {"a"}
    assert fp.describe() == "S(a) X(b)"


# ---------------------------------------------------------------------------
# the lock manager
# ---------------------------------------------------------------------------


def S(*names):
    return LockFootprint(shared=frozenset(names))


def X(*names):
    return LockFootprint(exclusive=frozenset(names))


def test_shared_locks_are_compatible():
    lm = LockManager(timeout=1.0)
    a, b = lm.owner("a"), lm.owner("b")
    lm.acquire(a, S("r"))
    lm.acquire(b, S("r"))  # must not block
    assert lm.held_by(a) == {"r": SHARED}
    assert lm.held_by(b) == {"r": SHARED}


def test_exclusive_conflicts_and_times_out():
    lm = LockManager(timeout=0.1)
    a, b = lm.owner("a"), lm.owner("b")
    lm.acquire(a, S("r"))
    with pytest.raises(LockTimeoutError, match="timed out waiting"):
        lm.acquire(b, X("r"))
    assert lm.held_by(b) == {}


def test_timeout_error_names_the_holder():
    lm = LockManager(timeout=0.05)
    a, b = lm.owner("alice"), lm.owner("bob")
    lm.acquire(a, X("r"))
    with pytest.raises(LockTimeoutError, match="alice"):
        lm.acquire(b, S("r"), timeout=0.05)


def test_owner_upgrades_its_own_shared_lock():
    lm = LockManager(timeout=1.0)
    a = lm.owner("a")
    lm.acquire(a, S("r"))
    lm.acquire(a, X("r"))
    assert lm.held_by(a) == {"r": EXCLUSIVE}


def test_footprint_granted_all_or_nothing():
    lm = LockManager(timeout=0.1)
    a, b = lm.owner("a"), lm.owner("b")
    lm.acquire(a, X("r2"))
    with pytest.raises(LockTimeoutError):
        lm.acquire(b, X("r1", "r2"))
    # the free resource was not grabbed while waiting on the busy one
    assert lm.held_by(b) == {}
    lm.release_all(a)
    lm.acquire(b, X("r1", "r2"))
    assert set(lm.held_by(b)) == {"r1", "r2"}


def test_release_wakes_waiters():
    lm = LockManager(timeout=5.0)
    a, b = lm.owner("a"), lm.owner("b")
    lm.acquire(a, X("r"))
    granted = threading.Event()

    def waiter():
        lm.acquire(b, X("r"))
        granted.set()

    thread = threading.Thread(target=waiter)
    thread.start()
    assert not granted.wait(0.1)
    lm.release_all(a)
    assert granted.wait(2.0)
    thread.join()


def test_deadlock_aborts_the_youngest_waiter():
    """a (older txn) and b (younger) form a cycle; b is the victim."""
    lm = LockManager(timeout=5.0)
    a, b = lm.owner("a"), lm.owner("b")
    lm.acquire(a, X("r1"))  # a's txn is born first
    lm.acquire(b, X("r2"))
    outcome = {}

    def older():
        try:
            lm.acquire(a, X("r2"))
            outcome["a"] = "granted"
        except DeadlockError:
            outcome["a"] = "victim"

    thread = threading.Thread(target=older)
    thread.start()

    def younger():
        try:
            lm.acquire(b, X("r1"))  # closes the cycle
            outcome["b"] = "granted"
        except DeadlockError:
            outcome["b"] = "victim"
            lm.release_all(b)  # the victim must let go

    younger()
    thread.join(timeout=5.0)
    assert outcome == {"a": "granted", "b": "victim"}
    assert lm.held_by(a) == {"r1": EXCLUSIVE, "r2": EXCLUSIVE}


def test_deadlock_victim_flagged_while_already_waiting():
    """The cycle closes while the younger txn is parked in wait(); the
    detector must reach across and wake it as the victim."""
    lm = LockManager(timeout=5.0)
    a, b = lm.owner("a"), lm.owner("b")
    lm.acquire(a, X("r1"))
    lm.acquire(b, X("r2"))
    outcome = {}
    b_waiting = threading.Event()

    def younger():
        b_waiting.set()
        try:
            lm.acquire(b, X("r1"))
            outcome["b"] = "granted"
        except DeadlockError:
            outcome["b"] = "victim"
            lm.release_all(b)

    thread = threading.Thread(target=younger)
    thread.start()
    b_waiting.wait(2.0)
    lm.acquire(a, X("r2"))  # closes the cycle; detector picks b
    thread.join(timeout=5.0)
    assert outcome == {"b": "victim"}
    assert lm.held_by(a) == {"r1": EXCLUSIVE, "r2": EXCLUSIVE}


def test_birth_refreshes_per_transaction_not_per_connection():
    """An owner that released everything and starts over is *younger*
    than one that has been holding locks all along."""
    lm = LockManager(timeout=5.0)
    a, b = lm.owner("a"), lm.owner("b")
    lm.acquire(a, X("r1"))        # a: birth 1
    lm.acquire(b, X("junk"))      # b: birth 2
    lm.release_all(b)
    lm.acquire(b, X("r2"))        # b's new txn: birth 3 -- still youngest
    done = {}

    def older():
        lm.acquire(a, X("r2"))
        done["a"] = True

    thread = threading.Thread(target=older)
    thread.start()
    with pytest.raises(DeadlockError):
        lm.acquire(b, X("r1"))
    lm.release_all(b)
    thread.join(timeout=5.0)
    assert done == {"a": True}


def test_lock_metrics_are_recorded():
    registry = MetricsRegistry()
    lm = LockManager(timeout=0.05, metrics=registry)
    a, b = lm.owner("a"), lm.owner("b")
    lm.acquire(a, X("r"))
    with pytest.raises(LockTimeoutError):
        lm.acquire(b, S("r"))
    assert registry.value("lock_waits_total") == 1
    assert registry.value("lock_timeouts_total") == 1
    hist = registry.histogram("lock_wait_seconds")
    assert hist.count() == 1
    assert hist.sum() >= 0.05


def test_deadlock_metric_counts_broken_cycles():
    registry = MetricsRegistry()
    lm = LockManager(timeout=5.0, metrics=registry)
    a, b = lm.owner("a"), lm.owner("b")
    lm.acquire(a, X("r1"))
    lm.acquire(b, X("r2"))

    def older():
        lm.acquire(a, X("r2"))

    thread = threading.Thread(target=older)
    thread.start()
    with pytest.raises(DeadlockError):
        lm.acquire(b, X("r1"))
    lm.release_all(b)
    thread.join(timeout=5.0)
    assert registry.value("deadlocks_total") >= 1


def test_forget_releases_everything():
    lm = LockManager(timeout=0.5)
    a, b = lm.owner("a"), lm.owner("b")
    lm.acquire(a, X("r"))
    lm.forget(a)
    lm.acquire(b, X("r"))  # must not block
    assert lm.held_by(b) == {"r": EXCLUSIVE}
