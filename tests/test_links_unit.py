"""Direct unit tests for link files and link objects."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReplicationError
from repro.replication.links import LinkFile, LinkObject
from repro.storage.manager import StorageManager
from repro.storage.oid import OID


def make_link_file(collapsed=False):
    sm = StorageManager(buffer_frames=16)
    return sm, LinkFile(sm.create_file("links"), collapsed=collapsed)


def oid(i: int) -> OID:
    return OID(2, i, 0)


def test_create_sorts_entries():
    __, lf = make_link_file()
    link_oid = lf.create(oid(99), [oid(3), oid(1), oid(2)])
    assert lf.members(link_oid) == [oid(1), oid(2), oid(3)]
    assert lf.read(link_oid).owner == oid(99)


def test_add_keeps_sorted_and_rejects_duplicates():
    __, lf = make_link_file()
    link_oid = lf.create(oid(9), [oid(5)])
    assert lf.add(link_oid, oid(2))
    assert lf.add(link_oid, oid(7))
    assert not lf.add(link_oid, oid(5))  # already present
    assert lf.members(link_oid) == [oid(2), oid(5), oid(7)]


def test_remove_binary_search_and_empty_flag():
    __, lf = make_link_file()
    link_oid = lf.create(oid(9), [oid(1), oid(2)])
    removed, empty = lf.remove(link_oid, oid(1))
    assert removed and not empty
    removed, empty = lf.remove(link_oid, oid(1))
    assert not removed
    removed, empty = lf.remove(link_oid, oid(2))
    assert removed and empty
    assert lf.read(link_oid).is_empty()


def test_contains():
    __, lf = make_link_file()
    link_oid = lf.create(oid(9), [oid(4), oid(6)])
    assert lf.contains(link_oid, oid(4))
    assert not lf.contains(link_oid, oid(5))


def test_delete_and_scan():
    __, lf = make_link_file()
    a = lf.create(oid(1), [oid(10)])
    b = lf.create(oid(2), [oid(20)])
    lf.delete(a)
    scanned = list(lf.scan())
    assert [link_oid for link_oid, __lo in scanned] == [b]


def test_wrong_file_link_oid_rejected():
    __, lf = make_link_file()
    with pytest.raises(ReplicationError):
        lf.read(OID(999, 0, 0))


def test_collapsed_entries_are_tagged_pairs():
    __, lf = make_link_file(collapsed=True)
    pairs = [(oid(3), oid(30)), (oid(1), oid(10)), (oid(2), oid(10))]
    link_oid = lf.create(oid(9), pairs)
    assert lf.members(link_oid) == sorted(pairs)
    assert lf.add(link_oid, (oid(4), oid(10)))
    removed, __ = lf.remove(link_oid, (oid(1), oid(10)))
    assert removed


def test_large_link_object_grows_past_a_page():
    __, lf = make_link_file()
    link_oid = lf.create(oid(0), [])
    for i in range(1200):
        assert lf.add(link_oid, oid(i))
    assert len(lf.members(link_oid)) == 1200
    # still addressable through the original (stable) link OID
    assert lf.contains(link_oid, oid(600))


def test_link_object_is_empty():
    assert LinkObject(oid(1), []).is_empty()
    assert not LinkObject(oid(1), [oid(2)]).is_empty()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 5000), unique=True, min_size=1, max_size=200))
def test_property_members_match_sorted_set(values):
    __, lf = make_link_file()
    link_oid = lf.create(oid(9999), [])
    for v in values:
        lf.add(link_oid, oid(v))
    expected = sorted(oid(v) for v in values)
    assert lf.members(link_oid) == expected
    for v in values[::3]:
        lf.remove(link_oid, oid(v))
        expected.remove(oid(v))
    assert lf.members(link_oid) == expected
