"""DDL parser tests: the paper's Figure 1 schema in source form."""

import pytest

from repro import Database
from repro.errors import ParseError
from repro.objects.types import FieldKind
from repro.schema.parser import (
    execute_ddl,
    parse_type_definition,
    run_script,
    split_script,
)

FIGURE1 = """
define type ORG (
    name:   char[20],
    budget: int
)

define type DEPT (
    name:   char[20],
    budget: int,
    org:    ref ORG
)

define type EMP (
    name:   char[20],
    age:    int,
    salary: int,
    dept:   ref DEPT
)

create Org:  {own ref ORG}
create Dept: {own ref DEPT}
create Emp1: {own ref EMP}
create Emp2: {own ref EMP}
"""


def test_parse_type_definition():
    t = parse_type_definition(
        "define type EMP ( name: char[20], age: int, score: float, dept: ref DEPT )"
    )
    assert t.name == "EMP"
    assert [f.kind for f in t.fields] == [
        FieldKind.CHAR,
        FieldKind.INT,
        FieldKind.FLOAT,
        FieldKind.REF,
    ]
    assert t.field_def("name").size == 20
    assert t.field_def("dept").ref_type == "DEPT"


def test_split_script_handles_multiline_types():
    statements = split_script(FIGURE1)
    assert len(statements) == 7
    assert statements[0].startswith("define type ORG")
    assert statements[-1] == "create Emp2: {own ref EMP}"


def test_split_script_strips_comments():
    statements = split_script("create A: {own ref T} -- comment\n\n-- whole line\ncreate B: {own ref T}")
    assert statements == ["create A: {own ref T}", "create B: {own ref T}"]


def test_figure1_schema_builds():
    db = Database()
    run_script(db, FIGURE1)
    assert db.catalog.set_names() == ["Dept", "Emp1", "Emp2", "Org"]
    assert db.catalog.get_set("Emp1").type_def.field_def("dept").ref_type == "DEPT"


def test_replicate_statements():
    db = Database()
    run_script(db, FIGURE1)
    execute_ddl(db, "replicate Emp1.dept.name")
    execute_ddl(db, "replicate Emp1.dept.budget using separate")
    execute_ddl(db, "replicate Emp1.dept.org.name collapsed")
    execute_ddl(db, "replicate Emp1.dept.org.budget lazy")
    paths = db.catalog.paths
    assert paths["Emp1.dept.name"].strategy.value == "inplace"
    assert paths["Emp1.dept.budget"].strategy.value == "separate"
    assert paths["Emp1.dept.org.name"].collapsed
    assert paths["Emp1.dept.org.budget"].lazy


def test_build_btree_statements():
    db = Database()
    run_script(db, FIGURE1)
    execute_ddl(db, "replicate Emp1.dept.org.name")
    execute_ddl(db, "build btree on Emp1.salary")
    execute_ddl(db, "build clustered btree on Emp1.age")
    execute_ddl(db, "build btree on Emp1.dept.org.name")
    infos = db.catalog.indexes_on_set("Emp1")
    assert len(infos) == 3
    assert any(i.clustered for i in infos)
    assert any(i.path_text == "Emp1.dept.org.name" for i in infos)


def test_full_script_with_queries():
    db = Database()
    script = FIGURE1 + """
replicate Emp1.dept.name

retrieve (Emp1.name)
"""
    results = run_script(db, script)
    assert len(results) == 1
    assert results[0].rows == []


def test_paper_section3_example_end_to_end():
    """The paper's motivating query, verbatim."""
    db = Database()
    run_script(db, FIGURE1)
    org = db.insert("Org", {"name": "acme", "budget": 1})
    dept = db.insert("Dept", {"name": "research", "budget": 2, "org": org})
    db.insert("Emp1", {"name": "big", "age": 50, "salary": 150_000, "dept": dept})
    db.insert("Emp1", {"name": "small", "age": 25, "salary": 50_000, "dept": dept})
    execute_ddl(db, "replicate Emp1.dept.name")
    res = db.execute(
        "retrieve (Emp1.name, Emp1.salary, Emp1.dept.name) where Emp1.salary > 100000"
    )
    assert res.rows == [("big", 150_000, "research")]
    assert "replicated" in res.plan  # the functional join was eliminated


@pytest.mark.parametrize(
    "bad",
    [
        "define type X ( )",
        "define type X ( a: blob )",
        "define type X ( a char[5] )",
        "create X: {ref T}",
        "replicate Emp1.dept.name using magic",
        "build hash on Emp1.salary",
        "drop everything",
    ],
)
def test_ddl_parse_errors(bad):
    db = Database()
    with pytest.raises(ParseError):
        if bad.startswith("drop"):
            run_script(db, bad)
        else:
            execute_ddl(db, bad)
