"""EXPLAIN ANALYZE: per-operator rows + physical I/O on executed plans."""

import random

from repro.query.analyze import operators_total_io, render_analyze
from repro.workloads import WorkloadConfig, build_model_database


def _op(result, name):
    matches = [op for op in result.operators if op.name == name]
    assert matches, f"no operator {name!r} in {[o.name for o in result.operators]}"
    return matches[0]


def test_plain_execution_has_no_operator_stats(company):
    db = company["db"]
    result = db.execute("retrieve (Emp1.name)", materialize=False)
    assert result.operators is None


def test_analyze_operators_sum_to_total_io(company):
    db = company["db"]
    db.cold_cache()
    result = db.explain_analyze(
        "retrieve (Emp1.name, Emp1.dept.name)", materialize=False
    )
    assert result.operators is not None
    assert operators_total_io(result.operators) == result.io.total_io
    scan = _op(result, "scan")
    assert scan.rows == 6
    join = _op(result, "functional_join")
    assert join.rows == 6
    assert join.physical_reads > 0
    # per-hop children carry the same I/O (contained in the parent)
    assert [c.name for c in join.children] == ["hop dept"]
    assert join.children[0].physical_reads == join.physical_reads


def test_analyze_replicated_vs_unreplicated_path(company):
    """The acceptance scenario: the same path query, with and without
    replication, each decomposing exactly into its operators."""
    db = company["db"]
    db.cold_cache()
    plain = db.explain_analyze("retrieve (Emp1.dept.name)", materialize=False)
    assert operators_total_io(plain.operators) == plain.io.total_io
    assert _op(plain, "functional_join").physical_reads > 0

    db.replicate("Emp1.dept.name")
    db.cold_cache()
    replicated = db.explain_analyze("retrieve (Emp1.dept.name)",
                                    materialize=False)
    assert operators_total_io(replicated.operators) == replicated.io.total_io
    # the hidden-field read does no extra I/O: the join cost disappeared
    assert _op(replicated, "replicated_read").physical_reads == 0
    assert replicated.io.total_io < plain.io.total_io


def test_analyze_covers_refresh_sort_and_materialize(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", lazy=True)
    db.update("Dept", company["depts"]["toys"], {"name": "bricks"})
    db.cold_cache()
    result = db.explain_analyze(
        "retrieve (Emp1.name, Emp1.dept.name) order by Emp1.salary"
    )
    names = [op.name for op in result.operators]
    assert names[0] == "refresh"
    assert "sort_key" in names and "materialize" in names
    assert _op(result, "refresh").rows >= 1
    assert _op(result, "materialize").physical_writes > 0
    assert operators_total_io(result.operators) == result.io.total_io


def test_analyze_two_level_path_has_two_hops(company):
    db = company["db"]
    db.cold_cache()
    result = db.explain_analyze("retrieve (Emp1.dept.org.name)",
                                materialize=False)
    join = _op(result, "functional_join")
    assert [c.name for c in join.children] == ["hop dept", "hop org"]
    assert sum(c.physical_reads for c in join.children) == join.physical_reads
    assert operators_total_io(result.operators) == result.io.total_io


def test_analyze_update_statement(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    db.cold_cache()
    result = db.explain_analyze(
        "replace (Dept.name = 'bricks') where Dept.budget <= 200"
    )
    scan = _op(result, "scan")
    update = _op(result, "update")
    assert scan.rows == update.rows == 2
    # writes are deferred to the pool; the update op still did the reads
    assert update.physical_reads > 0
    assert operators_total_io(result.operators) == result.io.total_io


def test_analyze_delete_statement(company):
    db = company["db"]
    db.cold_cache()
    result = db.explain_analyze("delete from Emp1 where Emp1.salary >= 90000")
    assert _op(result, "delete").rows == 2
    assert operators_total_io(result.operators) == result.io.total_io


def test_analyze_does_not_change_results_or_io(company):
    db = company["db"]
    query = "retrieve (Emp1.name, Emp1.dept.name) where Emp1.age >= 32"
    db.cold_cache()
    plain = db.execute(query, materialize=False)
    db.cold_cache()
    analyzed = db.execute(query, materialize=False, analyze=True)
    assert analyzed.rows == plain.rows
    assert analyzed.io == plain.io


def test_render_analyze_output(company):
    db = company["db"]
    db.cold_cache()
    result = db.explain_analyze("retrieve (Emp1.dept.name)", materialize=False)
    text = render_analyze(result)
    assert "operator" in text and "scan" in text and "total" in text
    plain = db.execute("retrieve (Emp1.name)", materialize=False)
    assert "analyze=True" in render_analyze(plain)


def test_analyze_on_model_workload_matches_total():
    """Cold-cache path query over the two-set schema: the functional-join
    operator carries the dominant share and everything sums exactly."""
    cfg = WorkloadConfig(n_s=200, f=2, f_r=0.02, f_s=0.01, strategy="none",
                         seed=9)
    mdb = build_model_database(cfg)
    rng = random.Random(3)
    lo = rng.randrange(0, cfg.n_r - 5)
    mdb.db.cold_cache()
    result = mdb.db.explain_analyze(
        f"retrieve (R.field_r, R.sref.repfield) "
        f"where R.field_r >= {lo} and R.field_r <= {lo + 4}"
    )
    assert operators_total_io(result.operators) == result.io.total_io
    join = [op for op in result.operators if op.name == "functional_join"][0]
    assert join.rows == 5
    assert join.physical_reads > 0
