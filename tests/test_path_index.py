"""Gemstone path-index comparator tests (Section 7.2)."""

import pytest

from repro.errors import InvalidPathError
from repro.index.path_index import GemstonePathIndex


def test_lookup_one_level(company):
    db = company["db"]
    idx = GemstonePathIndex(db, "Emp1.dept.name")
    assert idx.component_count == 2
    got = idx.lookup("toys")
    assert got == sorted([company["emps"]["alice"], company["emps"]["bob"]])
    assert idx.lookup("nothere") == []


def test_lookup_two_level(company):
    db = company["db"]
    idx = GemstonePathIndex(db, "Emp1.dept.org.name")
    assert idx.component_count == 3
    got = idx.lookup("acme")
    expected = sorted(company["emps"][n] for n in ("alice", "bob", "carol", "dave"))
    assert got == expected


def test_rejects_all_terminal(company):
    with pytest.raises(InvalidPathError):
        GemstonePathIndex(company["db"], "Emp1.dept.all")


def test_broken_chain_objects_excluded(company):
    db = company["db"]
    db.insert("Emp1", {"name": "nix", "age": 1, "salary": 1, "dept": None})
    idx = GemstonePathIndex(db, "Emp1.dept.name")
    assert all("nix" != db.get("Emp1", oid).values["name"] for oid in idx.lookup("toys"))


def test_replicated_index_lookup_costs_less_io(company):
    """The paper's point: the Gemstone lookup traverses one tree per
    component, the replicated-data index traverses one tree total."""
    db = company["db"]
    # many orgs, selective lookups: trees get real size but a lookup
    # touches few entries, isolating the traversal cost
    orgs = [db.insert("Org", {"name": f"org{i:04d}", "budget": i}) for i in range(300)]
    depts = [
        db.insert("Dept", {"name": f"d{i}", "budget": i, "org": orgs[i % 300]})
        for i in range(600)
    ]
    for i in range(1200):
        db.insert(
            "Emp1",
            {"name": f"e{i}", "age": 1, "salary": 1, "dept": depts[i % len(depts)]},
        )
    gem = GemstonePathIndex(db, "Emp1.dept.org.name")
    db.replicate("Emp1.dept.org.name")
    info = db.build_index("Emp1.dept.org.name")
    probes = [f"org{i:04d}" for i in (3, 77, 123, 200, 250)]
    db.cold_cache()
    gem_io = db.measure(lambda: [gem.lookup(p) for p in probes])
    db.cold_cache()
    rep_io = db.measure(lambda: [info.index.lookup(p) for p in probes])
    for probe in probes:
        assert sorted(info.index.lookup(probe)) == gem.lookup(probe)
    assert rep_io.physical_reads < gem_io.physical_reads
