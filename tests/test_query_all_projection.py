"""``retrieve (Set.all)`` projection expansion."""



def test_set_all_expands_visible_fields(company):
    db = company["db"]
    res = db.execute("retrieve (Emp1.all) where Emp1.name = 'alice'")
    assert res.columns == ("Emp1.name", "Emp1.age", "Emp1.salary", "Emp1.dept")
    row = res.rows[0]
    assert row[0] == "alice" and row[2] == 50_000
    assert row[3] == company["depts"]["toys"]


def test_path_all_expands_target_type(company):
    db = company["db"]
    res = db.execute("retrieve (Emp1.name, Emp1.dept.all) where Emp1.name = 'erin'")
    assert res.columns == (
        "Emp1.name", "Emp1.dept.name", "Emp1.dept.budget", "Emp1.dept.org",
    )
    assert res.rows == [("erin", "shoes", 300, company["orgs"]["globex"])]


def test_path_all_served_by_full_object_replication(company):
    db = company["db"]
    db.replicate("Emp1.dept.all")
    res = db.execute("retrieve (Emp1.dept.all) where Emp1.name = 'alice'")
    assert "replicated" in res.plan
    assert "join" not in res.plan
    assert res.rows == [("toys", 100, company["orgs"]["acme"])]


def test_all_never_exposes_hidden_fields(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    res = db.execute("retrieve (Emp1.all) where Emp1.name = 'alice'")
    assert all("__rep" not in col for col in res.columns)
