"""End-to-end query tests: planner choices + executor results + I/O."""

import pytest

from repro.errors import PlanningError
from repro.query.runner import explain_text


def names(result):
    return sorted(row[0] for row in result.rows)


# ---------------------------------------------------------------------------
# retrieval basics
# ---------------------------------------------------------------------------


def test_retrieve_all(company):
    db = company["db"]
    res = db.execute("retrieve (Emp1.name, Emp1.salary)")
    assert len(res) == 6
    assert res.columns == ("Emp1.name", "Emp1.salary")


def test_retrieve_with_filter(company):
    db = company["db"]
    res = db.execute("retrieve (Emp1.name) where Emp1.salary > 70000")
    assert names(res) == ["dave", "erin", "frank"]


def test_retrieve_functional_join(company):
    db = company["db"]
    res = db.execute("retrieve (Emp1.name, Emp1.dept.name) where Emp1.name = 'alice'")
    assert res.rows == [("alice", "toys")]
    assert "join(dept.name)" in res.plan


def test_retrieve_two_level_join(company):
    db = company["db"]
    res = db.execute("retrieve (Emp1.name, Emp1.dept.org.name) where Emp1.name = 'erin'")
    assert res.rows == [("erin", "globex")]


def test_retrieve_null_ref_join_gives_none(company):
    db = company["db"]
    db.insert("Emp1", {"name": "nix", "age": 1, "salary": 1, "dept": None})
    res = db.execute("retrieve (Emp1.dept.name) where Emp1.name = 'nix'")
    assert res.rows == [(None,)]


def test_index_scan_used_when_available(company):
    db = company["db"]
    db.build_index("Emp1.salary")
    plan = explain_text(db, "retrieve (Emp1.name) where Emp1.salary > 70000")
    assert "IndexScan" in plan
    res = db.execute("retrieve (Emp1.name) where Emp1.salary > 70000")
    assert names(res) == ["dave", "erin", "frank"]


def test_index_scan_ops(company):
    db = company["db"]
    db.build_index("Emp1.salary")
    cases = [
        ("= 50000", ["alice"]),
        ("< 60000", ["alice"]),
        ("<= 60000", ["alice", "bob"]),
        (">= 90000", ["erin", "frank"]),
        ("> 90000", ["frank"]),
    ]
    for cond, expected in cases:
        res = db.execute(f"retrieve (Emp1.name) where Emp1.salary {cond}")
        assert names(res) == expected, cond


def test_filescan_filter_on_string(company):
    db = company["db"]
    res = db.execute("retrieve (Emp1.salary) where Emp1.name = 'carol'")
    assert res.rows == [(70000,)]


# ---------------------------------------------------------------------------
# replication-aware planning
# ---------------------------------------------------------------------------


def test_inplace_replication_eliminates_join(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    plan = explain_text(db, "retrieve (Emp1.dept.name)")
    assert "replicated(Emp1.dept.name" in plan
    res = db.execute("retrieve (Emp1.name, Emp1.dept.name) where Emp1.name = 'alice'")
    assert res.rows == [("alice", "toys")]


def test_inplace_read_costs_less_than_join(company):
    db = company["db"]
    # Spread departments over many pages so the join is not free.
    import random

    rng = random.Random(3)
    depts = [
        db.insert("Dept", {"name": f"d{i}", "budget": i, "org": None}) for i in range(400)
    ]
    for i in range(150):
        db.insert(
            "Emp1",
            {"name": f"e{i}", "age": 1, "salary": 200_000, "dept": rng.choice(depts)},
        )
    query = "retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary >= 200000"
    db.cold_cache()
    res_join = db.execute(query)
    join_io = res_join.io.total_io
    db.replicate("Emp1.dept.name")
    db.cold_cache()
    res_rep = db.execute(query)
    assert res_rep.rows == res_join.rows
    assert res_rep.io.total_io < join_io


def test_separate_replication_joins_replica_set(company):
    db = company["db"]
    db.replicate("Emp1.dept.org.name", strategy="separate")
    plan = explain_text(db, "retrieve (Emp1.dept.org.name)")
    assert "replica(Emp1.dept.org.name" in plan
    res = db.execute("retrieve (Emp1.name, Emp1.dept.org.name) where Emp1.name = 'erin'")
    assert res.rows == [("erin", "globex")]


def test_collapsed_ref_replication_shortens_join(company):
    db = company["db"]
    db.replicate("Emp1.dept.org")  # replicate the reference
    plan = explain_text(db, "retrieve (Emp1.dept.org.name)")
    assert "jump(Emp1.dept.org" in plan
    res = db.execute("retrieve (Emp1.name, Emp1.dept.org.name) where Emp1.name = 'bob'")
    assert res.rows == [("bob", "acme")]


def test_full_object_path_serves_every_field(company):
    db = company["db"]
    db.replicate("Emp1.dept.all")
    for field, expected in [("name", "toys"), ("budget", 100)]:
        res = db.execute(f"retrieve (Emp1.dept.{field}) where Emp1.name = 'alice'")
        assert res.rows == [(expected,)]
        assert "replicated" in res.plan


def test_lazy_path_refreshes_before_read(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", lazy=True)
    db.update("Dept", company["depts"]["toys"], {"name": "games"})
    res = db.execute("retrieve (Emp1.dept.name) where Emp1.name = 'alice'")
    assert res.rows == [("games",)]  # refreshed on read
    assert "refresh(" in res.plan


def test_filter_on_replicated_path(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    res = db.execute("retrieve (Emp1.name) where Emp1.dept.name = 'toys'")
    assert names(res) == ["alice", "bob"]


def test_filter_on_unreplicated_path_rejected(company):
    db = company["db"]
    with pytest.raises(PlanningError):
        db.execute("retrieve (Emp1.name) where Emp1.dept.name = 'toys'")


def test_index_on_replicated_path_lookup(company):
    db = company["db"]
    db.replicate("Emp1.dept.org.name")
    db.build_index("Emp1.dept.org.name")
    plan = explain_text(db, "retrieve (Emp1.name) where Emp1.dept.org.name = 'acme'")
    assert "IndexScan" in plan
    res = db.execute("retrieve (Emp1.name) where Emp1.dept.org.name = 'acme'")
    assert names(res) == ["alice", "bob", "carol", "dave"]
    # index follows propagation
    db.update("Dept", company["depts"]["toys"], {"org": company["orgs"]["globex"]})
    res = db.execute("retrieve (Emp1.name) where Emp1.dept.org.name = 'acme'")
    assert names(res) == ["carol", "dave"]
    db.verify()


# ---------------------------------------------------------------------------
# replace / delete statements
# ---------------------------------------------------------------------------


def test_replace_statement_propagates(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.name")
    res = db.execute("replace (Dept.name = 'games') where Dept.budget = 100")
    assert len(res) == 1
    obj = db.get("Emp1", company["emps"]["alice"])
    assert obj.values[path.hidden_field_for("name")] == "games"
    db.verify()


def test_replace_via_index(company):
    db = company["db"]
    db.build_index("Dept.budget")
    res = db.execute("replace (Dept.budget = 999) where Dept.budget <= 200")
    assert len(res) == 2
    assert "IndexScan" in res.plan


def test_replace_rejects_hidden_field(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.name")
    with pytest.raises(PlanningError):
        db.execute(f"replace (Emp1.{path.hidden_fields[0]} = 'x')")


def test_delete_statement(company):
    db = company["db"]
    res = db.execute("delete from Emp1 where Emp1.salary >= 90000")
    assert len(res) == 2
    assert db.catalog.get_set("Emp1").count() == 4


def test_query_io_is_reported(company):
    db = company["db"]
    db.cold_cache()
    res = db.execute("retrieve (Emp1.name)")
    assert res.io.physical_reads >= 1


def test_materialize_false_skips_output_file(company):
    db = company["db"]
    db.cold_cache()
    with_t = db.execute("retrieve (Emp1.name)").io.physical_writes
    db.cold_cache()
    without_t = db.execute("retrieve (Emp1.name)", materialize=False).io.physical_writes
    assert without_t <= with_t
