"""Hypothesis stateful testing: the Database as a rule-based machine.

Rules cover object DML, reference rewiring, path creation/drop with mixed
strategies, index creation, and queries; after every step the machine
checks the replication invariants (``verify``) and, periodically, query
equivalence against an in-memory Python model of the data.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, precondition, rule

from repro import Database
from repro.errors import IntegrityError

from tests.conftest import define_employee_schema

PATHS = [
    ("Emp1.dept.name", {"strategy": "inplace"}),
    ("Emp1.dept.budget", {"strategy": "separate"}),
    ("Emp1.dept.org.name", {"strategy": "inplace"}),
    ("Emp1.dept.org.budget", {"strategy": "separate"}),
]


class DatabaseMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.db = Database()
        define_employee_schema(self.db)
        self.orgs = [
            self.db.insert("Org", {"name": f"o{i}", "budget": i}) for i in range(3)
        ]
        self.depts = [
            self.db.insert("Dept", {"name": f"d{i}", "budget": i, "org": self.orgs[i % 3]})
            for i in range(4)
        ]
        self.emps = {}
        self.model = {}  # emp oid -> dict of visible fields
        self.live_paths = set()
        self.counter = 0
        self.steps_since_check = 0

    # -- DML rules -----------------------------------------------------------

    @rule(dept=st.integers(0, 3), salary=st.integers(0, 10**6))
    def insert_emp(self, dept, salary):
        self.counter += 1
        values = {
            "name": f"e{self.counter}",
            "age": 20 + self.counter % 50,
            "salary": salary,
            "dept": self.depts[dept],
        }
        oid = self.db.insert("Emp1", values)
        self.emps[oid] = None
        self.model[oid] = dict(values)

    @precondition(lambda self: self.emps)
    @rule(pick=st.integers(0, 10**6))
    def delete_emp(self, pick):
        oid = list(self.emps)[pick % len(self.emps)]
        self.db.delete("Emp1", oid)
        del self.emps[oid]
        del self.model[oid]

    @precondition(lambda self: self.emps)
    @rule(pick=st.integers(0, 10**6), dept=st.integers(0, 3))
    def move_emp(self, pick, dept):
        oid = list(self.emps)[pick % len(self.emps)]
        self.db.update("Emp1", oid, {"dept": self.depts[dept]})
        self.model[oid]["dept"] = self.depts[dept]

    @rule(dept=st.integers(0, 3), name=st.integers(0, 99))
    def rename_dept(self, dept, name):
        self.db.update("Dept", self.depts[dept], {"name": f"dd{name}"})

    @rule(dept=st.integers(0, 3), org=st.integers(0, 2))
    def move_dept(self, dept, org):
        self.db.update("Dept", self.depts[dept], {"org": self.orgs[org]})

    @rule(org=st.integers(0, 2), budget=st.integers(0, 10**6))
    def rebudget_org(self, org, budget):
        self.db.update("Org", self.orgs[org], {"budget": budget})

    # -- schema rules ---------------------------------------------------------

    @rule(which=st.integers(0, 3))
    def add_path(self, which):
        text, kwargs = PATHS[which]
        if text in self.live_paths:
            return
        self.db.replicate(text, **kwargs)
        self.live_paths.add(text)

    @precondition(lambda self: self.live_paths)
    @rule(pick=st.integers(0, 10**6))
    def drop_path(self, pick):
        text = sorted(self.live_paths)[pick % len(self.live_paths)]
        self.db.drop_replication(text)
        self.live_paths.remove(text)

    # -- integrity rules ---------------------------------------------------------

    @rule(dept=st.integers(0, 3))
    def deleting_referenced_dept_is_refused(self, dept):
        target = self.depts[dept]
        referenced = any(v["dept"] == target for v in self.model.values())
        if referenced and self.live_paths:
            on_path = any(p.startswith("Emp1.dept") for p in self.live_paths)
            if on_path:
                try:
                    self.db.delete("Dept", target)
                    raise AssertionError("referenced department was deleted")
                except IntegrityError:
                    pass

    # -- invariants -----------------------------------------------------------------

    @invariant()
    def replication_consistent(self):
        self.db.verify()

    @invariant()
    def queries_match_model(self):
        # checking every step is slow; sample every few steps
        self.steps_since_check += 1
        if self.steps_since_check < 4:
            return
        self.steps_since_check = 0
        got = dict(
            (row[0], row[1])
            for row in self.db.execute(
                "retrieve (Emp1.name, Emp1.salary)", materialize=False
            ).rows
        )
        want = {v["name"]: v["salary"] for v in self.model.values()}
        assert got == want
        if any(p == "Emp1.dept.name" in self.live_paths for p in self.live_paths):
            rows = self.db.execute(
                "retrieve (Emp1.name, Emp1.dept.name)", materialize=False
            ).rows
            dept_names = {
                oid: self.db.get("Dept", v["dept"]).values["name"]
                for oid, v in self.model.items()
            }
            want_pairs = sorted(
                (v["name"], dept_names[oid]) for oid, v in self.model.items()
            )
            assert sorted(rows) == want_pairs


TestDatabaseMachine = DatabaseMachine.TestCase
TestDatabaseMachine.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)
