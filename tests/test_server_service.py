"""The TCP server end to end: handshake, statements, admission, drain."""

import socket
import struct

import pytest

from repro.errors import RemoteError
from repro.server import connect
from repro.server.client import ClientResult
from repro.server.service import Server


@pytest.fixture()
def server(company):
    srv = Server(company["db"], max_connections=8, workers=2,
                 queue_depth=8, lock_timeout=2.0).start()
    yield srv
    srv.shutdown()


def test_handshake_ping_and_statement(server):
    with connect(*server.address) as client:
        assert client.session_id >= 1
        assert client.ping()
        result = client.execute("retrieve (Emp1.name, Emp1.dept.name)")
        assert isinstance(result, ClientResult)
        assert ("alice", "toys") in result.rows
        assert result.columns == ("Emp1.name", "Emp1.dept.name")
        assert result.io.total_io >= 0 and result.plan


def test_write_propagates_through_replication_over_the_wire(server):
    with connect(*server.address) as client:
        client.execute("replicate Emp1.dept.name")
        client.execute('replace (Dept.name = "games") where Dept.name = "toys"')
        rows = client.execute("retrieve (Emp1.name, Emp1.dept.name)").rows
        assert ("alice", "games") in rows and ("bob", "games") in rows
        assert "invariants hold" in client.meta("verify")


def test_transactions_and_error_codes(server):
    with connect(*server.address) as client:
        client.begin()
        client.execute("replace (Emp1.salary = 1)")
        client.commit()
        with pytest.raises(RemoteError) as info:
            client.execute("retrieve (Nope.name)")
        assert info.value.code == "engine_error"
        with pytest.raises(RemoteError) as info:
            client.execute("what even is this")
        assert info.value.code == "parse_error"
        # the connection survived both errors
        assert client.ping()


def test_lock_timeout_surfaces_with_its_code(server):
    with connect(*server.address) as holder, connect(*server.address) as waiter:
        holder.begin()
        holder.execute("replace (Emp1.salary = 1)")  # X(Emp1), held
        with pytest.raises(RemoteError) as info:
            waiter.execute("replace (Emp1.salary = 2)")
        assert info.value.code == "lock_timeout"
        holder.commit()
        waiter.execute("replace (Emp1.salary = 2)")  # now free


def test_connection_limit_rejected_with_server_busy(company):
    server = Server(company["db"], max_connections=1).start()
    try:
        with connect(*server.address) as client:
            assert client.ping()
            with pytest.raises(RemoteError) as info:
                connect(*server.address)
            assert info.value.code == "server_busy"
        # the slot frees up once the first client leaves
        deadline = 50
        for __ in range(deadline):
            try:
                extra = connect(*server.address, timeout=1.0)
                break
            except RemoteError:
                import time

                time.sleep(0.05)
        else:
            pytest.fail("slot never freed")
        extra.close()
    finally:
        server.shutdown()


def test_damaged_frame_gets_error_then_close(server):
    sock = socket.create_connection(server.address, timeout=2.0)
    try:
        from repro.server import protocol

        protocol.check_handshake(protocol.read_frame(sock))
        payload = b'{"id": 1, "kind": "ping"}'
        sock.sendall(struct.pack(">II", len(payload), 12345) + payload)  # bad crc
        response = protocol.read_frame(sock)
        assert response["ok"] is False
        assert response["error"]["code"] == "protocol_error"
        # the server closed the poisoned stream
        assert sock.recv(1) == b""
    finally:
        sock.close()


def test_meta_commands_over_the_wire(server):
    with connect(*server.address) as client:
        assert "Emp1" in client.meta("describe")
        assert "physical reads" in client.meta("stats")
        assert "lock_waits_total" in client.meta("stats", "prom")
        stats = client.stats()
        assert stats["connections"] == 1
        assert stats["max_connections"] == 8
        assert stats["sets"] >= 4


def test_request_metrics_by_kind(server):
    with connect(*server.address) as client:
        client.ping()
        client.execute("retrieve (Emp1.name)")
        metrics = server.db.telemetry.metrics
        assert metrics.value("server_requests_total", kind="ping") >= 1
        assert metrics.value("server_requests_total", kind="statement") >= 1
        assert metrics.value("server_connections_total") >= 1


def test_shutdown_drains_and_is_idempotent(company):
    server = Server(company["db"]).start()
    client = connect(*server.address)
    assert client.ping()
    assert "draining" in client.shutdown()
    assert server.wait(10.0)
    server.shutdown()  # second call returns immediately
    # new connections are refused after drain
    with pytest.raises(OSError):
        socket.create_connection(server.address, timeout=0.5)


def test_sessions_closed_on_disconnect_release_locks(server):
    client = connect(*server.address)
    client.begin()
    client.execute("replace (Emp1.salary = 3)")
    client.close()  # dies mid-transaction
    with connect(*server.address) as other:
        # must not block on the dead session's X(Emp1)
        other.execute("replace (Emp1.salary = 4)")
