"""Wire-protocol framing: round trips, damage detection, error shapes."""

import socket
import struct
import zlib

import pytest

from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    ParseError,
    ProtocolError,
    ReproError,
    ServerBusyError,
)
from repro.server import protocol


def _pair():
    a, b = socket.socketpair()
    a.settimeout(2.0)
    b.settimeout(2.0)
    return a, b


def test_frame_round_trip():
    a, b = _pair()
    obj = {"id": 7, "kind": "statement", "statement": "retrieve (S.x)"}
    protocol.write_frame(a, obj)
    assert protocol.read_frame(b) == obj
    a.close()
    b.close()


def test_frame_round_trip_unicode_and_nesting():
    a, b = _pair()
    obj = {"id": 1, "result": {"rows": [["ünïcode", 3.5, None, True]]}}
    protocol.write_frame(a, obj)
    assert protocol.read_frame(b) == obj
    a.close()
    b.close()


def test_corrupted_payload_fails_crc():
    a, b = _pair()
    frame = bytearray(protocol.encode_frame({"id": 1, "kind": "ping"}))
    frame[-1] ^= 0xFF  # flip a payload byte; the crc must catch it
    a.sendall(bytes(frame))
    with pytest.raises(ProtocolError, match="checksum"):
        protocol.read_frame(b)
    a.close()
    b.close()


def test_corrupted_length_rejected_before_allocation():
    a, b = _pair()
    a.sendall(struct.pack(">II", protocol.MAX_FRAME_BYTES + 1, 0))
    with pytest.raises(ProtocolError, match="implausible frame length"):
        protocol.read_frame(b)
    a.close()
    b.close()


def test_truncated_frame_detected():
    a, b = _pair()
    frame = protocol.encode_frame({"id": 1, "kind": "ping"})
    a.sendall(frame[: len(frame) - 3])
    a.close()
    with pytest.raises(ProtocolError, match="mid-frame"):
        protocol.read_frame(b)
    b.close()


def test_clean_close_between_frames_is_reset_not_protocol_error():
    a, b = _pair()
    a.close()
    with pytest.raises(ConnectionResetError):
        protocol.read_frame(b)
    b.close()


def test_non_json_payload_rejected():
    a, b = _pair()
    payload = b"\xff\xfenot json"
    a.sendall(struct.pack(">II", len(payload), zlib.crc32(payload)) + payload)
    with pytest.raises(ProtocolError, match="not JSON"):
        protocol.read_frame(b)
    a.close()
    b.close()


def test_non_object_payload_rejected():
    a, b = _pair()
    payload = b"[1, 2, 3]"
    a.sendall(struct.pack(">II", len(payload), zlib.crc32(payload)) + payload)
    with pytest.raises(ProtocolError, match="not a JSON object"):
        protocol.read_frame(b)
    a.close()
    b.close()


def test_handshake_checks_magic_and_version():
    protocol.check_handshake(protocol.handshake(3))
    with pytest.raises(ProtocolError, match="not a repro server"):
        protocol.check_handshake({"v": 99, "magic": protocol.MAGIC})
    with pytest.raises(ProtocolError):
        protocol.check_handshake({"v": protocol.VERSION, "magic": "HTTP/1.1"})


def test_rejected_handshake_raises_remote_error():
    from repro.errors import RemoteError

    frame = protocol.error_response(0, ServerBusyError("full"),
                                    code="server_busy")
    with pytest.raises(RemoteError) as info:
        protocol.check_handshake(frame)
    assert info.value.code == "server_busy"


@pytest.mark.parametrize("exc,code", [
    (LockTimeoutError("t"), "lock_timeout"),
    (DeadlockError("d"), "deadlock"),
    (ServerBusyError("b"), "server_busy"),
    (ProtocolError("p"), "protocol_error"),
    (ParseError("x"), "parse_error"),
    (ReproError("e"), "engine_error"),
    (RuntimeError("r"), "internal_error"),
])
def test_error_codes_are_stable(exc, code):
    frame = protocol.error_response(4, exc)
    assert frame["ok"] is False
    assert frame["id"] == 4
    assert frame["error"]["code"] == code
    assert frame["error"]["type"] == type(exc).__name__


def test_json_safe_coerces_oids_to_strings():
    from repro.storage.oid import OID

    assert protocol.json_safe(5) == 5
    assert protocol.json_safe(None) is None
    assert isinstance(protocol.json_safe(OID(1, 2, 3)), str)
