"""Unit tests for the type system and type registry."""

import pytest

from repro.errors import DuplicateNameError, FieldError, TypeDefinitionError, UnknownTypeError
from repro.objects.registry import TypeRegistry
from repro.objects.types import (
    FieldKind,
    TypeDefinition,
    char_field,
    float_field,
    int_field,
    ref_field,
)


def emp_type():
    return TypeDefinition(
        "EMP",
        [char_field("name", 20), int_field("age"), int_field("salary"), ref_field("dept", "DEPT")],
    )


def test_field_widths():
    assert int_field("a").width == 4
    assert float_field("b").width == 8
    assert char_field("c", 17).width == 17
    assert ref_field("d", "T").width == 8


def test_char_field_needs_size():
    with pytest.raises(TypeDefinitionError):
        char_field("c", 0)


def test_ref_field_needs_target():
    with pytest.raises(TypeDefinitionError):
        ref_field("r", "")


def test_size_only_for_char():
    from repro.objects.types import FieldDef

    with pytest.raises(TypeDefinitionError):
        FieldDef("x", FieldKind.INT, size=4)


def test_invalid_field_name():
    with pytest.raises(TypeDefinitionError):
        int_field("not a name")


def test_type_rejects_duplicate_fields():
    with pytest.raises(TypeDefinitionError):
        TypeDefinition("T", [int_field("x"), int_field("x")])


def test_type_rejects_empty_fields():
    with pytest.raises(TypeDefinitionError):
        TypeDefinition("T", [])


def test_type_rejects_invalid_name():
    with pytest.raises(TypeDefinitionError):
        TypeDefinition("9T", [int_field("x")])


def test_field_lookup():
    t = emp_type()
    assert t.field_def("salary").kind is FieldKind.INT
    assert t.has_field("dept")
    assert not t.has_field("nope")
    with pytest.raises(FieldError):
        t.field_def("nope")


def test_data_width_sums_fields():
    t = emp_type()
    assert t.data_width == 20 + 4 + 4 + 8


def test_visible_hidden_and_ref_fields():
    t = emp_type()
    widened = t.subtype_with_hidden("EMP__r1", [char_field("__rep_dept_name", 20, hidden=True)])
    assert [f.name for f in widened.hidden_fields()] == ["__rep_dept_name"]
    assert [f.name for f in widened.visible_fields()] == ["name", "age", "salary", "dept"]
    assert [f.name for f in widened.ref_fields()] == ["dept"]
    assert widened.base == "EMP"
    assert widened.data_width == t.data_width + 20


def test_subtype_requires_hidden_fields():
    t = emp_type()
    with pytest.raises(TypeDefinitionError):
        t.subtype_with_hidden("EMP2", [int_field("visible")])


def test_without_field():
    t = emp_type()
    widened = t.subtype_with_hidden("EMP__r1", [int_field("__rep_b", hidden=True)])
    narrowed = widened.without_field("__rep_b")
    assert not narrowed.has_field("__rep_b")
    with pytest.raises(FieldError):
        widened.without_field("missing")


def test_registry_roundtrip():
    reg = TypeRegistry()
    t = emp_type()
    tag = reg.register(t)
    assert reg.get("EMP") is t
    assert reg.by_tag(tag) is t
    assert reg.tag_of("EMP") == tag
    assert reg.has("EMP")
    assert reg.names() == ["EMP"]


def test_registry_duplicate_raises():
    reg = TypeRegistry()
    reg.register(emp_type())
    with pytest.raises(DuplicateNameError):
        reg.register(emp_type())


def test_registry_unknown_raises():
    reg = TypeRegistry()
    with pytest.raises(UnknownTypeError):
        reg.get("NOPE")
    with pytest.raises(UnknownTypeError):
        reg.by_tag(42)
    with pytest.raises(UnknownTypeError):
        reg.tag_of("NOPE")


def test_registry_replace_keeps_tag():
    reg = TypeRegistry()
    t = emp_type()
    tag = reg.register(t)
    widened = t.subtype_with_hidden("EMP__r1", [int_field("__rep_x", hidden=True)])
    reg.replace("EMP", widened)
    assert reg.by_tag(tag) is widened
    assert reg.get("EMP") is widened
    assert reg.get("EMP__r1") is widened
    assert reg.tag_of("EMP__r1") == tag
