"""Aggregate query tests."""

import pytest

from repro.errors import ParseError, PlanningError
from repro.query.language import parse_statement


def test_parse_aggregates():
    stmt = parse_statement("retrieve (count(Emp1.name), avg(Emp1.salary))")
    assert stmt.is_aggregate
    assert stmt.aggregates == ("count", "avg")
    assert stmt.targets[1].field == "salary"


def test_parse_rejects_mixed():
    with pytest.raises(ParseError):
        parse_statement("retrieve (Emp1.name, count(Emp1.salary))")


def test_count_and_sum(company):
    db = company["db"]
    res = db.execute("retrieve (count(Emp1.name), sum(Emp1.salary))")
    assert res.columns == ("count(Emp1.name)", "sum(Emp1.salary)")
    assert res.rows == [(6, 50_000 + 60_000 + 70_000 + 80_000 + 90_000 + 100_000)]


def test_avg_min_max_with_filter(company):
    db = company["db"]
    res = db.execute(
        "retrieve (avg(Emp1.salary), min(Emp1.salary), max(Emp1.salary)) "
        "where Emp1.salary >= 80000"
    )
    assert res.rows == [(90_000.0, 80_000, 100_000)]


def test_aggregate_over_replicated_path(company):
    db = company["db"]
    db.replicate("Emp1.dept.budget")
    res = db.execute("retrieve (sum(Emp1.dept.budget))")
    # two employees per department: budgets count once per employee
    assert res.rows == [(2 * (100 + 200 + 300),)]
    assert "sum(replicated" in res.plan


def test_aggregate_over_functional_join(company):
    db = company["db"]
    res = db.execute("retrieve (max(Emp1.dept.budget)) where Emp1.salary <= 60000")
    assert res.rows == [(100,)]  # alice and bob, both in toys


def test_count_skips_null_joins(company):
    db = company["db"]
    db.insert("Emp1", {"name": "nix", "age": 1, "salary": 1, "dept": None})
    res = db.execute("retrieve (count(Emp1.dept.name), count(Emp1.name))")
    assert res.rows == [(6, 7)]


def test_empty_input(company):
    db = company["db"]
    res = db.execute(
        "retrieve (count(Emp1.name), sum(Emp1.salary)) where Emp1.salary > 10**9"
        .replace("10**9", "999999999")
    )
    assert res.rows == [(0, None)]


def test_aggregate_over_all_rejected(company):
    with pytest.raises(PlanningError):
        company["db"].execute("retrieve (count(Emp1.all))")


def test_aggregate_uses_index_access(company):
    db = company["db"]
    db.build_index("Emp1.salary")
    res = db.execute("retrieve (count(Emp1.name)) where Emp1.salary >= 90000")
    assert res.rows == [(2,)]
    assert "IndexScan" in res.plan
