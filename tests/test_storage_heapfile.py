"""Unit tests for heap files, including relocation / forwarding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DuplicateNameError, FileNotFoundInStoreError, RecordNotFoundError
from repro.storage.manager import StorageManager


@pytest.fixture()
def sm():
    return StorageManager(buffer_frames=16)


def test_insert_read_roundtrip(sm):
    heap = sm.create_file("t")
    rid = heap.insert(b"payload")
    assert heap.read(rid) == b"payload"


def test_records_fill_pages_in_order(sm):
    heap = sm.create_file("t")
    rids = [heap.insert(b"r" * 100) for __ in range(100)]
    pages = [rid[0] for rid in rids]
    assert pages == sorted(pages)  # appended in physical order
    assert heap.num_pages() >= 3


def test_scan_yields_all_records_in_physical_order(sm):
    heap = sm.create_file("t")
    payloads = [f"rec{i}".encode() for i in range(50)]
    rids = [heap.insert(p) for p in payloads]
    scanned = list(heap.scan())
    assert [rid for rid, __ in scanned] == rids
    assert [body for __, body in scanned] == payloads


def test_delete_removes_record(sm):
    heap = sm.create_file("t")
    rid = heap.insert(b"bye")
    heap.delete(rid)
    assert not heap.exists(rid)
    with pytest.raises(RecordNotFoundError):
        heap.read(rid)


def test_update_in_place(sm):
    heap = sm.create_file("t")
    rid = heap.insert(b"A" * 50)
    heap.update(rid, b"B" * 30)
    assert heap.read(rid) == b"B" * 30


def test_update_with_relocation_keeps_rid_stable(sm):
    heap = sm.create_file("t")
    # Fill a page almost completely so growth forces relocation.
    rid = heap.insert(b"A" * 100)
    fillers = [heap.insert(b"F" * 900) for __ in range(4)]
    heap.update(rid, b"B" * 1500)  # cannot fit on the home page any more
    assert heap.read(rid) == b"B" * 1500
    for f in fillers:
        assert heap.read(f) == b"F" * 900


def test_forward_chain_stays_length_one(sm):
    heap = sm.create_file("t")
    rid = heap.insert(b"A" * 100)
    for __ in range(4):
        heap.insert(b"F" * 900)
    heap.update(rid, b"B" * 1500)  # relocate once
    heap.update(rid, b"C" * 3000)  # relocate again -> stub must be rewritten
    assert heap.read(rid) == b"C" * 3000
    # Scanning still yields exactly one copy under the home rid.
    bodies = [body for r, body in heap.scan() if r == rid]
    assert bodies == [b"C" * 3000]


def test_delete_forwarded_record_cleans_both_slots(sm):
    heap = sm.create_file("t")
    rid = heap.insert(b"A" * 100)
    for __ in range(4):
        heap.insert(b"F" * 900)
    heap.update(rid, b"B" * 2000)
    count_before = heap.count()
    heap.delete(rid)
    assert heap.count() == count_before - 1
    assert not heap.exists(rid)


def test_scan_skips_moved_payloads(sm):
    heap = sm.create_file("t")
    rid = heap.insert(b"A" * 100)
    for __ in range(4):
        heap.insert(b"F" * 900)
    heap.update(rid, b"B" * 2000)
    rids = [r for r, __ in heap.scan()]
    assert len(rids) == len(set(rids)) == 5


def test_count(sm):
    heap = sm.create_file("t")
    for i in range(17):
        heap.insert(bytes([i]))
    assert heap.count() == 17


def test_storage_manager_directory(sm):
    heap = sm.create_file("alpha")
    assert sm.file("alpha") is heap
    assert sm.file_by_id(heap.file_id) is heap
    assert sm.file_name(heap.file_id) == "alpha"
    assert sm.has_file("alpha")
    assert sm.file_names() == ["alpha"]


def test_storage_manager_duplicate_name_raises(sm):
    sm.create_file("x")
    with pytest.raises(DuplicateNameError):
        sm.create_file("x")


def test_storage_manager_unknown_lookups_raise(sm):
    with pytest.raises(FileNotFoundInStoreError):
        sm.file("missing")
    with pytest.raises(FileNotFoundInStoreError):
        sm.file_by_id(12345)
    with pytest.raises(FileNotFoundInStoreError):
        sm.file_name(12345)


def test_storage_manager_drop_file(sm):
    sm.create_file("gone")
    sm.drop_file("gone")
    assert not sm.has_file("gone")
    with pytest.raises(FileNotFoundInStoreError):
        sm.file("gone")


def test_measure_reports_io_delta(sm):
    heap = sm.create_file("t")
    rid = heap.insert(b"x" * 1000)
    sm.cold_cache()
    cost = sm.measure(lambda: heap.read(rid))
    assert cost.physical_reads == 1
    assert cost.physical_writes == 0


def test_cold_cache_then_scan_reads_every_page_once(sm):
    heap = sm.create_file("t")
    for __ in range(200):
        heap.insert(b"r" * 100)
    sm.cold_cache()
    cost = sm.measure(lambda: list(heap.scan()))
    assert cost.physical_reads == heap.num_pages()


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "update"]),
            st.binary(min_size=0, max_size=800),
        ),
        max_size=40,
    )
)
def test_property_heapfile_matches_dict_model(ops):
    """A heap file behaves like a dict from rid to payload."""
    sm = StorageManager(buffer_frames=8)
    heap = sm.create_file("prop")
    model: dict[tuple[int, int], bytes] = {}
    for op, payload in ops:
        if op == "insert":
            rid = heap.insert(payload)
            assert rid not in model
            model[rid] = payload
        elif op == "delete" and model:
            rid = next(iter(model))
            heap.delete(rid)
            del model[rid]
        elif op == "update" and model:
            rid = next(reversed(model))
            heap.update(rid, payload)
            model[rid] = payload
    assert {rid: body for rid, body in heap.scan()} == model
    for rid, body in model.items():
        assert heap.read(rid) == body
