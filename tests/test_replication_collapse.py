"""Collapsed inverted paths (Section 4.3.3)."""

import pytest

from repro.errors import ReplicationError


def hidden(db, oid, path):
    return db.get("Emp1", oid).values[path.hidden_fields[0]]


@pytest.fixture()
def collapsed(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.org.name", collapsed=True)
    return db, path, company


def test_collapsed_requires_two_level_inplace(company):
    db = company["db"]
    with pytest.raises(ReplicationError):
        db.replicate("Emp1.dept.name", collapsed=True)
    with pytest.raises(ReplicationError):
        db.replicate("Emp1.dept.org.name", strategy="separate", collapsed=True)


def test_collapsed_values_filled(collapsed):
    db, path, company = collapsed
    assert hidden(db, company["emps"]["alice"], path) == "acme"
    assert hidden(db, company["emps"]["erin"], path) == "globex"
    db.verify()


def test_collapsed_single_link_with_tagged_entries(collapsed):
    db, path, company = collapsed
    assert len(path.link_sequence) == 1
    link = db.catalog.get_link(path.link_sequence[0])
    assert link.collapsed
    org = db.get("Org", company["orgs"]["acme"])
    entry = org.link_entry_for(path.link_sequence[0])
    members = link.file.members(entry.link_oid)
    # four acme employees, tagged by their departments
    assert len(members) == 4
    tags = {tag for __m, tag in members}
    assert tags == {company["depts"]["toys"], company["depts"]["tools"]}


def test_collapsed_terminal_update_propagates(collapsed):
    db, path, company = collapsed
    db.update("Org", company["orgs"]["acme"], {"name": "acme2"})
    for ename in ("alice", "bob", "carol", "dave"):
        assert hidden(db, company["emps"][ename], path) == "acme2"
    assert hidden(db, company["emps"]["erin"], path) == "globex"
    db.verify()


def test_collapsed_intermediate_ref_update_moves_tagged_entries(collapsed):
    """The paper's D.org change: tagged OIDs move between link objects."""
    db, path, company = collapsed
    db.update("Dept", company["depts"]["toys"], {"org": company["orgs"]["globex"]})
    assert hidden(db, company["emps"]["alice"], path) == "globex"
    assert hidden(db, company["emps"]["carol"], path) == "acme"  # tools stayed
    db.verify()
    # move tools too: acme's link object must now disappear
    db.update("Dept", company["depts"]["tools"], {"org": company["orgs"]["globex"]})
    db.verify()
    org = db.get("Org", company["orgs"]["acme"])
    assert org.link_entries == []


def test_collapsed_source_ref_update(collapsed):
    db, path, company = collapsed
    db.update("Emp1", company["emps"]["alice"], {"dept": company["depts"]["shoes"]})
    assert hidden(db, company["emps"]["alice"], path) == "globex"
    db.verify()


def test_collapsed_insert_and_delete(collapsed):
    db, path, company = collapsed
    oid = db.insert(
        "Emp1", {"name": "gina", "age": 9, "salary": 9, "dept": company["depts"]["shoes"]}
    )
    assert hidden(db, oid, path) == "globex"
    db.verify()
    db.delete("Emp1", oid)
    db.verify()


def test_collapsed_null_intermediate_ref_rejected(collapsed):
    db, path, company = collapsed
    with pytest.raises(ReplicationError):
        db.update("Dept", company["depts"]["toys"], {"org": None})


def test_collapsed_no_index_allowed(collapsed):
    db, path, company = collapsed
    with pytest.raises(ReplicationError):
        db.build_index("Emp1.dept.org.name")


def test_collapsed_propagation_uses_fewer_link_reads(company):
    """The optimization's point: terminal update reads ONE link object."""
    db = company["db"]
    uncollapsed = db.replicate("Emp1.dept.org.budget")  # ordinary 2-level
    collapsed = db.replicate("Emp1.dept.org.name", collapsed=True)
    ca = db.catalog.get_link(collapsed.link_sequence[0])
    ua = [db.catalog.get_link(l) for l in uncollapsed.link_sequence]
    # collapsed link file: one object per org; uncollapsed: dept + org files
    assert sum(1 for __ in ca.file.scan()) == 2
    assert sum(1 for __ in ua[0].file.scan()) == 3  # one per dept
    assert sum(1 for __ in ua[1].file.scan()) == 2  # one per org
    db.verify()
