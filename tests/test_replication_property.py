"""Property-based stress test: random DML keeps every path consistent.

The strongest invariant in the system is the one ``verify()`` checks:
whatever sequence of inserts, deletes, data updates, and reference-
attribute updates runs, every hidden replicated value, link object, link
entry, replica object, and reference count must equal what a from-scratch
recomputation of the forward paths yields.  Hypothesis drives random
operation sequences against configurations covering both strategies,
shared links, collapsed paths, and lazy propagation.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database
from repro.errors import IntegrityError, ReplicationError

from tests.conftest import define_employee_schema

PATH_CONFIGS = [
    [("Emp1.dept.name", {})],
    [("Emp1.dept.name", {"strategy": "separate"})],
    [("Emp1.dept.org.name", {})],
    [("Emp1.dept.org.name", {"strategy": "separate"})],
    [("Emp1.dept.org.name", {"collapsed": True})],
    [("Emp1.dept.name", {"lazy": True})],
    [
        ("Emp1.dept.name", {}),
        ("Emp1.dept.budget", {"strategy": "separate"}),
        ("Emp1.dept.org.name", {}),
    ],
    [
        ("Emp1.dept.org.budget", {"strategy": "separate"}),
        ("Emp1.dept.org", {}),
    ],
]


def seed_database(config):
    db = Database()
    define_employee_schema(db)
    orgs = [db.insert("Org", {"name": f"org{i}", "budget": i * 100}) for i in range(3)]
    depts = [
        db.insert("Dept", {"name": f"dept{i}", "budget": i, "org": orgs[i % 3]})
        for i in range(5)
    ]
    emps = [
        db.insert("Emp1", {"name": f"emp{i}", "age": i, "salary": i, "dept": depts[i % 5]})
        for i in range(8)
    ]
    for text, kwargs in config:
        db.replicate(text, **kwargs)
    return db, orgs, depts, emps


operations = st.lists(
    st.tuples(
        st.sampled_from(
            [
                "insert_emp",
                "delete_emp",
                "move_emp",
                "rename_dept",
                "rebudget_dept",
                "move_dept",
                "rename_org",
                "rebudget_org",
            ]
        ),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
    ),
    max_size=25,
)


@pytest.mark.parametrize("config", PATH_CONFIGS, ids=lambda c: "+".join(t for t, __ in c))
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=operations)
def test_random_dml_keeps_paths_consistent(config, ops):
    collapsed = any(kw.get("collapsed") for __t, kw in config)
    db, orgs, depts, emps = seed_database(config)
    live_emps = list(emps)
    counter = [100]
    for op, a, b in ops:
        try:
            if op == "insert_emp":
                dept = depts[a % len(depts)]
                oid = db.insert(
                    "Emp1",
                    {"name": f"n{counter[0]}", "age": 1, "salary": b % 10**6, "dept": dept},
                )
                counter[0] += 1
                live_emps.append(oid)
            elif op == "delete_emp" and live_emps:
                db.delete("Emp1", live_emps.pop(a % len(live_emps)))
            elif op == "move_emp" and live_emps:
                emp = live_emps[a % len(live_emps)]
                db.update("Emp1", emp, {"dept": depts[b % len(depts)]})
            elif op == "rename_dept":
                db.update("Dept", depts[a % len(depts)], {"name": f"d{b % 1000}"})
            elif op == "rebudget_dept":
                db.update("Dept", depts[a % len(depts)], {"budget": b % 10**6})
            elif op == "move_dept":
                db.update("Dept", depts[a % len(depts)], {"org": orgs[b % len(orgs)]})
            elif op == "rename_org":
                db.update("Org", orgs[a % len(orgs)], {"name": f"o{b % 1000}"})
            elif op == "rebudget_org":
                db.update("Org", orgs[a % len(orgs)], {"budget": b % 10**6})
        except ReplicationError:
            if not collapsed:
                raise  # only collapsed paths may reject an operation
    try:
        db.verify()
    except IntegrityError as exc:  # pragma: no cover - debugging aid
        pytest.fail(f"consistency violated after {ops!r}: {exc}")


def test_null_ref_churn_stays_consistent():
    """Setting refs to null and back, repeatedly, on a non-collapsed path."""
    db, orgs, depts, emps = seed_database([("Emp1.dept.org.name", {})])
    for i, emp in enumerate(emps):
        db.update("Emp1", emp, {"dept": None})
        db.verify()
        db.update("Emp1", emp, {"dept": depts[i % len(depts)]})
        db.verify()
    for dept in depts:
        db.update("Dept", dept, {"org": None})
        db.verify()
        db.update("Dept", dept, {"org": orgs[0]})
        db.verify()
