"""Unit tests for object encoding / decoding and the object store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DanglingReferenceError, FieldError, SerializationError
from repro.objects.encoding import decode_object, encode_object, encoded_size, peek_type_tag
from repro.objects.instance import LinkEntry, ReplicaEntry, StoredObject
from repro.objects.registry import TypeRegistry
from repro.objects.store import ObjectStore
from repro.objects.types import TypeDefinition, char_field, float_field, int_field, ref_field
from repro.storage.constants import OBJECT_HEADER_BYTES
from repro.storage.manager import StorageManager
from repro.storage.oid import OID


@pytest.fixture()
def reg():
    registry = TypeRegistry()
    registry.register(
        TypeDefinition(
            "EMP",
            [
                char_field("name", 20),
                int_field("age"),
                float_field("rating"),
                ref_field("dept", "DEPT"),
            ],
        )
    )
    return registry


def make_emp(reg, **overrides):
    values = {"name": "alice", "age": 33, "rating": 4.5, "dept": OID(3, 7, 1)}
    values.update(overrides)
    return StoredObject(reg.get("EMP"), values)


def test_encode_decode_roundtrip(reg):
    obj = make_emp(reg)
    data = encode_object(reg, obj)
    back = decode_object(reg, data)
    assert back.values == obj.values
    assert back.type_def.name == "EMP"


def test_encoded_size_matches(reg):
    obj = make_emp(reg)
    data = encode_object(reg, obj)
    assert len(data) == encoded_size(reg.get("EMP"))
    assert len(data) == OBJECT_HEADER_BYTES + 20 + 4 + 8 + 8


def test_null_ref_roundtrip(reg):
    obj = make_emp(reg, dept=None)
    back = decode_object(reg, encode_object(reg, obj))
    assert back.values["dept"] is None


def test_link_entries_roundtrip(reg):
    obj = make_emp(reg)
    obj.link_entries = [LinkEntry(OID(9, 1, 2), 1), LinkEntry(OID(9, 1, 3), 7)]
    back = decode_object(reg, encode_object(reg, obj))
    assert back.link_entries == obj.link_entries


def test_replica_entries_roundtrip(reg):
    obj = make_emp(reg)
    obj.replica_entries = [ReplicaEntry(OID(5, 0, 0), 42, 3)]
    back = decode_object(reg, encode_object(reg, obj))
    assert back.replica_entries == obj.replica_entries
    data = encode_object(reg, obj)
    assert len(data) == encoded_size(reg.get("EMP"), n_replicas=1)


def test_peek_type_tag(reg):
    obj = make_emp(reg)
    assert peek_type_tag(encode_object(reg, obj)) == reg.tag_of("EMP")
    with pytest.raises(SerializationError):
        peek_type_tag(b"\x01")


def test_char_overflow_raises(reg):
    obj = make_emp(reg, name="x" * 21)
    with pytest.raises(SerializationError):
        encode_object(reg, obj)


def test_truncated_record_raises(reg):
    obj = make_emp(reg)
    data = encode_object(reg, obj)
    with pytest.raises(SerializationError):
        decode_object(reg, data[:10])
    with pytest.raises(SerializationError):
        decode_object(reg, data[:-3])
    with pytest.raises(SerializationError):
        decode_object(reg, data + b"\x00\x00")


def test_missing_values_get_defaults(reg):
    obj = StoredObject(reg.get("EMP"), {})
    assert obj.values == {"name": "", "age": 0, "rating": 0.0, "dept": None}


def test_extra_values_raise(reg):
    with pytest.raises(FieldError):
        StoredObject(reg.get("EMP"), {"bogus": 1})


def test_wrong_kind_raises(reg):
    with pytest.raises(FieldError):
        make_emp(reg, age="old")
    with pytest.raises(FieldError):
        make_emp(reg, dept=17)
    with pytest.raises(FieldError):
        make_emp(reg, age=True)  # bools are not ints here


def test_instance_get_set_ref(reg):
    obj = make_emp(reg)
    obj.set("age", 40)
    assert obj.get("age") == 40
    assert obj.ref("dept") == OID(3, 7, 1)
    with pytest.raises(FieldError):
        obj.ref("age")
    with pytest.raises(FieldError):
        obj.get("missing")


def test_instance_copy_is_independent(reg):
    obj = make_emp(reg)
    clone = obj.copy()
    clone.set("age", 99)
    clone.link_entries.append(LinkEntry(OID(1, 1, 1), 1))
    assert obj.get("age") == 33
    assert obj.link_entries == []


def test_link_entry_helpers(reg):
    obj = make_emp(reg)
    obj.add_link_entry(LinkEntry(OID(1, 0, 0), 2))
    obj.add_link_entry(LinkEntry(OID(1, 0, 1), 2))  # replaces same link id
    assert obj.link_entry_for(2) == LinkEntry(OID(1, 0, 1), 2)
    assert obj.link_entry_for(9) is None
    obj.remove_link_entry(2)
    assert obj.link_entries == []


def test_replica_entry_helpers(reg):
    obj = make_emp(reg)
    obj.set_replica_entry(ReplicaEntry(OID(4, 0, 0), 1, 5))
    obj.set_replica_entry(ReplicaEntry(OID(4, 0, 0), 2, 5))  # replace
    assert obj.replica_entry_for(5).refcount == 2
    assert obj.replica_entry_for(1) is None
    obj.remove_replica_entry(5)
    assert obj.replica_entries == []


# ---------------------------------------------------------------------------
# object store
# ---------------------------------------------------------------------------


@pytest.fixture()
def store(reg):
    sm = StorageManager()
    return ObjectStore(sm, reg)


def test_store_insert_read(store, reg):
    heap = store.storage.create_file("Emp1")
    oid = store.insert(heap, make_emp(reg))
    back = store.read(oid)
    assert back.values["name"] == "alice"
    assert oid.file_id == heap.file_id


def test_store_update_delete(store, reg):
    heap = store.storage.create_file("Emp1")
    oid = store.insert(heap, make_emp(reg))
    obj = store.read(oid)
    obj.set("age", 50)
    store.update(oid, obj)
    assert store.read(oid).values["age"] == 50
    store.delete(oid)
    assert not store.exists(oid)
    with pytest.raises(DanglingReferenceError):
        store.read(oid)
    with pytest.raises(DanglingReferenceError):
        store.update(oid, make_emp(reg))
    with pytest.raises(DanglingReferenceError):
        store.delete(oid)


def test_store_scan_in_physical_order(store, reg):
    heap = store.storage.create_file("Emp1")
    oids = [store.insert(heap, make_emp(reg, age=i)) for i in range(30)]
    scanned = list(store.scan(heap))
    assert [oid for oid, __ in scanned] == oids
    assert [o.values["age"] for __, o in scanned] == list(range(30))


def test_store_follow_and_traverse(store, reg):
    reg.register(TypeDefinition("DEPT", [char_field("name", 10), ref_field("org", "ORG")]))
    reg.register(TypeDefinition("ORG", [char_field("name", 10)]))
    emp_heap = store.storage.create_file("Emp1")
    dept_heap = store.storage.create_file("Dept")
    org_heap = store.storage.create_file("Org")
    org = store.insert(org_heap, StoredObject(reg.get("ORG"), {"name": "acme"}))
    dept = store.insert(
        dept_heap, StoredObject(reg.get("DEPT"), {"name": "toys", "org": org})
    )
    emp = store.insert(emp_heap, make_emp(reg, dept=dept))
    e = store.read(emp)
    d = store.follow(e, "dept")
    assert d.values["name"] == "toys"
    o = store.traverse(e, ["dept", "org"])
    assert o.values["name"] == "acme"
    e_null = store.read(store.insert(emp_heap, make_emp(reg, dept=None)))
    assert store.follow(e_null, "dept") is None
    assert store.traverse(e_null, ["dept", "org"]) is None


@settings(max_examples=40, deadline=None)
@given(
    name=st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=20
    ),
    age=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    rating=st.floats(allow_nan=False, allow_infinity=False),
    dept=st.one_of(
        st.none(),
        st.builds(
            OID,
            st.integers(0, 0xFFFE),
            st.integers(0, 0xFFFFFFFE),
            st.integers(0, 0xFFFE),
        ),
    ),
)
def test_property_encode_decode_roundtrip(name, age, rating, dept):
    """Any well-typed value combination survives a serialisation roundtrip."""
    reg = TypeRegistry()
    reg.register(
        TypeDefinition(
            "EMP",
            [
                char_field("name", 20),
                int_field("age"),
                float_field("rating"),
                ref_field("dept", "DEPT"),
            ],
        )
    )
    obj = StoredObject(reg.get("EMP"), {"name": name, "age": age, "rating": rating, "dept": dept})
    back = decode_object(reg, encode_object(reg, obj))
    assert back.values["name"] == name
    assert back.values["age"] == age
    assert back.values["rating"] == pytest.approx(rating, nan_ok=False)
    assert back.values["dept"] == dept
