"""Planner-shape tests: which access paths and fetch steps get picked."""

import pytest

from repro.errors import PlanningError
from repro.query.language import parse_statement
from repro.query.planner import plan_delete, plan_replace, plan_retrieve
from repro.query.runner import explain_text


def plan_of(db, text):
    return plan_retrieve(db, parse_statement(text))


def test_no_where_is_filescan(company):
    plan = plan_of(company["db"], "retrieve (Emp1.name)")
    assert plan.access.explain() == "FileScan(Emp1)"
    assert plan.where is None


def test_unindexed_filter_is_residual_filescan(company):
    plan = plan_of(company["db"], "retrieve (Emp1.name) where Emp1.salary > 1")
    assert "FileScan" in plan.access.explain()
    assert plan.where is not None


def test_equality_beats_range_on_same_index(company):
    db = company["db"]
    db.build_index("Emp1.salary")
    plan = plan_of(db, "retrieve (Emp1.name) where Emp1.salary = 5 and Emp1.salary >= 1")
    assert "= 5" in plan.access.explain()


def test_two_bounds_combine_into_one_range_scan(company):
    db = company["db"]
    db.build_index("Emp1.salary")
    plan = plan_of(
        db, "retrieve (Emp1.name) where Emp1.salary >= 10 and Emp1.salary < 20"
    )
    text = plan.access.explain()
    assert ">= 10" in text and "< 20" in text


def test_tightest_bounds_win(company):
    db = company["db"]
    db.build_index("Emp1.salary")
    plan = plan_of(
        db,
        "retrieve (Emp1.name) where Emp1.salary >= 10 and Emp1.salary > 15 "
        "and Emp1.salary <= 99 and Emp1.salary <= 50",
    )
    text = plan.access.explain()
    assert "> 15" in text and "<= 50" in text


def test_inequality_never_uses_index(company):
    db = company["db"]
    db.build_index("Emp1.salary")
    plan = plan_of(db, "retrieve (Emp1.name) where Emp1.salary != 5")
    assert "FileScan" in plan.access.explain()


def test_fetch_step_priority_inplace_over_join(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    plan = plan_of(db, "retrieve (Emp1.dept.name, Emp1.dept.budget)")
    kinds = [type(step).__name__ for step in plan.steps]
    assert kinds == ["HiddenField", "FunctionalJoin"]


def test_fetch_step_separate(company):
    db = company["db"]
    db.replicate("Emp1.dept.budget", strategy="separate")
    plan = plan_of(db, "retrieve (Emp1.dept.budget)")
    assert type(plan.steps[0]).__name__ == "ReplicaFetch"


def test_three_level_jump_uses_longest_prefix(db):
    """A 3-level target with a replicated 2-prefix reference jumps there."""
    from repro import TypeDefinition, char_field, ref_field

    db.define_type(TypeDefinition("REGION", [char_field("name", 8)]))
    db.define_type(TypeDefinition("ORGX", [char_field("name", 8), ref_field("region", "REGION")]))
    db.define_type(TypeDefinition("DEPTX", [char_field("name", 8), ref_field("org", "ORGX")]))
    db.define_type(TypeDefinition("EMPX", [char_field("name", 8), ref_field("dept", "DEPTX")]))
    for s, t in [("RegionX", "REGION"), ("OrgX", "ORGX"), ("DeptX", "DEPTX"), ("EmpX", "EMPX")]:
        db.create_set(s, t)
    region = db.insert("RegionX", {"name": "west"})
    org = db.insert("OrgX", {"name": "acme", "region": region})
    dept = db.insert("DeptX", {"name": "toys", "org": org})
    db.insert("EmpX", {"name": "ada", "dept": dept})
    db.replicate("EmpX.dept.org")  # materialise the 2-level reference
    plan = plan_of(db, "retrieve (EmpX.dept.org.region.name)")
    step = plan.steps[0]
    assert type(step).__name__ == "HiddenRefJump"
    assert step.remaining_chain == ("region",)
    res = db.execute("retrieve (EmpX.dept.org.region.name)")
    assert res.rows == [("west",)]


def test_lazy_paths_listed_for_refresh(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", lazy=True)
    plan = plan_of(db, "retrieve (Emp1.dept.name)")
    assert plan.refresh_paths == ("Emp1.dept.name",)


def test_hidden_target_rejected(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.name")
    with pytest.raises(PlanningError):
        plan_of(db, f"retrieve (Emp1.{path.hidden_fields[0]})")


def test_non_ref_chain_rejected(company):
    with pytest.raises(PlanningError):
        plan_of(company["db"], "retrieve (Emp1.salary.name)")


def test_filter_on_wrong_set_rejected(company):
    with pytest.raises(PlanningError):
        plan_of(company["db"], "retrieve (Emp1.name) where Dept.budget = 1")


def test_replace_plan(company):
    db = company["db"]
    db.build_index("Dept.budget")
    plan = plan_replace(db, parse_statement("replace (Dept.name = 'x') where Dept.budget = 100"))
    assert "IndexScan" in plan.access.explain()
    assert plan.assignments == (("name", "x"),)
    assert "update(name='x')" in plan.explain()


def test_delete_plan(company):
    plan = plan_delete(company["db"], parse_statement("delete from Emp1 where Emp1.age > 33"))
    assert "delete" in plan.explain()


def test_explain_text_helper(company):
    db = company["db"]
    assert "FileScan" in explain_text(db, "retrieve (Emp1.name)")
    assert "update(" in explain_text(db, "replace (Dept.name = 'x')")
    assert "delete" in explain_text(db, "delete from Emp1")


def test_path_filter_uses_path_index_when_present(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    db.build_index("Emp1.dept.name")
    plan = plan_of(db, "retrieve (Emp1.name) where Emp1.dept.name = 'toys'")
    assert "IndexScan" in plan.access.explain()
