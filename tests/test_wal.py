"""Wire-format and lifecycle unit tests for the write-ahead log."""

import pytest

from repro.errors import WalError
from repro.recovery import WAL_MAGIC, WalRecord, WalRecordType, WriteAheadLog
from repro.storage.constants import PAGE_SIZE

IMAGE_A = bytes(range(256)) * (PAGE_SIZE // 256)
IMAGE_B = bytes(reversed(IMAGE_A))


# ---------------------------------------------------------------------------
# record wire format
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "record",
    [
        WalRecord(WalRecordType.BEGIN, 1, note="insert Emp1"),
        WalRecord(WalRecordType.BEGIN, 2, note=""),
        WalRecord(WalRecordType.BEGIN, 3, note="unicode éè note"),
        WalRecord(WalRecordType.PAGE_BEFORE, 4, 7, 12, IMAGE_A),
        WalRecord(WalRecordType.PAGE_AFTER, 5, 0, 0, IMAGE_B),
        WalRecord(WalRecordType.ALLOC, 6, 3, 999),
        WalRecord(WalRecordType.COMMIT, 7),
    ],
)
def test_record_round_trip(record):
    blob = record.encode()
    decoded, consumed = WalRecord.decode(blob)
    assert consumed == len(blob)
    assert decoded == record


def test_records_round_trip_concatenated():
    records = [
        WalRecord(WalRecordType.BEGIN, 9, note="x"),
        WalRecord(WalRecordType.ALLOC, 9, 1, 0),
        WalRecord(WalRecordType.PAGE_AFTER, 9, 1, 0, IMAGE_A),
        WalRecord(WalRecordType.COMMIT, 9),
    ]
    blob = b"".join(r.encode() for r in records)
    out, offset = [], 0
    while offset < len(blob):
        record, offset = WalRecord.decode(blob, offset)
        out.append(record)
    assert out == records


def test_decode_rejects_corrupted_body():
    blob = bytearray(WalRecord(WalRecordType.PAGE_AFTER, 1, 2, 3, IMAGE_A).encode())
    blob[20] ^= 0xFF  # flip one byte inside the body
    with pytest.raises(WalError, match="CRC"):
        WalRecord.decode(bytes(blob))


def test_decode_rejects_truncated_frame_and_body():
    blob = WalRecord(WalRecordType.COMMIT, 1).encode()
    with pytest.raises(WalError, match="truncated"):
        WalRecord.decode(blob[:4])
    with pytest.raises(WalError, match="truncated"):
        WalRecord.decode(blob[:-1])


def test_decode_rejects_unknown_type():
    body = bytes([42]) + b"\x00" * 8
    import struct
    import zlib

    blob = struct.pack(">II", len(body), zlib.crc32(body)) + body
    with pytest.raises(WalError, match="malformed"):
        WalRecord.decode(blob)


def test_encode_rejects_wrong_image_size():
    with pytest.raises(WalError, match="bytes"):
        WalRecord(WalRecordType.PAGE_BEFORE, 1, 0, 0, b"short").encode()


# ---------------------------------------------------------------------------
# log lifecycle
# ---------------------------------------------------------------------------


def test_begin_requires_no_active_statement():
    wal = WriteAheadLog()
    wal.begin("one")
    with pytest.raises(WalError):
        wal.begin("two")


def test_commit_without_begin_raises():
    with pytest.raises(WalError):
        WriteAheadLog().commit(lambda key: IMAGE_A)


def test_read_only_statement_leaves_no_trace():
    wal = WriteAheadLog()
    wal.begin("retrieve")
    wal.observe_fetch((1, 0), IMAGE_A)  # fetched but never dirtied
    wal.commit(lambda key: IMAGE_A)
    assert not wal.has_records


def test_write_statement_logs_before_after_commit():
    wal = WriteAheadLog()
    wal.begin("update")
    wal.observe_fetch((1, 0), IMAGE_A)
    wal.observe_dirty((1, 0))
    wal.observe_alloc(1, 5)
    wal.commit(lambda key: IMAGE_B)
    types = [r.type for r in wal.records]
    assert types == [
        WalRecordType.BEGIN,
        WalRecordType.PAGE_BEFORE,
        WalRecordType.ALLOC,
        WalRecordType.PAGE_AFTER,  # page (1,0)
        WalRecordType.PAGE_AFTER,  # page (1,5)
        WalRecordType.COMMIT,
    ]
    before = wal.records[1]
    assert (before.file_id, before.page_no, before.image) == (1, 0, IMAGE_A)
    assert all(r.image == IMAGE_B for r in wal.records[3:5])


def test_dirty_without_fetch_is_an_error():
    wal = WriteAheadLog()
    wal.begin("x")
    with pytest.raises(WalError, match="without a prior fetch"):
        wal.observe_dirty((9, 9))


def test_abort_returns_undo_records_and_drops_tail():
    wal = WriteAheadLog()
    wal.begin("doomed")
    wal.observe_fetch((2, 1), IMAGE_A)
    wal.observe_dirty((2, 1))
    wal.observe_alloc(2, 7)
    befores, allocs = wal.abort()
    assert [(r.file_id, r.page_no) for r in befores] == [(2, 1)]
    assert befores[0].image == IMAGE_A
    assert [(r.file_id, r.page_no) for r in allocs] == [(2, 7)]
    assert not wal.has_records


def test_observe_drop_file_forgets_mid_statement_state():
    wal = WriteAheadLog()
    wal.begin("analyze")
    wal.observe_alloc(42, 0)          # temp file page
    wal.observe_fetch((1, 0), IMAGE_A)
    wal.observe_dirty((1, 0))
    wal.observe_drop_file(42)
    wal.commit(lambda key: IMAGE_B)
    assert all(r.file_id != 42 for r in wal.records)
    assert [r.type for r in wal.records] == [
        WalRecordType.BEGIN,
        WalRecordType.PAGE_BEFORE,
        WalRecordType.PAGE_AFTER,
        WalRecordType.COMMIT,
    ]


def test_statements_groups_records_in_order():
    wal = WriteAheadLog()
    wal.begin("first")
    wal.observe_alloc(1, 0)
    wal.commit(lambda key: IMAGE_A)
    wal.begin("second")
    wal.observe_fetch((1, 0), IMAGE_A)
    wal.observe_dirty((1, 0))
    wal.mark_crashed()
    stmts = wal.statements()
    assert [s.note for s in stmts] == ["first", "second"]
    assert stmts[0].committed and not stmts[1].committed
    assert len(stmts[1].befores) == 1
    assert wal.needs_recovery


def test_serialize_load_round_trip():
    wal = WriteAheadLog()
    wal.begin("persisted")
    wal.observe_fetch((3, 2), IMAGE_A)
    wal.observe_dirty((3, 2))
    wal.commit(lambda key: IMAGE_B)
    blob = wal.serialize()
    assert blob.startswith(WAL_MAGIC)
    other = WriteAheadLog()
    assert other.load(blob) == len(wal.records)
    assert other.records == wal.records
    assert other.begin("next") > wal.records[-1].stmt_id  # ids keep advancing


def test_load_rejects_bad_magic_and_garbage():
    with pytest.raises(WalError, match="magic"):
        WriteAheadLog().load(b"NOTAWAL!")
    with pytest.raises(WalError):
        WriteAheadLog().load(WAL_MAGIC + b"\x01\x02\x03")


def test_checkpoint_truncates_but_not_mid_statement():
    wal = WriteAheadLog()
    wal.begin("a")
    wal.observe_alloc(1, 0)
    with pytest.raises(WalError):
        wal.checkpoint()
    wal.commit(lambda key: IMAGE_A)
    wal.checkpoint()
    assert not wal.has_records
