"""Workload-monitor and auto-advisor tests."""

from repro.costmodel import ModelStrategy
from repro.monitor import apply_recommendations


def test_functional_joins_are_recorded(company):
    db = company["db"]
    db.execute("retrieve (Emp1.name, Emp1.dept.name)")
    db.execute("retrieve (Emp1.dept.name) where Emp1.salary > 60000")
    observations = db.monitor.path_observations()
    assert len(observations) == 1
    obs = observations[0]
    assert obs.text == "Emp1.dept.name"
    assert obs.terminal_type == "DEPT"
    assert obs.queries == 2
    assert obs.join_rows == 6 + 4


def test_replicated_paths_are_not_recorded(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    db.execute("retrieve (Emp1.dept.name)")
    assert db.monitor.path_observations() == []


def test_two_level_join_recorded_with_root_type(company):
    db = company["db"]
    db.execute("retrieve (Emp1.dept.org.name)")
    obs = db.monitor.path_observations()[0]
    assert obs.text == "Emp1.dept.org.name"
    assert obs.terminal_type == "ORG"


def test_updates_recorded_api_and_statement(company):
    db = company["db"]
    db.update("Dept", company["depts"]["toys"], {"name": "x"})
    db.execute("replace (Dept.budget = 9) where Dept.budget <= 200")
    fields = {(f.type_name, f.field_name): f for f in db.monitor.field_observations()}
    assert fields[("DEPT", "name")].statements == 1
    assert fields[("DEPT", "budget")].updates == 2
    # propagation writes (hidden fields) are never recorded as user updates
    assert all(not name.startswith("__rep") for __t, name in fields)


def test_updates_against_matches_terminal_field(company):
    db = company["db"]
    db.execute("retrieve (Emp1.dept.name)")
    db.update("Dept", company["depts"]["toys"], {"name": "x"})
    db.update("Dept", company["depts"]["toys"], {"budget": 9})  # different field
    obs = db.monitor.path_observations()[0]
    assert db.monitor.updates_against(obs) == 1


def test_candidates_read_mostly_recommends_inplace(company):
    db = company["db"]
    for __ in range(20):
        db.execute("retrieve (Emp1.dept.name)")
    db.update("Dept", company["depts"]["toys"], {"name": "x"})
    candidates = db.monitor.candidates()
    assert len(candidates) == 1
    cand = candidates[0]
    assert cand.estimated_p_update < 0.1
    assert cand.recommendation.strategy is ModelStrategy.IN_PLACE
    assert cand.ddl == "replicate Emp1.dept.name"


def test_candidates_update_heavy_recommends_nothing(company):
    db = company["db"]
    db.execute("retrieve (Emp1.dept.name)")
    for i in range(30):
        db.update("Dept", company["depts"]["toys"], {"name": f"x{i}"})
    cand = db.monitor.candidates()[0]
    assert cand.estimated_p_update > 0.9
    assert cand.recommendation.strategy is ModelStrategy.NO_REPLICATION
    assert cand.ddl is None


def test_apply_recommendations_round_trip(company):
    db = company["db"]
    for __ in range(10):
        db.execute("retrieve (Emp1.dept.name, Emp1.dept.org.name)")
    applied = apply_recommendations(db, db.monitor.candidates())
    assert "replicate Emp1.dept.name" in applied
    assert "replicate Emp1.dept.org.name" in applied
    db.verify()
    # the joins are gone now
    db.monitor.reset()
    db.execute("retrieve (Emp1.dept.name, Emp1.dept.org.name)")
    assert db.monitor.path_observations() == []


def test_report_renders(company):
    db = company["db"]
    db.execute("retrieve (Emp1.dept.name)")
    db.update("Dept", company["depts"]["toys"], {"name": "x"})
    text = db.monitor.report()
    assert "Emp1.dept.name" in text
    assert "DEPT.name" in text


def test_reset(company):
    db = company["db"]
    db.execute("retrieve (Emp1.dept.name)")
    db.monitor.reset()
    assert db.monitor.path_observations() == []
    assert db.monitor.field_observations() == []


def test_empty_queries_not_counted(company):
    db = company["db"]
    db.execute("retrieve (Emp1.dept.name) where Emp1.salary > 10000000")
    assert db.monitor.path_observations() == []


def test_candidates_weight_by_rows_pins_both_estimates(company):
    db = company["db"]
    # 2 read queries walking 6 + 4 = 10 join rows
    db.execute("retrieve (Emp1.name, Emp1.dept.name)")
    db.execute("retrieve (Emp1.dept.name) where Emp1.salary > 60000")
    # 1 update statement touching 2 Dept objects
    db.execute("replace (Dept.name = 'x') where Dept.budget <= 200")

    by_statements = db.monitor.candidates()[0]
    # statement-based: 1 update stmt / (2 queries + 1 stmt)
    assert by_statements.estimated_p_update == 1 / 3

    by_rows = db.monitor.candidates(weight_by_rows=True)[0]
    # row-based: 2 updated objects / (10 join rows + 2 objects)
    assert by_rows.estimated_p_update == 2 / 12
    # the reported statement count is row-independent
    assert by_rows.update_statements == by_statements.update_statements == 1


def test_updates_against_rows_option(company):
    db = company["db"]
    db.execute("retrieve (Emp1.dept.name)")
    db.execute("replace (Dept.name = 'x') where Dept.budget <= 200")
    obs = db.monitor.path_observations()[0]
    assert db.monitor.updates_against(obs) == 1
    assert db.monitor.updates_against(obs, rows=True) == 2
