"""B+-tree deletion rebalancing: borrows, merges, root collapse."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.btree import BPlusTree
from repro.storage.manager import StorageManager
from repro.storage.oid import OID


def make_tree():
    sm = StorageManager(buffer_frames=128)
    fid = sm.disk.create_file()
    return sm, BPlusTree(sm.pool, fid, 8)


def key(i: int) -> bytes:
    return i.to_bytes(8, "big")


def oid(i: int) -> OID:
    return OID(1, i % 65000, 0)


def test_delete_everything_collapses_to_empty_root():
    __, tree = make_tree()
    n = 3000
    for i in range(n):
        tree.insert(key(i), oid(i))
    assert tree.height >= 2
    for i in range(n):
        assert tree.delete(key(i))
    assert tree.count() == 0
    assert tree.height == 1
    tree.check_invariants()
    # and the tree is fully usable again
    tree.insert(key(42), oid(42))
    assert tree.search(key(42)) == oid(42)


def test_height_shrinks_after_mass_deletion():
    __, tree = make_tree()
    for i in range(5000):
        tree.insert(key(i), oid(i))
    tall = tree.height
    for i in range(4900):
        tree.delete(key(i))
    tree.check_invariants()
    assert tree.height < tall
    assert [k for k, __ in tree.items()] == [key(i) for i in range(4900, 5000)]


@pytest.mark.parametrize("pattern", ["front", "back", "even", "random"])
def test_deletion_patterns_keep_invariants(pattern):
    __, tree = make_tree()
    n = 2500
    for i in range(n):
        tree.insert(key(i), oid(i))
    doomed = {
        "front": list(range(n // 2)),
        "back": list(range(n // 2, n)),
        "even": list(range(0, n, 2)),
        "random": random.Random(9).sample(range(n), n // 2),
    }[pattern]
    for i in doomed:
        assert tree.delete(key(i))
    tree.check_invariants()
    survivors = sorted(set(range(n)) - set(doomed))
    assert [k for k, __ in tree.items()] == [key(i) for i in survivors]
    for i in survivors[:: max(1, len(survivors) // 17)]:
        assert tree.search(key(i)) == oid(i)


def test_interleaved_inserts_and_deletes():
    __, tree = make_tree()
    rng = random.Random(13)
    model = {}
    counter = 0
    for __round in range(4000):
        if model and rng.random() < 0.5:
            victim = rng.choice(list(model))
            assert tree.delete(key(victim))
            del model[victim]
        else:
            counter += 1
            tree.insert(key(counter), oid(counter))
            model[counter] = True
    tree.check_invariants()
    assert [k for k, __ in tree.items()] == [key(i) for i in sorted(model)]


def test_delete_missing_returns_false_and_changes_nothing():
    __, tree = make_tree()
    for i in range(100):
        tree.insert(key(i), oid(i))
    assert not tree.delete(key(1000))
    assert tree.count() == 100
    tree.check_invariants()


def test_bulk_loaded_tree_survives_mass_deletion():
    sm = StorageManager(buffer_frames=128)
    fid = sm.disk.create_file()
    tree = BPlusTree.bulk_load(
        sm.pool, fid, 8, ((key(i), oid(i)) for i in range(4000))
    )
    for i in range(0, 4000, 3):
        assert tree.delete(key(i))
    tree.check_invariants()
    assert tree.count() == 4000 - len(range(0, 4000, 3))


@settings(max_examples=15, deadline=None)
@given(
    keys=st.sets(st.integers(0, 10**6), min_size=1, max_size=500),
    seed=st.integers(0, 1000),
)
def test_property_delete_half_random(keys, seed):
    __, tree = make_tree()
    ordered = sorted(keys)
    for i in ordered:
        tree.insert(key(i), oid(i))
    rng = random.Random(seed)
    doomed = set(rng.sample(ordered, len(ordered) // 2))
    for i in doomed:
        assert tree.delete(key(i))
    tree.check_invariants()
    assert [k for k, __ in tree.items()] == [key(i) for i in ordered if i not in doomed]
