"""Cross-process observability: trace propagation, the HTTP sidecar,
slow-query / lock-contention profiles, and the ``\\top`` dashboard."""

import io
import json
import threading
import urllib.error
from urllib.request import urlopen

import pytest

from repro.server import connect
from repro.server.httpexpo import MetricsHTTPServer
from repro.server.locks import ContentionProfiler, LockFootprint, LockManager
from repro.server.service import Server
from repro.server.session import SessionManager, WorkerPool, current_queue_wait
from repro.server.top import render_top, run_top
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slowlog import SlowQueryLog


@pytest.fixture()
def manager(company):
    mgr = SessionManager(company["db"], lock_timeout=2.0, workers=2,
                         queue_depth=4)
    yield mgr
    mgr.shutdown()


@pytest.fixture()
def server(company):
    srv = Server(company["db"], max_connections=8, workers=2,
                 queue_depth=8, lock_timeout=2.0).start()
    yield srv
    srv.shutdown()


@pytest.fixture()
def sidecar(server):
    http = MetricsHTTPServer(server).start()
    yield http
    http.shutdown()


def _get(base: str, path: str):
    with urlopen(base + path, timeout=10.0) as response:
        return response.status, response.headers.get("Content-Type", ""), \
            response.read().decode("utf-8")


def parse_prometheus(text: str) -> dict:
    """A deliberately tiny text-exposition parser: sample name -> value."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        samples[name] = float(value)
    return samples


# ---------------------------------------------------------------------------
# trace propagation: client-minted ids, per-statement tracers
# ---------------------------------------------------------------------------


def test_client_minted_trace_id_returns_full_span_tree(server):
    server.db.cold_cache()
    with connect(*server.address) as client:
        client.trace_enabled = True
        result = client.execute("retrieve (Emp1.name, Emp1.dept.name)")
        assert result.trace is not None
        trace = result.trace
        spans = trace["spans"]
        assert len({s["trace_id"] for s in spans}) == 1
        assert spans[0]["name"] == "client_request"
        assert spans[0]["span_id"] == 0 and spans[0]["parent_id"] is None
        names = {s["name"] for s in spans}
        assert {"client_request", "statement", "lock_acquire",
                "execute"} <= names
        # the server root is re-parented under the client root
        (statement,) = [s for s in spans if s["name"] == "statement"]
        assert statement["parent_id"] == 0
        # inclusive I/O is consistent: the statement span saw at least the
        # execute span's physical reads, and matches the wire I/O block
        (execute,) = [s for s in spans if s["name"] == "execute"]
        assert statement["io"]["physical_reads"] >= \
            execute["io"]["physical_reads"]
        assert statement["io"]["physical_reads"] == result.io.physical_reads
        assert statement["io"]["physical_writes"] == result.io.physical_writes
        assert result.io.physical_reads > 0
        # wall-clock stamps exist everywhere; the client root opened first
        assert all(s["start_ts"] > 0 for s in spans)
        assert spans[0]["start_ts"] <= statement["start_ts"] + 1e-6
        # session_id is stamped into server spans
        assert statement["attrs"]["session_id"] == client.session_id
        assert client.last_trace is trace


def test_untraced_statement_carries_no_trace(server):
    with connect(*server.address) as client:
        result = client.execute("retrieve (Emp1.name)")
        assert result.trace is None
        assert client.traces == client.traces.__class__([], maxlen=64) \
            or len(client.traces) == 0


def test_concurrent_traced_sessions_never_share_spans(manager):
    """Regression for the shared-tracer race: with the old global
    enable/disable toggle, one session's ``finally: disable()`` could
    silently untrace the other mid-statement, or interleave both
    sessions' spans into one dump.  Per-statement tracers make every
    traced statement produce its own complete tree."""
    s1 = manager.open_session("a")
    s2 = manager.open_session("b")
    rounds = 12
    results = {1: [], 2: []}
    errors = []

    def run(session, key, statement):
        try:
            for i in range(rounds):
                result = session.run_statement(
                    statement, trace_id=f"s{key}-{i}")
                results[key].append(result["trace"])
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    t1 = threading.Thread(target=run,
                          args=(s1, 1, "retrieve (Emp1.name)"))
    t2 = threading.Thread(target=run,
                          args=(s2, 2, "retrieve (Dept.name)"))
    t1.start()
    t2.start()
    t1.join(timeout=30.0)
    t2.join(timeout=30.0)
    assert errors == []
    assert len(results[1]) == len(results[2]) == rounds
    for key, traces in results.items():
        session_id = s1.id if key == 1 else s2.id
        for i, trace in enumerate(traces):
            assert trace["trace_id"] == f"s{key}-{i}"
            spans = trace["spans"]
            # no silent untracing: the engine work is always present
            assert "execute" in {s["name"] for s in spans}
            # no interleaving: every span belongs to this session
            for span in spans:
                assert span["attrs"]["session_id"] == session_id
                assert span["trace_id"] == f"s{key}-{i}"


def test_session_trace_toggle_without_client_id_still_traces(manager):
    session = manager.open_session("t")
    session.run_meta("trace", ["on"])
    result = session.run_statement("retrieve (Emp1.name)")
    assert "trace" in result
    names = {s["name"] for s in result["trace"]["spans"]}
    assert {"statement", "lock_acquire", "execute"} <= names


def test_lock_acquire_span_reports_contended_wait(company):
    """A statement that blocks on another session's lock reports the
    wait, per resource, in its ``lock_acquire`` span."""
    mgr = SessionManager(company["db"], lock_timeout=10.0, workers=2,
                         queue_depth=8)
    try:
        holder = mgr.open_session("holder")
        waiter = mgr.open_session("waiter")
        holder.run_statement("begin")
        holder.run_statement("replace (Emp1.salary = 1)")  # X(Emp1), held

        def release_soon():
            import time

            time.sleep(0.3)
            holder.run_statement("commit")

        thread = threading.Thread(target=release_soon)
        thread.start()
        result = waiter.run_statement("retrieve (Emp1.name)",
                                      trace_id="wait-test")
        thread.join(timeout=10.0)
        (lock_span,) = [s for s in result["trace"]["spans"]
                        if s["name"] == "lock_acquire"
                        and s["attrs"].get("contended")]
        assert lock_span["attrs"]["waited_ms"] > 0
        contended = lock_span["attrs"]["contended"]
        assert any(c["resource"] == "Emp1" and c["mode"] == "S"
                   for c in contended)
        # ... and the contention profiler saw the same wait
        top = mgr.locks.contention.top()
        assert any(t["resource"] == "Emp1" and t["waits"] >= 1 for t in top)
    finally:
        mgr.shutdown()


def test_wal_flush_span_appears_in_traced_write():
    from repro import Database
    from tests.conftest import define_employee_schema

    db = Database(wal=True)
    define_employee_schema(db)
    dept = db.insert("Dept", {"name": "toys", "budget": 1, "org": None})
    db.insert("Emp1", {"name": "zed", "age": 1, "salary": 1, "dept": dept})
    db.telemetry.tracer.enable()
    db.execute("replace (Emp1.salary = 2)")
    db.telemetry.tracer.disable()
    flushes = db.telemetry.tracer.spans_named("wal_flush")
    assert flushes and all(f.attrs["records"] > 0 for f in flushes)
    # the WAL lives on its own accounted device: no page I/O in the span
    assert all(f.io["physical_reads"] == 0 and f.io["physical_writes"] == 0
               for f in flushes)


# ---------------------------------------------------------------------------
# the stats verb
# ---------------------------------------------------------------------------


def test_stats_verb_reports_server_health_blocks(server):
    with connect(*server.address) as client:
        client.execute("retrieve (Emp1.name)")
        stats = client.stats()
        assert stats["uptime_seconds"] > 0
        assert stats["statements_total"] >= 1
        assert stats["requests_total"] >= stats["statements_total"]
        assert 0.0 <= stats["io"]["hit_rate"] <= 1.0
        assert stats["io"]["logical_reads"] >= stats["io"]["buffer_hits"]
        assert stats["locks"]["wait_seconds_total"] >= 0.0
        assert isinstance(stats["locks"]["hottest"], list)
        assert stats["wal"]["enabled"] is False  # company db has no WAL
        assert stats["slow"]["threshold_ms"] > 0
        assert isinstance(stats["slow"]["tail"], list)
        (detail,) = stats["sessions_detail"]
        assert detail["statements"] >= 1
        assert "retrieve" in detail["last_statement"]
        # kept for older dashboards / the soak test
        assert stats["connections_total"] >= 1


def test_stats_statements_total_increments(server):
    with connect(*server.address) as client:
        before = client.stats()["statements_total"]
        client.execute("retrieve (Emp1.name)")
        client.execute("retrieve (Dept.name)")
        assert client.stats()["statements_total"] == before + 2


# ---------------------------------------------------------------------------
# the HTTP sidecar
# ---------------------------------------------------------------------------


def test_metrics_endpoint_serves_parseable_prometheus_text(server, sidecar):
    with connect(*server.address) as client:
        client.execute("retrieve (Emp1.name)")
    status, content_type, body = _get(
        f"http://{sidecar.host}:{sidecar.port}", "/metrics")
    assert status == 200
    assert content_type.startswith("text/plain")
    assert "version=0.0.4" in content_type
    samples = parse_prometheus(body)
    assert samples, "no samples parsed"
    # the acceptance names: lock-wait histogram and the slow-query counter
    assert "# TYPE lock_wait_seconds histogram" in body
    assert samples["slow_queries_total"] >= 0
    assert samples['server_requests_total{kind="statement"}'] >= 1
    assert samples["server_connections_total"] >= 1


def test_health_endpoint_reports_ok_and_wal_posture(server, sidecar):
    status, content_type, body = _get(
        f"http://{sidecar.host}:{sidecar.port}", "/health")
    assert status == 200
    assert content_type.startswith("application/json")
    health = json.loads(body)
    assert health["status"] == "ok"
    assert health["uptime_seconds"] > 0
    assert health["wal"] == {"enabled": False, "needs_recovery": False}
    assert health["doctor_clean_at_start"] is True


def test_slow_endpoint_returns_recorded_entries(server, sidecar):
    server.db.telemetry.slowlog.configure(threshold_ms=0.0)
    with connect(*server.address) as client:
        client.execute("retrieve (Emp1.name)")
    status, content_type, body = _get(
        f"http://{sidecar.host}:{sidecar.port}", "/slow")
    assert status == 200 and content_type.startswith("application/json")
    document = json.loads(body)
    assert document["threshold_ms"] == 0.0
    assert document["total"] >= 1
    entry = document["entries"][-1]
    assert "retrieve" in entry["statement"]
    assert entry["outcome"] == "ok"
    assert entry["duration_ms"] >= 0 and "io" in entry


def test_unknown_path_is_404(sidecar):
    with pytest.raises(urllib.error.HTTPError) as info:
        urlopen(f"http://{sidecar.host}:{sidecar.port}/nope", timeout=10.0)
    assert info.value.code == 404


def test_scraping_never_charges_engine_page_io(server, sidecar):
    """A scrape of all three endpoints moves zero pages: observability
    reads counters, not the database."""
    stats = server.db.stats
    before = (stats.physical_reads, stats.physical_writes,
              stats.logical_reads)
    base = f"http://{sidecar.host}:{sidecar.port}"
    for __ in range(5):
        for path in ("/metrics", "/health", "/slow"):
            assert _get(base, path)[0] == 200
    assert (stats.physical_reads, stats.physical_writes,
            stats.logical_reads) == before


# ---------------------------------------------------------------------------
# profiles: slow-query log and lock contention
# ---------------------------------------------------------------------------


def test_slowlog_threshold_and_ring_capacity():
    metrics = MetricsRegistry()
    log = SlowQueryLog(capacity=3, threshold_ms=10.0, metrics=metrics)
    assert "slow_queries_total 0" in metrics.render_prometheus()
    assert log.observe("fast", duration_ms=9.9) is False
    assert len(log) == 0
    for i in range(5):
        assert log.observe(f"slow {i}", duration_ms=10.0 + i) is True
    assert len(log) == 3  # ring wrapped: newest three kept
    assert [e["statement"] for e in log.entries()] == \
        ["slow 2", "slow 3", "slow 4"]
    # the counter keeps the true total even after the wrap
    assert metrics.value("slow_queries_total") == 5
    assert [e["statement"] for e in log.tail(2)] == ["slow 3", "slow 4"]
    assert "slow 4" in log.render_text()
    log.configure(threshold_ms=100.0, capacity=8)
    assert log.observe("now fast", duration_ms=50.0) is False
    assert log.capacity == 8 and len(log) == 3


def test_slowlog_records_outcome_and_lock_breakdown():
    log = SlowQueryLog(threshold_ms=0.0)
    log.observe("replace (Emp1.salary = 1)", duration_ms=12.5,
                plan="scan(Emp1)", io={"reads": 3, "writes": 1, "total": 4},
                lock_wait_ms=7.0,
                lock_waits=[{"resource": "Emp1", "mode": "X",
                             "waited_ms": 7.0}],
                session="s1", outcome="DeadlockError", rows=0)
    (entry,) = log.entries()
    assert entry["outcome"] == "DeadlockError"
    assert entry["lock_wait_ms"] == 7.0
    assert entry["lock_waits"][0]["resource"] == "Emp1"
    assert entry["io"]["total"] == 4 and entry["plan"] == "scan(Emp1)"


def test_served_slow_statement_lands_in_slowlog_with_plan(server):
    server.db.telemetry.slowlog.configure(threshold_ms=0.0)
    with connect(*server.address) as client:
        client.execute("retrieve (Emp1.name, Emp1.dept.name)")
    entry = server.db.telemetry.slowlog.entries()[-1]
    assert entry["statement"] == "retrieve (Emp1.name, Emp1.dept.name)"
    assert entry["plan"] and entry["rows"] == 6
    assert entry["session"]  # attributed to the serving session


def test_embedded_slow_statement_lands_in_slowlog(company):
    db = company["db"]
    db.telemetry.slowlog.configure(threshold_ms=0.0)
    db.execute("retrieve (Emp1.name)")
    entry = db.telemetry.slowlog.entries()[-1]
    assert entry["statement"] == "retrieve (Emp1.name)"
    assert entry["rows"] == 6 and entry["outcome"] == "ok"


def test_contention_profiler_top_and_histogram():
    profiler = ContentionProfiler()
    for waited in (0.05, 0.2, 0.9):
        profiler.record("Emp1", "X", waited)
    profiler.record("Dept", "S", 0.4)
    top = profiler.top(k=2)
    assert [t["resource"] for t in top] == ["Emp1", "Dept"]
    assert top[0]["waits"] == 3
    assert top[0]["total_wait_s"] == pytest.approx(1.15)
    assert top[0]["by_mode"] == {"X": 3}
    histogram = profiler.histogram("Emp1")
    assert sum(histogram) == 3
    assert profiler.histogram("Nope") is None
    snapshot = profiler.snapshot()
    assert snapshot["Dept"]["max_s"] == pytest.approx(0.4)


def test_acquire_info_reports_waited_and_contended():
    locks = LockManager(timeout=10.0)
    a = locks.owner("a")
    b = locks.owner("b")
    footprint = LockFootprint(exclusive=frozenset({"Emp1"}))
    info = locks.acquire(a, footprint)
    assert info.waited == 0.0 and info.contended == ()
    grabbed = {}

    def contender():
        grabbed["info"] = locks.acquire(b, footprint)

    thread = threading.Thread(target=contender)
    thread.start()
    import time

    time.sleep(0.2)
    locks.release_all(a)
    thread.join(timeout=10.0)
    info = grabbed["info"]
    assert info.waited > 0
    assert ("Emp1", "X") in info.contended
    assert info.wait_breakdown()[0]["resource"] == "Emp1"
    assert locks.contention.top()[0]["resource"] == "Emp1"


def test_queue_wait_is_zero_outside_pool_and_measured_inside():
    assert current_queue_wait() == 0.0
    metrics = MetricsRegistry()
    pool = WorkerPool(workers=1, queue_depth=8, metrics=metrics)
    seen = []
    pool.submit(lambda: seen.append(current_queue_wait())).wait(5.0)
    pool.shutdown()
    assert len(seen) == 1 and seen[0] >= 0.0
    assert metrics.histogram("queue_wait_seconds").count() == 1


# ---------------------------------------------------------------------------
# label escaping (Prometheus exposition)
# ---------------------------------------------------------------------------


def test_prometheus_label_values_are_escaped():
    registry = MetricsRegistry()
    registry.counter("odd_total", "labels with hostile values").inc(
        3, kind='say "hi"\nback\\slash')
    text = registry.render_prometheus()
    assert 'odd_total{kind="say \\"hi\\"\\nback\\\\slash"} 3' in text
    # every sample still occupies exactly one line
    sample_lines = [line for line in text.splitlines()
                    if line and not line.startswith("#")]
    assert len(sample_lines) == 1
    assert parse_prometheus(text) == \
        {'odd_total{kind="say \\"hi\\"\\nback\\\\slash"}': 3.0}


# ---------------------------------------------------------------------------
# the \top dashboard
# ---------------------------------------------------------------------------


def test_render_top_formats_a_stats_snapshot(server):
    with connect(*server.address) as client:
        client.execute("retrieve (Emp1.name)")
        stats = client.stats()
    frame = render_top(stats)
    assert "repro top" in frame
    assert "hit rate" in frame and "locks" in frame and "wal" in frame
    assert "sessions:" in frame  # the stats connection itself is listed
    # rates need a previous frame; totals are monotone so the delta is 0+
    later = dict(stats)
    later["statements_total"] = stats["statements_total"] + 5
    frame2 = render_top(later, prev=stats, elapsed=2.0)
    assert "(2.5/s)" in frame2


def test_run_top_polls_requested_frames(server):
    with connect(*server.address) as client:
        out = io.StringIO()
        frames = run_top(client, iterations=2, interval=0.01, out=out)
    assert frames == 2
    assert out.getvalue().count("repro top") == 2


def test_shell_top_meta_command(server):
    from repro.cli import Shell

    out = io.StringIO()
    shell = Shell(client=connect(*server.address), out=out)
    try:
        shell.run_meta("\\top 1 0")
        assert "repro top" in out.getvalue()
        assert shell.errors == 0
    finally:
        shell.close()


def test_shell_top_requires_connection():
    from repro.cli import Shell

    out = io.StringIO()
    shell = Shell(out=out)
    shell.run_meta("\\top")
    assert shell.errors == 1
    assert "needs a connected server" in out.getvalue()


def test_connected_shell_trace_dump_shows_cross_process_tree(server):
    from repro.cli import Shell

    out = io.StringIO()
    shell = Shell(client=connect(*server.address), out=out)
    try:
        shell.run_block("\\trace on\nretrieve (Emp1.name);\n\\trace dump")
        text = out.getvalue()
        assert "tracing on" in text
        assert "client_request" in text
        assert "statement" in text and "lock_acquire" in text
        shell.run_block("\\trace clear\n\\trace off\n\\trace dump")
        text = out.getvalue()
        assert "trace cleared" in text and "tracing off" in text
        assert "(no spans recorded)" in text
        assert shell.errors == 0
    finally:
        shell.close()


def test_connected_shell_trace_dump_to_file(server, tmp_path):
    from repro.cli import Shell

    out = io.StringIO()
    target = tmp_path / "wire-trace.jsonl"
    shell = Shell(client=connect(*server.address), out=out)
    try:
        shell.run_block(
            f"\\trace on\nretrieve (Emp1.name);\n\\trace dump {target}")
        lines = target.read_text().strip().splitlines()
        spans = [json.loads(line) for line in lines]
        assert {"client_request", "statement"} <= {s["name"] for s in spans}
        assert f"wrote {len(spans)} span(s)" in out.getvalue()
    finally:
        shell.close()


# ---------------------------------------------------------------------------
# /health doctor TTL
# ---------------------------------------------------------------------------


def _unhealthy_report():
    from types import SimpleNamespace

    return SimpleNamespace(healthy=False, findings=["page checksum bad"])


def test_health_doctor_verdict_refreshes_after_ttl(company, sidecar, server):
    import time as _time

    server.health_ttl = 0.05
    base = f"http://{sidecar.host}:{sidecar.port}"
    status, __, body = _get(base, "/health")
    assert status == 200
    health = json.loads(body)
    assert health["doctor_clean"] is True
    assert health["health_ttl_seconds"] == 0.05
    # the database goes bad mid-run
    company["db"].doctor = _unhealthy_report
    status = 200
    deadline = _time.time() + 5.0
    while _time.time() < deadline:
        _time.sleep(0.06)
        try:
            status, __, body = _get(base, "/health")
        except urllib.error.HTTPError as exc:
            status, body = exc.code, exc.read().decode("utf-8")
        if status == 503:
            break
    health = json.loads(body)
    assert status == 503
    assert health["status"] == "needs_recovery"
    assert health["doctor_clean"] is False
    assert health["doctor_findings"] == 1
    # the start-of-run snapshot is immutable history
    assert health["doctor_clean_at_start"] is True


def test_health_ttl_zero_means_start_only(company, server):
    server.health_ttl = 0.0
    company["db"].doctor = _unhealthy_report
    health = server.health()
    assert health["status"] == "ok"
    assert health["doctor_clean"] is True


def test_health_ttl_caches_within_window(company, server):
    calls = [0]
    real_doctor = company["db"].doctor

    def counting_doctor():
        calls[0] += 1
        return real_doctor()

    server.health_ttl = 3600.0
    company["db"].doctor = counting_doctor
    for __ in range(5):
        assert server.health()["status"] == "ok"
    assert calls[0] == 0  # the start-of-run verdict is still fresh
