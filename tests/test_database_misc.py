"""Database-facade odds and ends: errors, index upkeep, instrumentation."""

import pytest

from repro.errors import (
    FieldError,
    ParseError,
    ReplicationError,
    UnknownSetError,
    UnknownTypeError,
)


def test_insert_into_unknown_set(company):
    with pytest.raises(UnknownSetError):
        company["db"].insert("Nope", {})


def test_create_set_with_unknown_type(company):
    with pytest.raises(UnknownTypeError):
        company["db"].create_set("X", "NOPE")


def test_update_unknown_field(company):
    db = company["db"]
    with pytest.raises(FieldError):
        db.update("Emp1", company["emps"]["alice"], {"bogus": 1})


def test_noop_update_is_free(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    db.cold_cache()
    before = db.stats.snapshot()
    db.update("Dept", company["depts"]["toys"], {"name": "toys"})  # same value
    cost = db.stats.snapshot() - before
    assert cost.physical_writes == 0  # nothing changed, nothing propagated
    db.verify()


def test_index_follows_inserts_updates_deletes(company):
    db = company["db"]
    info = db.build_index("Emp1.salary")
    oid = db.insert("Emp1", {"name": "gina", "age": 1, "salary": 123, "dept": None})
    assert info.index.lookup(123) == [oid]
    db.update("Emp1", oid, {"salary": 456})
    assert info.index.lookup(123) == []
    assert info.index.lookup(456) == [oid]
    db.delete("Emp1", oid)
    assert info.index.lookup(456) == []


def test_drop_index_restores_filescan(company):
    db = company["db"]
    info = db.build_index("Emp1.salary")
    assert "IndexScan" in db.execute("retrieve (Emp1.name) where Emp1.salary = 50000").plan
    db.drop_index(info.name)
    assert "FileScan" in db.execute("retrieve (Emp1.name) where Emp1.salary = 50000").plan


def test_path_index_requires_existing_path(company):
    with pytest.raises(ReplicationError):
        company["db"].build_index("Emp1.dept.name")


def test_index_target_too_short(company):
    from repro.errors import InvalidPathError

    with pytest.raises(InvalidPathError):
        company["db"].build_index("Emp1")


def test_execute_propagates_parse_errors(company):
    with pytest.raises(ParseError):
        company["db"].execute("select * from Emp1")


def test_measure_and_cold_cache(company):
    db = company["db"]
    db.cold_cache()
    cost = db.measure(lambda: db.get("Emp1", company["emps"]["alice"]))
    assert cost.physical_reads >= 1
    cost2 = db.measure(lambda: db.get("Emp1", company["emps"]["alice"]))
    assert cost2.physical_reads == 0  # warm


def test_get_returns_hidden_fields_for_inspection(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.name")
    obj = db.get("Emp1", company["emps"]["alice"])
    assert path.hidden_fields[0] in obj.values


def test_refresh_on_non_lazy_path_is_noop(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    assert db.refresh("Emp1.dept.name") == 0
    assert db.refresh() == 0


def test_query_result_len_and_columns(company):
    res = company["db"].execute("retrieve (Emp1.name, Emp1.age)")
    assert len(res) == 6
    assert res.columns == ("Emp1.name", "Emp1.age")


def test_delete_statement_respects_replication(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    db.execute("delete from Emp1 where Emp1.salary < 70000")
    db.verify()
    assert db.catalog.get_set("Emp1").count() == 4


def test_update_via_statement_with_string_escape(company):
    db = company["db"]
    res = db.execute("replace (Dept.name = 'new name') where Dept.name = 'toys'")
    assert len(res) == 1
    got = db.execute("retrieve (Dept.name) where Dept.budget = 100")
    assert got.rows == [("new name",)]
