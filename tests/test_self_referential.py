"""Self-referential schemas: a set replicating a path into itself.

``EMP.manager: ref EMP`` makes Emp1 both the source set and the home of
the referenced objects -- link owners and members live in the same file,
and an object can simultaneously be a source member (with hidden fields)
and a link owner (with a (link-OID, link-ID) pair).
"""

import pytest

from repro import Database, TypeDefinition, char_field, int_field, ref_field
from repro.errors import IntegrityError


@pytest.fixture()
def mdb():
    db = Database()
    db.define_type(
        TypeDefinition(
            "EMP",
            [char_field("name", 16), int_field("salary"), ref_field("manager", "EMP")],
        )
    )
    db.create_set("Emp1", "EMP")
    boss = db.insert("Emp1", {"name": "boss", "salary": 100, "manager": None})
    mid = db.insert("Emp1", {"name": "mid", "salary": 50, "manager": boss})
    workers = [
        db.insert("Emp1", {"name": f"w{i}", "salary": 10, "manager": mid})
        for i in range(3)
    ]
    return db, boss, mid, workers


def test_one_level_self_path(mdb):
    db, boss, mid, workers = mdb
    path = db.replicate("Emp1.manager.name")
    db.verify()
    assert db.get("Emp1", workers[0]).values[path.hidden_field_for("name")] == "mid"
    assert db.get("Emp1", mid).values[path.hidden_field_for("name")] == "boss"
    assert db.get("Emp1", boss).values[path.hidden_field_for("name")] == ""


def test_self_path_propagation(mdb):
    db, boss, mid, workers = mdb
    path = db.replicate("Emp1.manager.name")
    db.update("Emp1", mid, {"name": "manager"})
    for w in workers:
        assert db.get("Emp1", w).values[path.hidden_field_for("name")] == "manager"
    # mid's own replicated value (of boss) is untouched
    assert db.get("Emp1", mid).values[path.hidden_field_for("name")] == "boss"
    db.verify()


def test_two_level_self_path(mdb):
    db, boss, mid, workers = mdb
    path = db.replicate("Emp1.manager.manager.name")
    assert db.get("Emp1", workers[0]).values[path.hidden_field_for("name")] == "boss"
    db.update("Emp1", boss, {"name": "ceo"})
    assert db.get("Emp1", workers[1]).values[path.hidden_field_for("name")] == "ceo"
    db.verify()


def test_self_path_rewiring(mdb):
    db, boss, mid, workers = mdb
    path = db.replicate("Emp1.manager.name")
    db.update("Emp1", workers[0], {"manager": boss})
    assert db.get("Emp1", workers[0]).values[path.hidden_field_for("name")] == "boss"
    db.verify()


def test_self_path_delete_protection(mdb):
    db, boss, mid, workers = mdb
    db.replicate("Emp1.manager.name")
    with pytest.raises(IntegrityError):
        db.delete("Emp1", mid)  # still managed by workers
    for w in workers:
        db.delete("Emp1", w)
    db.delete("Emp1", mid)  # fine now
    db.verify()


def test_self_path_query(mdb):
    db, boss, mid, workers = mdb
    db.replicate("Emp1.manager.name")
    res = db.execute("retrieve (Emp1.name, Emp1.manager.name) where Emp1.salary = 10")
    assert "replicated" in res.plan
    assert sorted(res.rows) == [("w0", "mid"), ("w1", "mid"), ("w2", "mid")]
