"""Model-vs-actual drift on the Section 6 workload (acceptance: < 15%)."""

import random

import pytest

from repro.workloads import (
    WorkloadConfig,
    build_model_database,
    model_prediction,
    run_read_query,
    run_update_query,
)

#: the Figure 11-style scaled configuration (unclustered, f = 5)
_CONFIG = dict(n_s=300, f=5, f_r=0.01, f_s=0.01, clustered=False)


@pytest.mark.parametrize("strategy", ["none", "inplace", "separate"])
def test_read_drift_under_15_percent_unclustered(strategy):
    cfg = WorkloadConfig(strategy=strategy, **_CONFIG)
    mdb = build_model_database(cfg)
    rng = random.Random(cfg.seed + 1)
    for __ in range(6):
        run_read_query(mdb, rng)
    drift = mdb.db.telemetry.drift
    assert len(drift.select(kind="read", strategy=strategy)) == 6
    assert drift.mean_rel_error("read", strategy) < 0.15


def test_update_drift_is_recorded_and_bounded():
    cfg = WorkloadConfig(strategy="inplace", **_CONFIG)
    mdb = build_model_database(cfg)
    rng = random.Random(cfg.seed + 1)
    for __ in range(6):
        run_update_query(mdb, rng)
    drift = mdb.db.telemetry.drift
    records = drift.select(kind="update", strategy="inplace")
    assert len(records) == 6
    predicted = model_prediction(cfg, "update")
    assert all(r.predicted == predicted for r in records)
    # same tolerance the model-vs-engine benchmark enforces
    mean_obs = sum(r.observed for r in records) / len(records)
    assert abs(mean_obs - predicted) <= 0.30 * predicted + 2


def test_drift_lands_in_monitor_report():
    cfg = WorkloadConfig(strategy="none", **_CONFIG)
    mdb = build_model_database(cfg)
    rng = random.Random(1)
    run_read_query(mdb, rng)
    report = mdb.db.monitor.report()
    assert "model-vs-actual drift" in report
    assert "none" in report


def test_model_prediction_rejects_unknown_kind():
    cfg = WorkloadConfig(**_CONFIG)
    with pytest.raises(ValueError):
        model_prediction(cfg, "scan")
