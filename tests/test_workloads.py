"""Workload generator + empirical simulator tests."""

import random

import pytest

from repro.errors import CostModelError
from repro.workloads import (
    WorkloadConfig,
    build_model_database,
    compare_strategies,
    percent_differences,
    run_read_query,
    run_update_query,
)


def small(**kw):
    defaults = dict(n_s=120, f=2, f_r=0.02, f_s=0.02, buffer_frames=1024)
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def test_config_validation():
    with pytest.raises(CostModelError):
        WorkloadConfig(r=10)
    with pytest.raises(CostModelError):
        WorkloadConfig(strategy="bogus")


def test_config_derived_counts():
    cfg = WorkloadConfig(n_s=1000, f=3, f_r=0.002, f_s=0.001)
    assert cfg.n_r == 3000
    assert cfg.objects_per_read == 6
    assert cfg.objects_per_update == 1


def test_build_sharing_level_exact():
    mdb = build_model_database(small())
    counts = {}
    for __oid, obj in mdb.db.catalog.get_set("R").scan():
        counts[obj.values["sref"]] = counts.get(obj.values["sref"], 0) + 1
    assert set(counts.values()) == {2}
    assert len(counts) == 120


def test_build_sizes_and_counts():
    mdb = build_model_database(small())
    assert mdb.db.catalog.get_set("R").count() == 240
    assert mdb.db.catalog.get_set("S").count() == 120
    r_obj = mdb.db.get("R", mdb.r_oids[0])
    assert r_obj.type_def.data_width == 100


def test_clustered_load_is_key_ordered():
    mdb = build_model_database(small(clustered=True))
    keys = [obj.values["field_r"] for __oid, obj in mdb.db.catalog.get_set("R").scan()]
    assert keys == sorted(keys)


def test_unclustered_load_is_shuffled():
    mdb = build_model_database(small(clustered=False))
    keys = [obj.values["field_r"] for __oid, obj in mdb.db.catalog.get_set("R").scan()]
    assert keys != sorted(keys)


def test_replicated_build_verifies():
    for strategy in ("inplace", "separate"):
        mdb = build_model_database(small(strategy=strategy))
        mdb.db.verify()


def test_queries_touch_expected_row_counts():
    mdb = build_model_database(small())
    rng = random.Random(7)
    assert run_read_query(mdb, rng) > 0
    assert run_update_query(mdb, rng) > 0
    mdb.db.verify()


def test_update_propagation_consistency_under_mix():
    mdb = build_model_database(small(strategy="inplace"))
    rng = random.Random(9)
    for __ in range(5):
        run_update_query(mdb, rng)
        run_read_query(mdb, rng)
    mdb.db.verify()


def test_strategy_ordering_matches_model_shape():
    """Empirical check of the headline result at a moderate sharing level."""
    costs = compare_strategies(small(f=5, n_s=200), trials=3)
    # reads: in-place < separate < none (separate still beats none at f>1)
    assert costs["inplace"].read < costs["none"].read
    assert costs["separate"].read < costs["none"].read
    # updates: none < separate < in-place
    assert costs["none"].update <= costs["separate"].update
    assert costs["separate"].update < costs["inplace"].update


def test_percent_differences_shape():
    costs = compare_strategies(small(f=5, n_s=200), trials=3)
    pct = percent_differences(costs, p_updates=(0.0, 0.5, 1.0))
    assert pct["inplace"][0] < 0  # wins read-only
    assert pct["inplace"][-1] > 0  # loses update-only
    assert pct["inplace"][-1] > pct["separate"][-1]  # separate decays slower


def test_lazy_strategy_runs_in_simulator():
    mdb = build_model_database(small(strategy="inplace", lazy=True))
    rng = random.Random(11)
    run_update_query(mdb, rng)
    run_read_query(mdb, rng)  # forces refresh
    mdb.db.verify()
