"""Prometheus text-exposition conformance for ``render_prometheus``.

The scrape endpoint is only useful if real Prometheus ingests it, so the
format rules are pinned here: cumulative ``_bucket`` series ending in a
``+Inf`` bucket equal to ``_count``, a ``_sum``/``_count`` pair per label
set, ``# HELP`` before ``# TYPE`` before the samples of each metric, and
backslash-escaped label values.
"""

import math
import re

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.statstats import LATENCY_BUCKETS_MS, StatementStats

_SAMPLE_RE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
                        r"(?:\{(?P<labels>.*)\})? (?P<value>\S+)$")
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)='
                       r'"(?P<value>(?:[^"\\]|\\.)*)"(?:,|$)')


def parse_exposition(text: str):
    """Parse the text format into (samples, helps, types, lines).

    samples: list of (metric name, {label: unescaped value}, float value).
    """
    samples, helps, types = [], {}, {}
    lines = text.splitlines()
    for line in lines:
        if not line:
            continue
        if line.startswith("# HELP "):
            name, help_text = line[len("# HELP "):].split(" ", 1)
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            name, kind = line[len("# TYPE "):].split(" ", 1)
            types[name] = kind
            continue
        match = _SAMPLE_RE.match(line)
        assert match is not None, f"unparseable exposition line: {line!r}"
        labels = {}
        raw = match.group("labels")
        if raw:
            consumed = sum(len(m.group(0)) for m in _LABEL_RE.finditer(raw))
            assert consumed == len(raw), f"unparseable label set: {raw!r}"
            for m in _LABEL_RE.finditer(raw):
                value = (m.group("value")
                         .replace("\\n", "\n")
                         .replace('\\"', '"')
                         .replace("\\\\", "\\"))
                labels[m.group("key")] = value
        value_text = match.group("value")
        value = float("inf") if value_text == "+Inf" else float(value_text)
        samples.append((match.group("name"), labels, value))
    return samples, helps, types, lines


def _bucket_series(samples, name, labels):
    """(le, value) pairs of one histogram's bucket series, in emit order."""
    out = []
    for sample_name, sample_labels, value in samples:
        if sample_name != name + "_bucket":
            continue
        rest = {k: v for k, v in sample_labels.items() if k != "le"}
        if rest != labels:
            continue
        le = sample_labels["le"]
        out.append((math.inf if le == "+Inf" else float(le), value))
    return out


def _one(samples, name, labels):
    matches = [v for n, ls, v in samples if n == name and ls == labels]
    assert len(matches) == 1, f"expected exactly one {name}{labels}"
    return matches[0]


def _approx(value: float):
    import pytest

    return pytest.approx(value, rel=1e-6)


def test_histogram_buckets_are_cumulative_and_end_at_inf():
    registry = MetricsRegistry()
    hist = registry.histogram("req_ms", "latency", buckets=(1, 5, 25))
    for value in (0.5, 0.5, 3, 30, 100):
        hist.observe(value)
    samples, __, __, __ = parse_exposition(registry.render_prometheus())
    series = _bucket_series(samples, "req_ms", {})
    # ordered by bound, non-decreasing, +Inf last
    assert [le for le, __ in series] == [1.0, 5.0, 25.0, math.inf]
    values = [v for __, v in series]
    assert values == sorted(values)
    assert values == [2, 3, 3, 5]
    # the +Inf bucket equals _count (every observation lands somewhere)
    assert values[-1] == _one(samples, "req_ms_count", {})


def test_histogram_sum_count_pairing_per_label_set():
    registry = MetricsRegistry()
    hist = registry.histogram("q_ms", "", buckets=(10,))
    hist.observe(4, kind="read")
    hist.observe(6, kind="read")
    hist.observe(100, kind="write")
    samples, __, __, __ = parse_exposition(registry.render_prometheus())
    for labels, total, count in (({"kind": "read"}, 10, 2),
                                 ({"kind": "write"}, 100, 1)):
        assert _one(samples, "q_ms_sum", labels) == total
        assert _one(samples, "q_ms_count", labels) == count
        buckets = _bucket_series(samples, "q_ms", labels)
        assert buckets[-1] == (math.inf, count)


def test_help_precedes_type_precedes_samples():
    registry = MetricsRegistry()
    registry.counter("with_help", "documented").inc(3)
    registry.counter("no_help").inc(1)
    registry.histogram("h_ms", "a histogram", buckets=(1,)).observe(0.5)
    samples, helps, types, lines = parse_exposition(
        registry.render_prometheus())
    # every metric has a TYPE; HELP only where help text was given
    assert types == {"h_ms": "histogram", "no_help": "counter",
                     "with_help": "counter"}
    assert set(helps) == {"h_ms", "with_help"}
    # per metric: HELP line (if any) immediately before TYPE, both before
    # the metric's first sample
    for name in types:
        type_at = lines.index(f"# TYPE {name} {types[name]}")
        if name in helps:
            assert lines[type_at - 1] == f"# HELP {name} {helps[name]}"
        first_sample = min(i for i, line in enumerate(lines)
                           if not line.startswith("#")
                           and line.startswith(name))
        assert type_at < first_sample


def test_label_values_are_escaped():
    registry = MetricsRegistry()
    nasty = 'a"b\\c\nd'
    registry.counter("evil_total", "").inc(1, path=nasty)
    text = registry.render_prometheus()
    # the raw newline must not produce a second physical line
    assert [line for line in text.splitlines()
            if not line.startswith("#")] == \
        ['evil_total{path="a\\"b\\\\c\\nd"} 1']
    samples, __, __, __ = parse_exposition(text)
    assert _one(samples, "evil_total", {"path": nasty}) == 1


def test_result_cache_metrics_conform():
    """The result cache's counters and gauges render as well-formed
    exposition: pre-registered zero counters, labelled invalidation and
    bypass reasons, and gauges that track fills and flushes."""
    from repro.cache import ResultCache

    registry = MetricsRegistry()
    cache = ResultCache(capacity_bytes=10_000, enabled=True,
                        metrics=registry)
    # zero-valued counters are present before any traffic (rate() safety)
    samples, __, types, __ = parse_exposition(registry.render_prometheus())
    for name in ("result_cache_hits_total", "result_cache_misses_total",
                 "result_cache_evictions_total"):
        assert types[name] == "counter"
        assert _one(samples, name, {}) == 0
    cache.miss("retrieve (Emp1.name)")
    cache.fill("retrieve (Emp1.name)", ["Emp1.name"], [["a"]],
               "FileScan(Emp1)", {"__schema", "Emp1"})
    entry = cache.get("retrieve (Emp1.name)")
    assert cache.hit(entry) is not None
    cache.bypass("lazy_refresh")
    cache.invalidate({"Emp1"}, reason="write")
    samples, helps, types, __ = parse_exposition(registry.render_prometheus())
    assert _one(samples, "result_cache_hits_total", {}) == 1
    assert _one(samples, "result_cache_misses_total", {}) == 1
    assert _one(samples, "result_cache_bypass_total",
                {"reason": "lazy_refresh"}) == 1
    assert _one(samples, "result_cache_invalidations_total",
                {"reason": "write"}) == 1
    assert types["result_cache_bytes"] == "gauge"
    assert types["result_cache_entries"] == "gauge"
    assert _one(samples, "result_cache_entries", {}) == 0  # invalidated
    assert _one(samples, "result_cache_bytes", {}) == 0
    assert "result_cache_hits_total" in helps


def test_statement_latency_histogram_conforms():
    """The new per-fingerprint latency histogram obeys all of the above
    through the shared registry."""
    registry = MetricsRegistry()
    stats = StatementStats(metrics=registry)
    fp1 = stats.observe("retrieve (Emp1.name) where Emp1.age > 30", 3.0)
    stats.observe("retrieve (Emp1.name) where Emp1.age > 99", 1.0)
    fp2 = stats.observe('replace (Dept.name = "x")', 0.04, outcome="boom")
    assert fp1 != fp2
    samples, helps, types, __ = parse_exposition(registry.render_prometheus())
    assert types["statement_latency_ms"] == "histogram"
    assert "statement_latency_ms" in helps
    for fp, count in ((fp1, 2), (fp2, 1)):
        labels = {"fingerprint": fp}
        series = _bucket_series(samples, "statement_latency_ms", labels)
        assert [le for le, __ in series] == \
            [float(b) for b in LATENCY_BUCKETS_MS] + [math.inf]
        values = [v for __, v in series]
        assert values == sorted(values)
        assert values[-1] == count
        assert _one(samples, "statement_latency_ms_count", labels) == count
        assert _one(samples, "statement_calls_total", labels) == count
    assert _one(samples, "statement_errors_total", {"fingerprint": fp2}) == 1


def test_wait_event_series_conform():
    """Wait-event counters and the engine-latch histogram render as
    well-formed exposition through the shared registry: labelled
    ``wait_seconds_total`` / ``wait_events_total`` pairs per event, and
    cumulative latch-wait buckets ending at +Inf == _count."""
    from repro.telemetry.waitevents import (
        LATCH_WAIT_BUCKETS,
        WaitEventCollector,
    )

    registry = MetricsRegistry()
    collector = WaitEventCollector(metrics=registry)
    ctx = collector.begin_statement(1, "s1", "retrieve ( x )")
    collector.record("buffer_io", 0.004, count=2)
    collector.record("lock:Emp1", 0.010)
    collector.admission_granted(0.0002)
    collector.admission_granted(0.02)
    collector.admission_released(0.001)
    collector.finish_statement(ctx, duration_s=0.05)
    samples, helps, types, __ = parse_exposition(registry.render_prometheus())
    assert types["wait_seconds_total"] == "counter"
    assert types["wait_events_total"] == "counter"
    assert "wait_seconds_total" in helps
    assert _one(samples, "wait_seconds_total",
                {"event": "buffer_io"}) == _approx(0.004)
    assert _one(samples, "wait_events_total", {"event": "buffer_io"}) == 2
    assert _one(samples, "wait_seconds_total",
                {"event": "lock:Emp1"}) == _approx(0.010)
    # the cpu residual is a first-class event in the same family
    assert _one(samples, "wait_events_total", {"event": "cpu"}) == 1
    # the admission histogram: ordered cumulative buckets, +Inf == _count
    assert types["admission_wait_seconds"] == "histogram"
    series = _bucket_series(samples, "admission_wait_seconds", {})
    assert [le for le, __ in series] == \
        [float(b) for b in LATCH_WAIT_BUCKETS] + [math.inf]
    values = [v for __, v in series]
    assert values == sorted(values)
    assert values[-1] == 2
    assert _one(samples, "admission_wait_seconds_count", {}) == 2
    assert _one(samples, "admission_wait_seconds_sum", {}) == \
        _approx(0.0202)
    assert types["admission_hold_seconds_total"] == "counter"
    assert _one(samples, "admission_hold_seconds_total", {}) == \
        _approx(0.001)


def test_alert_series_conform():
    """``alert_firing`` is a gauge flipping 0/1 per alert label;
    ``alert_transitions_total`` counts labelled state changes."""
    from repro.telemetry.tsstore import AlertEngine

    registry = MetricsRegistry()
    engine = AlertEngine(metrics=registry)
    hot = {"firing": False}
    engine.add_rule("hot", "too hot", lambda: (1.0, hot["firing"]))
    samples, __, types, __ = parse_exposition(registry.render_prometheus())
    assert types["alert_firing"] == "gauge"
    assert _one(samples, "alert_firing", {"alert": "hot"}) == 0
    hot["firing"] = True
    engine.evaluate()
    hot["firing"] = False
    engine.evaluate()
    samples, __, types, __ = parse_exposition(registry.render_prometheus())
    assert types["alert_transitions_total"] == "counter"
    assert _one(samples, "alert_firing", {"alert": "hot"}) == 0
    assert _one(samples, "alert_transitions_total",
                {"alert": "hot", "to": "firing"}) == 1
    assert _one(samples, "alert_transitions_total",
                {"alert": "hot", "to": "resolved"}) == 1
