"""Concurrency stress: readers scan a replicated path while writers
update its source; every observed value must have actually been written
and the replication invariants must hold afterwards."""

import threading

import pytest

from repro.errors import RemoteError
from repro.server import connect
from repro.server.service import Server


@pytest.fixture()
def server(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    srv = Server(db, max_connections=16, workers=4, queue_depth=64,
                 lock_timeout=10.0).start()
    yield srv
    srv.shutdown()


def test_readers_never_observe_half_propagated_writes(server):
    """8+ concurrent connections: writers rename departments through the
    replicated path, readers scan Emp1.dept.name.  Set-granularity locks
    must make each propagation atomic: every observed department name is
    one some writer actually wrote (or the seed value), and within one
    scan all employees of one department agree on its name."""
    rounds = 12
    # each writer renames a department it owns; names are tagged so the
    # legal value set is known exactly
    writers = {"toys": 100, "tools": 200, "shoes": 300}  # name -> budget key
    legal = {dept: {dept} | {f"{dept}-v{i}" for i in range(rounds)}
             for dept in writers}
    emp_home = {  # employee -> department (immutable during the test)
        "alice": "toys", "bob": "toys", "carol": "tools",
        "dave": "tools", "erin": "shoes", "frank": "shoes",
    }
    errors = []
    violations = []
    observed = []
    stop = threading.Event()

    def writer(dept, budget):
        try:
            with connect(*server.address) as client:
                for i in range(rounds):
                    client.execute(
                        f'replace (Dept.name = "{dept}-v{i}") '
                        f'where Dept.budget = {budget}')
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(f"writer {dept}: {exc!r}")
        finally:
            stop.set()

    def reader(idx):
        try:
            with connect(*server.address) as client:
                while not stop.is_set() or idx < 2:  # at least one final scan
                    rows = client.execute(
                        "retrieve (Emp1.name, Emp1.dept.name)").rows
                    seen = {}
                    for name, dept_name in rows:
                        home = emp_home[name]
                        if dept_name not in legal[home]:
                            violations.append(
                                f"{name} observed {dept_name!r}, never written")
                        seen.setdefault(home, set()).add(dept_name)
                    for home, names in seen.items():
                        if len(names) > 1:
                            violations.append(
                                f"torn scan: {home} appeared as {sorted(names)}")
                    observed.append(rows)
                    if stop.is_set():
                        break
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(f"reader {idx}: {exc!r}")

    threads = [threading.Thread(target=writer, args=(d, b))
               for d, b in writers.items()]
    threads += [threading.Thread(target=reader, args=(i,)) for i in range(5)]
    assert len(threads) + len(writers) >= 8 or len(threads) >= 8
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(thread.is_alive() for thread in threads)
    assert errors == []
    assert violations == []
    assert len(observed) >= 5  # the readers really ran

    # after the dust settles: invariants hold and the doctor is happy
    with connect(*server.address) as client:
        assert "invariants hold" in client.meta("verify")
        assert "0 problem" in client.meta("doctor") or \
            "no problems" in client.meta("doctor").lower()
        # final state: the last written name is what replicas show
        rows = client.execute("retrieve (Emp1.name, Emp1.dept.name)").rows
        for name, dept_name in rows:
            assert dept_name == f"{emp_home[name]}-v{rounds - 1}"


def test_eight_clients_mixed_load_consistent(server):
    """The acceptance bar: >= 8 live connections at once, mixed reads and
    writes, zero errors other than explicit lock verdicts."""
    barrier = threading.Barrier(8, timeout=30.0)
    failures = []

    def worker(idx):
        try:
            with connect(*server.address) as client:
                barrier.wait()  # all 8 connected simultaneously
                for i in range(6):
                    if idx % 2:
                        rows = client.execute(
                            "retrieve (Emp1.name, Emp1.dept.name)").rows
                        assert len(rows) == 6
                    else:
                        client.execute(
                            f"replace (Emp1.salary = {1000 + idx * 10 + i}) "
                            f'where Emp1.name = "alice"')
        except Exception as exc:
            failures.append(f"worker {idx}: {exc!r}")

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert failures == []
    with connect(*server.address) as client:
        assert client.stats()["connections_total"] >= 8
        assert "invariants hold" in client.meta("verify")


def test_induced_deadlock_is_broken_over_the_wire(server):
    """Two transactions lock Emp1 / Emp2 in opposite orders; the server
    must abort exactly one with the ``deadlock`` code and the other must
    commit."""
    ready = threading.Barrier(2, timeout=30.0)
    verdicts = {}

    def txn(name, first, second):
        with connect(*server.address) as client:
            client.begin()
            client.execute(f"replace ({first}.salary = 1)")
            ready.wait()  # both hold their first lock: the cycle is set
            try:
                client.execute(f"replace ({second}.salary = 2)")
                client.commit()
                verdicts[name] = "committed"
            except RemoteError as exc:
                verdicts[name] = exc.code

    t1 = threading.Thread(target=txn, args=("a", "Emp1", "Emp2"))
    t2 = threading.Thread(target=txn, args=("b", "Emp2", "Emp1"))
    t1.start()
    t2.start()
    t1.join(timeout=30.0)
    t2.join(timeout=30.0)
    assert sorted(verdicts.values()) == ["committed", "deadlock"]
    assert server.db.telemetry.metrics.value("deadlocks_total") >= 1
    with connect(*server.address) as client:
        assert "invariants hold" in client.meta("verify")


def test_lock_wait_metrics_accumulate_under_contention(server):
    """Contending writers must be visible in lock_waits_total /
    lock_wait_seconds -- the observability the benchmark reports."""
    import time

    metrics = server.db.telemetry.metrics
    before = metrics.value("lock_waits_total")
    with connect(*server.address) as holder:
        holder.begin()
        holder.execute("replace (Emp1.salary = 1)")  # X(Emp1), held

        def blocked():
            with connect(*server.address) as client:
                client.execute("replace (Emp1.salary = 2)")  # must wait

        thread = threading.Thread(target=blocked)
        thread.start()
        time.sleep(0.3)  # let the waiter park on the lock
        holder.commit()
        thread.join(timeout=30.0)
    assert metrics.value("lock_waits_total") > before
    assert metrics.histogram("lock_wait_seconds").count() > 0
    assert metrics.histogram("lock_wait_seconds").sum() > 0.1
