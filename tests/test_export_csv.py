"""CSV export tests."""

import csv
import io

from repro.costmodel import Setting, figure11, figure12
from repro.costmodel.export import figure_csvs, selected_values_csv, series_csv


def test_series_csv_shape():
    graphs = figure11(points=5)
    text = series_csv(graphs, 10)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0][0] == "p_update"
    assert len(rows) == 6  # header + 5 points
    assert len(rows[0]) == 1 + 2 * 3  # two strategies x three selectivities
    assert float(rows[1][0]) == 0.0 and float(rows[-1][0]) == 1.0
    # values parse as floats
    assert all(float(cell) is not None for cell in rows[2][1:])


def test_figure_csvs_per_panel():
    graphs = figure11(points=3)
    csvs = figure_csvs(graphs)
    assert set(csvs) == {1, 10, 20, 50}
    for text in csvs.values():
        assert text.startswith("p_update")


def test_selected_values_csv():
    text = selected_values_csv(figure12(), Setting.UNCLUSTERED)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["setting", "strategy", "f", "f_r", "c_read", "c_update"]
    assert len(rows) == 1 + 6  # three strategies x two sharing levels
    none_f20 = next(r for r in rows[1:] if r[1] == "none" and r[2] == "20")
    assert none_f20[4] == "691"
