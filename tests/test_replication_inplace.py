"""In-place replication (Section 4): hidden fields, inverted paths, links."""

import pytest

from repro.errors import (
    DuplicateReplicationPathError,
    FieldError,
    IntegrityError,
)


def hidden_value(db, set_name, oid, path_text, field):
    path = db.catalog.get_path(path_text)
    return db.get(set_name, oid).values[path.hidden_field_for(field)]


# ---------------------------------------------------------------------------
# 1-level paths
# ---------------------------------------------------------------------------


def test_replicate_fills_existing_objects(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    for ename, dname in [("alice", "toys"), ("carol", "tools"), ("erin", "shoes")]:
        assert hidden_value(db, "Emp1", company["emps"][ename], "Emp1.dept.name", "name") == dname
    db.verify()


def test_replicate_fills_new_inserts(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    oid = db.insert(
        "Emp1", {"name": "gina", "age": 40, "salary": 90_000, "dept": company["depts"]["toys"]}
    )
    assert hidden_value(db, "Emp1", oid, "Emp1.dept.name", "name") == "toys"
    db.verify()


def test_source_update_propagates_to_referencers(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    db.update("Dept", company["depts"]["toys"], {"name": "games"})
    for ename in ("alice", "bob"):
        assert hidden_value(db, "Emp1", company["emps"][ename], "Emp1.dept.name", "name") == "games"
    # employees of other departments are untouched
    assert hidden_value(db, "Emp1", company["emps"]["carol"], "Emp1.dept.name", "name") == "tools"
    db.verify()


def test_update_to_unreplicated_field_does_not_propagate(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    db.cold_cache()
    cost = db.measure(
        lambda: (db.update("Dept", company["depts"]["toys"], {"budget": 999}),
                 db.storage.pool.flush_all())
    )
    # budget is not replicated: Emp1 is never touched, read or write
    emp_file = db.catalog.get_set("Emp1").file_id
    assert cost.io_for(emp_file) == 0
    db.verify()


def test_ref_update_moves_membership_and_value(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    db.update("Emp1", company["emps"]["alice"], {"dept": company["depts"]["shoes"]})
    assert hidden_value(db, "Emp1", company["emps"]["alice"], "Emp1.dept.name", "name") == "shoes"
    db.verify()
    # now updating toys must no longer touch alice
    db.update("Dept", company["depts"]["toys"], {"name": "games"})
    assert hidden_value(db, "Emp1", company["emps"]["alice"], "Emp1.dept.name", "name") == "shoes"
    assert hidden_value(db, "Emp1", company["emps"]["bob"], "Emp1.dept.name", "name") == "games"
    db.verify()


def test_ref_update_to_null_gives_default(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    db.update("Emp1", company["emps"]["alice"], {"dept": None})
    assert hidden_value(db, "Emp1", company["emps"]["alice"], "Emp1.dept.name", "name") == ""
    db.verify()


def test_insert_with_null_ref(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    oid = db.insert("Emp1", {"name": "nix", "age": 1, "salary": 1, "dept": None})
    assert hidden_value(db, "Emp1", oid, "Emp1.dept.name", "name") == ""
    db.verify()


def test_delete_emp_shrinks_link_object(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    db.delete("Emp1", company["emps"]["alice"])
    db.verify()
    db.delete("Emp1", company["emps"]["bob"])  # toys link object must now vanish
    db.verify()
    dept = db.get("Dept", company["depts"]["toys"])
    assert dept.link_entries == []


def test_delete_referenced_dept_refused(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    with pytest.raises(IntegrityError):
        db.delete("Dept", company["depts"]["toys"])
    # after removing its employees, the department can go
    db.delete("Emp1", company["emps"]["alice"])
    db.delete("Emp1", company["emps"]["bob"])
    db.delete("Dept", company["depts"]["toys"])
    db.verify()


def test_duplicate_path_rejected(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    with pytest.raises(DuplicateReplicationPathError):
        db.replicate("Emp1.dept.name")


def test_hidden_fields_not_writable_or_insertable(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.name")
    hf = path.hidden_fields[0]
    with pytest.raises(FieldError):
        db.update("Emp1", company["emps"]["alice"], {hf: "sneaky"})
    with pytest.raises(FieldError):
        db.insert("Emp1", {"name": "x", "age": 1, "salary": 1, "dept": None, hf: "no"})


def test_replication_is_per_instance_not_per_type(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    # Emp2 shares the declared type EMP but must stay unwidened.
    emp2_type = db.catalog.get_set("Emp2").type_def
    assert emp2_type.hidden_fields() == ()
    oid = db.insert(
        "Emp2", {"name": "zoe", "age": 2, "salary": 2, "dept": company["depts"]["toys"]}
    )
    assert "dept" in db.get("Emp2", oid).values
    db.verify()


# ---------------------------------------------------------------------------
# 2-level paths
# ---------------------------------------------------------------------------


def test_two_level_replication_values(company):
    db = company["db"]
    db.replicate("Emp1.dept.org.name")
    assert hidden_value(db, "Emp1", company["emps"]["alice"], "Emp1.dept.org.name", "name") == "acme"
    assert hidden_value(db, "Emp1", company["emps"]["erin"], "Emp1.dept.org.name", "name") == "globex"
    db.verify()


def test_two_level_terminal_update_ripples_two_links(company):
    db = company["db"]
    db.replicate("Emp1.dept.org.name")
    db.update("Org", company["orgs"]["acme"], {"name": "acme2"})
    for ename in ("alice", "bob", "carol", "dave"):
        assert (
            hidden_value(db, "Emp1", company["emps"][ename], "Emp1.dept.org.name", "name")
            == "acme2"
        )
    assert hidden_value(db, "Emp1", company["emps"]["erin"], "Emp1.dept.org.name", "name") == "globex"
    db.verify()


def test_two_level_intermediate_ref_update(company):
    db = company["db"]
    db.replicate("Emp1.dept.org.name")
    # move the whole toys department to globex
    db.update("Dept", company["depts"]["toys"], {"org": company["orgs"]["globex"]})
    for ename in ("alice", "bob"):
        assert (
            hidden_value(db, "Emp1", company["emps"][ename], "Emp1.dept.org.name", "name")
            == "globex"
        )
    assert hidden_value(db, "Emp1", company["emps"]["carol"], "Emp1.dept.org.name", "name") == "acme"
    db.verify()


def test_two_level_source_ref_update(company):
    db = company["db"]
    db.replicate("Emp1.dept.org.name")
    db.update("Emp1", company["emps"]["alice"], {"dept": company["depts"]["shoes"]})
    assert hidden_value(db, "Emp1", company["emps"]["alice"], "Emp1.dept.org.name", "name") == "globex"
    db.verify()


def test_two_level_delete_ripples(company):
    db = company["db"]
    db.replicate("Emp1.dept.org.name")
    # delete all acme employees: both dept links and the org link must empty
    for ename in ("alice", "bob", "carol", "dave"):
        db.delete("Emp1", company["emps"][ename])
    db.verify()
    org = db.get("Org", company["orgs"]["acme"])
    assert org.link_entries == []
    dept = db.get("Dept", company["depts"]["toys"])
    assert dept.link_entries == []


# ---------------------------------------------------------------------------
# path collapsing via replication of a ref attribute (Section 3.3.3)
# ---------------------------------------------------------------------------


def test_replicating_ref_attribute_collapses_path(company):
    db = company["db"]
    db.replicate("Emp1.dept.org")  # replicate the org *reference*
    got = hidden_value(db, "Emp1", company["emps"]["alice"], "Emp1.dept.org", "org")
    assert got == company["orgs"]["acme"]
    db.verify()
    # moving the department re-points every member's replicated reference
    db.update("Dept", company["depts"]["toys"], {"org": company["orgs"]["globex"]})
    got = hidden_value(db, "Emp1", company["emps"]["alice"], "Emp1.dept.org", "org")
    assert got == company["orgs"]["globex"]
    db.verify()


# ---------------------------------------------------------------------------
# full object replication (Section 3.3.1)
# ---------------------------------------------------------------------------


def test_full_object_replication(company):
    db = company["db"]
    db.replicate("Emp1.dept.all")
    path = db.catalog.get_path("Emp1.dept.all")
    assert set(path.replicated_field_names) == {"name", "budget", "org"}
    obj = db.get("Emp1", company["emps"]["alice"])
    assert obj.values[path.hidden_field_for("name")] == "toys"
    assert obj.values[path.hidden_field_for("budget")] == 100
    assert obj.values[path.hidden_field_for("org")] == company["orgs"]["acme"]
    db.verify()
    db.update("Dept", company["depts"]["toys"], {"budget": 12345})
    obj = db.get("Emp1", company["emps"]["alice"])
    assert obj.values[path.hidden_field_for("budget")] == 12345
    db.verify()


# ---------------------------------------------------------------------------
# verify() catches corruption
# ---------------------------------------------------------------------------


def test_verify_detects_stale_replica(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.name")
    # Corrupt a hidden field behind the manager's back.
    oid = company["emps"]["alice"]
    obj = db.store.read(oid)
    obj.set(path.hidden_fields[0], "corrupted")
    db.store.update(oid, obj)
    with pytest.raises(IntegrityError):
        db.verify()


def test_verify_detects_broken_link(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.name")
    link = db.catalog.get_link(path.link_sequence[0])
    dept = db.store.read(company["depts"]["toys"])
    entry = dept.link_entry_for(link.link_id)
    link.file.remove(entry.link_oid, company["emps"]["alice"])
    with pytest.raises(IntegrityError):
        db.verify()


# ---------------------------------------------------------------------------
# drop path
# ---------------------------------------------------------------------------


def test_drop_replication_narrows_type_and_cleans_links(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    db.drop_replication("Emp1.dept.name")
    assert db.catalog.get_set("Emp1").type_def.hidden_fields() == ()
    dept = db.get("Dept", company["depts"]["toys"])
    assert dept.link_entries == []
    # objects still readable, data intact
    assert db.get("Emp1", company["emps"]["alice"]).values["name"] == "alice"
    db.verify()  # no paths left; trivially consistent


def test_drop_one_of_two_sharing_paths_keeps_shared_link(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    db.replicate("Emp1.dept.budget")
    p1 = db.catalog.get_path("Emp1.dept.name")
    p2 = db.catalog.get_path("Emp1.dept.budget")
    assert p1.link_sequence == p2.link_sequence  # shared prefix -> shared link
    db.drop_replication("Emp1.dept.name")
    db.update("Dept", company["depts"]["toys"], {"budget": 777})
    obj = db.get("Emp1", company["emps"]["alice"])
    assert obj.values[p2.hidden_field_for("budget")] == 777
    db.verify()
