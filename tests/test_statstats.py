"""Statement fingerprint analytics: normalization, the streaming
histogram, aggregation and eviction, and the embedded + served recording
paths (``\\fingerprints``, the ``statements`` verb, ``/statements``)."""

import json
import urllib.error
from urllib.request import urlopen

import pytest

from repro.server import connect
from repro.server.httpexpo import MetricsHTTPServer
from repro.server.service import Server
from repro.server.top import render_top
from repro.telemetry.statstats import (
    LogBucketHistogram,
    StatementStats,
    fingerprint,
    normalize_statement,
)


@pytest.fixture()
def server(company):
    srv = Server(company["db"], max_connections=8, workers=2,
                 queue_depth=8, lock_timeout=2.0).start()
    yield srv
    srv.shutdown()


# ---------------------------------------------------------------------------
# normalization and fingerprints
# ---------------------------------------------------------------------------


def test_normalization_strips_literals_keeps_identifiers():
    assert normalize_statement(
        'replace (Dept.name = "toys dept") where Dept.budget = 100'
    ) == "replace (Dept.name = ?) where Dept.budget = ?"
    # identifiers with digits and dotted paths survive; numbers do not
    assert normalize_statement(
        "retrieve (Emp1.dept.name) where Emp1.salary > 10.5"
    ) == "retrieve (Emp1.dept.name) where Emp1.salary > ?"
    # whitespace collapses, case is preserved (identifiers are case-
    # sensitive in the query language)
    assert normalize_statement("retrieve   (Emp1.name)\n") == \
        "retrieve (Emp1.name)"
    # escaped quotes and negative numbers inside strings stay one literal
    assert normalize_statement(r'replace (Dept.name = "a \" -5 b")') == \
        "replace (Dept.name = ?)"


def test_fingerprint_groups_shapes_not_literals():
    fp_a, norm_a = fingerprint('replace (Dept.name = "x") where Dept.budget = 100')
    fp_b, norm_b = fingerprint('replace (Dept.name = "y") where Dept.budget = 999')
    assert fp_a == fp_b and norm_a == norm_b
    # which fields a statement touches IS its shape
    fp_c, __ = fingerprint("retrieve (Emp1.name)")
    fp_d, __ = fingerprint("retrieve (Emp1.salary)")
    assert fp_c != fp_d
    assert len(fp_a) == 12


# ---------------------------------------------------------------------------
# the streaming log-bucket histogram
# ---------------------------------------------------------------------------


def test_log_bucket_histogram_quantiles_without_samples():
    hist = LogBucketHistogram()
    for __ in range(100):
        hist.observe(1.0)
    # all mass in the bucket (0.8, 1.6]: every quantile interpolates there
    assert 0.8 <= hist.quantile(0.5) <= 1.6
    assert 0.8 <= hist.quantile(0.99) <= 1.6
    assert hist.mean() == pytest.approx(1.0)
    assert hist.total == 100


def test_log_bucket_histogram_separates_fast_and_slow_mass():
    hist = LogBucketHistogram()
    for __ in range(90):
        hist.observe(0.1)
    for __ in range(10):
        hist.observe(400.0)
    assert hist.quantile(0.5) < 1.0
    assert hist.quantile(0.95) > 100.0


def test_log_bucket_histogram_saturates_and_handles_empty():
    hist = LogBucketHistogram()
    assert hist.quantile(0.5) == 0.0
    hist.observe(10_000_000.0)  # beyond the last bound: the +Inf slot
    assert hist.counts[-1] == 1
    assert hist.quantile(0.99) == hist.bounds[-1]


# ---------------------------------------------------------------------------
# aggregation, eviction, enable switch
# ---------------------------------------------------------------------------


class _FakeIO:
    def __init__(self, reads, writes):
        self.physical_reads = reads
        self.physical_writes = writes


def test_aggregation_accumulates_per_fingerprint():
    stats = StatementStats()
    for i in range(3):
        stats.observe(f'replace (Dept.name = "v{i}")', 2.0,
                      io=_FakeIO(4, 2), rows=1, lock_wait_ms=1.5,
                      wal_bytes=100)
    stats.observe('replace (Dept.name = "x")', 8.0, outcome="LockTimeoutError")
    (entry,) = stats.entries()
    assert entry["calls"] == 4 and entry["errors"] == 1
    assert entry["rows"] == 3
    assert entry["physical_reads"] == 12 and entry["physical_writes"] == 6
    assert entry["io_pages"] == 18
    assert entry["lock_wait_ms"] == pytest.approx(4.5)
    assert entry["wal_bytes"] == 300
    assert entry["p99_ms"] >= entry["p50_ms"] > 0
    # wire-dict I/O shapes (the served path) also work
    stats.observe("retrieve (Emp1.name)", 1.0, io={"reads": 7, "writes": 0})
    assert stats.get(fingerprint("retrieve (Emp1.name)")[0])[
        "physical_reads"] == 7


def test_capacity_eviction_drops_least_called():
    stats = StatementStats(capacity=2)
    for __ in range(5):
        stats.observe("retrieve (Emp1.name)", 1.0)
    stats.observe("retrieve (Emp1.salary)", 1.0)
    stats.observe("retrieve (Emp1.age)", 1.0)  # evicts the least-called
    assert stats.evicted == 1
    kept = {e["statement"] for e in stats.entries()}
    assert "retrieve (Emp1.name)" in kept
    assert "retrieve (Emp1.salary)" not in kept
    assert stats.snapshot()["evicted"] == 1


def test_disabled_aggregator_is_a_noop():
    stats = StatementStats()
    stats.enabled = False
    assert stats.observe("retrieve (Emp1.name)", 1.0) is None
    assert len(stats) == 0


# ---------------------------------------------------------------------------
# embedded recording (execute_text)
# ---------------------------------------------------------------------------


def test_embedded_statements_are_fingerprinted(company):
    db = company["db"]
    db.execute('retrieve (Emp1.name) where Emp1.salary > 60000')
    db.execute('retrieve (Emp1.name) where Emp1.salary > 99999')
    db.execute('replace (Dept.budget = 7) where Dept.name = "toys"')
    entries = db.telemetry.statements.entries()
    by_stmt = {e["statement"]: e for e in entries}
    retrieve = by_stmt["retrieve (Emp1.name) where Emp1.salary > ?"]
    assert retrieve["calls"] == 2
    assert retrieve["rows"] == 5  # 4 + 1 matching employees
    replace = by_stmt["replace (Dept.budget = ?) where Dept.name = ?"]
    assert replace["calls"] == 1
    # registry metrics carry the same counts, labelled by fingerprint
    assert db.telemetry.metrics.value(
        "statement_calls_total", fingerprint=retrieve["fingerprint"]) == 2


def test_embedded_errors_are_counted(company):
    db = company["db"]
    with pytest.raises(Exception):
        db.execute("retrieve (Emp1.nosuchfield)")
    (entry,) = db.telemetry.statements.entries()
    assert entry["errors"] == 1


def test_embedded_wal_bytes_are_attributed():
    from repro import Database, TypeDefinition, char_field, int_field

    db = Database(wal=True)
    db.define_type(TypeDefinition("DEPT", [char_field("name", 20),
                                           int_field("budget")]))
    db.create_set("Dept", "DEPT")
    db.insert("Dept", {"name": "toys", "budget": 1})
    db.execute('replace (Dept.budget = 9) where Dept.name = "toys"')
    db.execute("retrieve (Dept.name)")
    by_stmt = {e["statement"]: e for e in db.telemetry.statements.entries()}
    replace_wal = by_stmt["replace (Dept.budget = ?) where Dept.name = ?"][
        "wal_bytes"]
    # the replace logs page images; the retrieve at most a boundary record
    assert replace_wal > by_stmt["retrieve (Dept.name)"]["wal_bytes"] > 0


def test_slowlog_records_carry_fingerprint_and_group(company):
    db = company["db"]
    db.telemetry.slowlog.configure(threshold_ms=0.0)
    db.execute("retrieve (Emp1.name) where Emp1.age > 30")
    db.execute("retrieve (Emp1.name) where Emp1.age > 99")
    db.execute("retrieve (Dept.name)")
    entries = db.telemetry.slowlog.entries()
    assert all(e["fingerprint"] for e in entries)
    grouped = db.telemetry.slowlog.grouped()
    assert len(grouped) == 2  # 3 records, 2 shapes
    counts = sorted(g["count"] for g in grouped)
    assert counts == [1, 2]  # the two age retrieves share one fingerprint


# ---------------------------------------------------------------------------
# served recording (session layer, wire verb, HTTP, \top)
# ---------------------------------------------------------------------------


def test_served_statements_fingerprint_once_and_serve_verb(server):
    db = server.db
    with connect(*server.address) as client:
        client.execute("retrieve (Emp1.name) where Emp1.salary > 60000")
        client.execute("retrieve (Emp1.name) where Emp1.salary > 99999")
        doc = client.statements()
    fingerprints = doc["fingerprints"]
    assert "ledger" in doc
    by_stmt = {e["statement"]: e for e in fingerprints["entries"]}
    entry = by_stmt["retrieve (Emp1.name) where Emp1.salary > ?"]
    # recorded exactly once per execution (session layer only, never also
    # in execute_text)
    assert entry["calls"] == 2
    assert entry["rows"] == 5
    assert fingerprints["calls"] == sum(
        e["calls"] for e in fingerprints["entries"])
    # the meta command renders the same table
    with connect(*server.address) as client:
        text = client.meta("fingerprints")
    assert "retrieve (Emp1.name) where Emp1.salary > ?" in text
    assert db.telemetry.statements.get(entry["fingerprint"])["calls"] == 2


def test_served_statements_wal_bytes_attributed_under_latch():
    from repro import Database, TypeDefinition, char_field, int_field

    db = Database(wal=True)
    db.define_type(TypeDefinition("DEPT", [char_field("name", 20),
                                           int_field("budget")]))
    db.create_set("Dept", "DEPT")
    db.insert("Dept", {"name": "toys", "budget": 1})
    srv = Server(db, max_connections=4, workers=2, queue_depth=8,
                 lock_timeout=2.0).start()
    try:
        with connect(*srv.address) as client:
            client.execute('replace (Dept.budget = 9) where Dept.name = "x"')
            doc = client.statements()
    finally:
        srv.shutdown()
    by_stmt = {e["statement"]: e
               for e in doc["fingerprints"]["entries"]}
    assert by_stmt["replace (Dept.budget = ?) where Dept.name = ?"][
        "wal_bytes"] > 0


def test_statements_endpoint_and_top_panes(server):
    server.db.telemetry.slowlog.configure(threshold_ms=0.0)
    sidecar = MetricsHTTPServer(server).start()
    try:
        with connect(*server.address) as client:
            client.execute("retrieve (Emp1.name, Emp1.dept.name)")
            client.execute("retrieve (Emp1.name, Emp1.dept.name)")
            stats = client.stats()
        base = f"http://{sidecar.host}:{sidecar.port}"
        with urlopen(base + "/statements", timeout=10.0) as response:
            assert response.status == 200
            doc = json.loads(response.read().decode("utf-8"))
        assert doc["fingerprints"]["distinct"] >= 1
        assert any(e["calls"] == 2 for e in doc["fingerprints"]["entries"])
        # /slow gained the fingerprint grouping
        with urlopen(base + "/slow", timeout=10.0) as response:
            slow = json.loads(response.read().decode("utf-8"))
        assert slow["grouped"] and slow["grouped"][0]["count"] >= 1
        # 404s advertise the new endpoint
        with pytest.raises(urllib.error.HTTPError) as info:
            urlopen(base + "/nope", timeout=10.0)
        body = json.loads(info.value.read().decode("utf-8"))
        assert "/statements" in body["endpoints"]
        # the stats snapshot feeds two new \top panes
        assert stats["statements"]["top"][0]["calls"] == 2
        assert "ledger" in stats
        frame = render_top(stats)
        assert "statements  distinct" in frame
        assert "slow offenders (grouped by fingerprint):" in frame
    finally:
        sidecar.shutdown()


def test_top_renders_ledger_pane():
    frame = render_top({
        "address": ["h", 1], "io": {}, "locks": {}, "wal": {}, "slow": {},
        "statements": {"distinct": 1, "evicted": 0,
                       "top": [{"calls": 3, "p95_ms": 1.0, "io_pages": 2,
                                "rows": 5, "statement": "retrieve (X.y)"}]},
        "ledger": [{"path": "Emp1.dept.name", "net_pages": -12.5,
                    "credited_pages": 1.0, "reads_served": 1,
                    "charged_pages": 13.5, "propagations": 9, "fanout": 18}],
    })
    assert "replication ledger" in frame
    assert "-12.5" in frame and "Emp1.dept.name" in frame
