"""Edge-case sweep across layers."""

import pytest

from repro import TypeDefinition, char_field, int_field, ref_field
from repro.errors import SerializationError
from repro.objects.encoding import encode_object
from repro.objects.instance import LinkEntry
from repro.storage.oid import OID


def test_too_many_link_entries_rejected(company):
    db = company["db"]
    obj = db.get("Emp1", company["emps"]["alice"])
    obj.link_entries = [LinkEntry(OID(1, i, 0), 1) for i in range(300)]
    with pytest.raises(SerializationError):
        encode_object(db.registry, obj)


def test_int_field_overflow_rejected(company):
    db = company["db"]
    with pytest.raises(SerializationError):
        db.insert("Emp1", {"name": "x", "age": 2**40, "salary": 1, "dept": None})


def test_unicode_strings_roundtrip(company):
    db = company["db"]
    oid = db.insert("Emp1", {"name": "héloïse", "age": 1, "salary": 1, "dept": None})
    assert db.get("Emp1", oid).values["name"] == "héloïse"
    res = db.execute("retrieve (Emp1.name) where Emp1.name = 'héloïse'")
    assert len(res) == 1


def test_unicode_overflow_counts_bytes_not_chars(company):
    db = company["db"]
    # 20 two-byte characters = 40 bytes > char[20]
    with pytest.raises(SerializationError):
        db.insert("Emp1", {"name": "é" * 20, "age": 1, "salary": 1, "dept": None})


def test_negative_numbers_throughout(company):
    db = company["db"]
    db.build_index("Emp1.salary")
    oid = db.insert("Emp1", {"name": "debt", "age": 1, "salary": -5000, "dept": None})
    res = db.execute("retrieve (Emp1.name) where Emp1.salary < 0")
    assert res.rows == [("debt",)]
    res = db.execute("retrieve (min(Emp1.salary))")
    assert res.rows == [(-5000,)]


def test_empty_set_queries(db):
    db.define_type(TypeDefinition("T", [int_field("x")]))
    db.create_set("Empty", "T")
    db.build_index("Empty.x")
    assert db.execute("retrieve (Empty.x)").rows == []
    assert db.execute("retrieve (Empty.x) where Empty.x = 5").rows == []
    assert db.execute("retrieve (count(Empty.x))").rows == [(0,)]
    assert db.execute("delete from Empty").rows == []


def test_replicate_on_empty_set_then_fill(db):
    db.define_type(TypeDefinition("B", [char_field("name", 8)]))
    db.define_type(TypeDefinition("A", [int_field("x"), ref_field("b", "B")]))
    db.create_set("Bs", "B")
    db.create_set("As", "A")
    path = db.replicate("As.b.name")  # nothing to bulk-build
    b = db.insert("Bs", {"name": "late"})
    a = db.insert("As", {"x": 1, "b": b})
    assert db.get("As", a).values[path.hidden_field_for("name")] == "late"
    db.verify()


def test_many_paths_on_one_set(company):
    """Several paths at once: link IDs stay distinct and consistent."""
    db = company["db"]
    paths = [
        db.replicate("Emp1.dept.name"),
        db.replicate("Emp1.dept.budget", strategy="separate"),
        db.replicate("Emp1.dept.org"),
        db.replicate("Emp1.dept.org.name"),
        db.replicate("Emp1.dept.org.budget", strategy="separate"),
    ]
    assert len({p.path_id for p in paths}) == 5
    db.update("Dept", company["depts"]["toys"], {"name": "g", "budget": 9})
    db.update("Org", company["orgs"]["acme"], {"name": "h", "budget": 8})
    db.update("Emp1", company["emps"]["alice"], {"dept": company["depts"]["shoes"]})
    db.verify()
    # hidden fields widened the type five times; objects still round-trip
    obj = db.get("Emp1", company["emps"]["alice"])
    assert len(obj.type_def.hidden_fields()) == 5


def test_update_both_ref_and_data_in_one_statement(company):
    db = company["db"]
    p = db.replicate("Emp1.dept.org.name")
    # one update changes the org's name AND a dept moves in the same tick
    db.update("Dept", company["depts"]["toys"],
              {"org": company["orgs"]["globex"], "budget": 1})
    db.update("Org", company["orgs"]["globex"], {"name": "both", "budget": 2})
    obj = db.get("Emp1", company["emps"]["alice"])
    assert obj.values[p.hidden_field_for("name")] == "both"
    db.verify()


def test_zero_byte_like_strings(company):
    db = company["db"]
    oid = db.insert("Emp1", {"name": "", "age": 0, "salary": 0, "dept": None})
    assert db.get("Emp1", oid).values["name"] == ""


def test_snapshot_of_colocated_and_collapsed(tmp_path, company):
    from repro.snapshot import load_database, save_database

    db = company["db"]
    db.replicate("Emp1.dept.org.name", cluster_links=True)
    db.replicate("Emp1.dept.org.budget", collapsed=True)
    target = tmp_path / "x.frdb"
    save_database(db, str(target))
    db2 = load_database(str(target))
    db2.verify()
    db2.update("Org", company["orgs"]["acme"], {"name": "post", "budget": 3})
    db2.verify()
