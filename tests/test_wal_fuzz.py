"""WAL frame decoding robustness: garbage in, ``WalError`` out.

Log records now also arrive off the replication wire, so a malformed
frame must never surface as ``struct.error`` / ``UnicodeDecodeError`` /
``IndexError`` -- any of those escaping :meth:`WalRecord.decode` would
kill a follower's apply loop instead of tripping its reconnect path.
"""

import struct
import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import WalError
from repro.recovery.wal import WalRecord, WalRecordType
from repro.storage.constants import PAGE_SIZE


def _sample_records() -> list[WalRecord]:
    return [
        WalRecord(WalRecordType.BEGIN, 1, note="insert Emp1"),
        WalRecord(WalRecordType.ALLOC, 1, file_id=3, page_no=7),
        WalRecord(WalRecordType.PAGE_AFTER, 1, file_id=3, page_no=7,
                  image=bytes(PAGE_SIZE)),
        WalRecord(WalRecordType.COMMIT, 1),
    ]


# ---------------------------------------------------------------------------
# round-trip sanity: what encode produces, decode accepts
# ---------------------------------------------------------------------------


def test_round_trip_all_record_types():
    blob = b"".join(r.encode() for r in _sample_records())
    offset = 0
    seen = []
    while offset < len(blob):
        record, offset = WalRecord.decode(blob, offset)
        seen.append(record)
    assert [r.type for r in seen] == [r.type for r in _sample_records()]
    assert seen[0].note == "insert Emp1"
    assert seen[2].image == bytes(PAGE_SIZE)


# ---------------------------------------------------------------------------
# fuzz: arbitrary bytes and corrupted real frames never crash the decoder
# ---------------------------------------------------------------------------


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=256), st.integers(min_value=-4, max_value=260))
def test_decode_garbage_never_crashes(data, offset):
    try:
        WalRecord.decode(data, offset)
    except WalError:
        pass


@settings(max_examples=300, deadline=None)
@given(st.integers(min_value=0, max_value=3),
       st.integers(min_value=0, max_value=4200),
       st.integers(min_value=0, max_value=255))
def test_single_byte_corruption_is_rejected_or_reframed(which, pos, value):
    """Flip one byte of a valid frame: decode either raises WalError or
    returns a (coincidentally) well-formed record -- never crashes."""
    blob = _sample_records()[which].encode()
    pos %= len(blob)
    if blob[pos] == value:
        value = (value + 1) % 256
    corrupted = blob[:pos] + bytes([value]) + blob[pos + 1:]
    try:
        record, nxt = WalRecord.decode(corrupted)
    except WalError:
        return
    assert isinstance(record, WalRecord)
    assert 0 < nxt <= len(corrupted)


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=0, max_value=3), st.data())
def test_truncated_tail_is_rejected(which, data):
    blob = _sample_records()[which].encode()
    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    with pytest.raises(WalError):
        WalRecord.decode(blob[:cut])


# ---------------------------------------------------------------------------
# targeted malformations: CRC-valid bodies with hostile contents
# ---------------------------------------------------------------------------


_FRAME = struct.Struct(">II")        # length + crc, as in repro.recovery.wal


def _frame(body: bytes, length: int | None = None) -> bytes:
    return _FRAME.pack(len(body) if length is None else length,
                       zlib.crc32(body)) + body


def test_empty_body_rejected():
    with pytest.raises(WalError):
        WalRecord.decode(_frame(b""))


def test_unknown_record_type_rejected():
    body = struct.pack(">BQ", 250, 1)
    with pytest.raises(WalError):
        WalRecord.decode(_frame(body))


def test_lying_length_header_rejected():
    body = struct.pack(">BQ", int(WalRecordType.COMMIT), 1)
    with pytest.raises(WalError):
        WalRecord.decode(_frame(body, length=len(body) + 10_000))


def test_begin_note_length_mismatch_rejected():
    # note_len claims 200 bytes, only 3 present
    body = struct.pack(">BQ", int(WalRecordType.BEGIN), 1)
    body += struct.pack(">H", 200) + b"abc"
    with pytest.raises(WalError):
        WalRecord.decode(_frame(body))


def test_begin_note_invalid_utf8_rejected():
    raw = b"\xff\xfe\xfd"
    body = struct.pack(">BQ", int(WalRecordType.BEGIN), 1)
    body += struct.pack(">H", len(raw)) + raw
    with pytest.raises(WalError):
        WalRecord.decode(_frame(body))


def test_short_page_image_rejected():
    body = struct.pack(">BQ", int(WalRecordType.PAGE_AFTER), 1)
    body += struct.pack(">II", 3, 7) + b"short"
    with pytest.raises(WalError):
        WalRecord.decode(_frame(body))


def test_commit_trailing_bytes_rejected():
    body = struct.pack(">BQ", int(WalRecordType.COMMIT), 1) + b"junk"
    with pytest.raises(WalError):
        WalRecord.decode(_frame(body))
