"""Unit tests for the slotted page."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageFullError, RecordNotFoundError, RecordTooLargeError
from repro.storage.constants import MAX_RECORD_BYTES, PAGE_HEADER_BYTES, PAGE_SIZE
from repro.storage.page import Page


def test_new_page_is_empty():
    page = Page()
    assert page.num_slots == 0
    assert page.free_offset == PAGE_HEADER_BYTES
    assert page.contiguous_free() == PAGE_SIZE - PAGE_HEADER_BYTES


def test_insert_and_read_roundtrip():
    page = Page()
    slot = page.insert(b"hello world")
    assert page.read(slot) == b"hello world"


def test_multiple_inserts_get_distinct_slots():
    page = Page()
    slots = [page.insert(bytes([i]) * 10) for i in range(20)]
    assert slots == list(range(20))
    for i, slot in enumerate(slots):
        assert page.read(slot) == bytes([i]) * 10


def test_read_empty_slot_raises():
    page = Page()
    slot = page.insert(b"x")
    page.delete(slot)
    with pytest.raises(RecordNotFoundError):
        page.read(slot)


def test_read_out_of_range_slot_raises():
    page = Page()
    with pytest.raises(RecordNotFoundError):
        page.read(0)


def test_delete_frees_slot_for_reuse():
    page = Page()
    a = page.insert(b"aaaa")
    b = page.insert(b"bbbb")
    page.delete(a)
    c = page.insert(b"cccc")
    assert c == a  # freed slot is reused
    assert page.read(b) == b"bbbb"
    assert page.read(c) == b"cccc"


def test_delete_twice_raises():
    page = Page()
    slot = page.insert(b"x")
    page.delete(slot)
    with pytest.raises(RecordNotFoundError):
        page.delete(slot)


def test_update_in_place_shrink_and_grow():
    page = Page()
    slot = page.insert(b"A" * 100)
    page.update(slot, b"B" * 50)
    assert page.read(slot) == b"B" * 50
    page.update(slot, b"C" * 200)
    assert page.read(slot) == b"C" * 200


def test_update_empty_slot_raises():
    page = Page()
    slot = page.insert(b"x")
    page.delete(slot)
    with pytest.raises(RecordNotFoundError):
        page.update(slot, b"y")


def test_page_full_on_insert():
    page = Page()
    big = b"Z" * 1000
    while True:
        try:
            page.insert(big)
        except PageFullError:
            break
    # The page is full; a further large insert keeps failing.
    with pytest.raises(PageFullError):
        page.insert(big)


def test_record_too_large():
    page = Page()
    with pytest.raises(RecordTooLargeError):
        page.insert(b"x" * (MAX_RECORD_BYTES + 1))


def test_grow_past_page_capacity_raises_and_preserves_record():
    page = Page()
    slot = page.insert(b"A" * 2000)
    page.insert(b"B" * 1800)
    with pytest.raises(PageFullError):
        page.update(slot, b"C" * 3000)
    assert page.read(slot) == b"A" * 2000  # rollback kept the old image


def test_compaction_recovers_holes():
    page = Page()
    slots = [page.insert(b"D" * 400) for __ in range(9)]
    for slot in slots[::2]:
        page.delete(slot)
    # Contiguous space is small but holes are large; insert must compact.
    assert page.contiguous_free() < 900 + 4
    slot = page.insert(b"E" * 900)
    assert page.read(slot) == b"E" * 900
    for s in slots[1::2]:
        assert page.read(s) == b"D" * 400


def test_live_slots_and_records_iteration():
    page = Page()
    a = page.insert(b"one")
    b = page.insert(b"two")
    c = page.insert(b"three")
    page.delete(b)
    assert list(page.live_slots()) == [a, c]
    assert dict(page.records()) == {a: b"one", c: b"three"}


def test_page_image_roundtrip():
    page = Page()
    slot = page.insert(b"persist me")
    copy = Page(bytearray(page.data))
    assert copy.read(slot) == b"persist me"


def test_page_rejects_wrong_size_image():
    with pytest.raises(ValueError):
        Page(bytearray(100))


def test_has_room_for_counts_slot_entry():
    page = Page()
    assert page.has_room_for(PAGE_SIZE - PAGE_HEADER_BYTES - 4)
    assert not page.has_room_for(PAGE_SIZE - PAGE_HEADER_BYTES)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.binary(min_size=0, max_size=300),
        min_size=1,
        max_size=30,
    )
)
def test_property_inserted_records_read_back(records):
    """Whatever fits on one page reads back verbatim."""
    page = Page()
    stored = {}
    for payload in records:
        try:
            slot = page.insert(payload)
        except PageFullError:
            break
        stored[slot] = payload
    for slot, payload in stored.items():
        assert page.read(slot) == payload


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "delete", "update"]), st.binary(max_size=120)),
        max_size=60,
    )
)
def test_property_random_ops_match_model(ops):
    """The page behaves like a dict under a random op sequence."""
    page = Page()
    model: dict[int, bytes] = {}
    for op, payload in ops:
        if op == "insert":
            try:
                slot = page.insert(payload)
            except PageFullError:
                continue
            model[slot] = payload
        elif op == "delete" and model:
            slot = sorted(model)[0]
            page.delete(slot)
            del model[slot]
        elif op == "update" and model:
            slot = sorted(model)[-1]
            try:
                page.update(slot, payload)
            except PageFullError:
                continue
            model[slot] = payload
    assert dict(page.records()) == model
    assert page.total_free() >= 0
    assert page.contiguous_free() >= 0
