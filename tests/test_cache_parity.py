"""Result-cache parity: the cache must be invisible except for speed.

Every section compares cache-on answers against a cache-off engine:
corpus x replication-layout parity (including hits after warm-up),
interleaved mutations (invalidation correctness), the WAL crash matrix,
concurrent served sessions, read-your-writes inside transactions, and a
WAL-shipped follower whose cache must track the applied stream.
"""

import threading
import time

import pytest

from repro import Database, TypeDefinition, char_field, int_field, ref_field
from repro.errors import DiskFault, PlanningError
from repro.server.client import connect
from repro.server.replica import Replica, ReplicaServer
from repro.server.service import Server
from repro.server.session import SessionManager
from tests.conftest import define_employee_schema
from tests.test_join_mode_parity import _CORPUS, _LAYOUTS, _populate


def _build(layout: str, cache: bool) -> Database:
    db = Database(cache=cache)
    _populate(db, dangling_org=(layout != "collapsed"))
    for path_text, opts in _LAYOUTS[layout]:
        db.replicate(path_text, **opts)
    return db


# ---------------------------------------------------------------------------
# corpus x layouts: cached rows byte-identical, hits serve with zero I/O
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("layout", sorted(_LAYOUTS))
def test_corpus_rows_identical_with_cache(layout):
    plain = _build(layout, cache=False)
    cached = _build(layout, cache=True)
    for query in _CORPUS:
        try:
            want = plain.execute(query, materialize=False)
        except PlanningError:
            # rejected at planning time -- cache state must not change that
            with pytest.raises(PlanningError):
                cached.execute(query, materialize=False)
            continue
        first = cached.execute(query, materialize=False)
        second = cached.execute(query, materialize=False)
        assert first.columns == want.columns == second.columns, query
        assert first.rows == want.rows, query
        assert second.rows == want.rows, query
        if first.cache == "miss":
            assert second.cache == "hit", query
            assert second.io.total_io == 0, query
        else:
            # lazy layouts drain propagation queues on path reads: a write
            assert first.cache == "bypass" and layout == "lazy", query
        assert cached.storage.pool.pinned_keys() == []
    assert plain.resultcache.hits == 0  # off means off
    assert cached.doctor().healthy


@pytest.mark.parametrize("layout", ["none", "inplace", "separate"])
def test_mutations_interleaved_stay_in_parity(layout):
    """Warm every entry, mutate through every invalidation hook, re-ask."""
    plain = _build(layout, cache=False)
    cached = _build(layout, cache=True)

    def ask_all():
        for query in _CORPUS:
            try:
                want = plain.execute(query, materialize=False)
            except PlanningError:
                continue
            got = cached.execute(query, materialize=False)
            assert got.rows == want.rows, query

    def mutate(db):
        depts = [oid for oid, __ in db.catalog.get_set("Dept").scan()]
        db.update("Dept", depts[1], {"name": "renamed"})   # replicated field
        db.update("Dept", depts[2], {"budget": 1})         # unreplicated
        new = db.insert("Emp1", {"name": "zz-new", "age": 1, "salary": 1,
                                 "dept": depts[0]})
        db.update("Emp1", new, {"salary": 2})
        victims = [oid for oid, __ in db.catalog.get_set("Emp1").scan()]
        db.delete("Emp1", victims[-1])

    ask_all()                     # warm
    mutate(plain)
    mutate(cached)
    ask_all()                     # stale entries must be gone
    ask_all()                     # and the refills must be right too
    assert cached.doctor().healthy


# ---------------------------------------------------------------------------
# WAL crash matrix: recovery flushes the cache, answers stay exact
# ---------------------------------------------------------------------------


def _crash_build() -> Database:
    db = Database(wal=True, buffer_frames=8, cache=True)
    db.define_type(TypeDefinition("DEPT", [char_field("name", 200),
                                           int_field("budget")]))
    db.define_type(TypeDefinition("EMP", [char_field("name", 200),
                                          int_field("salary"),
                                          ref_field("dept", "DEPT")]))
    db.create_set("Dept", "DEPT")
    db.create_set("Emp", "EMP")
    depts = [db.insert("Dept", {"name": f"dept{i}", "budget": 100 * i})
             for i in range(3)]
    for i in range(60):
        db.insert("Emp", {"name": f"emp{i}", "salary": 1000 + i,
                          "dept": depts[i % 3]})
    db.replicate("Emp.dept.name")
    db.checkpoint()
    return db


_CRASH_QUERIES = (
    "retrieve (Emp.name, Emp.dept.name)",
    "retrieve (Emp.dept.name, count(Emp.name)) group by Emp.dept.name",
    "retrieve (Emp.name) order by Emp.salary desc limit 5",
)


@pytest.mark.parametrize("torn", [False, True])
def test_crash_recover_flushes_cache_and_stays_exact(torn):
    db = _crash_build()
    for query in _CRASH_QUERIES:      # warm entries that the crash must kill
        db.execute(query)
    assert len(db.resultcache) == len(_CRASH_QUERIES)
    depts = [oid for oid, __ in db.catalog.get_set("Dept").scan()]
    db.faults.fail_after_writes(3, torn=torn)
    crashed = False
    try:
        for i, dept in enumerate(depts):
            db.update("Dept", dept, {"name": f"renamed{i}" * 20})
    except DiskFault:
        crashed = True
    assert crashed, "workload too small to reach the fault point"
    assert db.recovery.needs_recovery
    assert db.recover().verified
    assert len(db.resultcache) == 0   # restart = cold cache
    db.verify()
    for query in _CRASH_QUERIES:
        warm = db.execute(query)      # refill
        hit = db.execute(query)
        assert hit.cache == "hit"
        db.resultcache.enabled = False
        db.cold_cache()
        truth = db.execute(query)
        db.resultcache.enabled = True
        assert warm.rows == truth.rows == hit.rows, query
    assert db.doctor().healthy


# ---------------------------------------------------------------------------
# served sessions: concurrency, transactions, read-your-writes
# ---------------------------------------------------------------------------


def _served_db() -> Database:
    db = Database(cache=True)
    define_employee_schema(db)
    db.replicate("Emp1.dept.name")
    org = db.insert("Org", {"name": "org", "budget": 1})
    depts = [db.insert("Dept", {"name": f"d{i}", "budget": i, "org": org})
             for i in range(3)]
    for i in range(12):
        db.insert("Emp1", {"name": f"e{i:02d}", "age": 20 + i,
                           "salary": 1000 * i, "dept": depts[i % 3]})
    return db


@pytest.fixture()
def manager():
    mgr = SessionManager(_served_db(), lock_timeout=5.0, workers=4,
                         queue_depth=16)
    yield mgr
    mgr.shutdown()


def test_concurrent_sessions_never_see_torn_or_stale_rows(manager):
    """Readers hammer a cached join while a writer flips the replicated
    field; 2PL + footprint invalidation must keep every serve atomic."""
    stop = threading.Event()
    failures: list[str] = []
    query = "retrieve (Emp1.name, Emp1.dept.name)"

    def reader(tag: str):
        session = manager.open_session(tag)
        while not stop.is_set():
            rows = session.run_statement(query)["rows"]
            named = {name for __, name in rows if name is not None}
            # dept d0's name is atomically "d0" or "flip" -- a serve that
            # mixes them caught a torn or stale entry
            if {"d0", "flip"} <= named:
                failures.append(f"{tag}: torn serve {sorted(named)}")
                return
        # after the writer parks on "flip", a fresh read must see it:
        # a stale cache entry surviving the final invalidation would not
        final = session.run_statement(query)["rows"]
        if not any(name == "flip" for __, name in final):
            failures.append(f"{tag}: stale rows after writer quiesced")

    def writer():
        session = manager.open_session("writer")
        for i in range(30):
            target = "flip" if i % 2 == 0 else "d0"
            session.run_statement(
                f'replace (Dept.name = "{target}") where Dept.budget = 0')
        session.run_statement(
            'replace (Dept.name = "flip") where Dept.budget = 0')

    threads = [threading.Thread(target=reader, args=(f"r{i}",))
               for i in range(3)]
    for thread in threads:
        thread.start()
    writer()
    stop.set()
    for thread in threads:
        thread.join(timeout=20.0)
    assert failures == []
    assert manager.db.doctor().healthy
    # the run must actually have exercised the cache
    assert manager.db.resultcache.hits > 0
    assert manager.db.resultcache.invalidations["write"] > 0


def test_served_read_your_writes_regression(manager):
    """begin -> replace -> query -> commit: the querying transaction must
    see its own write, never a cached pre-write answer."""
    session = manager.open_session("t")
    query = "retrieve (Dept.name) where Dept.budget = 0"
    session.run_statement(query)
    assert session.run_statement(query)["cache"] == "hit"
    session.run_statement("begin")
    session.run_statement('replace (Dept.name = "mine") where Dept.budget = 0')
    mid = session.run_statement(query)
    assert mid["cache"] == "bypass"          # no serve, no fill while dirty
    assert mid["rows"] == [["mine"]]         # own write visible
    # a second read inside the same dirty transaction still bypasses
    assert session.run_statement(query)["cache"] == "bypass"
    session.run_statement("commit")
    after = session.run_statement(query)     # entry was invalidated
    assert after["cache"] == "miss"
    assert after["rows"] == [["mine"]]
    assert session.run_statement(query)["cache"] == "hit"


def test_aborted_transaction_does_not_poison_the_cache(manager):
    session = manager.open_session("t")
    query = "retrieve (Dept.name) where Dept.budget = 0"
    session.run_statement("begin")
    session.run_statement('replace (Dept.name = "oops") where Dept.budget = 0')
    assert session.run_statement(query)["cache"] == "bypass"
    session.run_statement("abort")
    # nothing was filled while dirty, so nothing stale can be served now
    fresh = session.run_statement(query)
    assert fresh["cache"] == "miss"


# ---------------------------------------------------------------------------
# follower coherence: a cached read replica tracks the applied WAL stream
# ---------------------------------------------------------------------------


SETUP_DDL = [
    "define type DEPT (name: char[12], floor: int)",
    "define type EMP (name: char[12], age: int, dept: ref DEPT)",
    "create Dept1: {own ref DEPT}",
    "create Emp1: {own ref EMP}",
    "replicate Emp1.dept.name",
]


def _wait_caught_up(replica: Replica, primary: Server,
                    timeout: float = 5.0) -> None:
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if (replica.applied_lsn >= primary.hub.log.last_lsn
                and replica.connected):
            return
        time.sleep(0.01)
    raise AssertionError(
        f"follower stuck at {replica.applied_lsn}, primary at "
        f"{primary.hub.log.last_lsn}")


def test_follower_cache_coheres_with_the_stream():
    primary = Server(Database(wal=True), port=0, sync_replicas=1,
                     sync_timeout=10.0).start()
    follower = ReplicaServer(
        Replica(primary.address, name="r1", max_lag_statements=64,
                poll_wait=0.05, min_backoff=0.01, max_backoff=0.2),
        port=0).start()
    pclient = connect(*primary.address)
    fclient = connect(*follower.address)
    try:
        for text in SETUP_DDL:
            pclient.execute(text)
        with primary.sessions.latch:
            db = primary.db
            toys = db.insert("Dept1", {"name": "toys", "floor": 3})
            tools = db.insert("Dept1", {"name": "tools", "floor": 1})
            db.insert("Emp1", {"name": "alice", "age": 30, "dept": toys})
            db.insert("Emp1", {"name": "bob", "age": 40, "dept": tools})
        follower.db.resultcache.enabled = True
        _wait_caught_up(follower.replica, primary)
        query = "retrieve (Emp1.name, Emp1.dept.name)"
        first = fclient.execute(query)
        assert first.cache == "miss"
        second = fclient.execute(query)
        assert second.cache == "hit"
        assert second.rows == first.rows
        assert ("alice", "toys") in second.rows
        # a primary write that propagates into Emp1's hidden copies must
        # kill the follower's entry when the stream applies -- before the
        # applied LSN advances, so catching up implies coherence
        pclient.execute(
            'replace (Dept1.name = "games") where Dept1.name = "toys"')
        _wait_caught_up(follower.replica, primary)
        after = fclient.execute(query)
        assert after.cache == "miss"
        assert ("alice", "games") in after.rows
        assert follower.db.resultcache.invalidations["replica"] >= 1
        # DDL on the stream drops everything (schema epoch changed)
        fclient.execute(query)
        pclient.execute("create Dept2: {own ref DEPT}")
        _wait_caught_up(follower.replica, primary)
        assert fclient.execute(query).cache == "miss"
        # the staleness guard still wins over the cache: a stale follower
        # refuses even a warm entry rather than serve beyond the bound
        hot = fclient.execute(query)
        assert hot.cache in ("hit", "miss")
        follower.replica.stop_apply()
        follower.replica.max_lag = 0
        follower.replica.primary_lsn = follower.replica.applied_lsn + 9
        from repro.errors import RemoteError
        with pytest.raises(RemoteError, match="behind the primary"):
            fclient.execute(query)
    finally:
        fclient.close()
        pclient.close()
        follower.die()
        primary.die()
