"""Co-located link objects (Section 4.3.2).

A multi-level in-place path registered with ``cluster_links=True`` keeps
all its link objects in one file, so a propagation that must read both
L_D and L_O finds them on (mostly) the same pages.  Co-located links are
private -- the paper notes clustering goals conflict with sharing.
"""

import pytest

from repro.errors import ReplicationError


@pytest.fixture()
def clustered_path(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.org.name", cluster_links=True)
    return db, path, company


def test_cluster_links_requires_multilevel_inplace(company):
    db = company["db"]
    with pytest.raises(ReplicationError):
        db.replicate("Emp1.dept.name", cluster_links=True)
    with pytest.raises(ReplicationError):
        db.replicate("Emp1.dept.org.name", strategy="separate", cluster_links=True)
    with pytest.raises(ReplicationError):
        db.replicate("Emp1.dept.org.name", collapsed=True, cluster_links=True)


def test_links_share_one_file(clustered_path):
    db, path, __ = clustered_path
    links = [db.catalog.get_link(lid) for lid in path.link_sequence]
    assert len(links) == 2
    assert links[0].file.heap.file_id == links[1].file.heap.file_id
    assert links[1].parent_link_id == links[0].link_id
    assert all(l.private for l in links)
    db.verify()


def test_colocated_links_are_not_shared(clustered_path):
    db, path, __ = clustered_path
    other = db.replicate("Emp1.dept.name")  # same prefix, ordinary path
    assert other.link_sequence[0] not in path.link_sequence
    db.verify()


def test_propagation_and_surgery_still_work(clustered_path):
    db, path, company = clustered_path
    db.update("Org", company["orgs"]["acme"], {"name": "acme2"})
    obj = db.get("Emp1", company["emps"]["alice"])
    assert obj.values[path.hidden_field_for("name")] == "acme2"
    db.update("Dept", company["depts"]["toys"], {"org": company["orgs"]["globex"]})
    obj = db.get("Emp1", company["emps"]["alice"])
    assert obj.values[path.hidden_field_for("name")] == "globex"
    db.verify()


def test_colocated_propagation_reads_one_link_file(clustered_path):
    db, path, company = clustered_path
    link_file = db.catalog.get_link(path.link_sequence[0]).file.heap.file_id
    db.cold_cache()
    cost = db.measure(
        lambda: (db.update("Org", company["orgs"]["acme"], {"name": "x"}),
                 db.storage.pool.flush_all())
    )
    # both levels of link objects came from a single (small) file
    assert cost.reads_for(link_file) >= 1
    assert cost.reads_for(link_file) <= 2


def test_colocated_vs_plain_link_io():
    """At scale, co-location reads fewer link pages per propagation."""
    import random

    from repro import Database, TypeDefinition, char_field, ref_field

    def build(cluster):
        rng = random.Random(3)
        db = Database(buffer_frames=4096)
        db.define_type(TypeDefinition("ORG", [char_field("name", 12)]))
        db.define_type(TypeDefinition("DEPT", [char_field("name", 12), ref_field("org", "ORG")]))
        db.define_type(TypeDefinition("EMP", [char_field("name", 12), ref_field("dept", "DEPT")]))
        db.create_set("Org", "ORG")
        db.create_set("Dept", "DEPT")
        db.create_set("Emp1", "EMP")
        orgs = [db.insert("Org", {"name": f"o{i}"}) for i in range(40)]
        depts = [db.insert("Dept", {"name": f"d{i}", "org": orgs[i % 40]}) for i in range(400)]
        for i in range(1200):
            db.insert("Emp1", {"name": f"e{i}", "dept": rng.choice(depts)})
        path = db.replicate("Emp1.dept.org.name", cluster_links=cluster)
        files = {db.catalog.get_link(l).file.heap.file_id for l in path.link_sequence}
        return db, orgs, files

    io = {}
    for cluster in (False, True):
        db, orgs, files = build(cluster)
        db.cold_cache()
        cost = db.measure(
            lambda: (db.update("Org", orgs[7], {"name": "zz"}),
                     db.storage.pool.flush_all())
        )
        io[cluster] = sum(cost.reads_for(f) for f in files)
        db.verify()
    assert io[True] <= io[False]


def test_drop_colocated_path_drops_single_file_once(clustered_path):
    db, path, company = clustered_path
    file_id = db.catalog.get_link(path.link_sequence[0]).file.heap.file_id
    db.drop_replication("Emp1.dept.org.name")
    assert not db.storage.disk.file_exists(file_id)
    db.verify()
    dept = db.get("Dept", company["depts"]["toys"])
    assert dept.link_entries == []


def test_parser_colocate_keyword(company):
    from repro.schema.parser import execute_ddl

    db = company["db"]
    execute_ddl(db, "replicate Emp1.dept.org.name colocate")
    path = db.catalog.get_path("Emp1.dept.org.name")
    assert db.catalog.get_link(path.link_sequence[0]).private
    db.verify()
