"""The metrics time-series store, the threshold alert engine, and the
telemetry sampler thread that drives them."""

import time

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tsstore import (
    AlertEngine,
    TelemetrySampler,
    TimeSeriesStore,
)


# ---------------------------------------------------------------------------
# the store: retention, probes, deltas
# ---------------------------------------------------------------------------


def test_retention_is_bounded_per_series():
    store = TimeSeriesStore(retention_points=5)
    for i in range(12):
        store.append("a", float(i), ts=float(i))
    points = store.series("a")
    assert len(points) == 5
    assert [v for __, v in points] == [7.0, 8.0, 9.0, 10.0, 11.0]
    assert store.latest("a") == 11.0
    assert store.latest("missing") is None


def test_probes_feed_sample_once_and_broken_probes_are_skipped():
    store = TimeSeriesStore()
    store.register(lambda: {"good": 1.0})
    store.register(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
    store.register(lambda: {"also_good": 2.0})
    merged = store.sample_once(ts=100.0)
    assert merged == {"good": 1.0, "also_good": 2.0}
    assert store.samples_taken == 1
    assert store.names() == ["also_good", "good"]
    assert store.series("good") == [(100.0, 1.0)]


def test_delta_and_rate_over_a_window():
    store = TimeSeriesStore()
    now = time.time()
    store.append("c", 10.0, ts=now - 8.0)
    store.append("c", 30.0, ts=now - 2.0)
    dv, dt = store.delta("c", window_s=60.0)
    assert dv == pytest.approx(20.0)
    assert dt == pytest.approx(6.0, abs=0.01)
    assert store.rate("c", window_s=60.0) == pytest.approx(20.0 / 6.0,
                                                           rel=0.01)
    # a single in-window point cannot make a delta
    assert store.delta("c", window_s=1.0) == (0.0, 0.0)
    assert store.rate("missing", window_s=60.0) == 0.0


def test_snapshot_selects_names_and_window():
    store = TimeSeriesStore(retention_points=10)
    now = time.time()
    store.append("a", 1.0, ts=now - 100.0)
    store.append("a", 2.0, ts=now)
    store.append("b", 3.0, ts=now)
    doc = store.snapshot(window_s=10.0, names=["a"])
    assert list(doc["series"]) == ["a"]
    assert len(doc["series"]["a"]) == 1  # the old point is outside
    assert doc["retention_points"] == 10
    full = store.snapshot()
    assert set(full["series"]) == {"a", "b"}


# ---------------------------------------------------------------------------
# the alert engine: firing / resolved state machine
# ---------------------------------------------------------------------------


def test_alert_transitions_fire_and_resolve_with_history_and_metrics():
    registry = MetricsRegistry()
    engine = AlertEngine(metrics=registry)
    level = {"value": 0.0}
    engine.add_rule("hot", "value over 0.5",
                    lambda: (level["value"], level["value"] > 0.5),
                    severity="warning", threshold=0.5)
    assert registry.value("alert_firing", alert="hot") == 0

    engine.evaluate(ts=1.0)
    assert engine.firing() == []

    level["value"] = 0.9
    firing = engine.evaluate(ts=2.0)
    assert [a["alert"] for a in firing] == ["hot"]
    assert registry.value("alert_firing", alert="hot") == 1
    assert registry.value("alert_transitions_total",
                          alert="hot", to="firing") == 1

    level["value"] = 0.1
    engine.evaluate(ts=3.0)
    assert engine.firing() == []
    assert registry.value("alert_firing", alert="hot") == 0
    assert registry.value("alert_transitions_total",
                          alert="hot", to="resolved") == 1

    doc = engine.snapshot()
    assert doc["evaluations"] == 3
    assert doc["firing"] == 0
    [alert] = doc["alerts"]
    assert alert["state"] == "ok" and alert["transitions"] == 2
    assert [h["to"] for h in doc["history"]] == ["firing", "resolved"]
    assert "hot" in engine.render_text()


def test_broken_rule_is_skipped_not_fatal():
    engine = AlertEngine()
    engine.add_rule("broken", "", lambda: 1 / 0)
    engine.add_rule("fine", "", lambda: (1.0, True))
    firing = engine.evaluate()
    assert [a["alert"] for a in firing] == ["fine"]
    assert engine.evaluations == 1


def test_firing_alerts_sort_first_in_snapshot():
    engine = AlertEngine()
    engine.add_rule("zz_firing", "", lambda: (1.0, True))
    engine.add_rule("aa_ok", "", lambda: (0.0, False))
    engine.evaluate()
    assert [a["alert"] for a in engine.snapshot()["alerts"]] == \
        ["zz_firing", "aa_ok"]


# ---------------------------------------------------------------------------
# the sampler thread
# ---------------------------------------------------------------------------


def test_tick_once_runs_every_callback_despite_failures():
    sampler = TelemetrySampler(interval=0)
    ran = []
    sampler.add(lambda: ran.append("a"))
    sampler.add(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
    sampler.add(lambda: ran.append("b"))
    sampler.tick_once()
    assert ran == ["a", "b"]
    assert sampler.ticks_run == 1


def test_zero_interval_disables_the_thread():
    sampler = TelemetrySampler(interval=0)
    sampler.start()
    assert not sampler.running
    sampler.stop()  # harmless when never started


def test_running_sampler_ticks_and_stops():
    sampler = TelemetrySampler(interval=0.01)
    ticks = []
    sampler.add(lambda: ticks.append(1))
    sampler.start()
    assert sampler.running
    deadline = time.time() + 10.0
    while not ticks and time.time() < deadline:
        time.sleep(0.01)
    sampler.stop()
    assert ticks, "the daemon thread never ticked"
    assert not sampler.running
    after = len(ticks)
    time.sleep(0.05)
    assert len(ticks) == after  # stopped means stopped
