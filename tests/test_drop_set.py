"""Dropping sets: own-ref existence semantics plus safety checks."""

import pytest

from repro.errors import (
    FileNotFoundInStoreError,
    IntegrityError,
    ReplicationError,
    UnknownSetError,
)


def test_drop_set_removes_members_and_file(company):
    db = company["db"]
    db.drop_set("Emp2")
    with pytest.raises(UnknownSetError):
        db.catalog.get_set("Emp2")
    with pytest.raises(FileNotFoundInStoreError):
        db.storage.file("Emp2")


def test_drop_set_leaves_referenced_objects_alone(company):
    """Deleting Emp1 deletes employees, not the departments they reference."""
    db = company["db"]
    db.drop_set("Emp1")
    assert db.catalog.get_set("Dept").count() == 3


def test_drop_set_refused_while_source_of_path(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    with pytest.raises(ReplicationError):
        db.drop_set("Emp1")
    db.drop_replication("Emp1.dept.name")
    db.drop_set("Emp1")  # fine now


def test_drop_set_refused_while_members_referenced(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")  # Dept members now carry link entries
    with pytest.raises(IntegrityError):
        db.drop_set("Dept")


def test_drop_set_drops_its_indexes(company):
    db = company["db"]
    info = db.build_index("Emp2.salary")
    db.drop_set("Emp2")
    assert info.name not in db.catalog.indexes


def test_drop_set_then_recreate(company):
    db = company["db"]
    db.drop_set("Emp2")
    new_set = db.create_set("Emp2b", "EMP")
    oid = db.insert("Emp2b", {"name": "x", "age": 1, "salary": 1, "dept": None})
    assert db.get("Emp2b", oid).values["name"] == "x"
