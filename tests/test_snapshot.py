"""Snapshot (save / load) tests: a loaded image behaves identically."""

import pytest

from repro.errors import ReproError
from repro.snapshot import SnapshotError, load_database, save_database

from tests.conftest import define_employee_schema


def populated(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    db.replicate("Emp1.dept.org.budget", strategy="separate")
    db.build_index("Emp1.salary")
    db.build_index("Emp1.dept.name")
    return db


def roundtrip(db, tmp_path):
    target = tmp_path / "image.frdb"
    save_database(db, str(target))
    return load_database(str(target))


def test_snapshot_preserves_data(company, tmp_path):
    db = populated(company)
    db2 = roundtrip(db, tmp_path)
    assert db2.catalog.get_set("Emp1").count() == 6
    res = db2.execute("retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary > 70000")
    assert sorted(res.rows) == sorted(
        db.execute("retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary > 70000").rows
    )


def test_snapshot_preserves_replication(company, tmp_path):
    db = populated(company)
    db2 = roundtrip(db, tmp_path)
    db2.verify()
    assert set(db2.catalog.paths) == {"Emp1.dept.name", "Emp1.dept.org.budget"}
    # maintenance still works after load
    db2.update("Dept", company["depts"]["toys"], {"name": "games"})
    path = db2.catalog.get_path("Emp1.dept.name")
    obj = db2.get("Emp1", company["emps"]["alice"])
    assert obj.values[path.hidden_field_for("name")] == "games"
    db2.verify()


def test_snapshot_preserves_indexes(company, tmp_path):
    db = populated(company)
    db2 = roundtrip(db, tmp_path)
    res = db2.execute("retrieve (Emp1.name) where Emp1.salary = 50000")
    assert "IndexScan" in res.plan
    assert res.rows == [("alice",)]
    res2 = db2.execute("retrieve (Emp1.name) where Emp1.dept.name = 'toys'")
    assert "IndexScan" in res2.plan
    assert sorted(r[0] for r in res2.rows) == ["alice", "bob"]


def test_snapshot_continues_ddl(company, tmp_path):
    db = populated(company)
    db2 = roundtrip(db, tmp_path)
    # new ids must not collide with restored ones
    path = db2.replicate("Emp1.dept.budget")
    assert path.path_id not in {1, 2}
    info = db2.build_index("Emp1.age")
    assert info.name not in {"idx1_Emp1_salary"}
    db2.insert("Emp1", {"name": "new", "age": 1, "salary": 1,
                        "dept": company["depts"]["toys"]})
    db2.verify()


def test_snapshot_preserves_lazy_queue(company, tmp_path):
    db = company["db"]
    db.replicate("Emp1.dept.name", lazy=True)
    db.update("Dept", company["depts"]["toys"], {"name": "queued"})
    db2 = roundtrip(db, tmp_path)
    path = db2.catalog.get_path("Emp1.dept.name")
    assert db2.replication.lazy.pending_count(path) == 1
    assert db2.refresh() == 1
    obj = db2.get("Emp1", company["emps"]["alice"])
    assert obj.values[path.hidden_field_for("name")] == "queued"
    db2.verify()


def test_snapshot_preserves_inline_links(tmp_path):
    from repro import Database

    db = Database(inline_singleton_links=True)
    define_employee_schema(db)
    org = db.insert("Org", {"name": "o", "budget": 1})
    dept = db.insert("Dept", {"name": "d", "budget": 1, "org": org})
    emp = db.insert("Emp1", {"name": "e", "age": 1, "salary": 1, "dept": dept})
    db.replicate("Emp1.dept.name")
    db2 = roundtrip(db, tmp_path)
    assert db2.replication.inverted.inline_singletons
    db2.verify()
    db2.update("Dept", dept, {"name": "renamed"})
    db2.verify()


def test_snapshot_roundtrip_twice(company, tmp_path):
    db = populated(company)
    db2 = roundtrip(db, tmp_path)
    db3 = roundtrip(db2, tmp_path / "sub" if (tmp_path / "sub").mkdir() else tmp_path)
    db3.verify()
    assert db3.catalog.get_set("Emp1").count() == 6


def test_bad_magic_rejected(tmp_path):
    bogus = tmp_path / "not_a_db"
    bogus.write_bytes(b"hello world, definitely not a database")
    with pytest.raises(SnapshotError):
        load_database(str(bogus))


def test_snapshot_error_is_repro_error():
    assert issubclass(SnapshotError, ReproError)
