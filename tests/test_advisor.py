"""Replication-advisor tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import ModelStrategy
from repro.costmodel.advisor import (
    PathWorkload,
    recommend,
    sweep_recommendations,
)
from repro.errors import CostModelError


def test_read_heavy_low_sharing_picks_inplace():
    rec = recommend(PathWorkload(update_probability=0.05, f=1, f_r=0.002))
    assert rec.strategy is ModelStrategy.IN_PLACE
    assert rec.saving_percent > 10
    assert rec.ddl("Emp1.dept.name") == "replicate Emp1.dept.name"


def test_update_heavy_high_sharing_picks_separate():
    rec = recommend(PathWorkload(update_probability=0.5, f=20, f_r=0.002))
    assert rec.strategy is ModelStrategy.SEPARATE
    assert rec.ddl("Emp1.dept.name") == "replicate Emp1.dept.name using separate"


def test_update_only_low_sharing_picks_none():
    rec = recommend(PathWorkload(update_probability=1.0, f=1, f_r=0.002))
    assert rec.strategy is ModelStrategy.NO_REPLICATION
    assert rec.ddl("Emp1.dept.name") is None
    assert rec.saving_percent == 0.0


def test_marginal_saving_is_rejected():
    # f = 1, separate is nearly a wash for reads; at moderate update rates
    # the best replicated option's saving can fall under the threshold
    rec = recommend(PathWorkload(update_probability=0.45, f=1, f_r=0.001))
    if rec.strategy is not ModelStrategy.NO_REPLICATION:
        assert rec.saving_percent >= 2.0


def test_costs_reported_for_all_strategies():
    rec = recommend(PathWorkload(update_probability=0.2, f=10))
    assert set(rec.costs) == set(ModelStrategy)
    assert all(cost > 0 for cost in rec.costs.values())
    assert rec.reasoning


def test_clustered_changes_magnitude_not_winner_at_low_p():
    unclustered = recommend(PathWorkload(update_probability=0.05, f=1, clustered=False))
    clustered = recommend(PathWorkload(update_probability=0.05, f=1, clustered=True))
    assert unclustered.strategy is clustered.strategy is ModelStrategy.IN_PLACE
    assert clustered.saving_percent > unclustered.saving_percent


def test_sweep_transitions_inplace_to_separate_to_none():
    """As updates grow, the verdict walks the paper's regimes."""
    sweep = sweep_recommendations(
        PathWorkload(update_probability=0.0, f=20, f_r=0.002),
        p_updates=(0.0, 0.5, 1.0),
    )
    strategies = [rec.strategy for __p, rec in sweep]
    assert strategies[0] is ModelStrategy.IN_PLACE
    assert strategies[1] is ModelStrategy.SEPARATE
    assert strategies[-1] in (ModelStrategy.SEPARATE, ModelStrategy.NO_REPLICATION)


def test_invalid_probability_rejected():
    with pytest.raises(CostModelError):
        PathWorkload(update_probability=1.5)


@settings(max_examples=60, deadline=None)
@given(
    p=st.floats(min_value=0.0, max_value=1.0),
    f=st.sampled_from([1, 5, 10, 20, 50]),
    f_r=st.sampled_from([0.001, 0.002, 0.005]),
    clustered=st.booleans(),
)
def test_property_recommendation_never_loses(p, f, f_r, clustered):
    """The recommended strategy is never costlier than no replication."""
    rec = recommend(PathWorkload(update_probability=p, f=f, f_r=f_r, clustered=clustered))
    base = rec.costs[ModelStrategy.NO_REPLICATION]
    assert rec.costs[rec.strategy] <= base + 1e-9
    assert 0.0 <= rec.saving_percent <= 100.0
