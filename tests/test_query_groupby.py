"""``group by`` tests."""

import pytest

from repro.errors import ParseError
from repro.query.language import parse_statement


def test_parse_group_by():
    stmt = parse_statement(
        "retrieve (Emp1.dept.name, count(Emp1.name)) group by Emp1.dept.name"
    )
    assert stmt.group_by[0].text == "Emp1.dept.name"
    assert stmt.aggregates == (None, "count")


def test_parse_rejects_plain_target_not_in_keys():
    with pytest.raises(ParseError):
        parse_statement(
            "retrieve (Emp1.age, count(Emp1.name)) group by Emp1.dept.name"
        )


def test_parse_rejects_group_without_aggregate():
    with pytest.raises(ParseError):
        parse_statement("retrieve (Emp1.age) group by Emp1.age")


def test_parse_rejects_order_with_group():
    with pytest.raises(ParseError):
        parse_statement(
            "retrieve (Emp1.age, count(Emp1.name)) group by Emp1.age "
            "order by Emp1.age"
        )


def test_group_by_department(company):
    db = company["db"]
    res = db.execute(
        "retrieve (Emp1.dept.name, count(Emp1.name), sum(Emp1.salary)) "
        "group by Emp1.dept.name"
    )
    assert res.columns == (
        "Emp1.dept.name", "count(Emp1.name)", "sum(Emp1.salary)",
    )
    assert res.rows == [
        ("shoes", 2, 90_000 + 100_000),
        ("tools", 2, 70_000 + 80_000),
        ("toys", 2, 50_000 + 60_000),
    ]
    assert "group(" in res.plan


def test_group_by_with_filter_and_limit(company):
    db = company["db"]
    res = db.execute(
        "retrieve (Emp1.dept.name, max(Emp1.salary)) "
        "where Emp1.salary >= 60000 group by Emp1.dept.name limit 2"
    )
    assert res.rows == [("shoes", 100_000), ("tools", 80_000)]


def test_group_by_replicated_key_uses_hidden_field(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    res = db.execute(
        "retrieve (Emp1.dept.name, avg(Emp1.age)) group by Emp1.dept.name"
    )
    assert "group(replicated" in res.plan
    assert [r[0] for r in res.rows] == ["shoes", "tools", "toys"]


def test_group_by_two_keys(company):
    db = company["db"]
    res = db.execute(
        "retrieve (Emp1.dept.name, Emp1.dept.org.name, count(Emp1.name)) "
        "group by Emp1.dept.name, Emp1.dept.org.name"
    )
    assert ("toys", "acme", 2) in res.rows
    assert len(res.rows) == 3


def test_group_by_null_key_groups_together(company):
    db = company["db"]
    for i in range(2):
        db.insert("Emp1", {"name": f"nix{i}", "age": 1, "salary": 1, "dept": None})
    res = db.execute(
        "retrieve (Emp1.dept.name, count(Emp1.name)) group by Emp1.dept.name"
    )
    assert (None, 2) in res.rows


def test_aggregates_only_with_group_key_absent_from_output(company):
    db = company["db"]
    res = db.execute(
        "retrieve (count(Emp1.name)) group by Emp1.dept.name"
    )
    assert sorted(res.rows) == [(2,), (2,), (2,)]
