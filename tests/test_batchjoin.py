"""The batched (set-oriented) join operator: sweeps, stats, analyze labels."""

import pytest

from repro.query.analyze import operators_total_io
from repro.schema.database import Database
from tests.conftest import define_employee_schema


def _op(result, name):
    matches = [op for op in result.operators if op.name == name]
    assert matches, f"no operator {name!r} in {[o.name for o in result.operators]}"
    return matches[0]


# -- read_many: the ordered sweep --------------------------------------------


def test_read_many_dedupes_and_counts(company):
    db = company["db"]
    refs = [db.store.read(oid).ref("dept") for oid in company["emps"].values()]
    assert len(refs) == 6
    before = db.stats.snapshot()
    objs = db.store.read_many(refs)
    delta = db.stats.snapshot() - before
    assert len(objs) == 3  # six probes, three distinct departments
    assert delta.batch_dedup_saved == 3
    names = {obj.values["name"] for obj in objs.values()}
    assert names == {"toys", "tools", "shoes"}


def test_read_many_leaves_no_pins(company):
    db = company["db"]
    refs = [db.store.read(oid).ref("dept") for oid in company["emps"].values()]
    db.store.read_many(refs)
    assert db.storage.pool.pinned_keys() == []


def test_read_many_empty_and_duplicate_only(company):
    db = company["db"]
    assert db.store.read_many([]) == {}
    oid = company["depts"]["toys"]
    objs = db.store.read_many([oid, oid, oid])
    assert list(objs) == [oid]


# -- EXPLAIN ANALYZE under the batched executor ------------------------------


def test_batched_analyze_hop_labels_match_naive(company):
    db = company["db"]
    assert db.join_mode == "batched"
    db.cold_cache()
    result = db.explain_analyze("retrieve (Emp1.dept.org.name)",
                                materialize=False)
    join = _op(result, "functional_join")
    assert [c.name for c in join.children] == ["hop dept", "hop org"]
    assert join.rows == 6
    assert sum(c.physical_reads for c in join.children) == join.physical_reads
    assert operators_total_io(result.operators) == result.io.total_io


def test_batched_analyze_reports_distinct_and_dedup(company):
    db = company["db"]
    db.cold_cache()
    result = db.explain_analyze("retrieve (Emp1.dept.name)",
                                materialize=False)
    hop = _op(result, "functional_join").children[0]
    assert hop.rows == 6
    assert hop.distinct == 3
    assert hop.dedup_saved == 3
    assert "mode(batched)" in result.plan


def test_naive_mode_plan_and_no_batch_stats(company):
    db = company["db"]
    db.join_mode = "naive"
    db.cold_cache()
    result = db.explain_analyze("retrieve (Emp1.dept.name)",
                                materialize=False)
    assert "mode(naive)" in result.plan
    hop = _op(result, "functional_join").children[0]
    assert hop.rows == 6
    assert hop.distinct == 0 and hop.dedup_saved == 0


# -- NULL references: null-hits, never phantom hops --------------------------


@pytest.mark.parametrize("join_mode", ["naive", "batched"])
def test_mid_chain_null_records_null_hit_not_phantom_hop(company, join_mode):
    db = company["db"]
    db.join_mode = join_mode
    lost = db.insert("Dept", {"name": "lost", "budget": 1, "org": None})
    db.insert("Emp1", {"name": "zed", "age": 99, "salary": 1, "dept": lost})
    db.insert("Emp1", {"name": "nix", "age": 98, "salary": 1, "dept": None})
    db.cold_cache()
    result = db.explain_analyze("retrieve (Emp1.dept.org.name)",
                                materialize=False)
    join = _op(result, "functional_join")
    # zed's chain dies at org, nix's at dept: two null-hits on the join op
    assert join.nulls == 2
    assert [c.name for c in join.children] == ["hop dept", "hop org"]
    for child in join.children:
        assert child.rows > 0, f"phantom zero-row child {child.name!r}"
    assert join.children[0].rows == 7  # nix never took the first hop
    assert join.children[1].rows == 6
    assert sum(1 for r in result.rows if r[0] is None) == 2


@pytest.mark.parametrize("join_mode", ["naive", "batched"])
def test_all_null_level_creates_no_hop_child(join_mode):
    db = Database(join_mode=join_mode)
    define_employee_schema(db)
    for i in range(3):
        db.insert("Emp1", {"name": f"e{i}", "age": i, "salary": 1, "dept": None})
    result = db.explain_analyze("retrieve (Emp1.dept.name)",
                                materialize=False)
    join = _op(result, "functional_join")
    assert join.children == []
    assert join.nulls == 3
    assert result.rows == [(None,), (None,), (None,)]


# -- batching mechanics ------------------------------------------------------


def test_small_batches_preserve_row_order(company):
    db = Database(join_batch_rows=2)
    define_employee_schema(db)
    reference = company["db"].execute(
        "retrieve (Emp1.name, Emp1.dept.org.name)", materialize=False)
    # rebuild the same data in the fresh 2-row-batch database
    orgs = {n: db.insert("Org", dict(name=n, budget=b))
            for n, b in [("acme", 1_000_000), ("globex", 2_000_000)]}
    depts = {}
    for n, b, o in [("toys", 100, "acme"), ("tools", 200, "acme"),
                    ("shoes", 300, "globex")]:
        depts[n] = db.insert("Dept", {"name": n, "budget": b, "org": orgs[o]})
    for i, (e, d) in enumerate([("alice", "toys"), ("bob", "toys"),
                                ("carol", "tools"), ("dave", "tools"),
                                ("erin", "shoes"), ("frank", "shoes")]):
        db.insert("Emp1", {"name": e, "age": 30 + i, "salary": 50_000,
                           "dept": depts[d]})
    result = db.execute("retrieve (Emp1.name, Emp1.dept.org.name)",
                        materialize=False)
    assert result.rows == reference.rows


def test_join_batch_rows_floor_and_join_mode_validation():
    db = Database(join_batch_rows=0)
    assert db.join_batch_rows == 1
    with pytest.raises(ValueError):
        db.join_mode = "sideways"
    with pytest.raises(ValueError):
        Database(join_mode="sideways")


def test_file_scan_readahead_counts_and_same_physical_reads():
    rows = []
    for join_mode in ("naive", "batched"):
        db = Database(join_mode=join_mode)
        define_employee_schema(db)
        for i in range(200):
            db.insert("Emp1", {"name": f"e{i}", "age": i, "salary": i,
                               "dept": None})
        db.cold_cache()
        before = db.stats.snapshot()
        result = db.execute("retrieve (Emp1.name)", materialize=False)
        delta = db.stats.snapshot() - before
        rows.append((result.rows, delta))
    (naive_rows, naive_io), (batched_rows, batched_io) = rows
    assert batched_rows == naive_rows
    assert batched_io.prefetch_issued > 0
    assert naive_io.prefetch_issued == 0
    # read-ahead reorders reads ahead of demand; it never adds any
    assert batched_io.physical_reads == naive_io.physical_reads


def test_index_scan_batched_preserves_key_order(company):
    db = company["db"]
    db.build_index("Emp1.salary")
    db.cold_cache()
    result = db.execute(
        "retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary >= 60000",
        materialize=False)
    assert "IndexScan" in result.plan
    assert [r[0] for r in result.rows] == ["bob", "carol", "dave", "erin",
                                           "frank"]
