"""WAL-shipping replication: log, hub, follower apply, staleness, failover.

This is the server-layer replication (primary streams committed
statements to read-only followers), distinct from the paper's *field*
replication the rest of the suite exercises.
"""

import time

import pytest

from repro.errors import (ReadOnlyReplicaError, RemoteError,
                          ReplicaResyncError, ReplicaStaleError,
                          ReplicationLinkError)
from repro.recovery.faults import NetFaultInjector
from repro.schema.database import Database
from repro.server.client import RoutedClient, connect
from repro.server.replica import Replica, ReplicaServer
from repro.server.replog import ReplicationEntry, ReplicationLog, render_status
from repro.server.service import Server


# ---------------------------------------------------------------------------
# the log itself
# ---------------------------------------------------------------------------


def test_log_lsns_are_monotone_and_addressable():
    log = ReplicationLog(max_entries=100)
    for i in range(5):
        entry = log.append("dml", note=f"stmt {i}")
        assert entry.lsn == i + 1
    assert log.last_lsn == 5
    tail = log.entries_after(2)
    assert [e.lsn for e in tail] == [3, 4, 5]
    assert log.entries_after(5) == []


def test_log_retention_forces_resync():
    log = ReplicationLog(max_entries=3)
    for i in range(10):
        log.append("dml", note=str(i))
    assert log.last_lsn == 10
    assert len(log) == 3
    assert log.dropped == 7
    assert log.oldest_lsn == 8
    # a follower inside the retained window still catches up
    assert [e.lsn for e in log.entries_after(7)] == [8, 9, 10]
    # one that fell off the tail must re-seed
    with pytest.raises(ReplicaResyncError):
        log.entries_after(5)


def test_relay_refuses_stream_gaps():
    log = ReplicationLog()
    log.relay(ReplicationEntry(1, "dml", "a", b""))
    with pytest.raises(ReplicationLinkError):
        log.relay(ReplicationEntry(3, "dml", "gap", b""))
    log.relay(ReplicationEntry(2, "dml", "b", b""))
    assert log.last_lsn == 2


def test_entry_wire_round_trip():
    dml = ReplicationEntry(6, "dml", "insert Emp1", b"\x01\x02")
    back = ReplicationEntry.from_wire(dml.to_wire())
    assert (back.lsn, back.kind, back.frames) == (6, "dml", b"\x01\x02")
    ddl = ReplicationEntry(7, "ddl", "create S: {own ref T}", next_file_id=9)
    back = ReplicationEntry.from_wire(ddl.to_wire())
    assert (back.lsn, back.kind, back.note) == (7, "ddl", ddl.note)
    assert back.next_file_id == 9
    with pytest.raises(ReplicationLinkError):
        ReplicationEntry.from_wire({"lsn": 1, "kind": "mystery"})


def test_wait_beyond_times_out_and_wakes():
    log = ReplicationLog()
    assert log.wait_beyond(0, timeout=0.01) is False
    log.append("dml")
    assert log.wait_beyond(0, timeout=0.01) is True


# ---------------------------------------------------------------------------
# served topology fixtures
# ---------------------------------------------------------------------------


SETUP_DDL = [
    "define type DEPT (name: char[12], floor: int)",
    "define type EMP (name: char[12], age: int, dept: ref DEPT)",
    "create Dept1: {own ref DEPT}",
    "create Emp1: {own ref EMP}",
    "replicate Emp1.dept.name",
]


def _populate(primary: Server, client) -> None:
    """DDL over the wire, rows via the engine API under the latch."""
    for text in SETUP_DDL:
        client.execute(text)
    with primary.sessions.latch:
        db = primary.db
        toys = db.insert("Dept1", {"name": "toys", "floor": 3})
        tools = db.insert("Dept1", {"name": "tools", "floor": 1})
        db.insert("Emp1", {"name": "alice", "age": 30, "dept": toys})
        db.insert("Emp1", {"name": "bob", "age": 40, "dept": tools})


def _wait_caught_up(replica: Replica, primary: Server,
                    timeout: float = 5.0) -> None:
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if (replica.applied_lsn >= primary.hub.log.last_lsn
                and replica.connected):
            return
        time.sleep(0.01)
    raise AssertionError(
        f"follower stuck at {replica.applied_lsn}, primary at "
        f"{primary.hub.log.last_lsn}")


@pytest.fixture()
def topology():
    primary = Server(Database(wal=True), port=0, sync_replicas=1,
                     sync_timeout=10.0).start()
    follower = ReplicaServer(
        Replica(primary.address, name="r1", max_lag_statements=64,
                poll_wait=0.05, min_backoff=0.01, max_backoff=0.2),
        port=0).start()
    client = connect(*primary.address)
    try:
        _populate(primary, client)
        _wait_caught_up(follower.replica, primary)
        yield primary, follower, client
    finally:
        client.close()
        follower.die()
        primary.die()


# ---------------------------------------------------------------------------
# streaming end to end
# ---------------------------------------------------------------------------


def test_follower_serves_primary_rows(topology):
    primary, follower, client = topology
    with connect(*follower.address) as rc:
        rows = rc.execute("retrieve (Emp1.name, Emp1.dept.name)").rows
    assert sorted(r[0] for r in rows) == ["alice", "bob"]


def test_writes_keep_streaming_and_ddl_keeps_file_ids_aligned(topology):
    primary, follower, client = topology
    # a retrieve materializes (and drops) a temp file on the primary;
    # the follower must neither receive it nor fall out of id-step for
    # the DDL that follows
    before = primary.hub.log.last_lsn
    client.execute("retrieve (Emp1.name)")
    assert primary.hub.log.last_lsn == before  # reads ship nothing
    client.execute('replace (Emp1.age = 31) where Emp1.name = "alice"')
    client.execute("create Emp2: {own ref EMP}")
    _wait_caught_up(follower.replica, primary)
    assert (follower.db.storage.disk.file_ids()
            == primary.db.storage.disk.file_ids())
    with connect(*follower.address) as rc:
        rows = rc.execute('retrieve (Emp1.age) where Emp1.name = "alice"').rows
    assert [list(r) for r in rows] == [[31]]


def test_replica_refuses_writes_with_stable_code(topology):
    primary, follower, client = topology
    with connect(*follower.address) as rc:
        with pytest.raises(RemoteError) as err:
            rc.execute('replace (Emp1.age = 99) where Emp1.name = "alice"')
    assert err.value.code == "read_only_replica"


def test_stale_replica_refuses_reads_with_stable_code(topology):
    primary, follower, client = topology
    replica = follower.replica
    replica.stop_apply()
    replica.max_lag = 0
    replica.primary_lsn = replica.applied_lsn + 5  # what a heartbeat told us
    assert replica.stale
    with connect(*follower.address) as rc:
        with pytest.raises(RemoteError) as err:
            rc.execute("retrieve (Emp1.name)")
    assert err.value.code == "replica_stale"
    assert follower.health()["status"] == "stale"
    count = replica.db.telemetry.metrics.value(
        "replica_stale_reads_rejected_total")
    assert count >= 1


def test_guard_is_a_plain_exception_in_process(topology):
    primary, follower, client = topology
    replica = follower.replica
    with pytest.raises(ReadOnlyReplicaError):
        replica.guard("write")
    replica.max_lag = 0
    replica.primary_lsn = replica.applied_lsn + 1
    with pytest.raises(ReplicaStaleError) as err:
        replica.guard("read")
    assert err.value.lag == 1 and err.value.bound == 0


def test_follower_reconnects_and_dedupes_after_link_loss(topology):
    primary, follower, client = topology
    replica = follower.replica
    applied = replica.applied_lsn
    reconnects = replica.reconnects
    # sever every live connection (including the replication link); the
    # listener stays up, so the follower must re-subscribe and resume
    with primary._mutex:
        conns = list(primary._conns)
    for sock in conns:
        sock.close()
    with connect(*primary.address) as writer:
        writer.execute('replace (Emp1.age = 41) where Emp1.name = "bob"')
    _wait_caught_up(replica, primary)
    assert replica.applied_lsn > applied
    assert replica.reconnects > reconnects
    with connect(*follower.address) as rc:
        rows = rc.execute('retrieve (Emp1.age) where Emp1.name = "bob"').rows
    assert [list(r) for r in rows] == [[41]]


def test_promote_over_the_wire_stands_down_the_guard(topology):
    primary, follower, client = topology
    primary.die()
    with connect(*follower.address) as rc:
        result = rc.promote()
        assert result["kind"] == "promoted"
        rc.execute('replace (Emp1.age = 50) where Emp1.name = "alice"')
        rows = rc.execute('retrieve (Emp1.age) where Emp1.name = "alice"').rows
    assert [list(r) for r in rows] == [[50]]
    assert follower.replica.promoted
    assert follower.health()["status"] in ("ok", "degraded")


def test_replication_status_and_render(topology):
    primary, follower, client = topology
    pstat = client.replication()
    assert pstat["role"] == "primary"
    assert pstat["last_lsn"] == primary.hub.log.last_lsn
    assert len(pstat["followers"]) >= 1
    with connect(*follower.address) as rc:
        fstat = rc.replication()
    assert fstat["role"] == "follower"
    assert fstat["applied_lsn"] == pstat["last_lsn"]
    text = render_status(pstat) + "\n" + render_status(fstat)
    assert "role primary" in text and "role follower" in text
    assert "follower #" in text


def test_meta_replication_and_server_stats_carry_topology(topology):
    primary, follower, client = topology
    assert "role primary" in client.meta("replication")
    assert primary.server_stats()["replication"]["role"] == "primary"


# ---------------------------------------------------------------------------
# the sync quorum
# ---------------------------------------------------------------------------


def test_quorum_timeout_is_counted_but_not_fatal():
    primary = Server(Database(wal=True), port=0, sync_replicas=1,
                     sync_timeout=0.05).start()
    try:
        with connect(*primary.address) as client:
            client.execute("define type T (x: int)")  # no follower: times out
        assert primary.db.telemetry.metrics.value(
            "replication_sync_timeouts_total") >= 1
    finally:
        primary.die()


def test_drain_flushes_the_tail_to_followers():
    primary = Server(Database(wal=True), port=0, drain_timeout=5.0).start()
    follower = ReplicaServer(
        Replica(primary.address, name="r1", poll_wait=0.05,
                min_backoff=0.01, max_backoff=0.2), port=0).start()
    try:
        with connect(*primary.address) as client:
            for text in SETUP_DDL:
                client.execute(text)
        deadline = time.perf_counter() + 5.0
        while (follower.replica.applied_lsn < primary.hub.log.last_lsn
               and time.perf_counter() < deadline):
            time.sleep(0.01)
        flushed, laggards = primary.hub.drain(timeout=5.0)
        assert flushed and not laggards
        primary.shutdown()  # runs the same drain; must not hang
    finally:
        follower.die()
        primary.die()


# ---------------------------------------------------------------------------
# client robustness: timeouts, retry, routing
# ---------------------------------------------------------------------------


def test_client_retries_idempotent_requests_after_a_drop(topology):
    primary, follower, client = topology
    retrying = connect(*primary.address, retry=True, retry_backoff=0.01)
    try:
        retrying.ping()
        with primary._mutex:
            conns = list(primary._conns)
        for sock in conns:
            sock.close()
        # the socket is dead; a retryable request reconnects transparently
        assert retrying.ping() is True
        rows = retrying.execute("retrieve (Emp1.name)").rows
        assert len(rows) == 2
    finally:
        retrying.close()


def test_client_does_not_retry_writes_or_inside_transactions(topology):
    primary, follower, client = topology
    c = connect(*primary.address, retry=True, retry_backoff=0.01)
    try:
        assert c._may_retry("statement", {"statement": "retrieve (Emp1.name)"})
        assert not c._may_retry(
            "statement", {"statement": 'replace (Emp1.age = 1)'})
        c.begin()
        assert not c._may_retry(
            "statement", {"statement": "retrieve (Emp1.name)"})
        c.abort()
    finally:
        c.close()


def test_routed_client_routes_reads_and_falls_back(topology):
    primary, follower, client = topology
    with RoutedClient(primary.address, replicas=[follower.address],
                      retry_backoff=0.01) as routed:
        served = follower.replica.db.telemetry.metrics
        before = served.value("server_requests_total", kind="statement") or 0
        rows = routed.execute("retrieve (Emp1.name)").rows
        assert len(rows) == 2
        after = served.value("server_requests_total", kind="statement") or 0
        assert after > before  # the read ran on the follower
        # writes go to the primary even with replicas configured
        routed.execute('replace (Emp1.age = 33) where Emp1.name = "alice"')
        # a stale replica falls back to the primary instead of failing
        follower.replica.stop_apply()
        follower.replica.max_lag = 0
        follower.replica.primary_lsn = follower.replica.applied_lsn + 9
        rows = routed.execute("retrieve (Emp1.age) "
                              'where Emp1.name = "alice"').rows
        assert [list(r) for r in rows] == [[33]]


# ---------------------------------------------------------------------------
# the network fault injector
# ---------------------------------------------------------------------------


def test_net_faults_are_deterministic_per_seed():
    a = NetFaultInjector(seed=7, drop=0.2, delay=0.2, duplicate=0.2)
    b = NetFaultInjector(seed=7, drop=0.2, delay=0.2, duplicate=0.2)
    plans = [a.plan_frame() for __ in range(50)]
    assert plans == [b.plan_frame() for __ in range(50)]
    assert set(plans) <= set(NetFaultInjector.ACTIONS)
    assert a.frames_seen == 50


def test_net_fault_script_pins_exact_frames():
    inj = NetFaultInjector(script=["ok", "drop", "truncate"])
    assert inj.armed
    assert [inj.plan_frame() for __ in range(3)] == ["ok", "drop", "truncate"]
    assert inj.plan_frame() == "ok"  # script exhausted, no rates armed


def test_net_fault_rates_are_validated():
    with pytest.raises(ValueError):
        NetFaultInjector(drop=1.5)
    with pytest.raises(ValueError):
        NetFaultInjector(drop=0.6, truncate=0.6)


def test_follower_survives_a_hostile_link():
    """Scripted drop/duplicate/truncate faults on the real link: the
    follower reconnects, dedupes, and still converges byte-for-byte."""
    primary = Server(Database(wal=True), port=0).start()
    faults = NetFaultInjector(
        script=["ok", "duplicate", "drop", "ok", "truncate"] + ["ok"] * 5,
        seed=3, drop=0.05, duplicate=0.05)
    follower = ReplicaServer(
        Replica(primary.address, name="chaos", poll_wait=0.05,
                link_timeout=0.3, min_backoff=0.01, max_backoff=0.1,
                net_faults=faults),
        port=0).start()
    try:
        with connect(*primary.address) as client:
            _populate(primary, client)
        _wait_caught_up(follower.replica, primary, timeout=10.0)
        assert faults.frames_seen > 0
        with connect(*follower.address) as rc:
            rows = rc.execute("retrieve (Emp1.name)").rows
        assert sorted(r[0] for r in rows) == ["alice", "bob"]
    finally:
        follower.die()
        primary.die()
