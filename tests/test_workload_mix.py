"""Mixed-stream workload tests: C_total measured directly."""

import random

import pytest

from repro.workloads import WorkloadConfig, build_model_database, measure_strategy
from repro.workloads.simulate import run_mix


def small(strategy):
    return WorkloadConfig(n_s=150, f=3, f_r=0.02, f_s=0.02, strategy=strategy,
                          buffer_frames=1024)


def test_run_mix_endpoints_match_pure_measurements():
    cfg = small("inplace")
    mdb = build_model_database(cfg)
    rng = random.Random(1)
    read_only = run_mix(mdb, p_update=0.0, n_queries=4, rng=rng)
    update_only = run_mix(mdb, p_update=1.0, n_queries=4, rng=rng)
    assert read_only > 0 and update_only > 0
    # in-place: update queries cost more than read queries at this shape
    assert update_only > read_only
    mdb.db.verify()


def test_run_mix_is_between_endpoints():
    cfg = small("separate")
    mdb = build_model_database(cfg)
    rng = random.Random(2)
    lo = min(run_mix(mdb, 0.0, 4, rng), run_mix(mdb, 1.0, 4, rng))
    hi = max(run_mix(mdb, 0.0, 4, rng), run_mix(mdb, 1.0, 4, rng))
    mid = run_mix(mdb, 0.5, 8, rng)
    assert lo * 0.7 <= mid <= hi * 1.3  # noise-tolerant sandwich
    mdb.db.verify()


def test_mixed_stream_leaves_database_consistent():
    for strategy in ("inplace", "separate"):
        mdb = build_model_database(small(strategy))
        run_mix(mdb, p_update=0.5, n_queries=10)
        mdb.db.verify()


def test_measure_strategy_averages():
    measured = measure_strategy(small("none"), trials=2)
    assert measured.strategy == "none"
    assert measured.read > 0 and measured.update > 0
    assert measured.total(0.0) == pytest.approx(measured.read)
    assert measured.total(1.0) == pytest.approx(measured.update)
