"""Crash-matrix torture tests: crash at every write, recover, verify.

Each sweep takes one replication workload (in-place, separate, and two
paths over a shared prefix), counts the physical page writes a clean run
performs, then re-runs it once per sampled write index with
``fail_after_writes(k)`` armed.  After every injected crash the database
must recover to *exactly* the statement-aligned prefix of the workload:
verified replication, correct set cardinality, no half-applied statement.

``CRASH_MATRIX_STRIDE`` (default 3) samples every third write index --
always including the first and last -- to keep the matrix affordable in
tier-1; set it to 1 for the exhaustive sweep the CI torture job runs.
"""

import os

import pytest

from repro import Database, TypeDefinition, char_field, int_field, ref_field
from repro.recovery import count_writes, crash_matrix

STRIDE = int(os.environ.get("CRASH_MATRIX_STRIDE", "3"))

WIDE = 1800  # char-field width: ~2 records/page, so the workload moves pages


def build_db(paths):
    db = Database(wal=True, buffer_frames=5)
    db.define_type(TypeDefinition("ORG", [char_field("name", WIDE),
                                          int_field("budget")]))
    db.define_type(TypeDefinition("DEPT", [char_field("name", WIDE),
                                           int_field("budget"),
                                           ref_field("org", "ORG")]))
    db.define_type(TypeDefinition("EMP", [char_field("name", WIDE),
                                          int_field("salary"),
                                          ref_field("dept", "DEPT")]))
    db.create_set("Org", "ORG")
    db.create_set("Dept", "DEPT")
    db.create_set("Emp", "EMP")
    orgs = [db.insert("Org", {"name": f"org{i}", "budget": 1000 + i})
            for i in range(2)]
    for i in range(2):
        db.insert("Dept", {"name": f"dept{i}", "budget": i, "org": orgs[i]})
    for text, strategy in paths:
        db.replicate(text, strategy=strategy)
    db.checkpoint()
    return db


def run_steps(db):
    """The tortured workload: inserts, data-update, ref-update, delete.

    Every thunk is one statement; the expected Emp cardinality after each
    completed step is tracked in ``EXPECTED_COUNT``.
    """
    dept_oids = [oid for oid, __ in db.catalog.get_set("Dept").scan()]
    org_oids = [oid for oid, __ in db.catalog.get_set("Org").scan()]
    emp_oids = []

    def insert(i):
        def step():
            emp_oids.append(db.insert("Emp", {
                "name": f"emp{i}", "salary": 1000 + i,
                "dept": dept_oids[i % 2]}))
        return step

    def rename_dept(i, text):  # data-update propagated by the in-place path
        return lambda: db.update("Dept", dept_oids[i], {"name": text * 150})

    def fund_org(i, amount):  # data-update propagated by the separate path
        return lambda: db.update("Org", org_oids[i], {"budget": amount})

    def move_emp(k, d):  # ref-update: propagation must move with the edge
        return lambda: db.update("Emp", emp_oids[k], {"dept": dept_oids[d]})

    def raise_salary(k):
        return lambda: db.update("Emp", emp_oids[k], {"salary": 777777})

    def fire_emp(k):
        return lambda: db.delete("Emp", emp_oids[k])

    return [
        insert(0), insert(1), insert(2), insert(3), insert(4), insert(5),
        rename_dept(0, "marketing"),
        fund_org(0, 11111),
        move_emp(0, 1),
        raise_salary(2),
        rename_dept(1, "research"),
        fund_org(1, 22222),
        move_emp(3, 0),
        fire_emp(5),
        insert(6),
    ]


# Emp cardinality after each fully completed step (prefix-aligned oracle)
EXPECTED_COUNT = [0, 1, 2, 3, 4, 5, 6, 6, 6, 6, 6, 6, 6, 6, 5, 6]

WORKLOADS = {
    "inplace": [("Emp.dept.name", "inplace")],
    "separate": [("Emp.dept.org.budget", "separate")],
    "shared-prefix": [("Emp.dept.name", "inplace"),
                      ("Emp.dept.org.budget", "separate")],
}


def check(db, completed):
    assert db.catalog.get_set("Emp").count() == EXPECTED_COUNT[completed]


def sweep(name, torn):
    paths = WORKLOADS[name]
    outcomes = crash_matrix(lambda: build_db(paths), run_steps,
                            stride=STRIDE, torn=torn, check=check)
    assert outcomes, "workload produced no physical writes to crash on"
    assert any(o.crashed for o in outcomes)
    # at least one crash must land mid-workload, not only at the edges
    assert any(0 < o.steps_completed < len(EXPECTED_COUNT) - 1
               for o in outcomes if o.crashed)
    return outcomes


@pytest.mark.tortured
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_crash_matrix_clean_crashes(name):
    sweep(name, torn=False)


@pytest.mark.tortured
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_crash_matrix_torn_writes(name):
    sweep(name, torn=True)


@pytest.mark.tortured
def test_crash_matrix_discards_or_replays_every_statement():
    outcomes = sweep("inplace", torn=False)
    crashed = [o for o in outcomes if o.crashed]
    assert any(o.statements_discarded for o in crashed)
    assert any(o.statements_replayed for o in crashed)


def test_workload_is_write_heavy_enough():
    """The matrix is only meaningful if the clean run really moves pages."""
    total = count_writes(lambda: build_db(WORKLOADS["inplace"]), run_steps)
    assert total >= 10
