"""Direct unit tests for ObjectSet and miscellaneous pieces."""

import pytest

from repro.errors import FieldError


def test_make_object_rejects_hidden_fields(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.name")
    emp1 = db.catalog.get_set("Emp1")
    with pytest.raises(FieldError):
        emp1.make_object({"name": "x", path.hidden_fields[0]: "nope"})


def test_make_object_defaults(company):
    emp1 = company["db"].catalog.get_set("Emp1")
    obj = emp1.make_object({"name": "only-name"})
    assert obj.values["age"] == 0
    assert obj.values["dept"] is None


def test_contains(company):
    db = company["db"]
    emp1 = db.catalog.get_set("Emp1")
    dept = db.catalog.get_set("Dept")
    alice = company["emps"]["alice"]
    assert emp1.contains(alice)
    assert not dept.contains(alice)  # wrong file
    db.delete("Emp1", alice)
    assert not emp1.contains(alice)


def test_count_and_pages(company):
    emp1 = company["db"].catalog.get_set("Emp1")
    assert emp1.count() == 6
    assert emp1.num_pages() >= 1


def test_type_def_tracks_widening(company):
    db = company["db"]
    emp1 = db.catalog.get_set("Emp1")
    before = emp1.type_def
    db.replicate("Emp1.dept.name")
    after = emp1.type_def
    assert len(after.fields) == len(before.fields) + 1
    assert after.base == "EMP"


def test_scan_order_is_stable_after_widening(company):
    db = company["db"]
    before = [oid for oid, __ in db.catalog.get_set("Emp1").scan()]
    db.replicate("Emp1.dept.name")  # widens and rewrites every record
    after = [oid for oid, __ in db.catalog.get_set("Emp1").scan()]
    assert before == after  # home rids never moved


def test_cli_truncates_long_tables(company):
    import io

    from repro.cli import Shell

    db = company["db"]
    for i in range(80):
        db.insert("Emp1", {"name": f"bulk{i}", "age": 1, "salary": 1, "dept": None})
    out = io.StringIO()
    shell = Shell(out=out)
    shell.db = db
    shell.run_block("retrieve (Emp1.name)")
    text = out.getvalue()
    assert "more rows" in text
    assert "(86 row(s))" in text


def test_four_level_path(db):
    """A 4-level chain exercises the general n-level machinery."""
    from repro import TypeDefinition, char_field, ref_field

    chain_types = ["T0", "T1", "T2", "T3", "T4"]
    db.define_type(TypeDefinition("T4", [char_field("name", 8)]))
    for i in range(3, -1, -1):
        db.define_type(
            TypeDefinition(
                chain_types[i],
                [char_field("name", 8), ref_field("next", chain_types[i + 1])],
            )
        )
    for i, t in enumerate(chain_types):
        db.create_set(f"S{i}", t)
    tail = db.insert("S4", {"name": "end"})
    prev = tail
    for i in range(3, 0, -1):
        prev = db.insert(f"S{i}", {"name": f"n{i}", "next": prev})
    sources = [db.insert("S0", {"name": f"src{j}", "next": prev}) for j in range(4)]
    path = db.replicate("S0.next.next.next.next.name")
    assert path.level == 4
    assert len(path.link_sequence) == 4
    assert db.get("S0", sources[0]).values[path.hidden_field_for("name")] == "end"
    db.update("S4", tail, {"name": "END"})
    assert db.get("S0", sources[3]).values[path.hidden_field_for("name")] == "END"
    db.verify()
    # rewire at depth 2
    alt_tail = db.insert("S4", {"name": "alt"})
    alt3 = db.insert("S3", {"name": "a3", "next": alt_tail})
    s2 = [oid for oid, __ in db.catalog.get_set("S2").scan()][0]
    db.update("S2", s2, {"next": alt3})
    assert db.get("S0", sources[0]).values[path.hidden_field_for("name")] == "alt"
    db.verify()
