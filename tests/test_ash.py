"""Active session history: ring bounds and eviction (including under
concurrent writers), filtered reads, profiles, and the live sampling
path through a served database (``ash`` verb, ``/ash``, ``\\ash``)."""

import json
import threading
import time
from urllib.request import urlopen

import pytest

from repro.server import connect
from repro.server.httpexpo import MetricsHTTPServer
from repro.server.service import Server
from repro.telemetry.ash import ActiveSessionHistory
from repro.telemetry.waitevents import CLIENT_NET, CPU, WaitEventCollector


def _sample(ts, event="cpu", session_id=1, statement="retrieve ( x )",
            fingerprint="fp"):
    return {"ts": ts, "session_id": session_id, "session": f"s{session_id}",
            "statement": statement, "fingerprint": fingerprint,
            "event": event, "detail": "", "wait_s": 0.0,
            "statement_age_s": 0.0}


# ---------------------------------------------------------------------------
# the ring: bounds, eviction, concurrency
# ---------------------------------------------------------------------------


def test_ring_is_bounded_and_evicts_oldest_first():
    ash = ActiveSessionHistory(capacity=10)
    ash.record([_sample(float(i)) for i in range(25)])
    assert len(ash) == 10
    assert ash.sampled_total == 25
    retained = ash.samples()
    assert [s["ts"] for s in retained] == [float(i) for i in range(15, 25)]


def test_ring_stays_bounded_under_concurrent_sessions():
    ash = ActiveSessionHistory(capacity=64)
    threads = []
    per_thread = 40

    def writer(sid: int) -> None:
        for i in range(per_thread):
            ash.record([_sample(time.time(), session_id=sid)])

    threads = [threading.Thread(target=writer, args=(sid,))
               for sid in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)
    assert len(ash) == 64  # full, never over capacity
    assert ash.sampled_total == 8 * per_thread
    assert ash.passes == 8 * per_thread


def test_filters_window_fingerprint_event_session_and_limit():
    ash = ActiveSessionHistory(capacity=100)
    ash.record([
        _sample(10.0, event=CPU, session_id=1, fingerprint="aa"),
        _sample(20.0, event="lock:Emp1", session_id=2, fingerprint="bb"),
        _sample(30.0, event="lock:Dept", session_id=2, fingerprint="bb"),
        _sample(40.0, event="buffer_io", session_id=3, fingerprint="aa"),
    ])
    assert len(ash.samples(since=15.0, until=35.0)) == 2
    assert len(ash.samples(fingerprint="aa")) == 2
    # "lock" matches the whole class; "lock:Emp1" just that resource
    assert len(ash.samples(event="lock")) == 2
    assert len(ash.samples(event="lock:Emp1")) == 1
    assert len(ash.samples(session_id=2)) == 2
    newest = ash.samples(limit=1)
    assert len(newest) == 1 and newest[0]["ts"] == 40.0


def test_profile_shares_sum_to_one_and_rank_by_samples():
    ash = ActiveSessionHistory()
    ash.record([_sample(1.0, event="lock:Emp1")] * 3
               + [_sample(2.0, event=CPU)])
    profile = ash.profile("event")
    assert profile[0]["event"] == "lock:Emp1"
    assert profile[0]["share"] == pytest.approx(0.75)
    assert sum(row["share"] for row in profile) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        ash.profile("nonsense")


def test_sampling_pass_covers_busy_and_idle_sessions():
    collector = WaitEventCollector()
    collector.begin_statement(1, "busy", "retrieve (Emp1.name)")

    class FakeSession:
        def __init__(self, id_, closed=False):
            self.id = id_
            self.name = f"fake{id_}"
            self.closed = closed
            self.in_txn = False

    ash = ActiveSessionHistory()
    n = ash.sample(collector, [FakeSession(1), FakeSession(2),
                               FakeSession(3, closed=True)])
    # session 1 is busy (cpu), session 2 idle (client_net), 3 is closed
    assert n == 2
    events = {s["session_id"]: s["event"] for s in ash.samples()}
    assert events == {1: CPU, 2: CLIENT_NET}
    busy = ash.samples(session_id=1)[0]
    assert busy["fingerprint"] != ""  # fingerprinted at sample time
    assert ash.samples(session_id=2)[0]["detail"] == "idle"


def test_snapshot_document_shape():
    ash = ActiveSessionHistory(capacity=8)
    ash.record([_sample(time.time(), event=CPU)])
    doc = ash.snapshot(window_s=60.0, limit=5)
    assert doc["capacity"] == 8
    assert doc["retained"] == 1
    assert doc["matched"] == 1
    assert doc["profile"][0]["event"] == CPU
    assert doc["by_fingerprint"][0]["fingerprint"] == "fp"
    assert len(doc["samples"]) == 1
    assert "(no ASH samples" in ActiveSessionHistory().render_text()


# ---------------------------------------------------------------------------
# live sampling through a served database
# ---------------------------------------------------------------------------


@pytest.fixture()
def sampled_server(company):
    srv = Server(company["db"], max_connections=8, workers=2, queue_depth=8,
                 lock_timeout=5.0, sample_interval=0.02,
                 ash_capacity=512).start()
    yield srv
    srv.shutdown()


def _wait_for_samples(server, minimum=3, timeout=10.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if server.ash.sampled_total >= minimum:
            return
        time.sleep(0.02)
    raise AssertionError(f"sampler took no samples in {timeout}s")


def test_live_sampler_feeds_ash_verb_http_and_meta(sampled_server):
    server = sampled_server
    http = MetricsHTTPServer(server).start()
    try:
        with connect(*server.address) as client:
            for __ in range(10):
                client.execute("retrieve (Emp1.name, Emp1.dept.name)")
            _wait_for_samples(server)
            # the wire verb
            doc = client.ash(window_s=300.0)
            assert doc["sampled_total"] >= 3
            assert doc["matched"] >= 1
            events = {row["event"] for row in doc["profile"]}
            assert events & {CPU, CLIENT_NET}
            # the shell meta
            text = client.meta("ash", "300")
            assert "active session history" in text
            # the HTTP surface
            with urlopen(f"http://{http.host}:{http.port}/ash?window_s=300",
                         timeout=10.0) as response:
                assert response.status == 200
                body = json.loads(response.read().decode("utf-8"))
            assert body["sampled_total"] >= 3
            with urlopen(f"http://{http.host}:{http.port}"
                         "/timeseries?window_s=300", timeout=10.0) as response:
                series = json.loads(response.read().decode("utf-8"))["series"]
            assert "server.statements_total" in series
            assert series["server.statements_total"], "sampled points"
            with urlopen(f"http://{http.host}:{http.port}/alerts",
                         timeout=10.0) as response:
                alerts = json.loads(response.read().decode("utf-8"))
            assert {a["alert"] for a in alerts["alerts"]} == \
                {"lock_wait_share", "replica_staleness", "health"}
            assert alerts["firing"] == 0
            assert alerts["evaluations"] >= 1
    finally:
        http.shutdown()


def test_ash_http_rejects_bad_query(sampled_server):
    http = MetricsHTTPServer(sampled_server).start()
    try:
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as err:
            urlopen(f"http://{http.host}:{http.port}/ash?window_s=banana",
                    timeout=10.0)
        assert err.value.code == 400
    finally:
        http.shutdown()


def test_disabled_sampler_answers_empty_but_alive(company):
    server = Server(company["db"], max_connections=4, workers=2,
                    queue_depth=8, sample_interval=0).start()
    try:
        assert not server.sampler.running
        with connect(*server.address) as client:
            client.execute("retrieve (Emp1.name)")
            doc = client.ash()
            assert doc["sampled_total"] == 0
            text = client.meta("ash")
            assert "no ASH samples" in text or "no samples" in text
    finally:
        server.shutdown()
