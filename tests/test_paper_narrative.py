"""The paper, end to end: every numbered example, in order, on one system.

This integration test walks the paper's own narrative -- Figure 1's
schema, Section 3's replication statements, Figure 2/3's inverted paths,
Figure 4/5's link IDs and sharing, Section 4.1.1/4.1.2's maintenance
cases, and Section 5's separate replication -- asserting the behaviour
each section describes.
"""

import pytest

from repro import Database
from repro.errors import IntegrityError
from repro.schema.parser import run_script

FIGURE1 = """
define type ORG ( name: char[20], budget: int )

define type DEPT ( name: char[20], budget: int, org: ref ORG )

define type EMP ( name: char[20], age: int, salary: int, dept: ref DEPT )

create Org:  {own ref ORG}
create Dept: {own ref DEPT}
create Emp1: {own ref EMP}
create Emp2: {own ref EMP}
"""


def test_the_whole_paper():
    db = Database()
    run_script(db, FIGURE1)

    # -- Section 2: the company ------------------------------------------
    o1 = db.insert("Org", {"name": "org1", "budget": 10})
    o2 = db.insert("Org", {"name": "org2", "budget": 20})
    d1 = db.insert("Dept", {"name": "d1", "budget": 1, "org": o1})
    d2 = db.insert("Dept", {"name": "d2", "budget": 2, "org": o1})
    d3 = db.insert("Dept", {"name": "d3", "budget": 3, "org": o2})
    e1 = db.insert("Emp1", {"name": "e1", "age": 30, "salary": 150_000, "dept": d1})
    e2 = db.insert("Emp1", {"name": "e2", "age": 31, "salary": 90_000, "dept": d1})
    e3 = db.insert("Emp1", {"name": "e3", "age": 32, "salary": 120_000, "dept": d2})
    z1 = db.insert("Emp2", {"name": "z1", "age": 40, "salary": 50_000, "dept": d3})

    # -- Section 3.1: replicate Emp1.dept.name, run the motivating query --
    run_script(db, "replicate Emp1.dept.name")
    res = db.execute(
        "retrieve (Emp1.name, Emp1.salary, Emp1.dept.name) where Emp1.salary > 100000"
    )
    assert sorted(res.rows) == [("e1", 150_000, "d1"), ("e3", 120_000, "d2")]
    assert "replicated" in res.plan and "join" not in res.plan

    # -- Figure 2: only referenced departments have link objects ----------
    path1 = db.catalog.get_path("Emp1.dept.name")
    link1 = db.catalog.get_link(path1.link_sequence[0])
    owners = sorted(lo.owner for __oid, lo in link1.file.scan())
    assert owners == sorted([d1, d2])  # d3 is not referenced by Emp1
    # updating d3 propagates nowhere, and costs no Emp1 I/O
    db.update("Dept", d3, {"name": "d3x"})
    db.verify()

    # -- Section 4.1.1: insert / delete / update E.dept ------------------
    e4 = db.insert("Emp1", {"name": "e4", "age": 33, "salary": 1, "dept": d3})
    assert db.get("Dept", d3).link_entry_for(link1.link_id) is not None
    db.update("Emp1", e4, {"dept": d1})     # update E.dept = delete + insert
    assert db.get("Dept", d3).link_entry_for(link1.link_id) is None
    db.delete("Emp1", e4)
    db.verify()

    # -- Section 3.3.2 + Figure 3: the 2-level path -----------------------
    run_script(db, "replicate Emp1.dept.org.name")
    path2 = db.catalog.get_path("Emp1.dept.org.name")
    db.update("Org", o1, {"name": "org1x"})
    assert db.get("Emp1", e1).values[path2.hidden_field_for("name")] == "org1x"
    db.verify()

    # -- Section 4.1.4 + Figure 5: the four-path configuration ------------
    run_script(db, "replicate Emp1.dept.budget")
    run_script(db, "replicate Emp2.dept.org")
    p_budget = db.catalog.get_path("Emp1.dept.budget")
    p_emp2 = db.catalog.get_path("Emp2.dept.org")
    # the three Emp1 paths share link 1; Emp2's path cannot
    assert p_budget.link_sequence[0] == path1.link_sequence[0]
    assert path2.link_sequence[0] == path1.link_sequence[0]
    assert p_emp2.link_sequence[0] != path1.link_sequence[0]
    # d3 (referenced by Emp2 only) carries exactly one pair; d1 carries one
    # per distinct link it owns
    assert len(db.get("Dept", d3).link_entries) == 1
    assert len(db.get("Dept", d1).link_entries) == 1
    # D.org update: propagate through the shared structure (Figure 5's case)
    db.update("Dept", d1, {"org": o2})
    assert db.get("Emp1", e1).values[path2.hidden_field_for("name")] == "org2"
    assert db.get("Emp2", z1).values[p_emp2.hidden_field_for("org")] == o2
    db.verify()

    # -- Section 4's referential-integrity side effect --------------------
    with pytest.raises(IntegrityError):
        db.delete("Dept", d1)  # e1, e2 still reference it

    # -- Section 3.3.4: an index on the replicated 2-level path -----------
    run_script(db, "build btree on Emp1.dept.org.name")
    res = db.execute("retrieve (Emp1.name) where Emp1.dept.org.name = 'org2'")
    assert "IndexScan" in res.plan
    # d1 moved to org2; d2 (e3's department) still belongs to org1
    assert sorted(r[0] for r in res.rows) == ["e1", "e2"]

    # -- Section 5 + Figures 7/8: separate replication ---------------------
    run_script(db, "replicate Emp1.dept.org.budget using separate")
    p_sep = db.catalog.get_path("Emp1.dept.org.budget")
    assert len(p_sep.link_sequence) == 1  # (n-1)-level inverted path
    # shared replicas: one per referenced org (o1 via d2, o2 via d1),
    # not one per employee
    assert db.replication.replica_sets[p_sep.path_id].count() == 2
    db.update("Org", o2, {"budget": 777})
    ref = db.get("Emp1", e1).values[p_sep.hidden_ref]
    assert db.replication.replica_sets[p_sep.path_id].read(ref).values["budget"] == 777
    # Figure 8's D2.org change: e3 re-points to o2's replica, and o1's
    # replica is garbage collected at refcount zero
    db.update("Dept", d2, {"org": o2})
    ref3 = db.get("Emp1", e3).values[p_sep.hidden_ref]
    assert db.replication.replica_sets[p_sep.path_id].read(ref3).values["budget"] == 777
    assert db.replication.replica_sets[p_sep.path_id].count() == 1
    db.verify()

    # -- Section 8's closing claim: everything still consistent -----------
    db.verify()
