"""Engine-level singleton-link inlining (Section 4.3.1).

With ``inline_singleton_links=True`` a link object that would hold exactly
one OID is never materialised: the referencer's OID is stored directly in
the owner's (link-OID, link-ID) pair.  Membership growth upgrades to a
real link object; shrinking back to one referencer downgrades again.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database
from repro.errors import IntegrityError

from tests.conftest import define_employee_schema


@pytest.fixture()
def idb():
    db = Database(inline_singleton_links=True)
    define_employee_schema(db)
    return db


def seed(db, n_depts=3, emps_per_dept=(1, 2, 1)):
    org = db.insert("Org", {"name": "acme", "budget": 1})
    depts = [
        db.insert("Dept", {"name": f"d{i}", "budget": i, "org": org})
        for i in range(n_depts)
    ]
    emps = []
    for i, dept in enumerate(depts):
        for j in range(emps_per_dept[i]):
            emps.append(
                db.insert("Emp1", {"name": f"e{i}{j}", "age": 1, "salary": 1, "dept": dept})
            )
    return org, depts, emps


def test_singleton_entries_are_inlined(idb):
    org, depts, emps = seed(idb)
    path = idb.replicate("Emp1.dept.name")
    link = idb.catalog.get_link(path.link_sequence[0])
    d0 = idb.get("Dept", depts[0])  # one referencer -> inline
    entry = d0.link_entry_for(link.link_id)
    assert entry.inline
    assert entry.link_oid == emps[0]
    d1 = idb.get("Dept", depts[1])  # two referencers -> a real link object
    assert not d1.link_entry_for(link.link_id).inline
    # no link object was materialised for the singletons
    owners = [lo.owner for __oid, lo in link.file.scan()]
    assert owners == [depts[1]]
    idb.verify()


def test_inline_upgrade_on_second_referencer(idb):
    org, depts, emps = seed(idb)
    path = idb.replicate("Emp1.dept.name")
    link = idb.catalog.get_link(path.link_sequence[0])
    idb.insert("Emp1", {"name": "new", "age": 1, "salary": 1, "dept": depts[0]})
    entry = idb.get("Dept", depts[0]).link_entry_for(link.link_id)
    assert not entry.inline
    assert len(link.file.members(entry.link_oid)) == 2
    idb.verify()


def test_inline_downgrade_on_shrink(idb):
    org, depts, emps = seed(idb)
    path = idb.replicate("Emp1.dept.name")
    link = idb.catalog.get_link(path.link_sequence[0])
    # d1 has two referencers; remove one
    victims = [e for e in emps if idb.get("Emp1", e).values["dept"] == depts[1]]
    idb.delete("Emp1", victims[0])
    entry = idb.get("Dept", depts[1]).link_entry_for(link.link_id)
    assert entry.inline
    idb.verify()


def test_inline_propagation_still_works(idb):
    org, depts, emps = seed(idb)
    path = idb.replicate("Emp1.dept.name")
    idb.update("Dept", depts[0], {"name": "renamed"})
    obj = idb.get("Emp1", emps[0])
    assert obj.values[path.hidden_field_for("name")] == "renamed"
    idb.verify()


def test_inline_two_level_path(idb):
    org, depts, emps = seed(idb)
    path = idb.replicate("Emp1.dept.org.name")
    idb.update("Org", org, {"name": "acme2"})
    for emp in emps:
        assert idb.get("Emp1", emp).values[path.hidden_field_for("name")] == "acme2"
    idb.verify()
    # move a dept away; the inline org entry must follow along
    org2 = idb.insert("Org", {"name": "globex", "budget": 2})
    idb.update("Dept", depts[0], {"org": org2})
    assert idb.get("Emp1", emps[0]).values[path.hidden_field_for("name")] == "globex"
    idb.verify()


def test_inline_ref_update_moves_membership(idb):
    org, depts, emps = seed(idb)
    idb.replicate("Emp1.dept.name")
    idb.update("Emp1", emps[0], {"dept": depts[2]})
    idb.verify()
    # depts[0] lost its only referencer: entry gone entirely
    assert idb.get("Dept", depts[0]).link_entries == []


def test_inline_saves_update_io():
    """At f = 1, propagation skips the whole L file -- the 4.3.1 claim."""
    import random

    from repro.workloads import WorkloadConfig, build_model_database
    from repro.workloads.simulate import run_update_query

    io = {}
    link_objects = {}
    for inline in (False, True):
        cfg = WorkloadConfig(n_s=150, f=1, f_s=0.05, strategy="inplace",
                             inline_links=inline)
        mdb = build_model_database(cfg)
        rng = random.Random(5)
        io[inline] = sum(run_update_query(mdb, rng) for __ in range(3))
        path = mdb.db.catalog.get_path("R.sref.repfield")
        link = mdb.db.catalog.get_link(path.link_sequence[0])
        link_objects[inline] = sum(1 for __ in link.file.scan())
        mdb.db.verify()
    assert link_objects[False] == 150  # one per referenced S object
    assert link_objects[True] == 0     # all inlined
    assert io[True] <= io[False]


def test_inline_verify_detects_corruption(idb):
    org, depts, emps = seed(idb)
    path = idb.replicate("Emp1.dept.name")
    # corrupt: point the inline entry at the wrong employee
    from repro.objects.instance import INLINE_LINK_FLAG, LinkEntry

    dept = idb.store.read(depts[0])
    dept.add_link_entry(LinkEntry(emps[-1], path.link_sequence[0] | INLINE_LINK_FLAG))
    idb.store.update(depts[0], dept)
    with pytest.raises(IntegrityError):
        idb.verify()


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "delete", "move", "rename"]),
                  st.integers(0, 10**6), st.integers(0, 10**6)),
        max_size=20,
    )
)
def test_inline_random_dml_stays_consistent(ops):
    db = Database(inline_singleton_links=True)
    define_employee_schema(db)
    org, depts, emps = seed(db, n_depts=4, emps_per_dept=(1, 1, 2, 3))
    db.replicate("Emp1.dept.name")
    db.replicate("Emp1.dept.org.name")
    live = list(emps)
    n = [0]
    for op, a, b in ops:
        if op == "insert":
            n[0] += 1
            live.append(
                db.insert("Emp1", {"name": f"n{n[0]}", "age": 1, "salary": 1,
                                   "dept": depts[a % 4]})
            )
        elif op == "delete" and live:
            db.delete("Emp1", live.pop(a % len(live)))
        elif op == "move" and live:
            db.update("Emp1", live[a % len(live)], {"dept": depts[b % 4]})
        elif op == "rename":
            db.update("Dept", depts[a % 4], {"name": f"d{b % 100}"})
    db.verify()
