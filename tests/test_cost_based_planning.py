"""Opt-in cost-based access-path selection (Section 7.1's suggestion)."""

import random

import pytest

from repro import Database, TypeDefinition, char_field, int_field
from repro.query.costing import estimate_qualifying_rows, index_scan_cost
from repro.query.language import parse_statement
from repro.query.planner import plan_retrieve


@pytest.fixture()
def cdb():
    db = Database(buffer_frames=2048, cost_based_planning=True)
    db.define_type(
        TypeDefinition("ROW", [int_field("key"), char_field("pad", 96)])
    )
    db.create_set("Rows", "ROW")
    order = list(range(2000))
    random.Random(5).shuffle(order)
    for key in order:
        db.insert("Rows", {"key": key, "pad": "x"})
    db.build_index("Rows.key")
    return db


def plan(db, text):
    return plan_retrieve(db, parse_statement(text))


def test_selective_range_uses_index(cdb):
    p = plan(cdb, "retrieve (Rows.key) where Rows.key >= 10 and Rows.key <= 25")
    assert "IndexScan" in p.access.explain()


def test_wide_range_falls_back_to_filescan(cdb):
    p = plan(cdb, "retrieve (Rows.key) where Rows.key >= 10")
    assert "FileScan" in p.access.explain()
    # the residual filter still applies, so results stay correct
    res = cdb.execute("retrieve (Rows.key) where Rows.key >= 10")
    assert len(res) == 1990


def test_equality_uses_index(cdb):
    p = plan(cdb, "retrieve (Rows.key) where Rows.key = 77")
    assert "IndexScan" in p.access.explain()


def test_default_database_always_prefers_index(cdb):
    plain = Database()
    plain.define_type(TypeDefinition("ROW", [int_field("key"), char_field("pad", 96)]))
    plain.create_set("Rows", "ROW")
    for key in range(100):
        plain.insert("Rows", {"key": key, "pad": "x"})
    plain.build_index("Rows.key")
    p = plan(plain, "retrieve (Rows.key) where Rows.key >= 0")
    assert "IndexScan" in p.access.explain()  # paper-faithful default


def test_cost_based_choice_actually_saves_io(cdb):
    wide = "retrieve (Rows.key) where Rows.key >= 100"
    cdb.cold_cache()
    smart_io = cdb.execute(wide, materialize=False).io.total_io
    cdb.cost_based_planning = False
    cdb.cold_cache()
    naive_io = cdb.execute(wide, materialize=False).io.total_io
    cdb.cost_based_planning = True
    assert smart_io <= naive_io


def test_estimates_track_reality(cdb):
    p = plan(cdb, "retrieve (Rows.key) where Rows.key = 5")
    # force an index scan object for estimation even in cost-based mode
    from repro.query.plan import IndexScan

    info = cdb.catalog.index_on_field("Rows", "key")
    scan = IndexScan(info, lo=100, hi=299)
    rows = estimate_qualifying_rows(scan)
    assert 150 <= rows <= 250  # true answer: 200
    pages = cdb.catalog.get_set("Rows").num_pages()
    cost = index_scan_cost(scan, pages, 2000)
    cdb.cold_cache()
    actual = cdb.measure(
        lambda: cdb.execute(
            "retrieve (Rows.key) where Rows.key >= 100 and Rows.key <= 299",
            materialize=False,
        )
    ).physical_reads
    assert abs(cost - actual) <= 0.5 * actual + 5


def test_stats_maintained_under_dml(cdb):
    info = cdb.catalog.index_on_field("Rows", "key")
    assert info.index.stat_count == 2000
    assert info.index.stat_min == 0 and info.index.stat_max == 1999
    oid = cdb.insert("Rows", {"key": 5000, "pad": "x"})
    assert info.index.stat_count == 2001
    assert info.index.stat_max == 5000
    cdb.delete("Rows", oid)
    assert info.index.stat_count == 2000
    assert info.index.stat_max == 5000  # min/max only widen (stale stats)
