"""Deterministic fault injection at the simulated-disk boundary."""

import pytest

from repro.errors import DiskFault
from repro.recovery import MAX_READ_RETRIES, FaultInjector
from repro.storage.constants import PAGE_SIZE
from repro.storage.disk import SimulatedDisk
from repro.telemetry.metrics import MetricsRegistry

NEW = bytes([0xAA]) * PAGE_SIZE
OLD = bytes([0x55]) * PAGE_SIZE


def make_disk():
    metrics = MetricsRegistry()
    faults = FaultInjector(seed=7, metrics=metrics)
    disk = SimulatedDisk(metrics=metrics, faults=faults)
    fid = disk.create_file()
    disk.allocate_page(fid)
    disk.write_page(fid, 0, OLD)
    return disk, faults, fid, metrics


def test_unarmed_injector_never_interferes():
    disk, faults, fid, __ = make_disk()
    assert not faults.armed
    disk.write_page(fid, 0, NEW)
    assert bytes(disk.read_page(fid, 0)) == NEW


def test_fail_after_writes_is_exact():
    disk, faults, fid, metrics = make_disk()
    faults.fail_after_writes(2)
    disk.write_page(fid, 0, NEW)
    disk.write_page(fid, 0, OLD)
    with pytest.raises(DiskFault, match="after 2 write"):
        disk.write_page(fid, 0, NEW)
    # a clean (non-torn) crash preserves the last good image
    assert disk.peek_page(fid, 0) == OLD
    assert metrics.value("faults_injected_total", kind="write") == 1


def test_dead_disk_refuses_everything_until_disarm():
    disk, faults, fid, __ = make_disk()
    faults.fail_after_writes(0)
    with pytest.raises(DiskFault):
        disk.write_page(fid, 0, NEW)
    assert faults.dead
    with pytest.raises(DiskFault, match="down"):
        disk.read_page(fid, 0)
    with pytest.raises(DiskFault, match="down"):
        disk.write_page(fid, 0, NEW)
    faults.disarm()
    assert bytes(disk.read_page(fid, 0)) == OLD
    disk.write_page(fid, 0, NEW)


def test_torn_write_persists_half_new_half_old():
    disk, faults, fid, metrics = make_disk()
    faults.fail_after_writes(0, torn=True)
    before = disk.stats.physical_writes
    with pytest.raises(DiskFault, match="torn"):
        disk.write_page(fid, 0, NEW)
    assert disk.stats.physical_writes == before + 1  # the torn write is charged
    half = PAGE_SIZE // 2
    assert disk.peek_page(fid, 0) == NEW[:half] + OLD[half:]
    assert metrics.value("faults_injected_total", kind="torn_write") == 1


def test_transient_reads_retry_with_backoff_accounting():
    disk, faults, fid, metrics = make_disk()
    faults.transient_read_errors(rate=1.0, fail_count=2, seed=3)
    assert bytes(disk.read_page(fid, 0)) == OLD  # glitches, retries, succeeds
    assert metrics.value("disk_read_retries_total") == 2
    assert metrics.value("disk_read_backoff_total") == 1 + 2  # exponential units
    assert metrics.value("faults_injected_total", kind="transient_read") == 2


def test_transient_reads_escalate_past_retry_budget():
    disk, faults, fid, metrics = make_disk()
    faults.transient_read_errors(rate=1.0, fail_count=MAX_READ_RETRIES + 1)
    with pytest.raises(DiskFault, match="retries"):
        disk.read_page(fid, 0)
    assert metrics.value("faults_injected_total", kind="read") == 1
    assert metrics.value("disk_read_retries_total") == MAX_READ_RETRIES


def test_read_glitches_are_seeded_and_replayable():
    def observe():
        disk, faults, fid, metrics = make_disk()
        faults.transient_read_errors(rate=0.5, fail_count=1, seed=11)
        for __ in range(40):
            disk.read_page(fid, 0)
        return metrics.value("faults_injected_total", kind="transient_read")

    first, second = observe(), observe()
    assert first == second
    assert 0 < first < 40


def test_configuration_validation():
    faults = FaultInjector()
    with pytest.raises(ValueError):
        faults.fail_after_writes(-1)
    with pytest.raises(ValueError):
        faults.transient_read_errors(rate=1.5)
    with pytest.raises(ValueError):
        faults.transient_read_errors(rate=0.5, fail_count=0)
