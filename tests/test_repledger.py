"""The replication cost/benefit ledger: unit accounting, the engine's
charge/credit wiring, and the monitor's measured keep/drop ranking."""

import pytest

from repro import Database, TypeDefinition, char_field, int_field, ref_field
from repro.monitor import apply_recommendations
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.repledger import (
    ReplicationLedger,
    counterfactual_hop_pages,
    counterfactual_join_pages,
)


def _build(depts=4, emps=48):
    db = Database(buffer_frames=64)
    db.define_type(TypeDefinition("DEPT", [char_field("name", 40),
                                           int_field("budget")]))
    db.define_type(TypeDefinition("EMP", [char_field("name", 40),
                                          int_field("salary"),
                                          ref_field("dept", "DEPT")]))
    db.create_set("Dept", "DEPT")
    db.create_set("Emp", "EMP")
    dept_oids = [db.insert("Dept", {"name": f"dept{i}", "budget": 100 + i})
                 for i in range(depts)]
    for i in range(emps):
        db.insert("Emp", {"name": f"emp{i}", "salary": 1000 + i,
                          "dept": dept_oids[i % depts]})
    return db


# ---------------------------------------------------------------------------
# unit accounting
# ---------------------------------------------------------------------------


def test_charge_credit_net_and_entry_order():
    registry = MetricsRegistry()
    ledger = ReplicationLedger(metrics=registry)
    ledger.charge("Emp.dept.name", 2.0, fanout=12)
    ledger.charge("Emp.dept.name", 2.0, fanout=12)
    ledger.credit("Emp.dept.name", 1.0, rows=48)
    ledger.credit("Emp.dept.org.name", 9.0, rows=10)
    assert ledger.net("Emp.dept.name") == pytest.approx(-3.0)
    assert ledger.net("Emp.dept.org.name") == pytest.approx(9.0)
    assert ledger.net("never.seen") == 0.0
    entries = ledger.entries()
    # best net benefit first
    assert [e["path"] for e in entries] == \
        ["Emp.dept.org.name", "Emp.dept.name"]
    worst = entries[1]
    assert worst["propagations"] == 2 and worst["fanout"] == 24
    assert worst["reads_served"] == 1 and worst["rows_served"] == 48
    assert worst["charged_pages"] == 4.0 and worst["credited_pages"] == 1.0
    # the registry carries the same totals, labelled by path
    assert registry.value("replication_ledger_charged_pages_total",
                          path="Emp.dept.name") == pytest.approx(4.0)
    assert registry.value("replication_ledger_credited_pages_total",
                          path="Emp.dept.org.name") == pytest.approx(9.0)


def test_forget_clear_and_disable():
    ledger = ReplicationLedger()
    ledger.charge("a.b.c", 1.0, fanout=1)
    ledger.credit("x.y.z", 1.0, rows=1)
    assert len(ledger) == 2
    ledger.forget("a.b.c")
    assert len(ledger) == 1 and ledger.net("a.b.c") == 0.0
    ledger.enabled = False
    ledger.charge("x.y.z", 5.0)
    ledger.credit("x.y.z", 5.0)
    assert ledger.net("x.y.z") == pytest.approx(1.0)  # unchanged
    ledger.clear()
    assert len(ledger) == 0
    assert "no replication activity" in ledger.render_text()


def test_render_text_table():
    ledger = ReplicationLedger()
    ledger.charge("Emp.dept.name", 13.5, fanout=18)
    ledger.credit("Emp.dept.name", 1.0, rows=48)
    text = ledger.render_text()
    assert "Emp.dept.name" in text
    assert "-12.5" in text
    assert "net pages" in text


def test_counterfactual_pricing_uses_sorted_probe_bound():
    db = _build()
    dept_pages = db.catalog.get_set("Dept").num_pages()
    assert dept_pages >= 1
    # fewer probes than pages: one page per distinct probe
    assert counterfactual_hop_pages(db, "DEPT", 1) == 1.0
    # more probes than pages: saturates at the file sweep
    assert counterfactual_hop_pages(db, "DEPT", 10_000) == float(dept_pages)
    assert counterfactual_hop_pages(db, "DEPT", 0) == 0.0
    path = db.replicate("Emp.dept.name")
    # one forward hop (EMP -> DEPT): join price equals the hop price
    assert counterfactual_join_pages(db, path, 48) == \
        counterfactual_hop_pages(db, "DEPT", 48)


# ---------------------------------------------------------------------------
# engine wiring: propagation charges, replicated reads credit
# ---------------------------------------------------------------------------


def test_propagations_charge_and_replica_reads_credit():
    db = _build()
    db.replicate("Emp.dept.name")
    ledger = db.telemetry.repledger
    db.execute('replace (Dept.name = "renamed") where Dept.budget = 100')
    after_write = ledger.entries()
    assert len(after_write) == 1
    entry = after_write[0]
    assert entry["path"] == "Emp.dept.name"
    assert entry["propagations"] == 1
    assert entry["fanout"] == 12  # 48 emps / 4 depts
    assert entry["charged_pages"] > 0
    db.execute("retrieve (Emp.name, Emp.dept.name)")
    entry = ledger.entries()[0]
    assert entry["reads_served"] == 1
    assert entry["rows_served"] == 48
    assert entry["credited_pages"] > 0


def test_where_clause_hidden_reads_credit():
    db = _build()
    db.replicate("Emp.dept.name")
    ledger = db.telemetry.repledger
    db.execute('retrieve (Emp.name) where Emp.dept.name = "dept1"')
    entry = ledger.entries()[0]
    assert entry["reads_served"] == 1
    assert entry["rows_served"] == 12
    assert entry["credited_pages"] > 0
    assert entry["charged_pages"] == 0.0


def test_unreplicated_joins_are_not_credited():
    db = _build()
    db.execute("retrieve (Emp.name, Emp.dept.name)")
    assert len(db.telemetry.repledger) == 0


def test_disabled_ledger_records_nothing():
    db = _build()
    db.replicate("Emp.dept.name")
    db.telemetry.repledger.enabled = False
    db.execute('replace (Dept.name = "x") where Dept.budget = 100')
    db.execute("retrieve (Emp.name, Emp.dept.name)")
    assert len(db.telemetry.repledger) == 0


def test_drop_replication_settles_the_account():
    db = _build()
    db.replicate("Emp.dept.name")
    db.execute('replace (Dept.name = "x") where Dept.budget = 100')
    assert db.telemetry.repledger.net("Emp.dept.name") < 0
    from repro.schema.parser import execute_ddl

    execute_ddl(db, "drop replicate Emp.dept.name")
    assert db.telemetry.repledger.net("Emp.dept.name") == 0.0
    assert len(db.telemetry.repledger) == 0


# ---------------------------------------------------------------------------
# the monitor consumes the ledger: measured keep/drop ranking
# ---------------------------------------------------------------------------


def test_write_heavy_path_becomes_drop_candidate():
    db = _build()
    db.replicate("Emp.dept.name")
    for i in range(30):
        db.execute(f'replace (Dept.name = "n{i}") '
                   f"where Dept.budget = {100 + i % 4}")
    db.execute("retrieve (Emp.name, Emp.dept.name)")
    assert db.telemetry.repledger.net("Emp.dept.name") < 0
    candidates = db.monitor.candidates()
    first = candidates[0]
    assert first.action == "drop"
    assert first.path_text == "Emp.dept.name"
    assert first.measured_net_io < 0
    assert first.ddl == "drop replicate Emp.dept.name"
    # the measured verdict shows up in the monitor report too
    report = db.monitor.report()
    assert "replication ledger (measured net benefit):" in report
    assert "-> drop" in report
    # apply_recommendations never executes keep/drop verdicts -- the
    # drop DDL is surfaced for the operator, not auto-run
    applied = apply_recommendations(db, [first])
    assert applied == []
    assert "Emp.dept.name" in db.catalog.paths


def test_read_heavy_path_becomes_keep_candidate():
    db = _build()
    db.replicate("Emp.dept.name")
    for __ in range(20):
        db.execute("retrieve (Emp.name, Emp.dept.name)")
    db.execute('replace (Dept.name = "x") where Dept.budget = 100')
    assert db.telemetry.repledger.net("Emp.dept.name") > 0
    first = db.monitor.candidates()[0]
    assert first.action == "keep"
    assert first.measured_net_io > 0
    assert first.ddl is None
    assert "-> keep" in db.monitor.report()


def test_measured_candidates_rank_before_nominal_ones():
    db = _build()
    db.replicate("Emp.dept.name")
    db.execute('replace (Dept.name = "x") where Dept.budget = 100')
    # an unreplicated path the advisor will nominate
    db.define_type(TypeDefinition("ORG", [char_field("title", 40)]))
    db.create_set("Org", "ORG")
    candidates = db.monitor.candidates()
    measured = [c for c in candidates if c.measured_net_io is not None]
    nominal = [c for c in candidates if c.measured_net_io is None]
    assert measured and measured[0] is candidates[0]
    for c in nominal:
        assert candidates.index(c) > candidates.index(measured[-1])
