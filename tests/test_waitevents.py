"""Wait-event accounting: attribution completeness, the admission-wait
instrumentation (with its engine_latch legacy aliases), per-resource
lock waits, and the wait columns riding on the slow-query log and the
per-fingerprint statement statistics."""

import threading
import time

import pytest

from repro.server import connect
from repro.server.service import Server
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slowlog import SlowQueryLog
from repro.telemetry.statstats import StatementStats
from repro.telemetry.waitevents import (
    ADMISSION_WAIT,
    BUFFER_IO,
    CPU,
    ENGINE_LATCH,
    LOCK_PREFIX,
    NULL_WAITS,
    QUEUE_WAIT,
    WaitEventCollector,
    base_event,
    canonical_event,
)


@pytest.fixture()
def server(company):
    srv = Server(company["db"], max_connections=8, workers=2,
                 queue_depth=8, lock_timeout=5.0, sample_interval=0).start()
    yield srv
    srv.shutdown()


# ---------------------------------------------------------------------------
# the collector: complete attribution by construction
# ---------------------------------------------------------------------------


def test_breakdown_sums_to_statement_wall_clock():
    collector = WaitEventCollector()
    ctx = collector.begin_statement(1, "s1", "retrieve x")
    collector.record(BUFFER_IO, 0.020)
    collector.record(QUEUE_WAIT, 0.010)
    breakdown = collector.finish_statement(ctx, duration_s=0.100)
    # wall = execution (0.100) + queue wait (0.010); cpu is what is left
    # after the measured waits (0.020 + 0.010) are taken out
    assert breakdown[CPU] == pytest.approx(0.080)
    assert sum(breakdown.values()) == pytest.approx(0.110)
    snap = collector.snapshot()
    assert snap["statements"] == 1
    assert snap["statement_seconds"] == pytest.approx(0.110)
    # every accounted second is attributed: coverage 1.0 by construction
    assert snap["coverage"] == pytest.approx(1.0, abs=0.01)


def test_cpu_residual_clamps_at_zero():
    collector = WaitEventCollector()
    ctx = collector.begin_statement(1, "s1", "retrieve x")
    collector.record(BUFFER_IO, 0.500)  # measured waits exceed the wall
    breakdown = collector.finish_statement(ctx, duration_s=0.100)
    assert breakdown[CPU] == 0.0


def test_disabled_collector_is_a_noop():
    collector = WaitEventCollector()
    collector.enabled = False
    assert collector.begin_statement(1, "s1", "x") is None
    collector.record(BUFFER_IO, 1.0)
    with collector.wait(BUFFER_IO):
        pass
    collector.latch_acquired(1.0)
    assert collector.finish_statement(None, 1.0) == {}
    assert collector.totals() == []
    assert collector.mark_waiting(ENGINE_LATCH) is None
    assert collector.snapshot()["statements"] == 0


def test_wait_context_manager_exposes_and_restores_current():
    collector = WaitEventCollector()
    ctx = collector.begin_statement(7, "s7", "retrieve x")
    with collector.wait(BUFFER_IO, "read"):
        assert ctx.current[0] == BUFFER_IO
        with collector.wait("wal_flush"):
            assert ctx.current[0] == "wal_flush"
        # nested exit restores the outer wait, not None
        assert ctx.current[0] == BUFFER_IO
    assert ctx.current is None
    breakdown = collector.finish_statement(ctx, 0.0)
    assert BUFFER_IO in breakdown and "wal_flush" in breakdown


def test_mark_waiting_records_no_time_but_shows_in_samples():
    collector = WaitEventCollector()
    collector.begin_statement(3, "s3", "replace x")
    token = collector.mark_waiting("lock", "X(Emp1)")
    samples = collector.sample()
    assert len(samples) == 1
    assert samples[0]["event"] == "lock"
    assert samples[0]["detail"] == "X(Emp1)"
    assert samples[0]["wait_s"] >= 0.0
    collector.unmark_waiting(token)
    # nothing was *recorded*: marking is ASH visibility only
    assert collector.total_for("lock") == 0.0
    assert collector.sample()[0]["event"] == CPU


def test_sample_shows_cpu_for_executing_statements():
    collector = WaitEventCollector()
    collector.begin_statement(1, "a", "retrieve x")
    [sample] = collector.sample()
    assert sample["event"] == CPU
    assert sample["statement"] == "retrieve x"
    assert sample["statement_age_s"] >= 0.0


def test_totals_shares_and_lock_rollup():
    collector = WaitEventCollector()
    ctx = collector.begin_statement(1, "s", "x")
    collector.record(LOCK_PREFIX + "Emp1", 0.03)
    collector.record(LOCK_PREFIX + "Dept", 0.01)
    collector.finish_statement(ctx, 0.06)
    assert collector.lock_wait_seconds() == pytest.approx(0.04)
    rows = collector.totals()
    assert rows[0]["seconds"] >= rows[-1]["seconds"]  # largest first
    assert abs(sum(r["share"] for r in rows) - 1.0) < 0.01
    assert base_event(LOCK_PREFIX + "Emp1") == "lock"
    assert base_event(CPU) == CPU


def test_latch_instrumentation_feeds_histogram_and_hold_counter():
    registry = MetricsRegistry()
    collector = WaitEventCollector(metrics=registry)
    collector.admission_granted(0.002)
    collector.admission_released(0.004)
    assert registry.histogram("admission_wait_seconds").count() == 1
    assert registry.histogram("admission_wait_seconds").sum() == \
        pytest.approx(0.002)
    assert registry.value("admission_hold_seconds_total") == \
        pytest.approx(0.004)
    assert collector.total_for(ADMISSION_WAIT) == pytest.approx(0.002)
    # the legacy event name still reads the same totals (alias)
    assert canonical_event(ENGINE_LATCH) == ADMISSION_WAIT
    assert collector.total_for(ENGINE_LATCH) == pytest.approx(0.002)
    # ...and the legacy method names still record (old callers)
    collector.latch_acquired(0.001)
    collector.latch_released(0.001)
    assert registry.histogram("admission_wait_seconds").count() == 2


def test_null_collector_surface_matches():
    assert NULL_WAITS.begin_statement(1, "s", "x") is None
    assert NULL_WAITS.finish_statement(None, 1.0) == {}
    with NULL_WAITS.wait(BUFFER_IO):
        pass
    assert NULL_WAITS.sample() == []
    assert NULL_WAITS.snapshot()["enabled"] is False
    assert "not collected" in NULL_WAITS.render_text()


# ---------------------------------------------------------------------------
# served statements: latch + lock attribution end to end
# ---------------------------------------------------------------------------


def test_served_statements_attribute_latch_and_cpu(server):
    with connect(*server.address) as client:
        for __ in range(5):
            client.execute("retrieve (Emp1.name, Emp1.dept.name)")
    waits = server.db.telemetry.waits
    events = {r["event"] for r in waits.totals()}
    assert CPU in events
    assert ADMISSION_WAIT in events
    snap = waits.snapshot()
    assert snap["statements"] >= 5
    assert snap["coverage"] >= 0.95  # the acceptance bar, by construction
    metrics = server.db.telemetry.metrics
    assert metrics.histogram("admission_wait_seconds").count() >= 5
    assert metrics.value("admission_hold_seconds_total") > 0.0


def test_lock_contention_attributed_to_the_contended_resource(server):
    with connect(*server.address) as holder:
        holder.begin()
        holder.execute("replace (Emp1.salary = 1)")  # X(Emp1), held

        def blocked():
            with connect(*server.address) as client:
                client.execute("replace (Emp1.salary = 2)")  # must wait

        thread = threading.Thread(target=blocked)
        thread.start()
        time.sleep(0.3)  # let the waiter park on the lock
        # the parked waiter must be visible to ASH sampling *now*
        in_flight = server.db.telemetry.waits.sample()
        assert any(s["event"] == "lock" for s in in_flight)
        holder.commit()
        thread.join(timeout=30.0)
    waits = server.db.telemetry.waits
    lock_events = [r["event"] for r in waits.totals()
                   if r["event"].startswith(LOCK_PREFIX)]
    assert any("Emp1" in e for e in lock_events)
    assert waits.lock_wait_seconds() > 0.1


def test_session_info_and_wait_totals_accumulate(server):
    with connect(*server.address) as client:
        client.execute("retrieve (Emp1.name)")
        detail = client.stats()["sessions_detail"]
    assert detail, "session detail must list the live session"
    row = detail[0]
    assert row["top_wait"] != ""
    assert row["top_wait_ms"] >= 0.0
    assert row["latch_hold_ms"] >= 0.0


def test_stats_verb_carries_waits_ash_alerts_documents(server):
    with connect(*server.address) as client:
        client.execute("retrieve (Emp1.name)")
        stats = client.stats()
    assert stats["waits"]["statements"] >= 1
    assert stats["waits"]["coverage"] >= 0.95
    assert {"latch_wait_seconds", "latch_hold_seconds"} <= \
        set(stats["waits"])
    assert stats["ash"]["interval_s"] == 0
    assert stats["alerts"]["evaluations"] == 0


def test_waits_meta_renders_the_share_table(server):
    with connect(*server.address) as client:
        client.execute("retrieve (Emp1.name)")
        text = client.meta("waits")
    assert "event" in text and CPU in text
    assert "accounted statement wall-clock" in text


# ---------------------------------------------------------------------------
# the wait columns on statstats and the slow-query log
# ---------------------------------------------------------------------------


def test_statstats_accumulates_wait_breakdown_per_fingerprint():
    stats = StatementStats()
    fp = stats.observe("retrieve (Emp1.name)", 10.0,
                       waits={CPU: 0.004, LOCK_PREFIX + "Emp1": 0.006})
    doc = stats.get(fp)
    assert doc["waits"]["lock"] == pytest.approx(6.0)  # milliseconds
    assert doc["waits"][CPU] == pytest.approx(4.0)
    assert doc["dominant_wait"] == "lock"
    assert "top wait" in stats.render_text()


def test_slowlog_records_wait_breakdown_and_dominant_class():
    log = SlowQueryLog(threshold_ms=0.0)
    log.observe("replace (Emp1.salary = 1)", 12.0, fingerprint="aa",
                waits={LOCK_PREFIX + "Emp1": 0.008, CPU: 0.004})
    [entry] = log.entries()
    assert entry["waits"] == {"lock": 8.0, "cpu": 4.0}
    assert entry["dominant_wait"] == "lock"
    assert "wait:lock" in log.render_text()


def test_slowlog_grouped_ranks_by_dominant_wait_class():
    log = SlowQueryLog(threshold_ms=0.0)
    # group "bb" burned more total time, but purely on cpu; "aa" is the
    # lock-dominated group an operator can actually fix -- it ranks first
    log.observe("replace (Emp1.salary = 1)", 10.0, fingerprint="aa",
                waits={LOCK_PREFIX + "Emp1": 0.008, CPU: 0.002})
    log.observe("retrieve (Emp2.name)", 11.0, fingerprint="bb",
                waits={CPU: 0.005})
    groups = log.grouped()
    assert groups[0]["fingerprint"] == "aa"
    assert groups[0]["dominant_wait"] == "lock"
    assert groups[0]["dominant_wait_ms"] == pytest.approx(8.0)
    assert groups[1]["dominant_wait"] == "cpu"


def test_embedded_execution_attributes_waits_too(db):
    db.execute("retrieve (Emp1.name)")
    snap = db.telemetry.waits.snapshot()
    assert snap["statements"] >= 1
    assert snap["coverage"] >= 0.95
