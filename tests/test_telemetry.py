"""Tests for the telemetry subsystem: tracing, metrics, drift."""

import json

from repro import Database
from repro.telemetry import DriftMonitor, MetricsRegistry, Telemetry, Tracer
from repro.telemetry.metrics import NULL_METRICS


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    reg.counter("c", "a counter").inc()
    reg.counter("c").inc(4)
    assert reg.value("c") == 5
    reg.gauge("g").set(7)
    reg.gauge("g").inc(-2)
    assert reg.value("g") == 5
    hist = reg.histogram("h")
    for v in (1, 3, 30, 3000):
        hist.observe(v)
    assert hist.count() == 4
    assert hist.sum() == 3034
    assert hist.mean() == 3034 / 4


def test_counter_labels_are_separate_series():
    reg = MetricsRegistry()
    c = reg.counter("index_ops")
    c.inc(index="a")
    c.inc(2, index="b")
    assert c.value(index="a") == 1
    assert c.value(index="b") == 2
    assert c.value() == 0


def test_render_text_and_prometheus():
    reg = MetricsRegistry()
    reg.counter("reads_total", "pages read").inc(3)
    reg.gauge("frames").set(9)
    text = reg.render_text()
    assert "reads_total" in text and "3" in text
    prom = reg.render_prometheus()
    assert "# HELP reads_total pages read" in prom
    assert "# TYPE reads_total counter" in prom
    assert "# TYPE frames gauge" in prom
    assert "reads_total 3" in prom


def test_empty_registry_renders_placeholder():
    assert MetricsRegistry().render_text() == "(no metrics recorded)"


def test_null_metrics_accept_everything():
    c = NULL_METRICS.counter("x")
    c.inc()
    c.inc(5, label="y")
    assert c.value() == 0
    assert NULL_METRICS.render_text() == "(no metrics recorded)"


# ---------------------------------------------------------------------------
# engine metric feeds
# ---------------------------------------------------------------------------


def test_database_feeds_buffer_and_disk_metrics(company):
    db = company["db"]
    db.cold_cache()
    db.execute("retrieve (Emp1.name)", materialize=False)
    metrics = db.telemetry.metrics
    assert metrics.value("disk_reads_total") == db.stats.physical_reads
    assert metrics.value("disk_writes_total") == db.stats.physical_writes
    assert metrics.value("bufferpool_misses_total") > 0
    hits = metrics.value("bufferpool_hits_total")
    assert hits == db.stats.buffer_hits


def test_replication_metrics_count_propagation(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    metrics = db.telemetry.metrics
    assert metrics.value("replication_link_touches_total") > 0
    before = metrics.value("replication_propagations_total")
    db.update("Dept", company["depts"]["toys"], {"name": "bricks"})
    assert metrics.value("replication_propagations_total") == before + 1
    # toys has two employees (alice, bob): fan-out of 2
    assert metrics.value("replication_fanout_total") >= 2


def test_index_metrics_count_probes(company):
    db = company["db"]
    db.build_index("Emp1.salary")
    metrics = db.telemetry.metrics
    assert metrics.value("index_inserts_total", index="idx1_Emp1_salary") == 6
    db.execute("retrieve (Emp1.name) where Emp1.salary = 50000")
    assert metrics.value("index_lookups_total", index="idx1_Emp1_salary") == 1
    db.execute("retrieve (Emp1.name) where Emp1.salary >= 60000")
    assert metrics.value("index_range_scans_total", index="idx1_Emp1_salary") == 1


def test_query_histograms_observe_every_statement(company):
    db = company["db"]
    db.execute("retrieve (Emp1.name)", materialize=False)
    db.execute("retrieve (Emp1.name) where Emp1.age >= 33", materialize=False)
    hist = db.telemetry.metrics.histogram("query_rows")
    assert hist.count() == 2
    assert hist.sum() == 6 + 3


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------


def test_tracer_disabled_by_default_records_nothing(company):
    db = company["db"]
    db.execute("retrieve (Emp1.name)", materialize=False)
    assert db.telemetry.tracer.spans == []


def test_traced_query_produces_span_tree(company):
    db = company["db"]
    tracer = db.telemetry.tracer
    tracer.enable()
    db.cold_cache()
    db.execute("retrieve (Emp1.name, Emp1.dept.name)", materialize=False)
    tracer.disable()
    names = [s.name for s in tracer.spans]
    assert "query" in names and "parse" in names
    assert "plan" in names and "execute" in names
    assert "scan" in names and "functional_join" in names
    (query,) = tracer.spans_named("query")
    assert query.parent_id is None
    (execute,) = tracer.spans_named("execute")
    assert execute.parent_id == query.span_id
    # the query span saw all the I/O the statement did
    assert query.io["physical_reads"] > 0
    assert query.attrs["rows"] == 6


def test_trace_io_attribution_sums_to_query(company):
    db = company["db"]
    tracer = db.telemetry.tracer
    tracer.enable()
    db.cold_cache()
    db.execute("retrieve (Emp1.name, Emp1.dept.name)", materialize=False)
    (query,) = tracer.spans_named("query")
    (execute,) = tracer.spans_named("execute")
    # operator spans recorded under execute cover its physical reads
    operators = [
        s for s in tracer.spans
        if s.parent_id == execute.span_id
    ]
    top = [s for s in operators if not s.name.startswith("hop ")]
    assert sum(s.io["physical_reads"] for s in top) == \
        execute.io["physical_reads"]
    assert execute.io["physical_reads"] == query.io["physical_reads"]


def test_update_propagation_and_link_spans(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    tracer = db.telemetry.tracer
    tracer.enable()
    db.update("Dept", company["depts"]["toys"], {"name": "bricks"})
    tracer.disable()
    (prop,) = tracer.spans_named("update_propagation")
    assert prop.attrs["fanout"] == 2
    assert prop.attrs["path"] == "Emp1.dept.name"


def test_trace_jsonl_roundtrip(company, tmp_path):
    db = company["db"]
    tracer = db.telemetry.tracer
    tracer.enable()
    db.execute("retrieve (Emp1.name)", materialize=False)
    tracer.disable()
    out = tmp_path / "trace.jsonl"
    written = tracer.export(out)
    lines = out.read_text().strip().splitlines()
    assert written == len(lines) == len(tracer.spans)
    decoded = [json.loads(line) for line in lines]
    assert {d["name"] for d in decoded} >= {"query", "parse", "plan", "execute"}
    for d in decoded:
        assert set(d) == {"trace_id", "span_id", "parent_id", "name", "attrs",
                          "start_ts", "duration_ms", "io", "self_io"}
        assert d["start_ts"] > 0


def test_tracer_standalone_without_stats():
    tracer = Tracer(enabled=True)
    with tracer.span("outer") as outer:
        with tracer.span("inner"):
            pass
    assert outer.io["physical_reads"] == 0
    assert len(tracer.spans) == 2


# ---------------------------------------------------------------------------
# drift monitor
# ---------------------------------------------------------------------------


def test_drift_records_and_errors():
    drift = DriftMonitor()
    drift.record("read", "inplace", 10.0, 12.0)
    drift.record("read", "inplace", 10.0, 9.0)
    drift.record("update", "inplace", 4.0, 4.0)
    assert len(drift.select(kind="read")) == 2
    # mean observed 10.5 vs mean predicted 10.0 -> 5%
    assert abs(drift.mean_rel_error("read", "inplace") - 0.05) < 1e-9
    assert drift.max_rel_error("read") == 0.2
    assert drift.groups() == [("inplace", "read"), ("inplace", "update")]
    report = drift.report()
    assert "inplace" in report and "read" in report


def test_drift_zero_prediction_uses_absolute_observation():
    drift = DriftMonitor()
    rec = drift.record("read", "none", 0.0, 3.0)
    assert rec.rel_error == 3.0


def test_monitor_report_includes_drift(company):
    db = company["db"]
    db.execute("retrieve (Emp1.dept.name)", materialize=False)
    assert "drift" not in db.monitor.report()
    db.telemetry.drift.record("read", "none", 10.0, 11.0)
    assert "model-vs-actual drift" in db.monitor.report()


def test_telemetry_reset_clears_all_three():
    telemetry = Telemetry()
    telemetry.metrics.inc("x")
    telemetry.tracer.enable()
    with telemetry.tracer.span("s"):
        pass
    telemetry.drift.record("read", "none", 1.0, 1.0)
    telemetry.reset()
    assert telemetry.metrics.value("x") == 0
    assert telemetry.tracer.spans == []
    assert telemetry.drift.records == []
    assert telemetry.tracer.enabled  # reset keeps the on/off state


def test_each_database_has_private_telemetry():
    db1, db2 = Database(), Database()
    assert db1.telemetry is not db2.telemetry
    db1.telemetry.metrics.inc("only_here")
    assert db2.telemetry.metrics.value("only_here") == 0
