"""Last-mile coverage: small corners across layers."""

import io

import pytest

from repro import Database, TypeDefinition, int_field


def test_describe_lazy_and_colocated_paths(company):
    from repro.schema.describe import describe_path

    db = company["db"]
    db.replicate("Emp1.dept.name", lazy=True)
    db.replicate("Emp1.dept.org.name", cluster_links=True)
    assert "lazy" in describe_path(db, "Emp1.dept.name")
    text = describe_path(db, "Emp1.dept.org.name")
    assert "link sequence" in text


def test_cli_renders_oids(company):
    from repro.cli import render_result

    db = company["db"]
    res = db.execute("retrieve (Emp1.dept) where Emp1.name = 'alice'")
    text = render_result(res)
    assert "OID(" in text  # reference values surface as OIDs


def test_costing_string_field_default_fraction(company):
    from repro.query.costing import estimate_qualifying_rows
    from repro.query.plan import IndexScan

    db = company["db"]
    info = db.build_index("Emp1.name")
    rows = estimate_qualifying_rows(IndexScan(info, lo="a", hi="m"))
    assert rows == pytest.approx(0.1 * 6)


def test_costing_empty_index(company):
    from repro.query.costing import estimate_qualifying_rows, index_scan_cost
    from repro.query.plan import IndexScan

    db = Database()
    db.define_type(TypeDefinition("T", [int_field("x")]))
    db.create_set("S", "T")
    info = db.build_index("S.x")
    scan = IndexScan(info, lo=1, hi=2)
    assert estimate_qualifying_rows(scan) == 0.0
    assert index_scan_cost(scan, 0, 0) >= 1


def test_monitor_candidates_min_queries_filter(company):
    db = company["db"]
    db.execute("retrieve (Emp1.dept.name)")
    assert db.monitor.candidates(min_queries=2) == []
    db.execute("retrieve (Emp1.dept.name)")
    assert len(db.monitor.candidates(min_queries=2)) == 1


def test_buffer_pool_flush_is_idempotent(company):
    db = company["db"]
    db.insert("Emp1", {"name": "x", "age": 1, "salary": 1, "dept": None})
    db.storage.pool.flush_all()
    before = db.stats.snapshot()
    db.storage.pool.flush_all()  # nothing dirty: no writes
    assert (db.stats.snapshot() - before).physical_writes == 0


def test_heapfile_for_each_page(company):
    heap = company["db"].catalog.get_set("Emp1").heap
    pages = []
    heap.for_each_page(lambda no, page: pages.append((no, page.num_slots)))
    assert len(pages) == heap.num_pages()
    assert sum(slots for __, slots in pages) >= 6


def test_query_result_len_dunder(company):
    res = company["db"].execute("retrieve (Emp1.name) limit 3")
    assert len(res) == 3


def test_char_field_exact_fit(company):
    db = company["db"]
    oid = db.insert("Emp1", {"name": "x" * 20, "age": 1, "salary": 1, "dept": None})
    assert db.get("Emp1", oid).values["name"] == "x" * 20


def test_snapshot_file_is_reasonably_sized(company, tmp_path):
    from repro.snapshot import save_database

    db = company["db"]
    target = tmp_path / "tiny.frdb"
    save_database(db, str(target))
    size = target.stat().st_size
    # pages dominate: a handful of 4K pages plus a small JSON header
    assert 4096 < size < 1_000_000


def test_verify_on_pathless_database_is_trivial(company):
    company["db"].verify()  # no paths: nothing to check, must not raise


def test_shell_help_lists_commands():
    from repro.cli import Shell

    out = io.StringIO()
    shell = Shell(out=out)
    shell.run_meta("\\help")
    text = out.getvalue()
    for token in ("describe", "verify", "stats", "explain", "drop"):
        assert token in text
