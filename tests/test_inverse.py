"""Inverse-function tests (future work, Section 8)."""

import pytest

from repro.errors import InvalidPathError
from repro.replication.inverse import closure_referencers, referencers


def test_inverse_falls_back_to_scan_without_links(company):
    db = company["db"]
    result = referencers(db, "Emp1", "dept", company["depts"]["toys"])
    assert not result.via_link
    assert set(result.referencers) == {company["emps"]["alice"], company["emps"]["bob"]}


def test_inverse_uses_link_when_replicated(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    result = referencers(db, "Emp1", "dept", company["depts"]["toys"])
    assert result.via_link
    assert set(result.referencers) == {company["emps"]["alice"], company["emps"]["bob"]}


def test_inverse_empty_when_unreferenced(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    lonely = db.insert("Dept", {"name": "lonely", "budget": 0, "org": None})
    result = referencers(db, "Emp1", "dept", lonely)
    assert result.via_link
    assert result.referencers == ()


def test_inverse_with_inline_entries():
    from repro import Database

    from tests.conftest import define_employee_schema

    db = Database(inline_singleton_links=True)
    define_employee_schema(db)
    org = db.insert("Org", {"name": "o", "budget": 1})
    dept = db.insert("Dept", {"name": "d", "budget": 1, "org": org})
    emp = db.insert("Emp1", {"name": "e", "age": 1, "salary": 1, "dept": dept})
    db.replicate("Emp1.dept.name")
    result = referencers(db, "Emp1", "dept", dept)
    assert result.via_link
    assert result.referencers == (emp,)


def test_inverse_link_answer_costs_less_io(company):
    db = company["db"]
    # enough employees that a scan is visibly costlier than a link read
    for i in range(800):
        db.insert("Emp1", {"name": f"x{i}", "age": 1, "salary": 1,
                           "dept": company["depts"]["shoes"]})
    db.cold_cache()
    scan_cost = db.measure(
        lambda: referencers(db, "Emp1", "dept", company["depts"]["toys"])
    )
    db.replicate("Emp1.dept.name")
    db.cold_cache()
    link_cost = db.measure(
        lambda: referencers(db, "Emp1", "dept", company["depts"]["toys"])
    )
    assert link_cost.physical_reads < scan_cost.physical_reads


def test_inverse_rejects_non_ref_field(company):
    with pytest.raises(InvalidPathError):
        referencers(company["db"], "Emp1", "salary", company["depts"]["toys"])


def test_closure_referencers_two_level(company):
    db = company["db"]
    db.replicate("Emp1.dept.org.name")
    result = closure_referencers(db, "Emp1.dept.org.name", company["orgs"]["acme"])
    assert result.via_link
    expected = {company["emps"][n] for n in ("alice", "bob", "carol", "dave")}
    assert set(result.referencers) == expected


def test_closure_referencers_collapsed(company):
    db = company["db"]
    db.replicate("Emp1.dept.org.name", collapsed=True)
    result = closure_referencers(db, "Emp1.dept.org.name", company["orgs"]["globex"])
    assert result.via_link
    assert set(result.referencers) == {company["emps"]["erin"], company["emps"]["frank"]}


def test_closure_referencers_separate_one_level(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", strategy="separate")
    result = closure_referencers(db, "Emp1.dept.name", company["depts"]["toys"])
    assert set(result.referencers) == {company["emps"]["alice"], company["emps"]["bob"]}


def test_inverse_tracks_ref_updates(company):
    db = company["db"]
    db.replicate("Emp1.dept.name")
    db.update("Emp1", company["emps"]["alice"], {"dept": company["depts"]["shoes"]})
    result = referencers(db, "Emp1", "dept", company["depts"]["toys"])
    assert set(result.referencers) == {company["emps"]["bob"]}
