"""The derived-result cache: unit behaviour, embedded integration, and
invalidation precision against the replication catalog."""

import pytest

from repro import Database, TypeDefinition, char_field, int_field, ref_field
from repro.cache import (
    ResultCache,
    cache_key,
    retrieve_footprint,
    structural_resources,
    write_resources,
)
from repro.query.language import parse_statement
from tests.conftest import define_employee_schema


# ---------------------------------------------------------------------------
# the cache data structure itself
# ---------------------------------------------------------------------------


def _fill(cache, text, rows=((1,),), footprint=("S", "__schema")):
    return cache.fill(text, ("c",), rows, "plan", frozenset(footprint))


def test_cache_key_collapses_whitespace_but_keeps_literals():
    assert cache_key("retrieve  (Emp.name)\n where x = 1") == \
        "retrieve (Emp.name) where x = 1"
    # distinct literals are distinct keys (they share a fingerprint only)
    assert cache_key("retrieve (E.n) where E.s = 1") != \
        cache_key("retrieve (E.n) where E.s = 2")


def test_hit_miss_and_fingerprint_rates():
    cache = ResultCache(enabled=True)
    q1 = "retrieve (E.n) where E.s = 1"
    q2 = "retrieve (E.n) where E.s = 2"  # same shape, different literal
    cache.miss(q1)
    _fill(cache, q1)
    entry = cache.get(cache_key(q1))
    assert entry is not None
    assert cache.hit(entry) is entry
    assert cache.get(cache_key(q2)) is None
    cache.miss(q2)
    _fill(cache, q2)
    assert (cache.hits, cache.misses) == (1, 2)
    rates = cache.fingerprint_rates()
    assert len(rates) == 1  # one shape
    (rate,) = rates.values()
    assert rate == {"hits": 1, "misses": 2, "hit_rate": 1 / 3}


def test_lru_eviction_is_byte_bounded_and_oversized_entries_skip():
    cache = ResultCache(capacity_bytes=500, enabled=True)
    assert not _fill(cache, "huge", rows=[("x" * 2000,)])
    assert len(cache) == 0
    for i in range(5):
        assert _fill(cache, f"q{i}")
    assert cache.bytes_used <= 500
    assert cache.evictions > 0
    # the survivors are the most recently filled
    assert cache.get("q0") is None
    assert cache.get(f"q{4}") is not None


def test_lru_order_follows_hits_not_just_fills():
    cache = ResultCache(capacity_bytes=400, enabled=True)
    _fill(cache, "a")
    _fill(cache, "b")
    cache.hit(cache.get("a"))  # a becomes most-recent
    for i in range(4):
        _fill(cache, f"filler{i}")
    # b (least recently served) went before a
    assert cache.get("b") is None


def test_invalidate_drops_only_intersecting_entries():
    cache = ResultCache(enabled=True)
    _fill(cache, "on_s", footprint=("S", "__schema"))
    _fill(cache, "on_t", footprint=("T", "__schema"))
    _fill(cache, "on_both", footprint=("S", "T", "__schema"))
    assert cache.invalidate({"S"}) == 2
    assert cache.get("on_s") is None
    assert cache.get("on_both") is None
    assert cache.get("on_t") is not None  # disjoint entry stays warm
    assert cache.invalidations["write"] == 2


def test_schema_resource_invalidates_everything():
    cache = ResultCache(enabled=True)
    _fill(cache, "a", footprint=("S", "__schema"))
    _fill(cache, "b", footprint=("T", "__schema"))
    assert cache.invalidate({"__schema"}, reason="ddl") == 2
    assert len(cache) == 0


def test_probe_then_invalidate_then_hit_returns_none():
    """The served path's race: get() probes lock-free, a writer
    invalidates, then hit() under locks must refuse the dead entry."""
    cache = ResultCache(enabled=True)
    _fill(cache, "q", footprint=("S", "__schema"))
    entry = cache.get("q")
    cache.invalidate({"S"})
    assert cache.hit(entry) is None
    assert cache.hits == 0


def test_refill_replaces_and_snapshot_shape():
    cache = ResultCache(enabled=True)
    _fill(cache, "q", rows=((1,),))
    _fill(cache, "q", rows=((1,), (2,)))
    assert len(cache) == 1
    assert len(cache.get("q").rows) == 2
    doc = cache.snapshot()
    assert set(doc) >= {"enabled", "entries", "bytes", "capacity_bytes",
                        "hits", "misses", "bypasses", "evictions",
                        "invalidations", "hit_rate", "hottest"}
    assert doc["entries"] == 1
    assert cache.render_text().startswith("result cache on")


# ---------------------------------------------------------------------------
# resource-set computation against a real catalog
# ---------------------------------------------------------------------------


def _replicated_db(**kwargs) -> Database:
    db = Database(**kwargs)
    define_employee_schema(db)
    db.replicate("Emp1.dept.name")  # S = Dept, referencing set = Emp1
    return db


def test_write_resources_expand_with_the_replication_catalog():
    db = _replicated_db()
    # a write to the replicated field reaches the source set and every
    # structure its inverted paths maintain
    touched = write_resources(db, "Dept", ["name"])
    assert "Dept" in touched
    assert "Emp1" in touched  # referencing set holds the copies
    # a write to an unreplicated field of the same set stays local
    assert write_resources(db, "Dept", ["budget"]) == frozenset({"Dept"})
    # membership changes on a path's root set reach every set the path
    # traverses (mirrors DeletePlan's lock expansion) ...
    assert {"Emp1", "Dept"} <= structural_resources(db, "Emp1")
    # ... while the referenced set has no paths sourced at it: deleting a
    # still-referenced Dept is refused upstream, so the expansion stays local
    assert structural_resources(db, "Dept") == frozenset({"Dept"})


def test_retrieve_footprint_cacheable_and_lazy_bypass():
    db = _replicated_db()
    resources, cacheable = retrieve_footprint(
        db, parse_statement("retrieve (Emp1.name, Emp1.dept.name)"))
    assert cacheable
    assert {"Emp1", "__schema"} <= resources

    lazy = Database()
    define_employee_schema(lazy)
    lazy.replicate("Emp1.dept.name", lazy=True)
    __, cacheable = retrieve_footprint(
        lazy, parse_statement("retrieve (Emp1.name, Emp1.dept.name)"))
    assert not cacheable  # the read drains the pending queue -- a write


# ---------------------------------------------------------------------------
# embedded integration: Database(cache=True) + execute_text
# ---------------------------------------------------------------------------


def _populated(**kwargs) -> Database:
    db = _replicated_db(**kwargs)
    orgs = db.insert("Org", {"name": "acme", "budget": 10})
    depts = [db.insert("Dept", {"name": f"d{i}", "budget": i, "org": orgs})
             for i in range(3)]
    for i in range(9):
        db.insert("Emp1", {"name": f"e{i}", "age": 20 + i,
                           "salary": 100 * i, "dept": depts[i % 3]})
    return db


def test_embedded_hit_serves_identical_rows_with_zero_io():
    db = _populated(cache=True)
    q = "retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary >= 300"
    first = db.execute(q)
    assert first.cache == "miss"
    db.cold_cache()  # even a cold buffer pool: a hit does no page reads
    again = db.execute("retrieve (Emp1.name,  Emp1.dept.name)"
                       "  where Emp1.salary >= 300")
    assert again.cache == "hit"
    assert again.rows == first.rows
    assert again.columns == first.columns
    assert again.io.total_io == 0


def test_replace_on_replicated_field_invalidates_precisely():
    """The ISSUE's counter-proof: a replace on S.repfield invalidates the
    entries touching S / its propagation targets and nothing else."""
    db = _populated(cache=True)
    q_emp = "retrieve (Emp1.name, Emp1.dept.name)"  # touches Dept copies
    q_dept = "retrieve (Dept.name)"                 # touches Dept itself
    q_org = "retrieve (Org.name)"                   # disjoint
    for q in (q_emp, q_dept, q_org):
        assert db.execute(q).cache == "miss"
    assert len(db.resultcache) == 3
    before = dict(db.resultcache.invalidations)

    dept = next(oid for oid, __ in db.catalog.get_set("Dept").scan())
    db.update("Dept", dept, {"name": "renamed"})

    # exactly the two intersecting entries went; the disjoint one is warm
    gained = (db.resultcache.invalidations["write"]
              - before.get("write", 0))
    assert gained == 2
    assert db.execute(q_org).cache == "hit"
    assert db.execute(q_emp).cache == "miss"
    assert db.execute(q_dept).cache == "miss"
    # and the re-executed rows reflect the write
    assert any("renamed" in row for row in db.execute(q_dept).rows)


def test_unreplicated_field_write_leaves_referencing_entries_warm():
    db = _populated(cache=True)
    q_emp = "retrieve (Emp1.name)"
    q_dept = "retrieve (Dept.name, Dept.budget)"
    db.execute(q_emp)
    db.execute(q_dept)
    dept = next(oid for oid, __ in db.catalog.get_set("Dept").scan())
    db.update("Dept", dept, {"budget": 999})  # budget is not replicated
    assert db.execute(q_emp).cache == "hit"
    assert db.execute(q_dept).cache == "miss"


def test_insert_delete_and_ddl_invalidate():
    db = _populated(cache=True)
    q = "retrieve (Emp1.name)"
    db.execute(q)
    db.insert("Emp1", {"name": "new", "age": 1, "salary": 1, "dept": None})
    assert db.execute(q).cache == "miss"
    assert db.execute(q).cache == "hit"  # refilled by the miss above
    victim = next(oid for oid, __ in db.catalog.get_set("Emp1").scan())
    db.delete("Emp1", victim)
    assert db.execute(q).cache == "miss"
    db.execute(q)
    db.create_set("Emp3", "EMP")  # DDL: the __schema resource
    assert db.resultcache.invalidations["ddl"] > 0
    assert db.execute(q).cache == "miss"


def test_lazy_path_reads_bypass_and_refresh_invalidates():
    db = Database(cache=True)
    define_employee_schema(db)
    db.replicate("Emp1.dept.name", lazy=True)
    org = db.insert("Org", {"name": "o", "budget": 1})
    dept = db.insert("Dept", {"name": "d0", "budget": 1, "org": org})
    db.insert("Emp1", {"name": "e0", "age": 1, "salary": 1, "dept": dept})
    lazy_q = "retrieve (Emp1.name, Emp1.dept.name)"
    plain_q = "retrieve (Emp1.name)"
    assert db.execute(lazy_q).cache == "bypass"  # queue drain = a write
    assert db.execute(lazy_q).cache == "bypass"  # never cached
    assert db.execute(plain_q).cache == "miss"
    assert db.execute(plain_q).cache == "hit"
    db.update("Dept", dept, {"name": "d1"})
    db.refresh("Emp1.dept.name")
    assert [r for r in db.execute(lazy_q).rows] == [("e0", "d1")]


def test_cache_off_by_default_and_session_independent_counters():
    db = _populated()
    assert not db.resultcache.enabled
    result = db.execute("retrieve (Emp1.name)")
    assert result.cache is None
    assert len(db.resultcache) == 0
    assert db.resultcache.hits == db.resultcache.misses == 0


def test_recover_and_repair_flush_the_cache():
    db = _populated(cache=True, wal=True)
    db.execute("retrieve (Emp1.name)")
    assert len(db.resultcache) == 1
    db.doctor(repair=True)
    assert len(db.resultcache) == 0


def test_explain_analyze_annotates_hits():
    db = _populated(cache=True)
    q = "retrieve (Emp1.name) where Emp1.salary >= 300"
    db.execute(q)
    analyzed = db.explain_analyze(q)
    assert analyzed.cache == "hit"
    assert analyzed.operators
    assert analyzed.operators[0].name == "cache_hit"
    assert analyzed.rows == db.execute(q).rows


def test_slowlog_and_fingerprints_carry_cache_annotations():
    db = _populated(cache=True)
    db.telemetry.slowlog.configure(threshold_ms=0.0)
    q = "retrieve (Emp1.name)"
    db.execute(q)
    db.execute(q)
    entries = db.telemetry.slowlog.entries()
    assert [e["cache"] for e in entries[-2:]] == ["miss", "hit"]
    rates = db.resultcache.fingerprint_rates()
    table = db.telemetry.statements.render_text(cache_rates=rates)
    assert "cache%" in table
    assert "50.0%" in table


def test_prometheus_counters_exposed():
    db = _populated(cache=True)
    q = "retrieve (Emp1.name)"
    db.execute(q)
    db.execute(q)
    text = db.telemetry.metrics.render_prometheus()
    assert "result_cache_hits_total 1" in text
    assert "result_cache_misses_total 1" in text
    assert "result_cache_entries 1" in text


def test_custom_capacity_flows_through_database():
    db = Database(cache=True, cache_bytes=123)
    assert db.resultcache.capacity_bytes == 123


def test_doctor_stays_clean_with_cache_enabled():
    db = _populated(cache=True)
    for q in ("retrieve (Emp1.name, Emp1.dept.name)", "retrieve (Dept.name)"):
        db.execute(q)
        db.execute(q)
    assert db.doctor().healthy
    db.verify()
