"""B+-tree bulk loading tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.index.btree import BPlusTree
from repro.storage.manager import StorageManager
from repro.storage.oid import OID


def key(i: int) -> bytes:
    return i.to_bytes(8, "big")


def oid(i: int) -> OID:
    return OID(1, i, 0)


def bulk(n, fill=0.9):
    sm = StorageManager(buffer_frames=64)
    fid = sm.disk.create_file()
    tree = BPlusTree.bulk_load(
        sm.pool, fid, 8, ((key(i), oid(i)) for i in range(n)), fill_factor=fill
    )
    return sm, tree


@pytest.mark.parametrize("n", [0, 1, 2, 100, 5000])
def test_bulk_load_roundtrip(n):
    __, tree = bulk(n)
    assert tree.count() == n
    assert [k for k, __ in tree.items()] == [key(i) for i in range(n)]
    tree.check_invariants()
    for probe in range(0, n, max(1, n // 13)):
        assert tree.search(key(probe)) == oid(probe)
    assert tree.search(key(n)) is None


def test_bulk_load_then_mutate():
    __, tree = bulk(1000)
    tree.insert(key(100_000), oid(7))
    assert tree.search(key(100_000)) == oid(7)
    assert tree.delete(key(500))
    assert tree.search(key(500)) is None
    tree.check_invariants()


def test_bulk_load_unsorted_rejected():
    sm = StorageManager()
    fid = sm.disk.create_file()
    with pytest.raises(StorageError):
        BPlusTree.bulk_load(sm.pool, fid, 8, [(key(2), oid(2)), (key(1), oid(1))])


def test_bulk_load_duplicate_rejected():
    sm = StorageManager()
    fid = sm.disk.create_file()
    with pytest.raises(StorageError):
        BPlusTree.bulk_load(sm.pool, fid, 8, [(key(1), oid(1)), (key(1), oid(2))])


def test_bulk_fill_requires_empty_tree():
    sm = StorageManager()
    fid = sm.disk.create_file()
    tree = BPlusTree(sm.pool, fid, 8)
    tree.insert(key(1), oid(1))
    with pytest.raises(StorageError):
        tree.bulk_fill([(key(2), oid(2))])


def test_bulk_load_bad_fill_factor():
    sm = StorageManager()
    fid = sm.disk.create_file()
    with pytest.raises(StorageError):
        BPlusTree.bulk_load(sm.pool, fid, 8, [], fill_factor=0.01)


def test_bulk_load_writes_fewer_pages_than_inserts():
    n = 4000
    sm_bulk, bulk_tree = bulk(n)
    sm_ins = StorageManager(buffer_frames=64)
    fid = sm_ins.disk.create_file()
    ins_tree = BPlusTree(sm_ins.pool, fid, 8)
    for i in range(n):
        ins_tree.insert(key(i), oid(i))
    sm_bulk.pool.flush_all()
    sm_ins.pool.flush_all()
    # bulk writes each page ~once; insertion rewrites pages over and over
    assert sm_bulk.stats.physical_writes < sm_ins.stats.physical_writes
    # and packs leaves tighter (fewer pages for the same data)
    assert bulk_tree.num_pages() <= ins_tree.num_pages()


def test_secondary_index_bulk_load_with_duplicates(company):
    db = company["db"]
    info = db.build_index("Emp1.age")  # built via bulk_load internally
    assert info.index.count() == 6
    # duplicates across employees of the same age are preserved
    db2 = company["db"]
    res = db2.execute("retrieve (Emp1.name) where Emp1.age = 30")
    assert [r[0] for r in res.rows] == ["alice"]


@settings(max_examples=20, deadline=None)
@given(
    keys=st.sets(st.integers(min_value=0, max_value=10**6), max_size=600),
    fill=st.sampled_from([0.5, 0.75, 0.9, 1.0]),
)
def test_property_bulk_equals_insert(keys, fill):
    ordered = sorted(keys)
    sm = StorageManager(buffer_frames=64)
    fid = sm.disk.create_file()
    tree = BPlusTree.bulk_load(
        sm.pool, fid, 8, ((key(i), oid(i % 1000)) for i in ordered), fill_factor=fill
    )
    assert [k for k, __ in tree.items()] == [key(i) for i in ordered]
    tree.check_invariants()
