"""Separate replication (Section 5): shared replicas in S', refcounts."""

import pytest

from repro.errors import IntegrityError, ReplicationError


def replica_of(db, set_name, oid, path_text):
    """The replica object a source object's hidden ref points at."""
    path = db.catalog.get_path(path_text)
    ref = db.get(set_name, oid).values[path.hidden_ref]
    if ref is None:
        return None
    return db.replication.replica_sets[path.path_id].read(ref)


def test_one_level_replicas_shared_and_counted(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", strategy="separate")
    a = replica_of(db, "Emp1", company["emps"]["alice"], "Emp1.dept.name")
    b = replica_of(db, "Emp1", company["emps"]["bob"], "Emp1.dept.name")
    assert a.values["name"] == "toys" and b.values["name"] == "toys"
    # alice and bob share one replica object
    path = db.catalog.get_path("Emp1.dept.name")
    ra = db.get("Emp1", company["emps"]["alice"]).values[path.hidden_ref]
    rb = db.get("Emp1", company["emps"]["bob"]).values[path.hidden_ref]
    assert ra == rb
    dept = db.get("Dept", company["depts"]["toys"])
    assert dept.replica_entry_for(path.path_id).refcount == 2
    db.verify()


def test_one_level_update_touches_single_replica(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", strategy="separate")
    db.update("Dept", company["depts"]["toys"], {"name": "games"})
    assert replica_of(db, "Emp1", company["emps"]["alice"], "Emp1.dept.name").values["name"] == "games"
    db.verify()


def test_one_level_ref_update_moves_refcounts(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", strategy="separate")
    path = db.catalog.get_path("Emp1.dept.name")
    db.update("Emp1", company["emps"]["alice"], {"dept": company["depts"]["shoes"]})
    toys = db.get("Dept", company["depts"]["toys"])
    shoes = db.get("Dept", company["depts"]["shoes"])
    assert toys.replica_entry_for(path.path_id).refcount == 1  # bob only
    assert shoes.replica_entry_for(path.path_id).refcount == 3
    assert replica_of(db, "Emp1", company["emps"]["alice"], "Emp1.dept.name").values["name"] == "shoes"
    db.verify()


def test_replica_garbage_collected_at_zero(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", strategy="separate")
    path = db.catalog.get_path("Emp1.dept.name")
    db.delete("Emp1", company["emps"]["alice"])
    db.delete("Emp1", company["emps"]["bob"])
    dept = db.get("Dept", company["depts"]["toys"])
    assert dept.replica_entry_for(path.path_id) is None
    assert db.replication.replica_sets[path.path_id].count() == 2  # tools, shoes
    db.verify()


def test_one_level_insert_with_null_ref(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", strategy="separate")
    path = db.catalog.get_path("Emp1.dept.name")
    oid = db.insert("Emp1", {"name": "nix", "age": 1, "salary": 1, "dept": None})
    assert db.get("Emp1", oid).values[path.hidden_ref] is None
    db.verify()


# ---------------------------------------------------------------------------
# 2-level separate paths (the paper's Figure 8 scenario)
# ---------------------------------------------------------------------------


def test_two_level_separate_uses_one_link(company):
    db = company["db"]
    path = db.replicate("Emp1.dept.org.name", strategy="separate")
    assert len(path.link_sequence) == 1  # an n-level path keeps n-1 links
    assert replica_of(db, "Emp1", company["emps"]["alice"], "Emp1.dept.org.name").values["name"] == "acme"
    db.verify()


def test_two_level_separate_data_update_single_write(company):
    db = company["db"]
    db.replicate("Emp1.dept.org.name", strategy="separate")
    db.update("Org", company["orgs"]["acme"], {"name": "acme2"})
    for ename in ("alice", "carol"):
        assert (
            replica_of(db, "Emp1", company["emps"][ename], "Emp1.dept.org.name").values["name"]
            == "acme2"
        )
    db.verify()


def test_two_level_separate_terminal_ref_update_repoints_sources(company):
    """The paper's example: D2.org changes from O2 to O1, so E3 must
    reference R1 rather than R2, found through the link Emp1.dept^-1."""
    db = company["db"]
    db.replicate("Emp1.dept.org.name", strategy="separate")
    db.update("Dept", company["depts"]["shoes"], {"org": company["orgs"]["acme"]})
    assert replica_of(db, "Emp1", company["emps"]["erin"], "Emp1.dept.org.name").values["name"] == "acme"
    path = db.catalog.get_path("Emp1.dept.org.name")
    globex = db.get("Org", company["orgs"]["globex"])
    assert globex.replica_entry_for(path.path_id) is None  # GC'd
    db.verify()


def test_two_level_separate_source_ref_update(company):
    db = company["db"]
    db.replicate("Emp1.dept.org.name", strategy="separate")
    db.update("Emp1", company["emps"]["alice"], {"dept": company["depts"]["shoes"]})
    assert replica_of(db, "Emp1", company["emps"]["alice"], "Emp1.dept.org.name").values["name"] == "globex"
    db.verify()


def test_two_level_separate_delete_ripples_refcounts(company):
    db = company["db"]
    db.replicate("Emp1.dept.org.name", strategy="separate")
    path = db.catalog.get_path("Emp1.dept.org.name")
    for ename in ("alice", "bob", "carol", "dave"):
        db.delete("Emp1", company["emps"][ename])
    acme = db.get("Org", company["orgs"]["acme"])
    assert acme.replica_entry_for(path.path_id) is None
    db.verify()


def test_replicas_not_shared_between_sets(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", strategy="separate")
    db.insert("Emp2", {"name": "zoe", "age": 2, "salary": 2, "dept": company["depts"]["toys"]})
    db.replicate("Emp2.dept.name", strategy="separate")
    p1 = db.catalog.get_path("Emp1.dept.name")
    p2 = db.catalog.get_path("Emp2.dept.name")
    assert p1.replica_set != p2.replica_set
    dept = db.get("Dept", company["depts"]["toys"])
    assert dept.replica_entry_for(p1.path_id).refcount == 2
    assert dept.replica_entry_for(p2.path_id).refcount == 1
    db.verify()


def test_separate_deletion_of_referenced_terminal_refused(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", strategy="separate")
    with pytest.raises(IntegrityError):
        db.delete("Dept", company["depts"]["toys"])


def test_no_index_on_separate_path(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", strategy="separate")
    with pytest.raises(ReplicationError):
        db.build_index("Emp1.dept.name")


def test_drop_separate_path_cleans_up(company):
    db = company["db"]
    db.replicate("Emp1.dept.name", strategy="separate")
    db.drop_replication("Emp1.dept.name")
    assert db.catalog.get_set("Emp1").type_def.hidden_fields() == ()
    dept = db.get("Dept", company["depts"]["toys"])
    assert dept.replica_entries == []
    db.verify()


def test_mixed_strategies_share_links(company):
    """Section 5.3: in-place and separate coexist and share links."""
    db = company["db"]
    p_in = db.replicate("Emp1.dept.name", strategy="inplace")
    p_sep = db.replicate("Emp1.dept.org.name", strategy="separate")
    # The separate path's single link is the in-place path's link.
    assert p_sep.link_sequence == p_in.link_sequence
    db.update("Dept", company["depts"]["toys"], {"name": "games"})
    db.update("Org", company["orgs"]["acme"], {"name": "acme2"})
    db.verify()
    path = db.catalog.get_path("Emp1.dept.name")
    obj = db.get("Emp1", company["emps"]["alice"])
    assert obj.values[path.hidden_field_for("name")] == "games"
    assert replica_of(db, "Emp1", company["emps"]["alice"], "Emp1.dept.org.name").values["name"] == "acme2"
