"""IOSnapshot arithmetic edge cases + eviction/write-back accounting."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.stats import IOSnapshot, IOStatistics


def _snap(**kwargs) -> IOSnapshot:
    base = dict(physical_reads=0, physical_writes=0, logical_reads=0,
                buffer_hits=0, evictions=0, dirty_writebacks=0,
                file_reads={}, file_writes={})
    base.update(kwargs)
    return IOSnapshot(**base)


# ---------------------------------------------------------------------------
# snapshot arithmetic
# ---------------------------------------------------------------------------


def test_subtraction_with_disjoint_file_reads():
    later = _snap(physical_reads=5, file_reads={1: 3, 2: 2})
    earlier = _snap(physical_reads=2, file_reads={3: 2})
    delta = later - earlier
    # file 3 never went negative-by-omission: it is simply absent/zero
    assert delta.physical_reads == 3
    assert delta.reads_for(1) == 3
    assert delta.reads_for(2) == 2
    assert delta.reads_for(3) == -2
    assert delta.total_io == 3


def test_zero_traffic_snapshot_subtraction():
    a = _snap()
    b = _snap()
    delta = a - b
    assert delta.total_io == 0
    assert delta.touched_files() == set()
    assert delta == _snap()


def test_subtraction_carries_evictions_and_writebacks():
    later = _snap(physical_writes=4, evictions=7, dirty_writebacks=3)
    earlier = _snap(physical_writes=1, evictions=2, dirty_writebacks=1)
    delta = later - earlier
    assert delta.evictions == 5
    assert delta.dirty_writebacks == 2
    assert delta.physical_writes == 3


def test_stats_snapshot_includes_new_counters():
    stats = IOStatistics()
    stats.count_eviction()
    stats.count_writeback()
    stats.count_writeback()
    snap = stats.snapshot()
    assert snap.evictions == 1
    assert snap.dirty_writebacks == 2
    stats.reset()
    after = stats.snapshot()
    assert after.evictions == 0 and after.dirty_writebacks == 0


# ---------------------------------------------------------------------------
# buffer pool feeds the counters
# ---------------------------------------------------------------------------


@pytest.fixture()
def tiny_pool():
    disk = SimulatedDisk()
    pool = BufferPool(disk, capacity=2)
    fid = disk.create_file()
    pages = []
    for __ in range(4):
        page_no, __page = pool.new_page(fid)
        pool.unpin(fid, page_no)
        pages.append(page_no)
    return disk, pool, fid, pages


def test_evictions_counted_on_lru_pressure(tiny_pool):
    disk, pool, fid, pages = tiny_pool
    # 4 new pages through a 2-frame pool: 2 evictions already happened
    assert disk.stats.evictions == 2
    # evicted pages were dirty (fresh pages), so they were written back
    assert disk.stats.dirty_writebacks == 2
    before = disk.stats.evictions
    with pool.page(fid, pages[0]):
        pass
    assert disk.stats.evictions == before + 1


def test_clean_eviction_does_not_count_writeback(tiny_pool):
    disk, pool, fid, pages = tiny_pool
    pool.invalidate_all()   # flush + empty; resident set now clean
    with pool.page(fid, pages[0]):
        pass
    with pool.page(fid, pages[1]):
        pass
    writebacks = disk.stats.dirty_writebacks
    evictions = disk.stats.evictions
    with pool.page(fid, pages[2]):  # evicts a clean frame
        pass
    assert disk.stats.evictions == evictions + 1
    assert disk.stats.dirty_writebacks == writebacks


def test_flush_all_counts_writebacks_not_evictions(tiny_pool):
    disk, pool, fid, pages = tiny_pool
    pool.invalidate_all()
    with pool.page(fid, pages[0]):
        pool.mark_dirty(fid, pages[0])
    evictions = disk.stats.evictions
    writebacks = disk.stats.dirty_writebacks
    pool.flush_all()
    assert disk.stats.dirty_writebacks == writebacks + 1
    assert disk.stats.evictions == evictions
    pool.flush_all()  # now clean: nothing new
    assert disk.stats.dirty_writebacks == writebacks + 1


def test_measured_delta_attributes_evictions(tiny_pool):
    disk, pool, fid, pages = tiny_pool
    pool.invalidate_all()
    before = disk.stats.snapshot()
    with pool.page(fid, pages[0]):
        pass
    with pool.page(fid, pages[1]):
        pass
    with pool.page(fid, pages[2]):
        pass
    delta = disk.stats.snapshot() - before
    assert delta.evictions == 1
    assert delta.physical_reads == 3
