"""Shell tests (scripted, non-interactive)."""

import io

from repro.cli import Shell, render_result


def run(text: str) -> str:
    out = io.StringIO()
    shell = Shell(out=out)
    shell.run_block(text)
    return out.getvalue()


SETUP = """
define type DEPT ( name: char[20], budget: int )

define type EMP ( name: char[20], salary: int, dept: ref DEPT )

create Dept: {own ref DEPT}

create Emp1: {own ref EMP}
"""


def test_ddl_and_describe():
    out = run(SETUP + "\n\\describe")
    assert out.count("ok") >= 4
    assert "create Emp1: {own ref EMP}" in out


def test_query_rendering():
    out = run(SETUP + "\nretrieve (Emp1.name)")
    assert "(0 row(s))" in out
    assert "plan: FileScan(Emp1)" in out
    assert "I/O:" in out


def test_replicate_and_verify():
    out = run(SETUP + "\nreplicate Emp1.dept.name\n\n\\verify")
    assert "all replication invariants hold" in out


def test_error_does_not_kill_session():
    out = run(SETUP + "\nretrieve (Nope.name)\n\nretrieve (Emp1.name)")
    assert "error:" in out
    assert "(0 row(s))" in out  # the later statement still ran


def test_unknown_meta_and_statement():
    out = run("\\bogus")
    assert "unknown meta-command" in out
    out = run("frobnicate the database")
    assert "unrecognised statement" in out


def test_stats_and_cold():
    out = run(SETUP + "\n\\stats\n\\cold")
    assert "physical reads" in out
    assert "buffer pool flushed" in out


def test_quit_stops_processing():
    out = run("\\quit\n\\stats")
    assert "physical reads" not in out


def test_interact_line_protocol():
    out = io.StringIO()
    shell = Shell(out=out)
    shell.interact(iter([
        "define type T ( x: int )",
        "",  # blank line terminates the statement
        "create S: {own ref T};",
        "\\describe",
    ]))
    text = out.getvalue()
    assert text.count("ok") == 2
    assert "create S: {own ref T}" in text


def test_render_result_table(company):
    db = company["db"]
    result = db.execute("retrieve (Emp1.name, Emp1.salary) where Emp1.salary <= 60000")
    text = render_result(result)
    assert "Emp1.name" in text and "alice" in text
    assert "(2 row(s))" in text


def test_main_with_piped_script(tmp_path, monkeypatch, capsys):
    from repro import cli

    script = tmp_path / "s.extra"
    script.write_text(SETUP + "\nretrieve (Emp1.name)\n")
    assert cli.main([str(script)]) == 0
    captured = capsys.readouterr()
    assert "(0 row(s))" in captured.out


def _populated_shell():
    out = io.StringIO()
    shell = Shell(out=out)
    shell.run_block(SETUP)
    db = shell.db
    toys = db.insert("Dept", {"name": "toys", "budget": 100})
    db.insert("Emp1", {"name": "alice", "salary": 50_000, "dept": toys})
    db.insert("Emp1", {"name": "bob", "salary": 60_000, "dept": toys})
    out.truncate(0)
    out.seek(0)
    return shell, out


def test_stats_shows_evictions_and_metrics():
    shell, out = _populated_shell()
    shell.run_block("\\cold\nretrieve (Emp1.name)\n\n\\stats")
    text = out.getvalue()
    assert "physical reads" in text          # the original one-liner survives
    assert "evictions" in text and "dirty writebacks" in text
    assert "disk_reads_total" in text
    assert "bufferpool_misses_total" in text


def test_stats_prometheus_exposition():
    shell, out = _populated_shell()
    shell.run_block("\\cold\nretrieve (Emp1.name)\n\n\\stats prom")
    text = out.getvalue()
    assert "# TYPE disk_reads_total counter" in text
    assert "# TYPE bufferpool_resident_frames gauge" in text


def test_trace_on_dump_clear_off():
    shell, out = _populated_shell()
    shell.run_block("\\trace on\nretrieve (Emp1.dept.name)\n\n\\trace dump")
    text = out.getvalue()
    assert "tracing on" in text
    assert '"name": "query"' in text
    assert '"name": "functional_join"' in text
    out.truncate(0)
    out.seek(0)
    shell.run_block("\\trace clear\n\\trace off\n\\trace dump")
    text = out.getvalue()
    assert "trace cleared" in text and "tracing off" in text
    assert "(no spans recorded)" in text


def test_trace_dump_to_file(tmp_path):
    shell, out = _populated_shell()
    target = tmp_path / "trace.jsonl"
    shell.run_block(f"\\trace on\nretrieve (Emp1.name)\n\n\\trace dump {target}")
    assert "wrote" in out.getvalue()
    assert target.exists() and target.read_text().strip()


def test_trace_dump_unwritable_path_does_not_kill_session():
    shell, out = _populated_shell()
    shell.run_block("\\trace on\nretrieve (Emp1.name)\n\n"
                    "\\trace dump /no/such/dir/t.jsonl\n\\stats")
    text = out.getvalue()
    assert "error: cannot write trace" in text
    assert "physical reads" in text  # the session survived


def test_explain_analyze_statement():
    shell, out = _populated_shell()
    shell.run_block("explain analyze retrieve (Emp1.name, Emp1.dept.name)")
    text = out.getvalue()
    assert "operator" in text and "functional_join" in text
    assert "total" in text and "(2 row(s))" in text
    out.truncate(0)
    out.seek(0)
    # plain explain still just plans
    shell.run_block("explain retrieve (Emp1.name)")
    assert "FileScan(Emp1)" in out.getvalue()


def test_monitor_meta_command():
    shell, out = _populated_shell()
    shell.run_block("retrieve (Emp1.dept.name)\n\n\\monitor")
    text = out.getvalue()
    assert "observed functional joins" in text
    assert "Emp1.dept.name" in text


def test_doctor_healthy_and_repair():
    shell, out = _populated_shell()
    shell.run_block("replicate Emp1.dept.name\n\n\\doctor")
    assert "no problems found" in out.getvalue()
    db = shell.db
    path = db.catalog.get_path("Emp1.dept.name")
    emp_set = db.catalog.get_set("Emp1")
    oid, __ = next(iter(emp_set.scan()))
    db.replication.apply_hidden_changes(
        emp_set, oid, {path.hidden_field_for("name"): "VANDALISED"})
    out.truncate(0)
    out.seek(0)
    shell.run_block("\\doctor\n\\doctor repair\n\\verify")
    text = out.getvalue()
    assert "[repairable] inplace-value" in text
    assert "[fixed] inplace-value" in text
    assert "repair(s) applied" in text
    assert "all replication invariants hold" in text


def test_recover_meta_command():
    from tests.test_recovery import crash_mid_updates

    shell, out = _populated_shell()
    shell.run_block("\\recover")
    assert "nothing to recover" in out.getvalue()
    crashed, __, __ = crash_mid_updates(torn=True)
    shell.db = crashed
    out.truncate(0)
    out.seek(0)
    shell.run_block("retrieve (Emp.name)\n\n\\recover\n\\verify")
    text = out.getvalue()
    assert "error:" in text and "run recover()" in text  # refused pre-recovery
    assert "recovery:" in text and "statement(s) redone" in text
    assert "all replication invariants hold" in text


def test_meta_command_error_keeps_session_alive():
    shell, out = _populated_shell()
    shell.db.faults.fail_after_writes(0)
    shell.run_block("\\cold\n\\stats")
    text = out.getvalue()
    assert "error: injected write failure" in text
    assert "physical reads" in text  # the session survived
    shell.db.faults.disarm()


# ---------------------------------------------------------------------------
# script-mode exit codes
# ---------------------------------------------------------------------------


def test_main_missing_script_is_one_error_line_and_exit_1(capsys):
    from repro import cli

    assert cli.main(["/no/such/script.extra"]) == 1
    captured = capsys.readouterr()
    errors = [ln for ln in captured.err.splitlines() if ln]
    assert len(errors) == 1
    assert errors[0].startswith("error: cannot read script")
    assert captured.out == ""


def test_main_script_statement_error_exits_nonzero(tmp_path, capsys):
    from repro import cli

    script = tmp_path / "bad.extra"
    script.write_text(SETUP + "\nretrieve (Nope.name)\n\nretrieve (Emp1.name)\n")
    assert cli.main([str(script)]) == 1
    captured = capsys.readouterr()
    assert "error:" in captured.out
    assert "(0 row(s))" in captured.out  # later statements still ran


def test_main_script_meta_error_exits_nonzero(tmp_path, capsys):
    from repro import cli

    script = tmp_path / "bad.extra"
    script.write_text("\\bogus\n")
    assert cli.main([str(script)]) == 1


def test_main_clean_script_exits_zero(tmp_path, capsys):
    from repro import cli

    script = tmp_path / "ok.extra"
    script.write_text(SETUP + "\nretrieve (Emp1.name)\n")
    assert cli.main([str(script)]) == 0


# ---------------------------------------------------------------------------
# --snapshot / --save
# ---------------------------------------------------------------------------


def test_main_save_and_snapshot_round_trip(tmp_path, capsys):
    from repro import cli

    saved = tmp_path / "state.frdb"
    build = tmp_path / "build.extra"
    build.write_text(SETUP + "\nreplicate Emp1.dept.name\n")
    assert cli.main([str(build), "--save", str(saved)]) == 0
    assert saved.exists()

    reuse = tmp_path / "reuse.extra"
    reuse.write_text("retrieve (Emp1.name)\n\n\\verify\n")
    assert cli.main([str(reuse), "--snapshot", str(saved)]) == 0
    captured = capsys.readouterr()
    assert "(0 row(s))" in captured.out
    assert "all replication invariants hold" in captured.out


def test_main_unreadable_snapshot_exits_1(capsys):
    from repro import cli

    assert cli.main(["--snapshot", "/no/such/state.frdb"]) == 1
    assert "error:" in capsys.readouterr().err


def test_main_snapshot_with_connect_is_rejected(capsys):
    from repro import cli

    assert cli.main(["--connect", "127.0.0.1:1", "--snapshot", "x.frdb"]) == 1
    assert "--snapshot/--save need a local session" in capsys.readouterr().err


def test_main_connect_refused_is_one_error(capsys):
    from repro import cli

    assert cli.main(["--connect", "127.0.0.1:1"]) == 1
    assert "error: cannot connect" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# row limits
# ---------------------------------------------------------------------------


def test_render_result_truncates_at_limit(company):
    db = company["db"]
    result = db.execute("retrieve (Emp1.name)")
    text = render_result(result, limit=2)
    assert "... (4 more rows)" in text
    assert "(6 row(s))" in text  # the count line reports the truth
    assert render_result(result, limit=None).count("\n") > text.count("\n")


def test_limit_meta_command():
    shell, out = _populated_shell()
    shell.run_block("\\limit 1\nretrieve (Emp1.name)\n\n\\limit off\n"
                    "retrieve (Emp1.name)\n\n\\limit nonsense")
    text = out.getvalue()
    assert "row limit: 1" in text
    assert "... (1 more rows)" in text
    assert "row limit off" in text
    assert text.count("alice") + text.count("bob") == 3  # 1 capped + 2 full
    assert "error: \\limit takes a number" in text
    assert shell.errors == 1


# ---------------------------------------------------------------------------
# --connect: the shell as a server client
# ---------------------------------------------------------------------------


def test_shell_drives_a_live_server(company):
    from repro.server.client import connect
    from repro.server.service import Server

    server = Server(company["db"]).start()
    try:
        out = io.StringIO()
        shell = Shell(out=out, client=connect(*server.address))
        shell.run_block(
            "replicate Emp1.dept.name\n\n"
            "retrieve (Emp1.name, Emp1.dept.name)\n\n"
            "begin\n\nreplace (Emp1.salary = 1)\n\ncommit\n\n"
            "\\verify\n\\stats\n\\describe")
        text = out.getvalue()
        assert "ok" in text                      # DDL acknowledged
        assert "alice" in text and "toys" in text
        assert "plan:" in text and "I/O:" in text
        assert "all replication invariants hold" in text
        assert "physical reads" in text
        assert "replicate Emp1.dept.name" in text  # \describe shows the path
        assert shell.errors == 0
        out.truncate(0)
        out.seek(0)
        shell.run_block("retrieve (Nope.name)\n\n\\limit 2\n\\shutdown")
        text = out.getvalue()
        assert "error:" in text
        assert "row limit: 2" in text
        assert "draining" in text
        assert shell.done
        shell.close()
    finally:
        server.shutdown()


def test_local_shell_rejects_shutdown():
    shell, out = _populated_shell()
    shell.run_block("\\shutdown")
    assert "needs a connected server" in out.getvalue()
    assert shell.errors == 1
