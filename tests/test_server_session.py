"""Sessions: statement dispatch, transactions, backpressure, tracing."""

import threading

import pytest

from repro.errors import (
    DeadlockError,
    ParseError,
    ReproError,
    ServerBusyError,
)
from repro.server.locks import SCHEMA_RESOURCE
from repro.server.session import SessionManager, WorkerPool


@pytest.fixture()
def manager(company):
    mgr = SessionManager(company["db"], lock_timeout=2.0, workers=2,
                         queue_depth=4)
    yield mgr
    mgr.shutdown()


def test_retrieve_returns_rows_result(manager):
    session = manager.open_session("t")
    result = session.run_statement("retrieve (Emp1.name, Emp1.salary)")
    assert result["kind"] == "rows"
    assert result["columns"] == ["Emp1.name", "Emp1.salary"]
    assert ["alice", 50000] in result["rows"]
    assert result["io"]["reads"] >= 0 and "plan" in result


def test_replace_and_ddl_and_explain(manager):
    session = manager.open_session("t")
    up = session.run_statement('replace (Dept.name = "games") where Dept.name = "toys"')
    assert up["kind"] == "rows"
    rows = session.run_statement("retrieve (Dept.name)")["rows"]
    assert ["games"] in rows
    ddl = session.run_statement("create Dept2 : { own ref DEPT }")
    assert ddl == {"kind": "ok", "detail": "ddl"}
    explain = session.run_statement("explain retrieve (Emp1.name)")
    assert explain["kind"] == "text" and "Emp1" in explain["text"]
    analyzed = session.run_statement("explain analyze retrieve (Emp1.name)")
    assert analyzed["kind"] == "text" and "row(s)" in analyzed["text"]


def test_statement_errors_are_repro_errors(manager):
    session = manager.open_session("t")
    with pytest.raises(ParseError):
        session.run_statement("")
    with pytest.raises(ParseError):
        session.run_statement("frobnicate the database")
    with pytest.raises(ReproError):
        session.run_statement("retrieve (Nope.name)")


def test_autocommit_releases_locks_at_statement_end(manager):
    session = manager.open_session("t")
    session.run_statement("retrieve (Emp1.name)")
    assert manager.locks.held_by(session.owner) == {}


def test_transaction_holds_locks_until_commit(manager):
    session = manager.open_session("t")
    session.run_statement("begin")
    session.run_statement("retrieve (Emp1.name)")
    held = manager.locks.held_by(session.owner)
    assert held.get("Emp1") == "S" and SCHEMA_RESOURCE in held
    session.run_statement('replace (Emp1.salary = 1)')
    assert manager.locks.held_by(session.owner).get("Emp1") == "X"
    session.run_statement("commit")
    assert manager.locks.held_by(session.owner) == {}


def test_abort_releases_locks_and_reports_durability_caveat(manager):
    session = manager.open_session("t")
    session.run_statement("begin")
    session.run_statement("retrieve (Emp1.name)")
    result = session.run_statement("abort")
    assert "locks released" in result["detail"]
    assert manager.locks.held_by(session.owner) == {}
    with pytest.raises(ReproError, match="no transaction"):
        session.run_statement("commit")
    with pytest.raises(ReproError, match="no transaction"):
        session.run_statement("abort")


def test_begin_twice_rejected(manager):
    session = manager.open_session("t")
    session.run_statement("begin")
    with pytest.raises(ReproError, match="already in a transaction"):
        session.run_statement("begin")


def test_failed_statement_releases_autocommit_locks(manager):
    session = manager.open_session("t")
    with pytest.raises(ReproError):
        session.run_statement("retrieve (Emp1.no_such_field)")
    assert manager.locks.held_by(session.owner) == {}


def test_conflicting_transactions_deadlock_and_victim_recovers(manager):
    """Two sessions lock Emp1 / Dept in opposite orders; the younger is
    aborted with DeadlockError, its transaction ends, the older finishes."""
    s1 = manager.open_session("older")
    s2 = manager.open_session("younger")
    s1.run_statement("begin")
    s2.run_statement("begin")
    s1.run_statement('replace (Emp1.salary = 1)')   # s1: X(Emp1)
    s2.run_statement('replace (Dept.budget = 1)')   # s2: X(Dept)
    outcome = {}

    def older():
        try:
            s1.run_statement('replace (Dept.budget = 2)')
            outcome["older"] = "granted"
        except DeadlockError:
            outcome["older"] = "victim"

    thread = threading.Thread(target=older)
    thread.start()
    with pytest.raises(DeadlockError):
        s2.run_statement('replace (Emp1.salary = 2)')  # closes the cycle
    thread.join(timeout=10.0)
    assert outcome == {"older": "granted"}
    # the victim's transaction was auto-aborted: locks gone, txn over
    assert manager.locks.held_by(s2.owner) == {}
    assert not s2.in_txn
    s1.run_statement("commit")
    # and the victim can simply retry
    s2.run_statement('replace (Emp1.salary = 2)')
    manager.db.verify()


def test_meta_commands(manager):
    session = manager.open_session("t")
    assert "Emp1" in session.run_meta("describe", [])["text"]
    assert "physical reads" in session.run_meta("stats", [])["text"]
    assert "invariants hold" in session.run_meta("verify", [])["text"]
    assert "doctor" in session.run_meta("doctor", [])["text"].lower() or \
        session.run_meta("doctor", [])["text"]
    assert "buffer pool" in session.run_meta("cold", [])["text"]
    with pytest.raises(ReproError, match="unknown meta-command"):
        session.run_meta("nonsense", [])
    assert manager.locks.held_by(session.owner) == {}


def test_trace_toggle_is_per_session(manager):
    s1 = manager.open_session("a")
    s2 = manager.open_session("b")
    s1.run_meta("trace", ["on"])
    s1.run_statement("retrieve (Emp1.name)")
    s2.run_statement("retrieve (Dept.name)")
    dump = s1.run_meta("trace", ["dump"])["text"]
    assert "Emp1" in dump
    assert "retrieve (Dept.name)" not in dump  # s2 ran untraced
    assert s1.run_meta("trace", ["off"])["text"] == "tracing off"


def test_close_session_releases_locks(manager):
    session = manager.open_session("t")
    session.run_statement("begin")
    session.run_statement("retrieve (Emp1.name)")
    manager.close_session(session)
    other = manager.open_session("o")
    other.run_statement('replace (Emp1.salary = 9)')  # must not block


def test_active_sessions_gauge(manager):
    metrics = manager.db.telemetry.metrics
    base = metrics.value("server_active_sessions")
    session = manager.open_session("t")
    assert metrics.value("server_active_sessions") == base + 1
    manager.close_session(session)
    manager.close_session(session)  # idempotent
    assert metrics.value("server_active_sessions") == base


def test_worker_pool_backpressure_is_server_busy():
    pool = WorkerPool(workers=1, queue_depth=1)
    gate = threading.Event()
    running = threading.Event()

    def block():
        running.set()
        gate.wait(5.0)

    first = pool.submit(block)
    running.wait(2.0)          # worker occupied
    pool.submit(lambda: None)  # fills the queue
    with pytest.raises(ServerBusyError, match="server_busy"):
        pool.submit(lambda: None)
    gate.set()
    first.wait(5.0)
    pool.shutdown()


def test_worker_pool_delivers_results_and_exceptions():
    pool = WorkerPool(workers=2, queue_depth=8)
    assert pool.submit(lambda: 41 + 1).wait(5.0) == 42
    with pytest.raises(ZeroDivisionError):
        pool.submit(lambda: 1 // 0).wait(5.0)
    pool.shutdown()


def test_served_query_physical_io_matches_direct_execution(manager):
    """The server layer adds locks and a latch, never page traffic: a
    query through a session costs exactly the engine's own I/O."""
    db = manager.db
    session = manager.open_session("t")
    db.cold_cache()
    served = session.run_statement("retrieve (Emp1.name, Emp1.dept.name)")
    db.cold_cache()
    direct = db.measure(
        lambda: db.execute("retrieve (Emp1.name, Emp1.dept.name)"))
    assert served["io"]["reads"] == direct.physical_reads
    assert served["io"]["writes"] == direct.physical_writes
    assert served["io"]["reads"] > 0
