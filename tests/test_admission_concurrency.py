"""Intra-engine concurrency: the admission scheduler, the concurrent
buffer pool, and WAL group commit.

The scheduling properties are proved *deterministically* with barriers
injected through the fault injector's execution probes
(``statement_admitted`` fires inside the admission gate), never by
timing luck:

* two statements with disjoint granted footprints really overlap in
  time (both are inside the gate at the same instant);
* two conflicting statements never do (the second blocks in the lock
  manager, before admission);
* 16 threads hammering one small buffer pool keep every invariant:
  pinned frames are never evicted, every fetch is exactly one hit or
  one miss, and page images stay intact;
* concurrent commits share one WAL force under a group-commit window,
  and an injected flush failure keeps statement atomicity: whatever
  reported success survives recovery, whatever raised rolls back.
"""

import threading

import pytest

from repro.errors import DiskFault
from repro.schema.database import Database
from repro.server import connect
from repro.server.admission import AdmissionController, EngineGate
from repro.server.service import Server
from repro.storage.buffer import BufferPool
from repro.storage.constants import PAGE_SIZE
from repro.storage.disk import SimulatedDisk
from repro.telemetry.metrics import MetricsRegistry
from tests.conftest import define_employee_schema


@pytest.fixture()
def server(company):
    srv = Server(company["db"], max_connections=8, workers=4,
                 queue_depth=16, lock_timeout=5.0, sample_interval=0).start()
    yield srv
    company["db"].faults.probes.clear()
    srv.shutdown()


# ---------------------------------------------------------------------------
# the gate itself
# ---------------------------------------------------------------------------


def test_engine_gate_shared_entries_overlap_and_exclusive_drains():
    gate = EngineGate()
    gate.enter_shared()
    gate.enter_shared()  # two statements in at once
    assert gate.active == 2
    blocked = threading.Event()
    entered = threading.Event()

    def quiesce():
        blocked.set()
        with gate:  # must wait for both shared holders
            entered.set()

    t = threading.Thread(target=quiesce, daemon=True)
    t.start()
    blocked.wait(5.0)
    gate.exit_shared()
    assert not entered.wait(0.05)  # one shared holder still in
    gate.exit_shared()
    assert entered.wait(5.0)
    t.join(5.0)
    assert gate.active == 0


def test_engine_gate_exclusive_is_reentrant_and_admits_its_owner():
    gate = EngineGate()
    with gate:
        with gate:  # reentrant
            gate.enter_shared()  # the quiescing thread's own statement
            assert gate.active == 1
            gate.exit_shared()
    # fully released: a plain shared entry must not block
    gate.enter_shared()
    gate.exit_shared()


def test_admission_controller_tracks_peak():
    registry = MetricsRegistry()
    ctl = AdmissionController(metrics=registry)
    with ctl.admitted() as grant:
        assert grant.waited >= 0.0
        with ctl.admitted():
            assert registry.value("concurrent_statements") == 2
    assert registry.value("concurrent_statements") == 0
    assert registry.value("concurrent_statements_peak") == 2


# ---------------------------------------------------------------------------
# deterministic interleaving: disjoint footprints overlap, conflicts don't
# ---------------------------------------------------------------------------


def test_disjoint_footprint_statements_overlap_in_time(server):
    """Both retrieves must be inside the admission gate at the same
    instant: each blocks on a two-party barrier fired from the
    ``statement_admitted`` probe, which only releases when the *other*
    statement is admitted too.  Under the old global latch this would
    deadlock the barrier (and the test would fail on its timeout)."""
    db = server.db
    barrier = threading.Barrier(2, timeout=10.0)
    db.faults.probes["statement_admitted"] = barrier.wait
    errors = []

    def run(query):
        try:
            with connect(*server.address) as client:
                client.execute(query)
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(repr(exc))

    threads = [
        threading.Thread(target=run, args=("retrieve (Emp1.name)",)),
        threading.Thread(target=run, args=("retrieve (Emp2.name)",)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(15.0)
    db.faults.probes.clear()
    assert errors == []
    assert not barrier.broken
    metrics = db.telemetry.metrics
    assert metrics.value("concurrent_statements_peak") >= 2


def test_conflicting_statements_never_overlap(server):
    """A reader of Emp1 must not be admitted while a transaction holds
    X(Emp1): it blocks in the lock manager, *before* the gate.  The
    ``statement_admitted`` probe records exactly when the reader got in:
    only after the writer's commit released its locks."""
    db = server.db
    with connect(*server.address) as writer:
        writer.begin()
        writer.execute("replace (Emp1.salary = 1) "
                       'where Emp1.name = "alice"')  # X(Emp1), held
        reader_admitted = threading.Event()
        db.faults.probes["statement_admitted"] = reader_admitted.set
        rows = []

        def read():
            with connect(*server.address) as client:
                rows.append(client.execute("retrieve (Emp1.salary) "
                                           'where Emp1.name = "alice"'))

        t = threading.Thread(target=read, daemon=True)
        t.start()
        # the reader cannot be admitted while X(Emp1) is held
        assert not reader_admitted.wait(0.4)
        writer.commit()
        t.join(10.0)
        db.faults.probes.clear()
        assert reader_admitted.is_set()
    assert rows and rows[0].rows == [(1,)]


# ---------------------------------------------------------------------------
# the concurrent buffer pool under stress
# ---------------------------------------------------------------------------


def _page_image(page_no: int) -> bytes:
    return bytes([page_no % 251]) * PAGE_SIZE


def test_buffer_pool_latch_stress_keeps_invariants():
    """16 threads fetch/unpin over a pool far smaller than the working
    set, with four frames pinned throughout and a prefetch mixed in.
    Invariants: pinned frames are never evicted, page images never tear,
    and the hit/miss accounting stays exact (hits + misses == logical
    reads, physical reads == misses + prefetched pages)."""
    disk = SimulatedDisk()
    fid = disk.create_file()
    pages = 48
    for pno in range(pages):
        assert disk.allocate_page(fid) == pno
        disk.write_page(fid, pno, _page_image(pno))
    disk.stats.reset()
    pool = BufferPool(disk, capacity=8)

    # pin four frames for the whole run: eviction must always skip them
    pinned = [0, 1, 2, 3]
    for pno in pinned:
        pool.fetch(fid, pno)

    threads, errors = 16, []
    done = threading.Barrier(threads + 1, timeout=60.0)

    def worker(idx):
        try:
            rng_pages = [(idx * 7 + i * 3) % (pages - 4) + 4
                         for i in range(150)]
            for pno in rng_pages:
                with pool.page(fid, pno) as page:
                    assert bytes(page.data) == _page_image(pno), \
                        f"torn image for page {pno}"
            if idx % 4 == 0:  # a few read-ahead bursts in the mix
                pool.prefetch(fid, range(4, 12))
            done.wait()
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(repr(exc))
            done.abort()

    for i in range(threads):
        threading.Thread(target=worker, args=(i,), daemon=True).start()
    done.wait()
    assert errors == []

    # the long-pinned frames were never evicted (still resident, and
    # their pins are still accounted)
    resident = pool.resident_keys()
    for pno in pinned:
        assert (fid, pno) in resident
        assert (fid, pno) in pool.pinned_keys()
        pool.unpin(fid, pno)
    assert pool.pinned_keys() == []

    stats = disk.stats.snapshot()
    # every fetch resolved as exactly one hit or one miss
    fetches = 4 + threads * 150
    assert stats.logical_reads == fetches
    misses = fetches - stats.buffer_hits
    # a page moves from disk exactly when a demand miss or a prefetch
    # loads it -- nothing is read twice without an eviction in between
    assert stats.physical_reads == misses + stats.prefetch_issued
    assert stats.physical_writes == 0  # nothing was dirtied


def test_buffer_pool_never_evicts_concurrently_pinned_frames():
    """The no-evict-pinned invariant under a race: a frame pinned after
    the victim scan but before the kill must be skipped (revalidation
    under the frame latch), never evicted out from under its pin."""
    disk = SimulatedDisk()
    fid = disk.create_file()
    for pno in range(6):
        disk.allocate_page(fid)
        disk.write_page(fid, pno, _page_image(pno))
    pool = BufferPool(disk, capacity=2)
    pool.fetch(fid, 0)  # pinned: never a victim
    with pool.page(fid, 1):
        pass  # resident, unpinned: the only legal victim
    # filling a third frame must evict page 1, not page 0
    with pool.page(fid, 2):
        resident = pool.resident_keys()
        assert (fid, 0) in resident
        assert (fid, 1) not in resident
    pool.unpin(fid, 0)


# ---------------------------------------------------------------------------
# WAL group commit and flush-failure accounting
# ---------------------------------------------------------------------------


def _wal_db(group_commit_ms: float = 0.0) -> Database:
    db = Database(wal=True)
    define_employee_schema(db)
    if group_commit_ms:
        db.recovery.wal.group_commit_ms = group_commit_ms
    return db


def test_group_commit_batches_concurrent_forces():
    """Four statements committing inside one window share the leader's
    force: strictly fewer physical forces than commits, with at least
    one follower join recorded."""
    db = _wal_db(group_commit_ms=250.0)
    metrics = db.telemetry.metrics
    flushes_before = metrics.value("wal_flushes_total")
    start = threading.Barrier(4, timeout=10.0)
    errors = []
    # one set per writer: embedded inserts bypass the lock manager, so
    # each thread must own its heap file outright
    records = {
        "Org": {"name": "w-org", "budget": 7},
        "Dept": {"name": "w-dept", "budget": 7, "org": None},
        "Emp1": {"name": "w1", "age": 20, "salary": 1, "dept": None},
        "Emp2": {"name": "w2", "age": 21, "salary": 2, "dept": None},
    }

    def insert(set_name, record):
        try:
            start.wait()
            db.insert(set_name, record)
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(repr(exc))

    threads = [threading.Thread(target=insert, args=item)
               for item in records.items()]
    for t in threads:
        t.start()
    for t in threads:
        t.join(15.0)
    assert errors == []
    forced = metrics.value("wal_flushes_total") - flushes_before
    joins = metrics.value("wal_group_commit_joins_total")
    assert forced >= 1
    assert forced + joins >= 4  # every commit either led or joined
    assert joins >= 1 and forced < 4
    for set_name, record in records.items():
        rows = db.execute(f'retrieve ({set_name}.name) '
                        f'where {set_name}.name = "{record["name"]}"').rows
        assert rows == [(record["name"],)]


def test_group_commit_zero_window_forces_each_commit():
    db = _wal_db()  # group_commit_ms = 0.0 -- exact legacy behavior
    metrics = db.telemetry.metrics
    flushes_before = metrics.value("wal_flushes_total")
    for i in range(3):
        db.insert("Emp1", {"name": f"s{i}", "age": 30, "salary": 1,
                           "dept": None})
    assert metrics.value("wal_flushes_total") - flushes_before == 3
    assert metrics.value("wal_group_commit_joins_total") == 0


def test_flush_fault_fires_inside_accounting_not_after():
    """Satellite bugfix: a failing force must not mark records durable
    or count a flush -- the fault fires before ``_flushed`` moves, so
    the statement rolls back cleanly at recovery."""
    db = _wal_db()
    metrics = db.telemetry.metrics
    db.insert("Emp1", {"name": "keep", "age": 30, "salary": 1,
                       "dept": None})
    flushes_ok = metrics.value("wal_flushes_total")
    db.faults.fail_after_flushes(0)
    with pytest.raises(DiskFault):
        db.insert("Emp1", {"name": "lost", "age": 31, "salary": 2,
                           "dept": None})
    # the failed force counted nothing and marked nothing durable
    assert metrics.value("wal_flushes_total") == flushes_ok
    assert metrics.value("faults_injected_total", kind="wal_flush") == 1
    assert db.recovery.needs_recovery
    db.recover()
    names = {row[0] for row in db.execute("retrieve (Emp1.name)").rows}
    assert "keep" in names and "lost" not in names


def test_group_commit_flush_fault_preserves_statement_atomicity():
    """A flush fault under a group-commit window: the leader (and any
    follower whose records the failed force covered) sees the error.
    Whatever reported success must survive recovery; whatever raised
    must be rolled back -- the client's view is always truthful."""
    db = _wal_db(group_commit_ms=150.0)
    db.faults.fail_after_flushes(0)
    start = threading.Barrier(2, timeout=10.0)
    succeeded, failed = [], []

    def insert(idx, set_name):
        try:
            start.wait()
            db.insert(set_name, {"name": f"g{idx}", "age": 40,
                                 "salary": idx, "dept": None})
            succeeded.append((set_name, f"g{idx}"))
        except DiskFault:
            failed.append((set_name, f"g{idx}"))

    threads = [threading.Thread(target=insert, args=(i, "Emp1" if i
                                                     else "Emp2"))
               for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(15.0)
    assert failed  # the injected fault hit at least one committer
    db.faults.disarm()
    if db.recovery.needs_recovery:
        db.recover()
    for set_name, name in succeeded:
        rows = db.execute(f'retrieve ({set_name}.name) '
                        f'where {set_name}.name = "{name}"').rows
        assert rows == [(name,)], f"acked statement {name} lost"
    for set_name, name in failed:
        rows = db.execute(f'retrieve ({set_name}.name) '
                        f'where {set_name}.name = "{name}"').rows
        assert rows == [], f"failed statement {name} leaked"
