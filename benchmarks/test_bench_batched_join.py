"""Batched vs naive functional joins on the real engine (Figure 12 shape).

Builds a direct R -> S database (``Emp1.dept``), sweeps fanout x
clustering x buffer pool, and measures the cold-cache physical reads of a
full chained retrieval under four variants:

* ``naive``    -- per-row dereference, no replication;
* ``batched``  -- sort-and-dedupe set-oriented join, no replication;
* ``inplace``  -- replicated values, no join at all (the paper's winner);
* ``separate`` -- shared replica records, batched hop into the replica set.

The headline claim: on the unclustered fanout >= 8 workload with a pool
smaller than S, batching cuts physical reads by at least 2x versus the
naive executor while returning byte-identical rows.
"""

import json
import random

from repro import Database, TypeDefinition, char_field, int_field, ref_field

from benchmarks.conftest import save_result

N_S = 480            # S objects; char(200) payload -> S spans ~30 pages
FANOUTS = (1, 4, 16)
POOLS = {"small": 12, "large": 2048}
BATCH_ROWS = 1024    # one sweep covers most of S before the pool thrashes


def _build(fanout: int, clustered: bool, frames: int) -> Database:
    db = Database(buffer_frames=frames, join_batch_rows=BATCH_ROWS)
    db.define_type(TypeDefinition("DEPT", [char_field("name", 200),
                                           int_field("budget")]))
    db.define_type(TypeDefinition("EMP", [char_field("name", 20),
                                          ref_field("dept", "DEPT")]))
    db.create_set("Dept", "DEPT")
    db.create_set("Emp1", "EMP")
    depts = [db.insert("Dept", {"name": f"dept{i}", "budget": i})
             for i in range(N_S)]
    order = list(range(N_S * fanout))
    if not clustered:
        random.Random(97).shuffle(order)
    for i in order:
        db.insert("Emp1", {"name": f"e{i}", "dept": depts[i // fanout]})
    return db


def _measure(db: Database) -> dict:
    db.cold_cache()
    before = db.stats.snapshot()
    result = db.execute("retrieve (Emp1.name, Emp1.dept.name)",
                        materialize=False)
    delta = db.stats.snapshot() - before
    return {
        "physical_reads": delta.physical_reads,
        "prefetch_issued": delta.prefetch_issued,
        "dedup_saved": delta.batch_dedup_saved,
        "rows": result.rows,
    }


def _sweep() -> list[dict]:
    records = []
    for fanout in FANOUTS:
        for clustered in (False, True):
            for pool, frames in POOLS.items():
                db = _build(fanout, clustered, frames)
                runs = {}
                for mode in ("naive", "batched"):
                    db.join_mode = mode
                    runs[mode] = _measure(db)
                db.join_mode = "batched"
                for strategy in ("inplace", "separate"):
                    db.replicate("Emp1.dept.name", strategy=strategy)
                    runs[strategy] = _measure(db)
                    db.drop_replication("Emp1.dept.name")
                rows = runs["naive"].pop("rows")
                for variant in ("batched", "inplace", "separate"):
                    assert runs[variant].pop("rows") == rows, (
                        fanout, clustered, pool, variant)
                for variant, stats in runs.items():
                    records.append({"fanout": fanout, "clustered": clustered,
                                    "pool": pool, "s_pages":
                                    db.catalog.get_set("Dept").num_pages(),
                                    "variant": variant, **stats})
    return records


def test_batched_join_benchmark(benchmark, results_dir):
    records = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    save_result(results_dir, "BENCH_batched_join.json",
                json.dumps(records, indent=2))

    def reads(fanout, clustered, pool, variant):
        (rec,) = [r for r in records
                  if (r["fanout"], r["clustered"], r["pool"], r["variant"])
                  == (fanout, clustered, pool, variant)]
        return rec["physical_reads"]

    # the pool really is smaller than S on the headline cell
    (cell,) = [r for r in records
               if (r["fanout"], r["clustered"], r["pool"], r["variant"])
               == (16, False, "small", "naive")]
    assert cell["s_pages"] > POOLS["small"]

    # headline: unclustered fanout 16, pool < |S| -> batching halves reads
    assert reads(16, False, "small", "naive") >= \
        2 * reads(16, False, "small", "batched")

    # batching never loses where it matters: every unclustered cell and
    # every cell whose pool holds the working set
    for fanout in FANOUTS:
        for pool in POOLS:
            assert reads(fanout, False, pool, "batched") <= \
                reads(fanout, False, pool, "naive")
        assert reads(fanout, True, "large", "batched") <= \
            reads(fanout, True, "large", "naive")
        # clustered + tiny pool is naive's best case (each probe lands on
        # the page the previous one left resident); the sweep's extra
        # scan-page evictions must stay a bounded overhead
        assert reads(fanout, True, "small", "batched") <= \
            1.25 * reads(fanout, True, "small", "naive")

    # both replication strategies still beat the naive join outright, but
    # with a 200-byte replicated value they inflate the scanned records --
    # on this cell the batched sweep beats even replication on reads
    assert reads(16, False, "small", "inplace") < \
        reads(16, False, "small", "naive")
    assert reads(16, False, "small", "separate") < \
        reads(16, False, "small", "naive")
    assert reads(16, False, "small", "batched") < \
        reads(16, False, "small", "inplace")
