"""Empirical validation: the Section 6 query mix on the real engine.

Not a table in the paper -- the paper's evaluation is analytical -- but
the natural validation of it: build the model's database on the storage
engine, run the same read / update query mix cold-cache, and check that
the measured I/O reproduces the analytical *shape* (who wins, by roughly
what factor, and how each strategy decays with the update probability).

Scale note: |S| is reduced from the paper's 10,000 to a few hundred so a
full three-strategy sweep stays fast in pure Python; selectivities are
scaled up to keep per-query row counts comparable (see EXPERIMENTS.md).
"""

from repro.workloads import WorkloadConfig, compare_strategies, percent_differences

from benchmarks.conftest import save_result

P_GRID = (0.0, 0.25, 0.5, 0.75, 1.0)


def _render(costs, pct) -> str:
    lines = [f"{'strategy':10s} {'C_read':>8s} {'C_update':>9s}"]
    for strategy, measured in costs.items():
        lines.append(f"{strategy:10s} {measured.read:8.1f} {measured.update:9.1f}")
    lines.append("")
    lines.append(f"{'P_update':>8s} {'in-place':>10s} {'separate':>10s}")
    for i, p in enumerate(P_GRID):
        lines.append(
            f"{p:8.2f} {pct['inplace'][i]:+9.1f}% {pct['separate'][i]:+9.1f}%"
        )
    return "\n".join(lines)


def test_empirical_unclustered_f1(benchmark, results_dir):
    config = WorkloadConfig(n_s=300, f=1, f_r=0.02, f_s=0.02, clustered=False)
    costs = benchmark.pedantic(
        lambda: compare_strategies(config, trials=3), rounds=1, iterations=1
    )
    pct = percent_differences(costs, P_GRID)
    save_result(results_dir, "empirical_unclustered_f1.txt", _render(costs, pct))
    # in-place wins reads outright; separate ~ no replication at f = 1
    assert costs["inplace"].read < costs["none"].read
    assert pct["separate"][0] > -15
    # in-place pays the largest update bill
    assert costs["inplace"].update > costs["none"].update
    assert costs["inplace"].update > costs["separate"].update


def test_empirical_unclustered_f5(benchmark, results_dir):
    config = WorkloadConfig(n_s=300, f=5, f_r=0.01, f_s=0.01, clustered=False)
    costs = benchmark.pedantic(
        lambda: compare_strategies(config, trials=3), rounds=1, iterations=1
    )
    pct = percent_differences(costs, P_GRID)
    save_result(results_dir, "empirical_unclustered_f5.txt", _render(costs, pct))
    # with sharing, both strategies now beat no replication on reads
    assert costs["inplace"].read < costs["none"].read
    assert costs["separate"].read < costs["none"].read
    # the paper's decay ordering: in-place degrades fastest with P_update
    assert pct["inplace"][0] < pct["separate"][0]
    assert pct["inplace"][-1] > pct["separate"][-1]
    # separate's update cost stays near no-replication's (shared replicas)
    assert costs["separate"].update < 0.6 * costs["inplace"].update


def test_empirical_scale_f10(benchmark, results_dir):
    """A paper-closer scale point: |S| = 1,000, f = 10 -> |R| = 10,000
    (the paper's f = 10 panel has |R| = 100,000; selectivities are matched
    so each read touches 20 rows like the paper's f_r = .002 line)."""
    config = WorkloadConfig(n_s=1000, f=10, f_r=0.002, f_s=0.005,
                            clustered=False, buffer_frames=4096)
    costs = benchmark.pedantic(
        lambda: compare_strategies(config, trials=3), rounds=1, iterations=1
    )
    pct = percent_differences(costs, P_GRID)
    save_result(results_dir, "empirical_unclustered_f10_scaled.txt",
                _render(costs, pct))
    # the f = 10 panel's structure
    assert pct["inplace"][0] < -25            # strong read-only win
    assert -35 < pct["separate"][0] < -5      # solid but smaller win
    assert pct["inplace"][-1] > pct["separate"][-1]  # in-place decays faster
    assert costs["separate"].update < 0.4 * costs["inplace"].update


def test_model_vs_engine_at_matched_parameters(benchmark, results_dir):
    """Feed the *scaled* workload's parameters into the Section 6 equations
    and compare with what the engine actually measures -- the strongest
    validation of the analytical model: absolute costs, not just shapes."""
    from repro.costmodel import (
        CostParameters,
        ModelStrategy,
        Setting,
        read_cost,
        update_cost,
    )

    config = WorkloadConfig(n_s=300, f=5, f_r=0.01, f_s=0.01, clustered=False)
    costs = benchmark.pedantic(
        lambda: compare_strategies(config, trials=4), rounds=1, iterations=1
    )
    params = CostParameters(n_s=config.n_s, f=config.f, f_r=config.f_r,
                            f_s=config.f_s, k=config.k, r=config.r, s=config.s)
    name_of = {
        "none": ModelStrategy.NO_REPLICATION,
        "inplace": ModelStrategy.IN_PLACE,
        "separate": ModelStrategy.SEPARATE,
    }
    lines = [f"{'strategy':9s} {'model read':>10s} {'engine read':>11s} "
             f"{'model upd':>10s} {'engine upd':>10s}"]
    for name, measured in costs.items():
        strategy = name_of[name]
        model_read = read_cost(params, strategy, Setting.UNCLUSTERED)
        model_update = update_cost(params, strategy, Setting.UNCLUSTERED)
        lines.append(
            f"{name:9s} {model_read:10.1f} {measured.read:11.1f} "
            f"{model_update:10.1f} {measured.update:10.1f}"
        )
        # absolute agreement within 30% on every cell
        assert abs(measured.read - model_read) <= 0.30 * model_read + 2
        assert abs(measured.update - model_update) <= 0.30 * model_update + 2
    save_result(results_dir, "model_vs_engine.txt", "\n".join(lines))


def test_empirical_clustered_f1(benchmark, results_dir):
    config = WorkloadConfig(n_s=300, f=1, f_r=0.02, f_s=0.02, clustered=True)
    costs = benchmark.pedantic(
        lambda: compare_strategies(config, trials=3), rounds=1, iterations=1
    )
    pct = percent_differences(costs, P_GRID)
    save_result(results_dir, "empirical_clustered_f1.txt", _render(costs, pct))
    # the paper: "in-place is particularly effective when f = 1" (clustered)
    assert pct["inplace"][0] < -40
    # in-place beats separate at f = 1 on reads (at this reduced scale S'
    # fits in a page, so separate keeps more benefit than the full-scale
    # model predicts -- see EXPERIMENTS.md)
    assert pct["inplace"][0] < pct["separate"][0]
    # and separate's update bill stays below in-place's
    assert costs["separate"].update < costs["inplace"].update


def test_empirical_clustered_f5(benchmark, results_dir):
    config = WorkloadConfig(n_s=300, f=5, f_r=0.01, f_s=0.01, clustered=True)
    costs = benchmark.pedantic(
        lambda: compare_strategies(config, trials=3), rounds=1, iterations=1
    )
    pct = percent_differences(costs, P_GRID)
    save_result(results_dir, "empirical_clustered_f5.txt", _render(costs, pct))
    # clustered reads are much cheaper overall...
    assert costs["none"].read < 60
    # ...and replication's relative read savings are larger than unclustered
    assert pct["inplace"][0] < -30
    assert pct["separate"][0] < -10
    # propagation cost survives clustering (the paper's §6.8 observation)
    assert costs["inplace"].update > 3 * costs["none"].update
