"""Shared benchmark fixtures.

Every benchmark writes its reproduced artifact (table / series) into
``benchmarks/results/`` so the regenerated figures can be inspected and
diffed against the paper without re-running anything.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n")
