"""Derived-result cache under a Zipf read-mostly workload.

One deterministic statement sequence -- Zipf-ranked retrieves with a
sprinkle of propagating and non-propagating writes -- runs twice against
identically built databases: cache off, then cache on.  The acceptance
bars are the ISSUE's:

* every statement returns **byte-identical** rows in both runs;
* cache hits perform **zero** physical reads;
* the hot queries (Zipf rank 1-2) get at least a **5x** median latency
  cut from being served out of the cache.

The measured table lands in ``BENCH_result_cache.json``.
"""

import json
import random
import statistics
import time

from repro import Database, TypeDefinition, char_field, int_field, ref_field

from benchmarks.conftest import save_result

_DEPTS = 4
_EMPS = 240
_OPS = 400
_WRITE_EVERY = 25          # 4% writes: read-mostly
_ZIPF_SEED = 7


def _build() -> Database:
    # a small pool (8 frames) under a multi-page set: cold reads do real
    # physical I/O, so "zero reads on a hit" has teeth
    db = Database(buffer_frames=8)
    db.define_type(TypeDefinition("DEPT", [char_field("name", 60),
                                           int_field("budget")]))
    db.define_type(TypeDefinition("EMP", [char_field("name", 60),
                                          int_field("salary"),
                                          ref_field("dept", "DEPT")]))
    db.create_set("Dept", "DEPT")
    db.create_set("Emp", "EMP")
    depts = [db.insert("Dept", {"name": f"dept{i}", "budget": 100 + i})
             for i in range(_DEPTS)]
    for i in range(_EMPS):
        db.insert("Emp", {"name": f"emp{i:03d}" + "x" * 40,
                          "salary": 1000 + (i * 37) % 500,
                          "dept": depts[i % _DEPTS]})
    db.replicate("Emp.dept.name")
    return db


#: the query population, hottest first (Zipf rank order)
_QUERIES = [
    "retrieve (Emp.name, Emp.dept.name)",
    "retrieve (Emp.dept.name, count(Emp.name)) group by Emp.dept.name",
] + [f"retrieve (Emp.name) where Emp.salary > {1000 + 50 * i}"
     for i in range(10)]


def _script() -> list[tuple[str, str]]:
    """The deterministic op sequence: ('read', text) / ('write', kind)."""
    rng = random.Random(_ZIPF_SEED)
    weights = [1.0 / (rank + 1) for rank in range(len(_QUERIES))]
    ops: list[tuple[str, str]] = []
    for i in range(_OPS):
        if i and i % _WRITE_EVERY == 0:
            # alternate: a non-propagating write (leaves Emp entries warm)
            # and a propagating one (kills the hot join entries)
            ops.append(("write", "budget" if (i // _WRITE_EVERY) % 2
                        else "name"))
        else:
            ops.append(("read", rng.choices(_QUERIES, weights)[0]))
    return ops


def _run(cache_on: bool) -> dict:
    db = _build()
    db.resultcache.enabled = cache_on
    db.cold_cache()
    dept = next(oid for oid, __ in db.catalog.get_set("Dept").scan())
    rows_log, latencies, outcomes, reads = [], {}, [], []
    flips = 0
    for kind, op in _script():
        if kind == "write":
            flips += 1
            if op == "budget":
                db.update("Dept", dept, {"budget": 100 + flips})
            else:
                db.update("Dept", dept, {"name": f"dept0-v{flips}"})
            continue
        began = time.perf_counter()
        result = db.execute(op, materialize=False)
        elapsed_ms = (time.perf_counter() - began) * 1000.0
        rows_log.append(result.rows)
        latencies.setdefault(op, []).append(elapsed_ms)
        outcomes.append(result.cache)
        reads.append(result.io.physical_reads)
    db.verify()
    return {"rows": rows_log, "latencies": latencies, "outcomes": outcomes,
            "reads": reads, "snapshot": db.resultcache.snapshot()}


def test_zipf_read_mostly_speedup(results_dir):
    off = _run(cache_on=False)
    on = _run(cache_on=True)

    # bar 1: the cache is answer-invisible -- byte-identical rows per op
    assert json.dumps(off["rows"], default=list) == \
        json.dumps(on["rows"], default=list)
    assert all(outcome is None for outcome in off["outcomes"])

    # bar 2: a served hit moves zero pages
    hit_reads = [reads for outcome, reads
                 in zip(on["outcomes"], on["reads"]) if outcome == "hit"]
    assert hit_reads and all(reads == 0 for reads in hit_reads)
    hits = on["outcomes"].count("hit")
    hit_rate = hits / len(on["outcomes"])
    assert hit_rate > 0.5  # Zipf head dominates a read-mostly mix

    # bar 3: >= 5x median latency cut on the hot queries
    speedups = {}
    for query in _QUERIES[:2]:
        baseline = statistics.median(off["latencies"][query])
        cached = statistics.median(on["latencies"][query])
        speedups[query] = baseline / cached if cached else float("inf")
    assert all(s >= 5.0 for s in speedups.values()), speedups

    snapshot = on["snapshot"]
    result = {
        "benchmark": "result_cache_zipf",
        "ops": len(on["outcomes"]),
        "write_fraction": round(1 - len(on["outcomes"]) / _OPS, 4),
        "distinct_queries": len(_QUERIES),
        "zipf_seed": _ZIPF_SEED,
        "rows_byte_identical": True,
        "hit_rate": round(hit_rate, 4),
        "hits": hits,
        "misses": on["outcomes"].count("miss"),
        "physical_reads_total_off": sum(off["reads"]),
        "physical_reads_total_on": sum(on["reads"]),
        "physical_reads_per_hit": 0,
        "hot_query_speedup": {q: round(s, 1) for q, s in speedups.items()},
        "median_ms_off_hot": round(
            statistics.median(off["latencies"][_QUERIES[0]]), 4),
        "median_ms_on_hot": round(
            statistics.median(on["latencies"][_QUERIES[0]]), 4),
        "invalidations": snapshot["invalidations"],
        "cache_bytes": snapshot["bytes"],
        "cache_entries": snapshot["entries"],
    }
    save_result(results_dir, "BENCH_result_cache.json",
                json.dumps(result, indent=2))
