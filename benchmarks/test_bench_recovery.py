"""WAL overhead: crash safety must not distort the paper's I/O study.

Runs an identical replicated update/read workload twice -- write-ahead
log off (the experiments' default) and on (the crash-safe shell
default) -- and checks that per-statement *physical data I/O* is
byte-identical: the log lives on its own device and is accounted only
by its own counters (``wal_records_total`` / ``wal_flushes_total`` /
``wal_bytes_total``).  Wall-clock overhead and the separate log traffic
are recorded in ``BENCH_wal_overhead.json``, together with the time a
full crash + recovery cycle takes at the same scale.
"""

import json
import time

from repro import Database, TypeDefinition, char_field, int_field, ref_field
from repro.errors import DiskFault

from benchmarks.conftest import save_result

_DEPTS = 4
_EMPS = 48
_STATEMENTS = 24


def _build(wal: bool) -> tuple[Database, list, list]:
    db = Database(wal=wal, buffer_frames=16)
    db.define_type(TypeDefinition("DEPT", [char_field("name", 200),
                                           int_field("budget")]))
    db.define_type(TypeDefinition("EMP", [char_field("name", 200),
                                          int_field("salary"),
                                          ref_field("dept", "DEPT")]))
    db.create_set("Dept", "DEPT")
    db.create_set("Emp", "EMP")
    depts = [db.insert("Dept", {"name": f"dept{i}", "budget": 100 * i})
             for i in range(_DEPTS)]
    emps = [db.insert("Emp", {"name": f"emp{i}", "salary": 1000 + i,
                              "dept": depts[i % _DEPTS]})
            for i in range(_EMPS)]
    db.replicate("Emp.dept.name")
    return db, depts, emps


def _statements(db, depts, emps):
    """A deterministic propagation-heavy mix of updates and reads."""
    thunks = []
    for i in range(_STATEMENTS):
        if i % 3 == 0:
            dept = depts[i % _DEPTS]
            thunks.append(lambda d=dept, i=i: db.update(
                "Dept", d, {"name": f"renamed{i}" * 10}))
        elif i % 3 == 1:
            emp = emps[i % _EMPS]
            thunks.append(lambda e=emp, i=i: db.update(
                "Emp", e, {"salary": 5000 + i}))
        else:
            thunks.append(lambda: db.execute(
                "retrieve (Emp.name, Emp.dept.name) where Emp.salary > 3000"))
    return thunks


def _run_mode(wal: bool) -> dict:
    db, depts, emps = _build(wal)
    io_per_statement = []
    started = time.perf_counter()
    for thunk in _statements(db, depts, emps):
        db.cold_cache()
        before = db.stats.snapshot()
        thunk()
        db.storage.pool.flush_all()
        io_per_statement.append((db.stats.snapshot() - before).total_io)
    elapsed = time.perf_counter() - started
    metrics = db.telemetry.metrics
    return {
        "mode": "wal" if wal else "off",
        "io_per_statement": io_per_statement,
        "total_io": sum(io_per_statement),
        "wall_seconds": round(elapsed, 4),
        "wal_io": {
            "records": sum(
                v for __, v in metrics.counter("wal_records_total").samples()),
            "flushes": metrics.value("wal_flushes_total"),
            "bytes": metrics.value("wal_bytes_total"),
        },
    }


def _measure_recovery() -> dict:
    """Crash the workload mid-flight (torn write), then time recovery."""
    db, depts, emps = _build(wal=True)
    db.checkpoint()
    db.faults.fail_after_writes(5, torn=True)
    try:
        for thunk in _statements(db, depts, emps):
            thunk()
            db.cold_cache()  # flush faults mark the database crashed too
    except DiskFault:
        pass
    assert db.recovery.needs_recovery
    started = time.perf_counter()
    report = db.recover()
    elapsed = time.perf_counter() - started
    return {
        "recover_wall_seconds": round(elapsed, 4),
        "statements_replayed": report.statements_replayed,
        "statements_discarded": report.statements_discarded,
        "pages_redone": report.pages_redone,
        "pages_rolled_back": report.pages_rolled_back,
    }


def test_wal_overhead(benchmark, results_dir):
    _run_mode(False)  # warm the code paths so wall-clock deltas are honest
    results = benchmark.pedantic(
        lambda: [_run_mode(False), _run_mode(True)],
        rounds=1, iterations=1,
    )
    off, wal = results
    # crash safety never changes what the engine reads or writes
    assert off["io_per_statement"] == wal["io_per_statement"]
    # and the log really was exercised, on its own ledger
    assert off["wal_io"]["records"] == 0
    assert wal["wal_io"]["records"] > 0
    assert wal["wal_io"]["flushes"] > 0
    base = off["wall_seconds"]
    payload = {
        "config": {"depts": _DEPTS, "emps": _EMPS,
                   "statements": _STATEMENTS, "path": "Emp.dept.name"},
        "modes": results,
        "wall_overhead_vs_off": (
            round(wal["wall_seconds"] / base - 1.0, 4) if base else None),
        "recovery": _measure_recovery(),
    }
    save_result(results_dir, "BENCH_wal_overhead.json",
                json.dumps(payload, indent=2))
