"""Observability overhead: watching the server must not move pages.

Two identical database/server pairs run the same single-client statement
sequence.  The *observed* pair has every collector on at once -- client
trace propagation (per-statement tracers, span trees in every reply), a
slow-query log with threshold 0 (every statement recorded), and a
scraper thread hammering the HTTP sidecar's /metrics, /health, and /slow
throughout.  The *bare* pair runs with all of it off.

The acceptance bar is exact: the per-statement physical I/O vectors of
the two runs must be **byte-identical**.  Tracing reads counters, the
slow log appends dicts, and scrapes render from the registry -- none of
it may drag a page through the buffer pool, or the observer would change
the measurement the paper's I/O study depends on.  Wall-clock overhead
is recorded (informational; it is real but small) into
``BENCH_observability_overhead.json``.
"""

import json
import threading
import time
from urllib.request import urlopen

from repro import Database, TypeDefinition, char_field, int_field, ref_field
from repro.server import connect
from repro.server.httpexpo import MetricsHTTPServer
from repro.server.service import Server

from benchmarks.conftest import save_result

_DEPTS = 4
_EMPS = 48


def _build() -> Database:
    db = Database(wal=True, buffer_frames=64)
    db.define_type(TypeDefinition("DEPT", [char_field("name", 40),
                                           int_field("budget")]))
    db.define_type(TypeDefinition("EMP", [char_field("name", 40),
                                          int_field("salary"),
                                          ref_field("dept", "DEPT")]))
    db.create_set("Dept", "DEPT")
    db.create_set("Emp", "EMP")
    depts = [db.insert("Dept", {"name": f"dept{i}", "budget": 100 + i})
             for i in range(_DEPTS)]
    for i in range(_EMPS):
        db.insert("Emp", {"name": f"emp{i}", "salary": 1000 + i,
                          "dept": depts[i % _DEPTS]})
    db.replicate("Emp.dept.name")
    return db


def _ops() -> list[str]:
    """The deterministic statement sequence both pairs execute."""
    ops = []
    for round_no in range(3):
        ops.append("retrieve (Emp.name, Emp.dept.name)")
        ops.append("retrieve (Dept.name, Dept.budget)")
        ops.append(f'replace (Dept.name = "r{round_no}") '
                   f"where Dept.budget = {100 + round_no % _DEPTS}")
        ops.append("retrieve (Emp.name) where Emp.salary > 1020")
        ops.append("retrieve (Emp.dept.name)")
    return ops


def _run_pair(observed: bool) -> dict:
    db = _build()
    server = Server(db, max_connections=4, workers=2, queue_depth=32,
                    lock_timeout=30.0).start()
    sidecar = None
    stop_scraper = threading.Event()
    scraper = None
    scrapes = [0]
    if observed:
        db.telemetry.slowlog.configure(threshold_ms=0.0)
        sidecar = MetricsHTTPServer(server).start()
        base = f"http://{sidecar.host}:{sidecar.port}"

        def scrape_loop():
            while not stop_scraper.is_set():
                for path in ("/metrics", "/health", "/slow"):
                    with urlopen(base + path, timeout=10.0) as response:
                        assert response.status == 200
                        response.read()
                scrapes[0] += 1
                time.sleep(0.01)

        scraper = threading.Thread(target=scrape_loop, daemon=True)
        scraper.start()
    per_op_io = []
    try:
        with connect(*server.address) as client:
            client.trace_enabled = observed
            client.meta("cold")  # both pairs start from an empty pool
            began = time.perf_counter()
            for statement in _ops():
                result = client.execute(statement)
                per_op_io.append([result.io.physical_reads,
                                  result.io.physical_writes])
                if observed:
                    # every reply really carried its span tree
                    assert result.trace is not None
                    names = {s["name"] for s in result.trace["spans"]}
                    assert {"client_request", "statement",
                            "execute"} <= names
            wall = time.perf_counter() - began
    finally:
        stop_scraper.set()
        if scraper is not None:
            scraper.join(timeout=10.0)
        if sidecar is not None:
            sidecar.shutdown()
        server.shutdown()
    slow_records = len(db.telemetry.slowlog) if observed else 0
    db.verify()
    return {"io": per_op_io, "wall": wall, "scrapes": scrapes[0],
            "slow_records": slow_records}


def test_observability_collectors_add_zero_physical_io(results_dir):
    bare = _run_pair(observed=False)
    observed = _run_pair(observed=True)

    # the acceptance bar: byte-identical per-statement physical I/O
    assert json.dumps(bare["io"]) == json.dumps(observed["io"])
    assert any(reads > 0 for reads, __ in bare["io"])  # teeth
    # every collector demonstrably ran
    assert observed["scrapes"] > 0
    assert observed["slow_records"] == len(_ops())

    result = {
        "benchmark": "observability_overhead",
        "ops": len(bare["io"]),
        "collectors_on": ["trace_propagation", "slow_query_log",
                          "http_scraper"],
        "per_op_physical_io_identical": True,
        "per_op_io": bare["io"],
        "scrapes_during_run": observed["scrapes"],
        "slow_records": observed["slow_records"],
        "wall_seconds_bare": round(bare["wall"], 4),
        "wall_seconds_observed": round(observed["wall"], 4),
        "wall_overhead_pct": round(
            (observed["wall"] - bare["wall"]) / bare["wall"] * 100, 1)
        if bare["wall"] else 0.0,
    }
    save_result(results_dir, "BENCH_observability_overhead.json",
                json.dumps(result, indent=2))
