"""Wait-event accounting overhead: watching where time goes must not
move pages or meaningfully slow the server.

Two identical database/server pairs run the same workload.  The
*observed* pair has the whole always-on layer up: the wait-event
collector, the 10 Hz telemetry sampler (ASH ring, time-series probes,
alert evaluation), and a scraper thread hammering /ash, /timeseries,
and /alerts throughout.  The *bare* pair runs with the collector
disabled and the sampler off.

Two phases per pair:

* an 8-client contention phase (concurrent readers + writers on the
  same sets) -- this is where wait events actually accumulate and
  throughput is measured.  The pairs run their passes *alternately*
  (bare, observed, bare, observed, ...) and the best of three walls is
  kept per pair, so noisy-neighbour drift hits both sides equally
  instead of masquerading as collector overhead;
* a single-client deterministic phase from a cold buffer pool -- the
  physical-I/O acceptance bar, where interleaving cannot blur the
  comparison.

Acceptance: the deterministic phase's per-statement physical I/O
vectors must be **byte-identical** between the pairs (collectors read
counters, never pages), and the observed run must attribute >= 95% of
statement wall-clock to named wait events, with the admission-wait
share (the successor of the removed global engine latch) reported
explicitly.  Throughput overhead is recorded into
``BENCH_wait_events.json`` (informational; the target is < 3%).

A second test runs a pure read-only workload and asserts the admission
wait share stays **under 5%**: with footprint scheduling, statements
that don't conflict are admitted without queuing, so admission must be
a negligible wait class when nothing conflicts.
"""

import json
import threading
import time
from urllib.request import urlopen

from repro import Database, TypeDefinition, char_field, int_field, ref_field
from repro.server import connect
from repro.server.httpexpo import MetricsHTTPServer
from repro.server.service import Server
from repro.telemetry.waitevents import ADMISSION_WAIT, base_event

from benchmarks.conftest import save_result

_DEPTS = 4
_EMPS = 48
_CLIENTS = 8
_ROUNDS = 6
_PASSES = 3


def _build() -> Database:
    db = Database(wal=True, buffer_frames=64)
    db.define_type(TypeDefinition("DEPT", [char_field("name", 40),
                                           int_field("budget")]))
    db.define_type(TypeDefinition("EMP", [char_field("name", 40),
                                          int_field("salary"),
                                          ref_field("dept", "DEPT")]))
    db.create_set("Dept", "DEPT")
    db.create_set("Emp", "EMP")
    depts = [db.insert("Dept", {"name": f"dept{i}", "budget": 100 + i})
             for i in range(_DEPTS)]
    for i in range(_EMPS):
        db.insert("Emp", {"name": f"emp{i}", "salary": 1000 + i,
                          "dept": depts[i % _DEPTS]})
    db.replicate("Emp.dept.name")
    return db


def _client_ops(client_no: int) -> list[str]:
    """One client's contention-phase sequence: reads on the shared sets
    plus in-place salary writes.  The writes commute (each targets the
    client's own employee and always sets the same value), so the final
    database state is interleaving-independent."""
    ops = []
    for round_no in range(_ROUNDS):
        ops.append("retrieve (Emp.name, Emp.dept.name)")
        ops.append(f"replace (Emp.salary = {2000 + client_no}) "
                   f'where Emp.name = "emp{client_no}"')
        ops.append("retrieve (Dept.name, Dept.budget)")
        ops.append(f"retrieve (Emp.name) where Emp.salary > {1000 + round_no}")
    return ops


def _deterministic_ops() -> list[str]:
    """The single-client sequence both pairs replay for the byte-identical
    physical-I/O comparison."""
    ops = []
    for round_no in range(3):
        ops.append("retrieve (Emp.name, Emp.dept.name)")
        ops.append("retrieve (Dept.name, Dept.budget)")
        ops.append(f'replace (Dept.name = "r{round_no}") '
                   f"where Dept.budget = {100 + round_no % _DEPTS}")
        ops.append("retrieve (Emp.name) where Emp.salary > 1020")
        ops.append("retrieve (Emp.dept.name)")
    return ops


class _Pair:
    """One database/server pair, observed (all collectors on) or bare."""

    def __init__(self, observed: bool) -> None:
        self.observed = observed
        self.db = _build()
        if not observed:
            self.db.telemetry.waits.enabled = False
        self.server = Server(self.db, max_connections=_CLIENTS + 2,
                             workers=4, queue_depth=64, lock_timeout=30.0,
                             sample_interval=0.1 if observed else 0).start()
        self.sidecar = None
        self.scraper = None
        self.scrapes = 0
        self._stop = threading.Event()
        if observed:
            self.sidecar = MetricsHTTPServer(self.server).start()
            self.scraper = threading.Thread(target=self._scrape_loop,
                                            daemon=True)
            self.scraper.start()

    def _scrape_loop(self) -> None:
        base = f"http://{self.sidecar.host}:{self.sidecar.port}"
        while not self._stop.is_set():
            for path in ("/ash?window_s=60", "/timeseries?window_s=60",
                         "/alerts"):
                with urlopen(base + path, timeout=10.0) as response:
                    assert response.status == 200
                    response.read()
            self.scrapes += 1
            time.sleep(0.2)

    def run_concurrent_once(self) -> float:
        """One 8-client pass; returns its wall-clock seconds."""
        barrier = threading.Barrier(_CLIENTS, timeout=60.0)
        failures: list[str] = []

        def worker(client_no: int) -> None:
            try:
                with connect(*self.server.address) as client:
                    barrier.wait()
                    for statement in _client_ops(client_no):
                        client.execute(statement)
            except Exception as exc:  # surfaced after join
                failures.append(f"client {client_no}: {exc!r}")

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(_CLIENTS)]
        began = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        wall = time.perf_counter() - began
        assert not failures, failures
        return wall

    def run_deterministic(self) -> list[list[int]]:
        per_op_io = []
        with connect(*self.server.address) as client:
            client.meta("cold")
            for statement in _deterministic_ops():
                result = client.execute(statement)
                per_op_io.append([result.io.physical_reads,
                                  result.io.physical_writes])
        return per_op_io

    def finish(self) -> dict:
        self._stop.set()
        if self.scraper is not None:
            self.scraper.join(timeout=10.0)
        if self.sidecar is not None:
            self.sidecar.shutdown()
        snapshot = {
            "waits": self.db.telemetry.waits.snapshot(),
            "ash_sampled": self.server.ash.sampled_total,
            "alert_evaluations": self.server.alerts.evaluations,
            "scrapes": self.scrapes,
        }
        self.server.shutdown()
        self.db.verify()
        return snapshot


def test_wait_accounting_is_complete_and_adds_zero_physical_io(results_dir):
    statements = _CLIENTS * len(_client_ops(0))
    bare = _Pair(observed=False)
    observed = _Pair(observed=True)
    try:
        bare.run_concurrent_once()  # warm-up, discarded: the very first
        observed.run_concurrent_once()  # pass is consistently an outlier
        walls = {"bare": [], "observed": []}
        for pass_no in range(_PASSES):  # alternate who goes first so
            first, second = ((bare, observed) if pass_no % 2 == 0
                             else (observed, bare))  # drift hits both sides
            walls["bare" if first is bare else "observed"].append(
                first.run_concurrent_once())
            walls["bare" if second is bare else "observed"].append(
                second.run_concurrent_once())
        bare_io = bare.run_deterministic()
        observed_io = observed.run_deterministic()
    finally:
        bare_stats = bare.finish()
        observed_stats = observed.finish()

    # the acceptance bar: byte-identical per-statement physical I/O
    assert json.dumps(bare_io) == json.dumps(observed_io)
    assert any(reads > 0 for reads, __ in bare_io)  # teeth
    # the bare pair really had the collector off
    assert bare_stats["waits"]["enabled"] is False
    assert bare_stats["waits"]["statements"] == 0

    # >= 95% of statement wall-clock attributed to named events
    waits = observed_stats["waits"]
    assert waits["statements"] >= _PASSES * statements
    assert waits["coverage"] >= 0.95

    # the admission-wait share is explicit (was: the global engine latch)
    by_class: dict = {}
    for row in waits["events"]:
        cls = base_event(row["event"])
        by_class[cls] = round(by_class.get(cls, 0.0) + row["seconds"], 6)
    admission_seconds = by_class.get(ADMISSION_WAIT, 0.0)
    admission_share = (admission_seconds / waits["attributed_seconds"]
                       if waits["attributed_seconds"] else 0.0)

    # every always-on collector demonstrably ran during the workload
    assert observed_stats["scrapes"] > 0
    assert observed_stats["ash_sampled"] > 0
    assert observed_stats["alert_evaluations"] > 0

    def median(values):
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    tput_bare = statements / median(walls["bare"])
    tput_observed = statements / median(walls["observed"])
    overhead_pct = round((tput_bare - tput_observed) / tput_bare * 100, 1)
    result = {
        "benchmark": "wait_events_overhead",
        "clients": _CLIENTS,
        "passes": _PASSES,
        "statements_per_pass": statements,
        "deterministic_ops": len(bare_io),
        "per_op_physical_io_identical": True,
        "per_op_io": bare_io,
        "coverage": waits["coverage"],
        "statement_seconds": waits["statement_seconds"],
        "attributed_seconds": waits["attributed_seconds"],
        "wait_seconds_by_class": dict(sorted(by_class.items())),
        "admission_wait_seconds": round(admission_seconds, 6),
        "admission_wait_share": round(admission_share, 4),
        "ash_samples": observed_stats["ash_sampled"],
        "alert_evaluations": observed_stats["alert_evaluations"],
        "scrapes_during_run": observed_stats["scrapes"],
        "walls_bare_s": [round(w, 4) for w in walls["bare"]],
        "walls_observed_s": [round(w, 4) for w in walls["observed"]],
        "throughput_bare_stmt_s": round(tput_bare, 1),
        "throughput_observed_stmt_s": round(tput_observed, 1),
        "throughput_overhead_pct": overhead_pct,
        "throughput_overhead_target_pct": 3.0,
    }
    save_result(results_dir, "BENCH_wait_events.json",
                json.dumps(result, indent=2))


def test_read_only_workload_admission_wait_share_under_5_pct(results_dir):
    """Footprint admission must not queue non-conflicting statements.

    8 clients run a pure read workload (shared footprints only, nothing
    conflicts); the time attributed to ``admission_wait`` must stay
    under 5% of all attributed statement time.  Under the old global
    engine latch this share was the dominant wait class by design --
    every statement queued behind every other.
    """
    db = _build()
    server = Server(db, max_connections=_CLIENTS + 2, workers=_CLIENTS,
                    queue_depth=64, lock_timeout=30.0,
                    sample_interval=0).start()
    barrier = threading.Barrier(_CLIENTS, timeout=60.0)
    failures: list[str] = []

    def worker(client_no: int) -> None:
        try:
            with connect(*server.address) as client:
                barrier.wait()
                for round_no in range(_ROUNDS):
                    client.execute("retrieve (Emp.name, Emp.dept.name)")
                    client.execute("retrieve (Dept.name, Dept.budget)")
                    client.execute("retrieve (Emp.name) "
                                   f"where Emp.salary > {1000 + round_no}")
        except Exception as exc:
            failures.append(f"client {client_no}: {exc!r}")

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(_CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    assert not failures, failures

    waits = db.telemetry.waits
    snapshot = waits.snapshot()
    admission_seconds = waits.total_for(ADMISSION_WAIT)
    share = (admission_seconds / snapshot["attributed_seconds"]
             if snapshot["attributed_seconds"] else 0.0)
    peak = db.telemetry.metrics.value("concurrent_statements_peak")
    server.shutdown()
    db.verify()

    # the acceptance bar: non-conflicting statements don't queue
    assert share < 0.05, f"admission_wait share {share:.4f} >= 5%"
    assert peak >= 2  # ...while really running concurrently

    path = results_dir / "BENCH_wait_events.json"
    merged = json.loads(path.read_text()) if path.exists() else {
        "benchmark": "wait_events_overhead"}
    merged["read_only_admission"] = {
        "clients": _CLIENTS,
        "statements": snapshot["statements"],
        "admission_wait_seconds": round(admission_seconds, 6),
        "admission_wait_share": round(share, 4),
        "admission_wait_share_target": 0.05,
        "concurrent_statements_peak": peak,
    }
    save_result(results_dir, "BENCH_wait_events.json",
                json.dumps(merged, indent=2))
