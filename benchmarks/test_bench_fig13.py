"""Figure 13 -- % difference in C_total, clustered indexes."""

from repro.costmodel import ModelStrategy, Setting, figure13, render_series_table

from benchmarks.conftest import save_result


def test_figure13(benchmark, results_dir):
    graphs = benchmark(figure13)
    save_result(results_dir, "figure13_clustered.txt",
                render_series_table(graphs, Setting.CLUSTERED))
    from repro.costmodel.export import figure_csvs

    for f, csv_text in figure_csvs(graphs).items():
        save_result(results_dir, f"figure13_clustered_f{f}.csv", csv_text.rstrip())

    inplace = ModelStrategy.IN_PLACE
    separate = ModelStrategy.SEPARATE

    # clustered savings dwarf the unclustered ones: in-place at P=0
    for f in (1, 10, 20, 50):
        assert graphs[f][inplace][0.001].percents[0] < -55

    # in-place is spectacular at f = 1 ("particularly effective when f=1")
    assert graphs[1][inplace][0.001].percents[0] < -70

    # separate keeps saving 25-70% for f > 1 over most of the sweep
    for f in (10, 20, 50):
        mid = graphs[f][separate][0.002].percents[10]  # P_update = 0.5
        assert -75 <= mid <= -20

    # in-place still breaks down: propagation cost survives clustering
    for f in (10, 20, 50):
        assert graphs[f][inplace][0.002].percents[-1] > 0
