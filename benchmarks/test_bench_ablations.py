"""Ablations for the design choices of Sections 4.3 and 7.2 plus the
future-work lazy variant.

* collapse   -- collapsed vs uncollapsed 2-level inverted paths: terminal
  data updates get cheaper, intermediate reference updates get costlier;
* inline     -- Section 4.3.1 singleton-link elimination in the analytical
  model: at f = 1 it removes the entire L-file read from in-place updates
  (and is what makes the published Figure 12 f = 1 cell reproducible);
* path index -- associative lookup through an index on replicated data vs
  a Gemstone-style multi-component path index;
* lazy       -- eager propagation vs deferred propagation drained by the
  next read;
* buffer     -- the model's "optimal join" assumption: read-query I/O as
  the buffer pool shrinks below the query's working set.
"""

import random

from repro import Database, TypeDefinition, char_field, int_field, ref_field
from repro.costmodel import CostParameters, ModelStrategy, Setting, update_cost
from repro.index.path_index import GemstonePathIndex
from repro.workloads import WorkloadConfig, build_model_database, run_read_query

from benchmarks.conftest import save_result


def _three_level_db(n_orgs=20, n_depts=100, n_emps=600, collapsed=False):
    rng = random.Random(13)
    db = Database(buffer_frames=4096)
    db.define_type(TypeDefinition("ORG", [char_field("name", 20), int_field("budget")]))
    db.define_type(
        TypeDefinition("DEPT", [char_field("name", 20), ref_field("org", "ORG")])
    )
    db.define_type(
        TypeDefinition(
            "EMP", [char_field("name", 20), int_field("salary"), ref_field("dept", "DEPT")]
        )
    )
    db.create_set("Org", "ORG")
    db.create_set("Dept", "DEPT")
    db.create_set("Emp1", "EMP")
    orgs = [db.insert("Org", {"name": f"o{i}", "budget": i}) for i in range(n_orgs)]
    depts = [
        db.insert("Dept", {"name": f"d{i}", "org": orgs[i % n_orgs]})
        for i in range(n_depts)
    ]
    for i in range(n_emps):
        db.insert("Emp1", {"name": f"e{i}", "salary": i, "dept": rng.choice(depts)})
    db.replicate("Emp1.dept.org.name", collapsed=collapsed)
    return db, orgs, depts


def _measure(db, fn) -> int:
    db.cold_cache()
    cost = db.measure(lambda: (fn(), db.storage.pool.flush_all()))
    return cost.total_io


def test_ablation_collapsed_paths(benchmark, results_dir):
    """Section 4.3.3: cheaper data propagation, costlier ref updates."""
    db_u, orgs_u, depts_u = _three_level_db(collapsed=False)
    db_c, orgs_c, depts_c = _three_level_db(collapsed=True)

    data_u = _measure(db_u, lambda: db_u.update("Org", orgs_u[0], {"name": "x1"}))
    data_c = _measure(db_c, lambda: db_c.update("Org", orgs_c[0], {"name": "x1"}))
    ref_u = _measure(db_u, lambda: db_u.update("Dept", depts_u[0], {"org": orgs_u[1]}))
    ref_c = _measure(db_c, lambda: db_c.update("Dept", depts_c[0], {"org": orgs_c[1]}))

    benchmark.pedantic(
        lambda: db_c.update("Org", orgs_c[2], {"name": "bench"}),
        rounds=3, iterations=1,
    )
    db_u.verify()
    db_c.verify()
    save_result(
        results_dir,
        "ablation_collapse.txt",
        "terminal data update I/O: "
        f"uncollapsed={data_u} collapsed={data_c}\n"
        f"intermediate ref update I/O: uncollapsed={ref_u} collapsed={ref_c}",
    )
    # the trade the paper describes
    assert data_c <= data_u
    assert ref_c >= ref_u


def test_ablation_singleton_link_elimination(benchmark, results_dir):
    """Section 4.3.1, both in the analytical model and on the engine."""
    params_on = CostParameters(f=1, f_r=0.002)
    params_off = CostParameters(f=1, f_r=0.002, eliminate_singleton_links=False)

    def both():
        return (
            update_cost(params_on, ModelStrategy.IN_PLACE, Setting.UNCLUSTERED),
            update_cost(params_off, ModelStrategy.IN_PLACE, Setting.UNCLUSTERED),
        )

    with_opt, without_opt = benchmark(both)

    # Engine-level: the same f = 1 update workload with and without
    # inline_singleton_links; propagation must skip the link file entirely.
    from repro.workloads.simulate import run_update_query

    engine_io = {}
    link_reads = {}
    for inline in (False, True):
        config = WorkloadConfig(n_s=200, f=1, f_s=0.03, strategy="inplace",
                                inline_links=inline)
        mdb = build_model_database(config)
        rng = random.Random(23)
        path = mdb.db.catalog.get_path("R.sref.repfield")
        link = mdb.db.catalog.get_link(path.link_sequence[0])
        mdb.db.cold_cache()
        before = mdb.db.stats.snapshot()
        for __ in range(3):
            run_update_query(mdb, rng)
        delta = mdb.db.stats.snapshot() - before
        engine_io[inline] = delta.total_io
        link_reads[inline] = delta.io_for(link.file.heap.file_id)
        mdb.db.verify()

    save_result(
        results_dir,
        "ablation_inline_links.txt",
        f"analytical, in-place update cost at f=1: inlined={with_opt:.2f} "
        f"with L file={without_opt:.2f} (saving {without_opt - with_opt:.2f} I/Os)\n"
        f"engine, 3 update queries at f=1: plain={engine_io[False]} I/Os "
        f"(link-file I/O {link_reads[False]}), inlined={engine_io[True]} I/Os "
        f"(link-file I/O {link_reads[True]})",
    )
    assert without_opt - with_opt > 5  # the whole L read disappears (model)
    assert link_reads[True] == 0       # no link file touched (engine)
    assert engine_io[True] <= engine_io[False]


def test_ablation_path_index_vs_gemstone(benchmark, results_dir):
    """Section 7.2: one B+-tree traversal vs one per component."""
    db, __orgs, __depts = _three_level_db(n_orgs=300, n_depts=600, n_emps=1500)
    gem = GemstonePathIndex(db, "Emp1.dept.org.name")
    info = db.build_index("Emp1.dept.org.name")
    probes = [f"o{i}" for i in (3, 77, 150, 222, 280)]

    db.cold_cache()
    gem_io = db.measure(lambda: [gem.lookup(p) for p in probes]).total_io
    db.cold_cache()
    rep_io = db.measure(lambda: [info.index.lookup(p) for p in probes]).total_io
    benchmark.pedantic(lambda: info.index.lookup("o3"), rounds=5, iterations=1)

    save_result(
        results_dir,
        "ablation_path_index.txt",
        f"{len(probes)} associative lookups on Emp1.dept.org.name\n"
        f"Gemstone multi-component index: {gem_io} I/Os "
        f"({gem.component_count} trees per lookup)\n"
        f"index on replicated data:       {rep_io} I/Os (1 tree per lookup)",
    )
    assert rep_io < gem_io


def test_ablation_lazy_propagation(benchmark, results_dir):
    """Future work (§8): an update burst followed by one read."""
    def burst_cost(lazy: bool) -> int:
        db, orgs, __depts = _three_level_db()
        db.drop_replication("Emp1.dept.org.name")
        db.replicate("Emp1.dept.org.name", lazy=lazy)
        # each operation is its own query: cold cache, then write-back
        total = 0
        for i in range(10):
            total += _measure(db, lambda: db.update("Org", orgs[0], {"name": f"v{i}"}))
        total += _measure(
            db,
            lambda: db.execute("retrieve (Emp1.dept.org.name)", materialize=False),
        )
        db.verify()
        return total

    eager = burst_cost(lazy=False)
    lazy = benchmark.pedantic(lambda: burst_cost(lazy=True), rounds=1, iterations=1)
    save_result(
        results_dir,
        "ablation_lazy.txt",
        f"10 updates to one replicated source + 1 scan of the path\n"
        f"eager propagation: {eager} I/Os\nlazy propagation:  {lazy} I/Os",
    )
    assert lazy < eager


def test_ablation_buffer_pool_size(benchmark, results_dir):
    """The optimal-join assumption needs the pool to hold the working set."""
    lines = ["read-query I/O vs buffer frames (unclustered, f=5)"]
    costs = {}
    for frames in (8, 32, 2048):
        config = WorkloadConfig(
            n_s=300, f=5, f_r=0.02, f_s=0.01, buffer_frames=frames
        )
        mdb = build_model_database(config)
        rng = random.Random(17)
        io = sum(run_read_query(mdb, rng) for __ in range(3)) / 3
        costs[frames] = io
        lines.append(f"frames={frames:5d}: {io:7.1f} I/Os per read query")
    benchmark.pedantic(
        lambda: run_read_query(build_model_database(
            WorkloadConfig(n_s=300, f=5, f_r=0.02, buffer_frames=2048)
        ), random.Random(1)),
        rounds=1, iterations=1,
    )
    save_result(results_dir, "ablation_buffer.txt", "\n".join(lines))
    # a starved pool re-reads pages; a big pool reads each page once
    assert costs[8] >= costs[2048]
