"""Figure 11 -- % difference in C_total, unclustered indexes.

Regenerates all four panels (f = 1, 10, 20, 50; f_r = .001/.002/.005 for
both strategies) and checks the qualitative structure the paper describes.
"""

from repro.costmodel import ModelStrategy, Setting, figure11, render_series_table

from benchmarks.conftest import save_result


def test_figure11(benchmark, results_dir):
    graphs = benchmark(figure11)
    save_result(results_dir, "figure11_unclustered.txt",
                render_series_table(graphs, Setting.UNCLUSTERED))
    from repro.costmodel.export import figure_csvs

    for f, csv_text in figure_csvs(graphs).items():
        save_result(results_dir, f"figure11_unclustered_f{f}.csv", csv_text.rstrip())

    inplace = ModelStrategy.IN_PLACE
    separate = ModelStrategy.SEPARATE

    # read-only mixes: in-place always wins
    for f in (1, 10, 20, 50):
        for f_r in (0.001, 0.002, 0.005):
            assert graphs[f][inplace][f_r].percents[0] < 0

    # f = 1: separate provides almost no benefit
    for f_r in (0.001, 0.002, 0.005):
        assert graphs[1][separate][f_r].percents[0] > -10

    # in-place breaks down faster than separate as P_update grows
    for f in (10, 20, 50):
        assert (
            graphs[f][inplace][0.002].percents[-1]
            > graphs[f][separate][0.002].percents[-1]
        )

    # in-place stops beating no replication at a moderate P_update;
    # separate keeps winning until far later
    cross_in = graphs[20][inplace][0.002].crossover()
    assert cross_in is not None and 0.05 <= cross_in <= 0.5
    cross_sep = graphs[20][separate][0.002].crossover()
    assert cross_sep is None or cross_sep >= 0.8

    # the f_r flip for separate replication between f = 10 and f = 50
    assert (
        graphs[10][separate][0.005].percents[0]
        < graphs[10][separate][0.001].percents[0]
    )
    assert (
        graphs[50][separate][0.001].percents[0]
        < graphs[50][separate][0.005].percents[0]
    )
