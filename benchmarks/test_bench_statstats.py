"""Statement analytics overhead: fingerprinting must not move pages.

Two identical database/server pairs run the same single-client statement
sequence over a replicated schema.  The *observed* pair keeps the
statement-fingerprint aggregator and the replication ledger on (their
defaults) while a scraper thread hammers ``/statements`` and
``/metrics`` throughout; the *bare* pair flips both collectors off
(``StatementStats.enabled`` / ``ReplicationLedger.enabled``) and runs
unwatched.

The acceptance bar is exact: the per-statement physical I/O vectors of
the two runs must be **byte-identical**.  Fingerprinting is a regex pass
over the statement text, the aggregator is a dict of counters, and the
ledger prices its charges and credits from in-memory page counts -- none
of it may drag a page through the buffer pool, or the analytics would
change the workload they describe.  Wall-clock overhead is recorded
(informational) into ``BENCH_statstats_overhead.json``.
"""

import json
import threading
import time
from urllib.request import urlopen

from repro import Database, TypeDefinition, char_field, int_field, ref_field
from repro.server import connect
from repro.server.httpexpo import MetricsHTTPServer
from repro.server.service import Server

from benchmarks.conftest import save_result

_DEPTS = 4
_EMPS = 48


def _build() -> Database:
    db = Database(wal=True, buffer_frames=64)
    db.define_type(TypeDefinition("DEPT", [char_field("name", 40),
                                           int_field("budget")]))
    db.define_type(TypeDefinition("EMP", [char_field("name", 40),
                                          int_field("salary"),
                                          ref_field("dept", "DEPT")]))
    db.create_set("Dept", "DEPT")
    db.create_set("Emp", "EMP")
    depts = [db.insert("Dept", {"name": f"dept{i}", "budget": 100 + i})
             for i in range(_DEPTS)]
    for i in range(_EMPS):
        db.insert("Emp", {"name": f"emp{i}", "salary": 1000 + i,
                          "dept": depts[i % _DEPTS]})
    db.replicate("Emp.dept.name")
    return db


def _ops() -> list[str]:
    """The deterministic statement sequence both pairs execute.

    A replication-heavy mix: replicated-field reads (ledger credits),
    propagating updates (ledger charges), and repeated statement shapes
    with varying literals (fingerprint aggregation).
    """
    ops = []
    for round_no in range(3):
        ops.append("retrieve (Emp.name, Emp.dept.name)")
        ops.append(f"retrieve (Emp.name) where Emp.salary > {1010 + round_no}")
        ops.append(f'replace (Dept.name = "r{round_no}") '
                   f"where Dept.budget = {100 + round_no % _DEPTS}")
        ops.append(f'retrieve (Emp.name) where Emp.dept.name = "r{round_no}"')
        ops.append("retrieve (Dept.name, Dept.budget)")
    return ops


def _run_pair(observed: bool) -> dict:
    db = _build()
    if not observed:
        db.telemetry.statements.enabled = False
        db.telemetry.repledger.enabled = False
    server = Server(db, max_connections=4, workers=2, queue_depth=32,
                    lock_timeout=30.0).start()
    sidecar = None
    stop_scraper = threading.Event()
    scraper = None
    scrapes = [0]
    if observed:
        sidecar = MetricsHTTPServer(server).start()
        base = f"http://{sidecar.host}:{sidecar.port}"

        def scrape_loop():
            while not stop_scraper.is_set():
                for path in ("/statements", "/metrics"):
                    with urlopen(base + path, timeout=10.0) as response:
                        assert response.status == 200
                        response.read()
                scrapes[0] += 1
                time.sleep(0.01)

        scraper = threading.Thread(target=scrape_loop, daemon=True)
        scraper.start()
    per_op_io = []
    try:
        with connect(*server.address) as client:
            client.meta("cold")  # both pairs start from an empty pool
            began = time.perf_counter()
            for statement in _ops():
                result = client.execute(statement)
                per_op_io.append([result.io.physical_reads,
                                  result.io.physical_writes])
            wall = time.perf_counter() - began
    finally:
        stop_scraper.set()
        if scraper is not None:
            scraper.join(timeout=10.0)
        if sidecar is not None:
            sidecar.shutdown()
        server.shutdown()
    stats = db.telemetry.statements
    fingerprints = len(stats) if observed else 0
    ledger_paths = len(db.telemetry.repledger) if observed else 0
    db.verify()
    return {"io": per_op_io, "wall": wall, "scrapes": scrapes[0],
            "fingerprints": fingerprints, "ledger_paths": ledger_paths}


def test_statement_analytics_add_zero_physical_io(results_dir):
    bare = _run_pair(observed=False)
    observed = _run_pair(observed=True)

    # the acceptance bar: byte-identical per-statement physical I/O
    assert json.dumps(bare["io"]) == json.dumps(observed["io"])
    assert any(reads > 0 for reads, __ in bare["io"])  # teeth
    # the collectors demonstrably ran in the observed pair
    assert observed["scrapes"] > 0
    assert observed["fingerprints"] == 5  # 5 statement shapes in _ops()
    assert observed["ledger_paths"] == 1
    # and demonstrably did not in the bare pair
    assert bare["fingerprints"] == 0 and bare["ledger_paths"] == 0

    result = {
        "benchmark": "statstats_overhead",
        "ops": len(bare["io"]),
        "collectors_on": ["statement_fingerprints", "replication_ledger",
                          "statements_scraper"],
        "per_op_physical_io_identical": True,
        "per_op_io": bare["io"],
        "scrapes_during_run": observed["scrapes"],
        "distinct_fingerprints": observed["fingerprints"],
        "ledger_paths": observed["ledger_paths"],
        "wall_seconds_bare": round(bare["wall"], 4),
        "wall_seconds_observed": round(observed["wall"], 4),
        "wall_overhead_pct": round(
            (observed["wall"] - bare["wall"]) / bare["wall"] * 100, 1)
        if bare["wall"] else 0.0,
    }
    save_result(results_dir, "BENCH_statstats_overhead.json",
                json.dumps(result, indent=2))
