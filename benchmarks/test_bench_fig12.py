"""Figure 12 -- selected values of C_read / C_update, unclustered access."""

from repro.costmodel import (
    PAPER_FIGURE12,
    Setting,
    figure12,
    render_selected_values,
)

from benchmarks.conftest import save_result


def test_figure12(benchmark, results_dir):
    rows = benchmark(figure12)
    text = render_selected_values(rows, Setting.UNCLUSTERED, PAPER_FIGURE12)
    save_result(results_dir, "figure12_selected_values.txt", text)

    deltas = []
    for row in rows:
        want_read, want_update = PAPER_FIGURE12[row.f][row.strategy]
        deltas.append(abs(row.c_read - want_read))
        deltas.append(abs(row.c_update - want_update))
    # every cell within rounding distance of the published table
    assert max(deltas) <= 2
    # and most cells exactly equal
    assert sum(1 for d in deltas if d == 0) >= 10
