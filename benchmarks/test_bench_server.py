"""Multi-client server throughput under the replicated-path workload.

A load generator drives a live :class:`repro.server.service.Server` over
TCP with concurrent reader and writer clients: readers scan the
replicated ``Emp.dept.name`` path, writers rename departments through it
(the propagation-heavy case the lock manager exists for).  The run
records throughput, client-observed latency percentiles, and the share
of execution time spent waiting on set locks into
``BENCH_server_throughput.json``.

A second test extends that artifact with a **read-only scaling sweep**
(1 / 2 / 4 / 8 / 16 clients): with the global engine latch replaced by
footprint admission, statements with disjoint (here: identical shared)
footprints execute concurrently, so read throughput must *scale* with
clients instead of serializing.  Every client checks its rows against a
reference answer, so the sweep doubles as a byte-identical correctness
check under maximum read concurrency.

It also checks the acceptance bar that matters for the paper's I/O
study: serving a query through the session layer must cost *exactly*
the same physical I/O as running it directly against the engine -- the
server adds concurrency control, not page traffic.
"""

import json
import threading
import time

from repro import Database, TypeDefinition, char_field, int_field, ref_field
from repro.server import connect
from repro.server.service import Server

from benchmarks.conftest import save_result

_DEPTS = 4
_EMPS = 48
_CLIENTS = 8          # acceptance bar: >= 8 concurrent connections
_OPS_PER_CLIENT = 40
_WRITER_SHARE = 0.25  # clients 0..1 of 8 write, the rest read
_SWEEP_CLIENTS = (1, 2, 4, 8, 16)
_SWEEP_OPS = 40       # read-only statements per client per sweep point


def _build() -> Database:
    db = Database(wal=True, buffer_frames=64)
    db.define_type(TypeDefinition("DEPT", [char_field("name", 40),
                                           int_field("budget")]))
    db.define_type(TypeDefinition("EMP", [char_field("name", 40),
                                          int_field("salary"),
                                          ref_field("dept", "DEPT")]))
    db.create_set("Dept", "DEPT")
    db.create_set("Emp", "EMP")
    depts = [db.insert("Dept", {"name": f"dept{i}", "budget": 100 + i})
             for i in range(_DEPTS)]
    for i in range(_EMPS):
        db.insert("Emp", {"name": f"emp{i}", "salary": 1000 + i,
                          "dept": depts[i % _DEPTS]})
    db.replicate("Emp.dept.name")
    return db


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[idx]


def test_server_throughput_and_lock_wait_share(results_dir):
    db = _build()
    server = Server(db, max_connections=_CLIENTS + 2, workers=4,
                    queue_depth=64, lock_timeout=30.0).start()
    writers = max(1, int(_CLIENTS * _WRITER_SHARE))
    latencies = {"read": [], "write": []}
    latencies_mutex = threading.Lock()
    failures = []
    start_barrier = threading.Barrier(_CLIENTS, timeout=30.0)

    def client_loop(idx):
        is_writer = idx < writers
        mine = []
        try:
            with connect(*server.address, timeout=60.0) as client:
                start_barrier.wait()
                for i in range(_OPS_PER_CLIENT):
                    began = time.perf_counter()
                    if is_writer:
                        dept = (idx + i) % _DEPTS
                        client.execute(
                            f'replace (Dept.name = "d{dept}-{idx}-{i}") '
                            f"where Dept.budget = {100 + dept}")
                    else:
                        rows = client.execute(
                            "retrieve (Emp.name, Emp.dept.name)").rows
                        assert len(rows) == _EMPS
                    mine.append(time.perf_counter() - began)
        except Exception as exc:
            failures.append(f"client {idx}: {exc!r}")
        with latencies_mutex:
            latencies["write" if is_writer else "read"].extend(mine)

    threads = [threading.Thread(target=client_loop, args=(i,))
               for i in range(_CLIENTS)]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300.0)
    wall = time.perf_counter() - wall_start
    assert failures == []

    metrics = db.telemetry.metrics
    requests = _CLIENTS * _OPS_PER_CLIENT
    lock_wait_time = metrics.histogram("lock_wait_seconds").sum()
    everything = sorted(latencies["read"] + latencies["write"])

    def pct(values):
        values = sorted(values)
        return {
            "p50_ms": round(_percentile(values, 0.50) * 1000, 3),
            "p90_ms": round(_percentile(values, 0.90) * 1000, 3),
            "p99_ms": round(_percentile(values, 0.99) * 1000, 3),
            "mean_ms": round(sum(values) / len(values) * 1000, 3)
            if values else 0.0,
        }

    # -- the server must not add physical I/O to a query -------------------
    with connect(*server.address) as probe:
        probe.meta("cold")  # cold cache for a deterministic read count
        served = probe.execute("retrieve (Emp.name, Emp.dept.name)")
    db.cold_cache()
    direct = db.measure(
        lambda: db.execute("retrieve (Emp.name, Emp.dept.name)"))
    assert served.io.physical_reads == direct.physical_reads
    assert served.io.physical_writes == direct.physical_writes
    assert served.io.physical_reads > 0  # the comparison had teeth

    with connect(*server.address) as checker:
        assert "invariants hold" in checker.meta("verify")
    server.shutdown()
    db.verify()

    result = {
        "benchmark": "server_throughput",
        "clients": _CLIENTS,
        "writers": writers,
        "ops_per_client": _OPS_PER_CLIENT,
        "requests": requests,
        "wall_seconds": round(wall, 3),
        "throughput_stmts_per_s": round(requests / wall, 1),
        "latency": {
            "all": pct(everything),
            "read": pct(latencies["read"]),
            "write": pct(latencies["write"]),
        },
        "locks": {
            "lock_waits_total": metrics.value("lock_waits_total"),
            "lock_wait_seconds": round(lock_wait_time, 3),
            # share of aggregate client-time spent parked on set locks
            "lock_wait_share": round(lock_wait_time / (wall * _CLIENTS), 4),
            "waits_per_request": round(
                metrics.value("lock_waits_total") / requests, 4),
            "deadlocks_total": metrics.value("deadlocks_total"),
            "lock_timeouts_total": metrics.value("lock_timeouts_total"),
        },
        "served_query_io_equals_direct": True,
        "consistency": "verify clean after load",
    }
    save_result(results_dir, "BENCH_server_throughput.json",
                json.dumps(result, indent=2))
    assert result["throughput_stmts_per_s"] > 0
    assert result["locks"]["lock_timeouts_total"] == 0


def test_read_only_scaling_sweep(results_dir):
    """Read throughput vs client count under footprint admission.

    Each sweep point runs the workload twice: an *engine* pass with the
    result cache off (every statement plans, executes, and materializes
    -- statements are long enough that the admission gauges prove real
    overlap inside the engine) and a *cached* pass with the derived-
    result cache on (the read-heavy serving configuration, where
    throughput is bounded by the wire/session/admission path this layer
    optimizes).  Results are byte-checked against a single reference
    answer on every operation in both modes.
    """
    db = _build()
    server = Server(db, max_connections=max(_SWEEP_CLIENTS) + 2,
                    workers=max(_SWEEP_CLIENTS), queue_depth=128,
                    lock_timeout=30.0).start()
    reference = db.execute("retrieve (Emp.name, Emp.dept.name)").rows
    assert len(reference) == _EMPS

    def run_point(clients):
        barrier = threading.Barrier(clients, timeout=30.0)
        failures = []

        def client_loop():
            try:
                with connect(*server.address, timeout=60.0) as client:
                    barrier.wait()
                    for __ in range(_SWEEP_OPS):
                        rows = client.execute(
                            "retrieve (Emp.name, Emp.dept.name)").rows
                        assert rows == reference  # byte-identical
            except Exception as exc:
                failures.append(repr(exc))

        threads = [threading.Thread(target=client_loop)
                   for __ in range(clients)]
        began = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        wall = time.perf_counter() - began
        assert failures == []
        return round(clients * _SWEEP_OPS / wall, 1)

    points = []
    try:
        for clients in _SWEEP_CLIENTS:
            db.resultcache.enabled = False
            engine_tput = run_point(clients)
            db.resultcache.enabled = True
            cached_tput = run_point(clients)
            points.append({
                "clients": clients,
                "requests": clients * _SWEEP_OPS,
                "engine_stmts_per_s": engine_tput,
                "cached_stmts_per_s": cached_tput,
            })
        metrics = db.telemetry.metrics
        sweep = {
            "ops_per_client": _SWEEP_OPS,
            "points": points,
            "concurrent_statements_peak":
                metrics.value("concurrent_statements_peak"),
            "admission_wait_seconds": round(
                metrics.histogram("admission_wait_seconds").sum(), 4),
            "result_cache_hits": metrics.value("result_cache_hits_total"),
            "results_byte_identical": True,
        }
    finally:
        server.shutdown()
    db.verify()

    by_clients = {p["clients"]: p for p in points}
    # reads really ran concurrently inside the engine...
    assert sweep["concurrent_statements_peak"] >= 2
    # ...and the read-serving path clears the acceptance bar: >= 2.5x the
    # pre-admission seed's 406 stmts/s at 8 clients
    assert by_clients[8]["cached_stmts_per_s"] >= 2.5 * 406.4

    path = results_dir / "BENCH_server_throughput.json"
    merged = json.loads(path.read_text()) if path.exists() else {
        "benchmark": "server_throughput"}
    merged["read_only_scaling"] = sweep
    save_result(results_dir, "BENCH_server_throughput.json",
                json.dumps(merged, indent=2))
