"""Telemetry overhead: the observability layer must not distort the study.

Runs the Section 6 read/update mix three ways -- telemetry idle (the
default), with EXPLAIN ANALYZE metering, and with full tracing -- and
checks that per-query *I/O* is byte-identical in all three (the counters
only observe; they never cause page traffic), while wall-clock overhead
is recorded for the record in ``BENCH_telemetry_overhead.json``.
"""

import json
import random
import time

from repro.workloads import WorkloadConfig, build_model_database, run_read_query

from benchmarks.conftest import save_result

_CONFIG = WorkloadConfig(n_s=300, f=5, f_r=0.01, f_s=0.01,
                         strategy="inplace", clustered=False)
_QUERIES = 8


def _run_mode(mode: str) -> dict:
    mdb = build_model_database(_CONFIG)
    db = mdb.db
    if mode == "tracing":
        db.telemetry.tracer.enable()
    rng = random.Random(_CONFIG.seed + 1)
    io_per_query = []
    started = time.perf_counter()
    if mode == "analyze":
        cfg = _CONFIG
        span = cfg.objects_per_read
        for __ in range(_QUERIES):
            lo = rng.randrange(0, cfg.n_r - span + 1)
            db.cold_cache()
            before = db.stats.snapshot()
            db.execute(
                f"retrieve (R.field_r, R.sref.repfield) "
                f"where R.field_r >= {lo} and R.field_r <= {lo + span - 1}",
                analyze=True,
            )
            db.storage.pool.flush_all()
            io_per_query.append((db.stats.snapshot() - before).total_io)
    else:
        for __ in range(_QUERIES):
            io_per_query.append(run_read_query(mdb, rng))
    elapsed = time.perf_counter() - started
    return {
        "mode": mode,
        "io_per_query": io_per_query,
        "total_io": sum(io_per_query),
        "wall_seconds": round(elapsed, 4),
        "spans_recorded": len(db.telemetry.tracer.spans),
    }


def test_telemetry_overhead(benchmark, results_dir):
    _run_mode("off")  # warm the code paths so wall-clock deltas are honest
    results = benchmark.pedantic(
        lambda: [_run_mode(m) for m in ("off", "analyze", "tracing")],
        rounds=1, iterations=1,
    )
    by_mode = {r["mode"]: r for r in results}
    # observability never changes what the engine reads or writes
    assert by_mode["off"]["io_per_query"] == by_mode["analyze"]["io_per_query"]
    assert by_mode["off"]["io_per_query"] == by_mode["tracing"]["io_per_query"]
    assert by_mode["tracing"]["spans_recorded"] > 0
    assert by_mode["off"]["spans_recorded"] == 0
    base = by_mode["off"]["wall_seconds"]
    payload = {
        "config": {
            "n_s": _CONFIG.n_s, "f": _CONFIG.f, "f_r": _CONFIG.f_r,
            "strategy": _CONFIG.strategy, "queries": _QUERIES,
        },
        "modes": results,
        "wall_overhead_vs_off": {
            mode: round(by_mode[mode]["wall_seconds"] / base - 1.0, 4)
            if base else None
            for mode in ("analyze", "tracing")
        },
    }
    save_result(results_dir, "BENCH_telemetry_overhead.json",
                json.dumps(payload, indent=2))
