"""The paper's prose claims (Sections 6.6, 6.8, 8), machine-checked."""

from repro.costmodel import check_all_claims

from benchmarks.conftest import save_result


def test_claims(benchmark, results_dir):
    results = benchmark(check_all_claims)
    lines = []
    for result in results:
        status = "HOLDS" if result.holds else "FAILS"
        lines.append(f"[{status}] claim {result.claim_id}: {result.description}")
        lines.append(f"        {result.detail}")
    save_result(results_dir, "claims.txt", "\n".join(lines))
    failing = [r for r in results if not r.holds]
    assert not failing, [r.claim_id for r in failing]
