"""Sensitivity sweeps over model parameters the paper holds fixed.

Not paper artifacts -- the paper fixes k = 20, |S| = 10,000, s = 200 --
but natural questions about the model's robustness:

* replicated-field size ``k``: in-place read savings shrink as the hidden
  field bloats R; separate replication's S' grows with k too;
* source-object size ``s``: the bigger S objects are, the more the join
  costs and the more both strategies save;
* database size |S|: relative savings are nearly scale-free (the model is
  built from per-page densities), which justifies the scaled-down
  empirical runs.
"""

from repro.costmodel import CostParameters, ModelStrategy, Setting, percent_difference

from benchmarks.conftest import save_result


def read_pct(strategy, **kw):
    return percent_difference(
        CostParameters(**kw), strategy, Setting.UNCLUSTERED, 0.0
    )


def test_sensitivity_k(benchmark, results_dir):
    ks = (4, 20, 40, 80)
    series = benchmark(
        lambda: [read_pct(ModelStrategy.IN_PLACE, f=10, f_r=0.002, k=k) for k in ks]
    )
    lines = ["in-place read-only %diff vs replicated-field size k (f=10)"]
    for k, pct in zip(ks, series):
        lines.append(f"  k={k:3d}: {pct:+7.1f}%")
    sep = [read_pct(ModelStrategy.SEPARATE, f=10, f_r=0.002, k=k) for k in ks]
    lines.append("separate read-only %diff vs k")
    for k, pct in zip(ks, sep):
        lines.append(f"  k={k:3d}: {pct:+7.1f}%")
    save_result(results_dir, "sensitivity_k.txt", "\n".join(lines))
    # bloating R erodes (but does not erase) the in-place advantage
    assert series == sorted(series)
    assert all(pct < 0 for pct in series)


def test_sensitivity_s(benchmark, results_dir):
    sizes = (100, 200, 400, 800)
    series = benchmark(
        lambda: [read_pct(ModelStrategy.IN_PLACE, f=10, f_r=0.002, s=s) for s in sizes]
    )
    lines = ["in-place read-only %diff vs source-object size s (f=10)"]
    for s, pct in zip(sizes, series):
        lines.append(f"  s={s:4d}: {pct:+7.1f}%")
    save_result(results_dir, "sensitivity_s.txt", "\n".join(lines))
    # fatter S objects -> costlier join -> bigger replication win
    assert series == sorted(series, reverse=True)


def test_sensitivity_scale(benchmark, results_dir):
    ns = (1_000, 10_000, 100_000)
    series = benchmark(
        lambda: [read_pct(ModelStrategy.IN_PLACE, f=10, f_r=0.002, n_s=n) for n in ns]
    )
    lines = ["in-place read-only %diff vs |S| (f=10, f_r=.002)"]
    for n, pct in zip(ns, series):
        lines.append(f"  |S|={n:7,d}: {pct:+7.1f}%")
    save_result(results_dir, "sensitivity_scale.txt", "\n".join(lines))
    # near scale-free: all values within a few points of each other
    assert max(series) - min(series) < 10
