"""Read-replica scaling, staleness lag, and promotion time.

Drives a live primary/follower topology over TCP and records into
``BENCH_replication.json``:

* read throughput as replicas are added (0 / 1 / 2 followers serving a
  read-only fan-out through :class:`RoutedClient`);
* follower lag (statements behind) sampled under a write-heavy mix,
  plus the time to converge once the writes stop;
* failover promotion time (kill the primary, promote the most
  caught-up follower via :meth:`Database.recover`).

Numbers here are wall-clock, not simulated I/O: they characterise the
server layer (sockets, long-polls, the apply loop), not the paper's
cost model.
"""

import json
import threading
import time

from repro.schema.database import Database
from repro.server.client import RoutedClient, connect
from repro.server.replica import Replica, ReplicaServer
from repro.server.service import Server

from benchmarks.conftest import save_result

_EMPS = 32
_READERS = 4
_READ_SECONDS = 1.0
_WRITE_SECONDS = 1.5

SETUP_DDL = [
    "define type DEPT (name: char[16], budget: int)",
    "define type EMP (name: char[16], salary: int, dept: ref DEPT)",
    "create Dept: {own ref DEPT}",
    "create Emp: {own ref EMP}",
    "replicate Emp.dept.name",
]


def _start_topology(followers: int):
    primary = Server(Database(wal=True), port=0).start()
    with connect(*primary.address) as client:
        for text in SETUP_DDL:
            client.execute(text)
    with primary.sessions.latch:
        db = primary.db
        depts = [db.insert("Dept", {"name": f"dept{i}", "budget": 100 + i})
                 for i in range(4)]
        for i in range(_EMPS):
            db.insert("Emp", {"name": f"emp{i}", "salary": 1000 + i,
                              "dept": depts[i % 4]})
    servers = [
        ReplicaServer(
            Replica(primary.address, name=f"bench-{i}", poll_wait=0.05,
                    min_backoff=0.01, max_backoff=0.2, jitter_seed=i),
            port=0).start()
        for i in range(followers)
    ]
    _wait_converged(primary, servers)
    return primary, servers


def _wait_converged(primary, servers, timeout: float = 10.0) -> float:
    deadline = time.perf_counter() + timeout
    started = time.perf_counter()
    target = primary.hub.log.last_lsn
    while time.perf_counter() < deadline:
        if all(s.replica.applied_lsn >= target for s in servers):
            return time.perf_counter() - started
        time.sleep(0.01)
    raise AssertionError("followers failed to converge")


def _read_throughput(primary, servers) -> float:
    replicas = [s.address for s in servers]
    stop = threading.Event()
    counts = [0] * _READERS

    def reader(slot):
        with RoutedClient(primary.address, replicas=replicas or None) as c:
            while not stop.is_set():
                c.execute("retrieve (Emp.name, Emp.dept.name)")
                counts[slot] += 1

    threads = [threading.Thread(target=reader, args=(i,), daemon=True)
               for i in range(_READERS)]
    started = time.perf_counter()
    for t in threads:
        t.start()
    time.sleep(_READ_SECONDS)
    stop.set()
    for t in threads:
        t.join(timeout=10.0)
    return sum(counts) / (time.perf_counter() - started)


def test_replication_scaling_lag_and_promotion(results_dir):
    document = {"readers": _READERS, "read_seconds": _READ_SECONDS,
                "write_seconds": _WRITE_SECONDS, "throughput": []}

    # -- read throughput vs replica count --------------------------------
    for count in (0, 1, 2):
        primary, servers = _start_topology(count)
        try:
            rate = _read_throughput(primary, servers)
            document["throughput"].append(
                {"replicas": count, "reads_per_second": round(rate, 1)})
        finally:
            for s in servers:
                s.die()
            primary.die()

    # -- lag under a write-heavy mix, then convergence and promotion -----
    primary, servers = _start_topology(2)
    try:
        lag_samples: list[int] = []
        stop = threading.Event()

        def sampler():
            while not stop.is_set():
                lag_samples.append(max(s.replica.lag for s in servers))
                time.sleep(0.02)

        sampling = threading.Thread(target=sampler, daemon=True)
        sampling.start()
        writes = 0
        deadline = time.perf_counter() + _WRITE_SECONDS
        while time.perf_counter() < deadline:
            with primary.sessions.latch:
                primary.db.insert(
                    "Emp", {"name": f"w{writes}", "salary": writes,
                            "dept": None})
            writes += 1
        stop.set()
        sampling.join(timeout=5.0)
        converge_s = _wait_converged(primary, servers)
        document["write_mix"] = {
            "writes": writes,
            "writes_per_second": round(writes / _WRITE_SECONDS, 1),
            "max_lag_statements": max(lag_samples, default=0),
            "mean_lag_statements": round(
                sum(lag_samples) / len(lag_samples), 2) if lag_samples else 0,
            "converge_seconds_after_stop": round(converge_s, 4),
        }

        primary_lsn = primary.hub.log.last_lsn
        primary.die()
        best = max(servers, key=lambda s: s.replica.applied_lsn)
        promotion = best.replica.promote()
        document["promotion"] = {
            "applied_lsn": promotion["applied_lsn"],
            "primary_last_lsn": primary_lsn,
            "seconds": promotion["seconds"],
        }
        assert promotion["applied_lsn"] == primary_lsn
    finally:
        for s in servers:
            s.die()
        primary.die()

    # adding replicas must not collapse read throughput; the exact gain
    # is machine-dependent, so the bar is generous
    base = document["throughput"][0]["reads_per_second"]
    with_two = document["throughput"][2]["reads_per_second"]
    assert with_two > base * 0.5
    assert document["promotion"]["seconds"] < 10.0
    save_result(results_dir, "BENCH_replication.json",
                json.dumps(document, indent=2))
