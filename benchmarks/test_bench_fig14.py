"""Figure 14 -- selected values of C_read / C_update, clustered access."""

from repro.costmodel import (
    PAPER_FIGURE14,
    Setting,
    figure14,
    render_selected_values,
)

from benchmarks.conftest import save_result


def test_figure14(benchmark, results_dir):
    rows = benchmark(figure14)
    text = render_selected_values(rows, Setting.CLUSTERED, PAPER_FIGURE14)
    save_result(results_dir, "figure14_selected_values.txt", text)

    deltas = []
    for row in rows:
        want_read, want_update = PAPER_FIGURE14[row.f][row.strategy]
        deltas.append(abs(row.c_read - want_read))
        deltas.append(abs(row.c_update - want_update))
    assert max(deltas) <= 2
    assert sum(1 for d in deltas if d == 0) >= 6
