"""An interactive shell for the field-replication DBMS.

Usage::

    python -m repro.cli                       # interactive session
    python -m repro.cli script.extra          # run a script file, then exit
    echo "..." | python -m repro.cli          # run a piped script
    python -m repro.cli --snapshot db.frdb    # start from a snapshot
    python -m repro.cli --save db.frdb        # snapshot the session on exit
    python -m repro.cli --connect host:port   # drive a remote repro.server

Statements are the EXTRA-ish DDL (``define type`` / ``create`` /
``replicate`` / ``build btree on`` / ``drop replicate|index|set``) and
queries (``retrieve`` / ``replace`` / ``delete``, plus ``explain <query>``
to see the plan without running it and ``explain analyze <query>`` to run
it with a per-operator I/O breakdown); terminate interactive statements
with ``;`` or a blank line.  Connected to a server, ``begin`` / ``commit``
/ ``abort`` group statements under held locks.  Meta-commands:

    \\describe          render the whole schema
    \\stats [prom]      cumulative I/O counters + engine metrics
                       (``prom``: Prometheus exposition format)
    \\trace on|off      toggle structured query tracing (connected: each
                       statement propagates a client-minted trace id and
                       the dump shows the client->server->engine tree)
    \\trace clear       drop collected spans
    \\trace dump [file] print (or export as JSONL) the trace
    \\top [N [SECS]]    live server dashboard over the stats verb
                       (connected only; N frames, SECS apart; default 1)
    \\monitor           workload observations + model-vs-actual drift
    \\fingerprints      per-statement-fingerprint analytics (calls, I/O,
                       lock waits, WAL bytes, p50/p95/p99 latency, and
                       the result cache's per-shape hit rate)
    \\cache [clear]     derived-result cache: entries, bytes, hit/miss/
                       invalidation counters, hottest entries
                       (``clear`` drops every entry)
    \\ledger            replication cost/benefit ledger: measured net page
                       benefit per replicated path (charges vs credits)
    \\waits             wait-event accounting: where statement wall-clock
                       went (engine latch, locks, buffer I/O, WAL flush,
                       queue, replication acks, cpu residual)
    \\ash [SECS]        active session history: sampled per-session wait
                       states over the last SECS seconds (connected only)
    \\alerts            threshold alerts: firing/resolved state plus the
                       recent transition history (connected only)
    \\set joinmode M    functional-join strategy: ``naive`` (row-at-a-time
                       OID probes) or ``batched`` (sort-and-dedupe sweeps;
                       the default); connected, ``default`` reverts the
                       session to the server's setting
    \\set cache on|off  result cache for retrieves (local: flips the
                       database default; connected: a per-session
                       override, ``default`` reverts to the server's)
    \\verify            run the replication consistency checker
    \\doctor [repair]   diagnose (and with ``repair`` fix) replica drift
    \\recover           replay the WAL after an injected crash
    \\cold              flush + empty the buffer pool
    \\limit N           cap rendered rows at N (``off`` for no cap)
    \\shutdown          ask a connected server to drain and stop
    \\help              this text
    \\quit              leave

The shell's database runs with the write-ahead log enabled, so every
statement is atomic and a session survives injected faults: a failed
statement prints one line and the next prompt appears.  In script mode,
any failed statement makes the exit status nonzero.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError

PROMPT = "extra> "
CONTINUATION = "   ..> "

DEFAULT_ROW_LIMIT = 50

#: meta-commands answered by the server when the shell is connected.
#: ``trace`` is deliberately absent: connected tracing is client-side,
#: so the dump shows the stitched client->server->engine tree.
_FORWARDED_META = ("describe", "stats", "monitor", "fingerprints", "ledger",
                   "verify", "doctor", "recover", "cold", "set",
                   "replication", "cache", "waits", "ash", "alerts")


def render_result(result, limit: int | None = DEFAULT_ROW_LIMIT) -> str:
    """Render rows as a fixed-width table plus the plan and I/O.

    ``limit`` caps the rendered rows (None or 0: render everything) --
    the row *count* line always reports the true total.
    """
    lines = []
    cap = len(result.rows) if not limit else limit
    if tuple(result.columns) != ("oid",):
        widths = [
            max(len(col), *(len(str(row[i])) for row in result.rows), 1)
            if result.rows
            else len(col)
            for i, col in enumerate(result.columns)
        ]
        header = " | ".join(col.ljust(w) for col, w in zip(result.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in result.rows[:cap]:
            lines.append(" | ".join(str(v).ljust(w) for v, w in zip(row, widths)))
        if len(result.rows) > cap:
            lines.append(f"... ({len(result.rows) - cap} more rows)")
    lines.append(f"({len(result.rows)} row(s))   plan: {result.plan}")
    io_line = (f"I/O: {result.io.total_io} "
               f"({result.io.physical_reads} reads, "
               f"{result.io.physical_writes} writes)")
    cache = getattr(result, "cache", None)
    if cache:
        io_line += f"   cache: {cache}"
    lines.append(io_line)
    return "\n".join(lines)


def render_trace(trace: dict) -> str:
    """Render one stitched trace as an indented span tree.

    Children sort by span id (creation order); each line shows the span's
    wall time, its inclusive physical I/O, and the attributes that matter
    at a glance (statement text, lock waits, record counts).
    """
    spans = trace.get("spans") or []
    children: dict = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.get("span_id", 0))
    lines = [f"trace {trace.get('trace_id', '?')}"]

    def walk(span: dict, depth: int) -> None:
        io = span.get("io") or {}
        total = io.get("physical_reads", 0) + io.get("physical_writes", 0)
        attrs = span.get("attrs") or {}
        notes = []
        for key in ("statement", "resources", "waited_ms", "records",
                    "kind", "note"):
            if key in attrs and attrs[key] not in ("", [], None):
                notes.append(f"{key}={attrs[key]}")
        lines.append(
            f"{'  ' * depth}{span.get('name', '?'):<14} "
            f"{span.get('duration_ms', 0.0):9.3f}ms  io={total}"
            + (("  " + " ".join(str(n) for n in notes)) if notes else ""))
        for child in children.get(span.get("span_id"), []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)


class Shell:
    """One interactive session over a local database or a remote server."""

    def __init__(self, out=None, db=None, client=None,
                 limit: int | None = DEFAULT_ROW_LIMIT) -> None:
        if client is None and db is None:
            from repro.schema.database import Database

            db = Database(wal=True)
        self.db = db
        self.client = client
        self.out = out if out is not None else sys.stdout
        self.limit = limit
        self.done = False
        #: statements / meta-commands that failed (script exit status)
        self.errors = 0

    def write(self, text: str) -> None:
        print(text, file=self.out)

    def fail(self, message: str) -> None:
        self.errors += 1
        self.write(message)

    # -- dispatch -----------------------------------------------------------

    def run_meta(self, line: str) -> None:
        """Dispatch one backslash command; errors never kill the session."""
        try:
            self._dispatch_meta(line)
        except ReproError as exc:
            self.fail(f"error: {exc}")

    def _dispatch_meta(self, line: str) -> None:
        words = line.strip().split()
        command = words[0][1:]
        args = words[1:]
        if command in ("quit", "q", "exit"):
            self.done = True
        elif command == "help":
            self.write(__doc__ or "")
        elif command == "limit":
            self._set_limit(args)
        elif command == "shutdown":
            if self.client is None:
                self.fail("error: \\shutdown needs a connected server "
                          "(--connect host:port)")
                return
            self.write(self.client.shutdown() or "server draining")
            self.done = True
        elif command == "top":
            self._run_top(args)
        elif self.client is not None:
            if command == "trace":
                self._run_client_trace(args)
            elif command == "promote":
                import json as _json

                self.write(_json.dumps(self.client.promote(), indent=2))
            elif command in _FORWARDED_META:
                self.write(self.client.meta(command, *args))
            else:
                self.fail(f"unknown meta-command \\{command} (try \\help)")
        elif command == "describe":
            from repro.schema.describe import describe_database

            self.write(describe_database(self.db) or "(empty schema)")
        elif command == "stats":
            if args and args[0] == "prom":
                self.write(self.db.telemetry.metrics.render_prometheus().rstrip("\n"))
                return
            stats = self.db.stats
            self.write(
                f"physical reads {stats.physical_reads}, writes "
                f"{stats.physical_writes}, logical reads {stats.logical_reads}, "
                f"buffer hits {stats.buffer_hits}"
            )
            self.write(
                f"evictions {stats.evictions}, "
                f"dirty writebacks {stats.dirty_writebacks}"
            )
            self.write(f"join mode {self.db.join_mode}")
            self.write(self.db.telemetry.metrics.render_text())
        elif command == "trace":
            self.run_trace(args)
        elif command == "set":
            self._run_set(args)
        elif command == "monitor":
            self.write(self.db.monitor.report())
        elif command == "fingerprints":
            self.write(self.db.telemetry.statements.render_text(
                cache_rates=self.db.resultcache.fingerprint_rates()))
        elif command == "cache":
            if args and args[0] == "clear":
                dropped = self.db.resultcache.invalidate_all(reason="all")
                self.write(f"result cache cleared ({dropped} entries "
                           f"dropped)")
            else:
                self.write(self.db.resultcache.render_text())
        elif command == "ledger":
            self.write(self.db.telemetry.repledger.render_text())
        elif command == "waits":
            self.write(self.db.telemetry.waits.render_text())
        elif command in ("ash", "alerts"):
            self.fail(f"error: \\{command} needs a connected server "
                      "(--connect host:port); embedded sessions have no "
                      "sampler")
        elif command == "verify":
            self.db.verify()
            self.write("all replication invariants hold")
        elif command == "doctor":
            report = self.db.doctor(repair=bool(args) and args[0] == "repair")
            self.write(report.render())
        elif command == "recover":
            if not self.db.recovery.needs_recovery:
                self.write("nothing to recover (no crash since the last recovery)")
            else:
                self.write(str(self.db.recover()))
        elif command == "cold":
            self.db.cold_cache()
            self.write("buffer pool flushed and emptied")
        else:
            self.fail(f"unknown meta-command \\{command} (try \\help)")

    def _set_limit(self, args: list[str]) -> None:
        if not args:
            current = self.limit if self.limit else "off"
            self.write(f"row limit: {current}")
            return
        if args[0] in ("off", "none", "0"):
            self.limit = None
            self.write("row limit off")
            return
        try:
            value = int(args[0])
        except ValueError:
            self.fail(f"error: \\limit takes a number or 'off', not {args[0]!r}")
            return
        if value < 0:
            self.fail("error: \\limit takes a non-negative number")
            return
        self.limit = value or None
        self.write(f"row limit: {self.limit if self.limit else 'off'}")

    def _run_set(self, args: list[str]) -> None:
        """Embedded ``\\set``: flips the local database's knobs."""
        if not args or args[0] not in ("joinmode", "cache"):
            self.fail("error: usage: \\set joinmode naive|batched"
                      " | \\set cache on|off")
            return
        if args[0] == "cache":
            cache = self.db.resultcache
            if len(args) < 2:
                self.write(f"result cache {'on' if cache.enabled else 'off'}")
                return
            if args[1] not in ("on", "off"):
                self.fail(f"error: cache must be 'on' or 'off', "
                          f"not {args[1]!r}")
                return
            cache.enabled = args[1] == "on"
            self.write(f"result cache {'on' if cache.enabled else 'off'}")
            return
        if len(args) < 2:
            self.write(f"join mode {self.db.join_mode}")
            return
        try:
            self.db.join_mode = args[1]
        except ValueError as exc:
            self.fail(f"error: {exc}")
            return
        self.write(f"join mode {self.db.join_mode}")

    def run_trace(self, args: list[str]) -> None:
        tracer = self.db.telemetry.tracer
        mode = args[0] if args else "dump"
        if mode == "on":
            tracer.enable()
            self.write("tracing on")
        elif mode == "off":
            tracer.disable()
            self.write("tracing off")
        elif mode == "clear":
            tracer.clear()
            self.write("trace cleared")
        elif mode == "dump":
            if len(args) > 1:
                try:
                    written = tracer.export(args[1])
                except OSError as exc:
                    self.fail(f"error: cannot write trace: {exc}")
                    return
                self.write(f"wrote {written} span(s) to {args[1]}")
            else:
                self.write(tracer.to_jsonl() or "(no spans recorded)")
        else:
            self.fail(f"unknown \\trace mode {mode!r} (on|off|clear|dump)")

    def _run_client_trace(self, args: list[str]) -> None:
        """Connected ``\\trace``: client-side trace propagation."""
        client = self.client
        mode = args[0] if args else "dump"
        if mode == "on":
            client.trace_enabled = True
            self.write("tracing on")
        elif mode == "off":
            client.trace_enabled = False
            self.write("tracing off")
        elif mode == "clear":
            client.traces.clear()
            self.write("trace cleared")
        elif mode == "dump":
            if not client.traces:
                self.write("(no spans recorded)")
            elif len(args) > 1:
                import json

                try:
                    with open(args[1], "w", encoding="utf-8") as handle:
                        count = 0
                        for trace in client.traces:
                            for span in trace.get("spans") or []:
                                handle.write(json.dumps(span) + "\n")
                                count += 1
                except OSError as exc:
                    self.fail(f"error: cannot write trace: {exc}")
                    return
                self.write(f"wrote {count} span(s) to {args[1]}")
            else:
                self.write("\n".join(render_trace(t) for t in client.traces))
        else:
            self.fail(f"unknown \\trace mode {mode!r} (on|off|clear|dump)")

    def _run_top(self, args: list[str]) -> None:
        if self.client is None:
            self.fail("error: \\top needs a connected server "
                      "(--connect host:port)")
            return
        try:
            iterations = int(args[0]) if args else 1
            interval = float(args[1]) if len(args) > 1 else 1.0
        except ValueError:
            self.fail("error: \\top takes [iterations [interval-seconds]]")
            return
        from repro.server.top import run_top

        run_top(self.client, iterations=max(1, iterations),
                interval=interval, out=self.out)

    def run_statement(self, statement: str) -> None:
        if self.client is not None:
            self._run_remote_statement(statement)
            return
        first = statement.split(None, 1)[0]
        if first == "explain":
            rest = statement[len("explain"):].strip()
            if rest.split(None, 1)[:1] == ["analyze"]:
                from repro.query.analyze import render_analyze

                result = self.db.execute(rest[len("analyze"):].strip(),
                                         analyze=True)
                self.write(render_analyze(result))
                tail = f"({len(result.rows)} row(s))   plan: {result.plan}"
                if result.cache:
                    tail += f"   cache: {result.cache}"
                self.write(tail)
                return
            from repro.query.runner import explain_text

            self.write(explain_text(self.db, rest))
            return
        from repro.schema.parser import _DDL_STARTERS, _QUERY_STARTERS, execute_ddl

        if first in _QUERY_STARTERS:
            self.write(render_result(self.db.execute(statement), self.limit))
        elif first in _DDL_STARTERS:
            execute_ddl(self.db, statement)
            self.write("ok")
        else:
            self.fail(f"unrecognised statement: {statement!r} (try \\help)")

    def _run_remote_statement(self, statement: str) -> None:
        from repro.server.client import ClientResult

        outcome = self.client.execute(statement)
        if isinstance(outcome, ClientResult):
            self.write(render_result(outcome, self.limit))
        elif outcome == "ddl":
            self.write("ok")
        else:
            self.write(str(outcome))

    def run_block(self, text: str) -> None:
        """Run a block of statements, reporting errors without dying."""
        from repro.schema.parser import split_script

        try:
            statements = split_script(text)
        except ReproError as exc:
            self.fail(f"error: {exc}")
            return
        for statement in statements:
            if statement.startswith("\\"):
                self.run_meta(statement)
                if self.done:
                    return
                continue
            try:
                self.run_statement(statement)
            except ReproError as exc:
                self.fail(f"error: {exc}")

    # -- REPL loop -----------------------------------------------------------

    def interact(self, lines) -> None:
        buffer: list[str] = []
        depth = 0
        for line in lines:
            stripped = line.rstrip("\n")
            if stripped.strip().startswith("\\"):
                self.run_meta(stripped)
                if self.done:
                    return
                continue
            depth += stripped.count("(") - stripped.count(")")
            buffer.append(stripped)
            complete = depth <= 0 and (
                stripped.rstrip().endswith(";") or not stripped.strip()
            )
            if complete:
                block = "\n".join(buffer).strip()
                buffer, depth = [], 0
                if block:
                    self.run_block(block)
        if buffer:
            self.run_block("\n".join(buffer))

    def close(self) -> None:
        if self.client is not None:
            self.client.close()


def _build_shell(args) -> Shell | None:
    """Construct the session (local or remote); None + message on failure."""
    if args.connect:
        if args.snapshot or args.save:
            print("error: --snapshot/--save need a local session, "
                  "not --connect", file=sys.stderr)
            return None
        host, __, port_text = args.connect.rpartition(":")
        from repro.server.client import connect

        try:
            client = connect(host or "127.0.0.1", int(port_text))
        except (ValueError, OSError, ReproError) as exc:
            print(f"error: cannot connect to {args.connect}: {exc}",
                  file=sys.stderr)
            return None
        if args.join_mode:
            client.meta("set", "joinmode", args.join_mode)
        if args.cache:
            client.meta("set", "cache", "on")
        return Shell(client=client, limit=args.limit or None)
    from repro.snapshot import open_database

    try:
        db = open_database(args.snapshot)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    if args.join_mode:
        db.join_mode = args.join_mode
    if args.cache:
        db.resultcache.enabled = True
    return Shell(db=db, limit=args.limit or None)


def main(argv: list[str] | None = None) -> int:
    """Entry point: run a script file, a pipe, or an interactive session."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="interactive shell for the field-replication DBMS")
    parser.add_argument("script", nargs="?",
                        help="script file to run (default: stdin / interactive)")
    parser.add_argument("--snapshot", metavar="FILE",
                        help="start the session from a snapshot")
    parser.add_argument("--save", metavar="FILE",
                        help="snapshot the session's database on exit")
    parser.add_argument("--connect", metavar="HOST:PORT",
                        help="drive a running repro.server instead of a "
                             "local database")
    parser.add_argument("--limit", type=int, default=DEFAULT_ROW_LIMIT,
                        help="rendered-row cap (0: no cap)")
    parser.add_argument("--join-mode", choices=("naive", "batched"),
                        default=None,
                        help="functional-join strategy for the session "
                             "(local: sets the database knob; connected: "
                             "sends \\set joinmode)")
    parser.add_argument("--cache", action="store_true",
                        help="enable the derived-result cache for this "
                             "session (local: flips the database default; "
                             "connected: sends \\set cache on)")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    shell = _build_shell(args)
    if shell is None:
        return 1
    try:
        if args.script:
            try:
                with open(args.script, encoding="utf-8") as handle:
                    text = handle.read()
            except OSError as exc:
                print(f"error: cannot read script {args.script!r}: {exc}",
                      file=sys.stderr)
                return 1
            shell.run_block(text)
        elif sys.stdin.isatty():  # pragma: no cover - interactive only
            print("field-replication OODBMS shell -- \\help for help")
            while not shell.done:
                try:
                    first = input(PROMPT)
                except EOFError:
                    break
                lines = [first]
                depth = first.count("(") - first.count(")")
                while depth > 0 or (first.strip() and not first.rstrip().endswith(";")
                                    and not first.strip().startswith("\\")):
                    try:
                        nxt = input(CONTINUATION)
                    except EOFError:
                        break
                    if not nxt.strip() and depth <= 0:
                        break
                    depth += nxt.count("(") - nxt.count(")")
                    lines.append(nxt)
                    first = nxt
                shell.run_block("\n".join(lines))
            shell.errors = 0  # interactive sessions exit clean
        else:
            shell.run_block(sys.stdin.read())
        if args.save and shell.db is not None:
            from repro.snapshot import save_database

            try:
                save_database(shell.db, args.save)
            except (OSError, ReproError) as exc:
                print(f"error: cannot save snapshot: {exc}", file=sys.stderr)
                return 1
        return 1 if shell.errors else 0
    finally:
        shell.close()


if __name__ == "__main__":
    raise SystemExit(main())
