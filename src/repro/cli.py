"""An interactive shell for the field-replication DBMS.

Usage::

    python -m repro.cli                 # interactive session
    python -m repro.cli script.extra    # run a script file, then exit
    echo "..." | python -m repro.cli    # run a piped script

Statements are the EXTRA-ish DDL (``define type`` / ``create`` /
``replicate`` / ``build btree on`` / ``drop replicate|index|set``) and
queries (``retrieve`` / ``replace`` / ``delete``, plus ``explain <query>``
to see the plan without running it and ``explain analyze <query>`` to run
it with a per-operator I/O breakdown); terminate interactive statements
with ``;`` or a blank line.  Meta-commands:

    \\describe          render the whole schema
    \\stats [prom]      cumulative I/O counters + engine metrics
                       (``prom``: Prometheus exposition format)
    \\trace on|off      toggle structured query tracing
    \\trace clear       drop collected spans
    \\trace dump [file] print (or export) the JSONL trace
    \\monitor           workload observations + model-vs-actual drift
    \\verify            run the replication consistency checker
    \\doctor [repair]   diagnose (and with ``repair`` fix) replica drift
    \\recover           replay the WAL after an injected crash
    \\cold              flush + empty the buffer pool
    \\help              this text
    \\quit              leave

The shell's database runs with the write-ahead log enabled, so every
statement is atomic and a session survives injected faults: a failed
statement prints one line and the next prompt appears.
"""

from __future__ import annotations

import sys

from repro.errors import ReproError
from repro.query.executor import QueryResult
from repro.schema.database import Database
from repro.schema.describe import describe_database
from repro.schema.parser import _DDL_STARTERS, _QUERY_STARTERS, execute_ddl, split_script

PROMPT = "extra> "
CONTINUATION = "   ..> "


def render_result(result: QueryResult) -> str:
    """Render rows as a fixed-width table plus the plan and I/O."""
    lines = []
    if result.columns != ("oid",):
        widths = [
            max(len(col), *(len(str(row[i])) for row in result.rows), 1)
            if result.rows
            else len(col)
            for i, col in enumerate(result.columns)
        ]
        header = " | ".join(col.ljust(w) for col, w in zip(result.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in result.rows[:50]:
            lines.append(" | ".join(str(v).ljust(w) for v, w in zip(row, widths)))
        if len(result.rows) > 50:
            lines.append(f"... ({len(result.rows) - 50} more rows)")
    lines.append(f"({len(result.rows)} row(s))   plan: {result.plan}")
    lines.append(f"I/O: {result.io.total_io} "
                 f"({result.io.physical_reads} reads, {result.io.physical_writes} writes)")
    return "\n".join(lines)


class Shell:
    """One interactive session over a fresh database."""

    def __init__(self, out=None) -> None:
        self.db = Database(wal=True)
        self.out = out if out is not None else sys.stdout
        self.done = False

    def write(self, text: str) -> None:
        print(text, file=self.out)

    # -- dispatch -----------------------------------------------------------

    def run_meta(self, line: str) -> None:
        """Dispatch one backslash command; errors never kill the session."""
        try:
            self._dispatch_meta(line)
        except ReproError as exc:
            self.write(f"error: {exc}")

    def _dispatch_meta(self, line: str) -> None:
        words = line.strip().split()
        command = words[0][1:]
        args = words[1:]
        if command in ("quit", "q", "exit"):
            self.done = True
        elif command == "describe":
            self.write(describe_database(self.db) or "(empty schema)")
        elif command == "stats":
            if args and args[0] == "prom":
                self.write(self.db.telemetry.metrics.render_prometheus().rstrip("\n"))
                return
            stats = self.db.stats
            self.write(
                f"physical reads {stats.physical_reads}, writes "
                f"{stats.physical_writes}, logical reads {stats.logical_reads}, "
                f"buffer hits {stats.buffer_hits}"
            )
            self.write(
                f"evictions {stats.evictions}, "
                f"dirty writebacks {stats.dirty_writebacks}"
            )
            self.write(self.db.telemetry.metrics.render_text())
        elif command == "trace":
            self.run_trace(args)
        elif command == "monitor":
            self.write(self.db.monitor.report())
        elif command == "verify":
            self.db.verify()
            self.write("all replication invariants hold")
        elif command == "doctor":
            report = self.db.doctor(repair=bool(args) and args[0] == "repair")
            self.write(report.render())
        elif command == "recover":
            if not self.db.recovery.needs_recovery:
                self.write("nothing to recover (no crash since the last recovery)")
            else:
                self.write(str(self.db.recover()))
        elif command == "cold":
            self.db.cold_cache()
            self.write("buffer pool flushed and emptied")
        elif command == "help":
            self.write(__doc__ or "")
        else:
            self.write(f"unknown meta-command \\{command} (try \\help)")

    def run_trace(self, args: list[str]) -> None:
        tracer = self.db.telemetry.tracer
        mode = args[0] if args else "dump"
        if mode == "on":
            tracer.enable()
            self.write("tracing on")
        elif mode == "off":
            tracer.disable()
            self.write("tracing off")
        elif mode == "clear":
            tracer.clear()
            self.write("trace cleared")
        elif mode == "dump":
            if len(args) > 1:
                try:
                    written = tracer.export(args[1])
                except OSError as exc:
                    self.write(f"error: cannot write trace: {exc}")
                    return
                self.write(f"wrote {written} span(s) to {args[1]}")
            else:
                self.write(tracer.to_jsonl() or "(no spans recorded)")
        else:
            self.write(f"unknown \\trace mode {mode!r} (on|off|clear|dump)")

    def run_statement(self, statement: str) -> None:
        first = statement.split(None, 1)[0]
        if first == "explain":
            rest = statement[len("explain"):].strip()
            if rest.split(None, 1)[:1] == ["analyze"]:
                from repro.query.analyze import render_analyze

                result = self.db.execute(rest[len("analyze"):].strip(),
                                         analyze=True)
                self.write(render_analyze(result))
                self.write(f"({len(result.rows)} row(s))   plan: {result.plan}")
                return
            from repro.query.runner import explain_text

            self.write(explain_text(self.db, rest))
        elif first in _QUERY_STARTERS:
            self.write(render_result(self.db.execute(statement)))
        elif first in _DDL_STARTERS:
            execute_ddl(self.db, statement)
            self.write("ok")
        else:
            self.write(f"unrecognised statement: {statement!r} (try \\help)")

    def run_block(self, text: str) -> None:
        """Run a block of statements, reporting errors without dying."""
        try:
            statements = split_script(text)
        except ReproError as exc:
            self.write(f"error: {exc}")
            return
        for statement in statements:
            if statement.startswith("\\"):
                self.run_meta(statement)
                if self.done:
                    return
                continue
            try:
                self.run_statement(statement)
            except ReproError as exc:
                self.write(f"error: {exc}")

    # -- REPL loop -----------------------------------------------------------

    def interact(self, lines) -> None:
        buffer: list[str] = []
        depth = 0
        for line in lines:
            stripped = line.rstrip("\n")
            if stripped.strip().startswith("\\"):
                self.run_meta(stripped)
                if self.done:
                    return
                continue
            depth += stripped.count("(") - stripped.count(")")
            buffer.append(stripped)
            complete = depth <= 0 and (
                stripped.rstrip().endswith(";") or not stripped.strip()
            )
            if complete:
                block = "\n".join(buffer).strip()
                buffer, depth = [], 0
                if block:
                    self.run_block(block)
        if buffer:
            self.run_block("\n".join(buffer))


def main(argv: list[str] | None = None) -> int:
    """Entry point: run a script file, a pipe, or an interactive session."""
    argv = sys.argv[1:] if argv is None else argv
    shell = Shell()
    if argv:
        with open(argv[0], encoding="utf-8") as handle:
            shell.run_block(handle.read())
        return 0
    if sys.stdin.isatty():  # pragma: no cover - interactive only
        print("field-replication OODBMS shell -- \\help for help")
        while not shell.done:
            try:
                first = input(PROMPT)
            except EOFError:
                break
            lines = [first]
            depth = first.count("(") - first.count(")")
            while depth > 0 or (first.strip() and not first.rstrip().endswith(";")
                                and not first.strip().startswith("\\")):
                try:
                    nxt = input(CONTINUATION)
                except EOFError:
                    break
                if not nxt.strip() and depth <= 0:
                    break
                depth += nxt.count("(") - nxt.count(")")
                lines.append(nxt)
                first = nxt
            shell.run_block("\n".join(lines))
        return 0
    shell.run_block(sys.stdin.read())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
