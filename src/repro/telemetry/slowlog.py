"""A ring-buffer slow-query log.

Every statement whose wall-clock time reaches ``threshold_ms`` leaves one
record: the statement text, a plan summary, its physical I/O, the
lock-wait breakdown (total wait plus the per-resource shares the lock
manager attributed), and the outcome (``ok`` or the error type).  The
buffer is bounded (``capacity`` newest records are kept), so a
long-running server's log never grows without limit.

The log lives on :class:`repro.telemetry.Telemetry` next to the tracer
and the metrics registry; the server records into it from the session
layer (where lock waits are known) and the embedded engine from
:func:`repro.query.runner.execute_text`.  ``slow_queries_total`` counts
every record ever taken, so a scrape sees slow-query *rate* even after
the ring has wrapped.

Observing is thread-safe and does no I/O of its own: a record is a plain
dict snapshot of numbers the caller already had.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.telemetry.metrics import NULL_METRICS
from repro.telemetry.waitevents import base_event

#: default threshold: sub-threshold statements leave no record at all.
DEFAULT_THRESHOLD_MS = 250.0
DEFAULT_CAPACITY = 256


class SlowQueryLog:
    """Bounded newest-last log of statements over the latency threshold."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 threshold_ms: float = DEFAULT_THRESHOLD_MS,
                 metrics=None) -> None:
        self.threshold_ms = threshold_ms
        self._mutex = threading.Lock()
        self._entries: deque = deque(maxlen=max(1, capacity))
        self._m_slow = (metrics if metrics is not None
                        else NULL_METRICS).counter(
            "slow_queries_total",
            "statements at or over the slow-query threshold")
        self._m_slow.inc(0)  # expose a zero sample before the first record

    @property
    def capacity(self) -> int:
        return self._entries.maxlen or 0

    def configure(self, threshold_ms: float | None = None,
                  capacity: int | None = None) -> None:
        """Adjust the threshold and/or ring size (entries are kept)."""
        if threshold_ms is not None:
            self.threshold_ms = threshold_ms
        if capacity is not None and capacity != self.capacity:
            with self._mutex:
                self._entries = deque(self._entries, maxlen=max(1, capacity))

    # -- recording -----------------------------------------------------------

    def observe(self, statement: str, duration_ms: float, plan: str = "",
                io: dict | None = None, lock_wait_ms: float = 0.0,
                lock_waits: list | None = None, session: str = "",
                outcome: str = "ok", rows: int | None = None,
                fingerprint: str = "", cache: str = "",
                waits: dict | None = None) -> bool:
        """Record one finished statement if it was slow; True if kept.

        ``waits`` is the statement's wait-event breakdown in *seconds*
        (from the wait collector); the record keeps it in milliseconds
        plus the dominant wait class (``lock:*`` collapsed to ``lock``).
        """
        if duration_ms < self.threshold_ms:
            return False
        by_class: dict[str, float] = {}
        for event, seconds in (waits or {}).items():
            cls = base_event(event)
            by_class[cls] = by_class.get(cls, 0.0) + seconds * 1000.0
        dominant = (max(by_class.items(), key=lambda kv: kv[1])[0]
                    if by_class else "")
        record = {
            "ts": round(time.time(), 3),
            "session": session,
            "statement": statement,
            "fingerprint": fingerprint,
            "plan": plan,
            "duration_ms": round(duration_ms, 3),
            "io": dict(io or {}),
            "lock_wait_ms": round(lock_wait_ms, 3),
            #: per-resource shares: [{"resource", "mode", "waited_ms"}, ...]
            "lock_waits": list(lock_waits or []),
            #: wait-event class -> milliseconds (the statement's full
            #: wall-clock attribution, cpu residual included)
            "waits": {cls: round(ms, 3)
                      for cls, ms in sorted(by_class.items())},
            "dominant_wait": dominant,
            "outcome": outcome,
            "rows": rows,
            #: result-cache disposition: "hit" | "miss" | "bypass" | ""
            "cache": cache,
        }
        with self._mutex:
            self._entries.append(record)
        self._m_slow.inc()
        return True

    # -- reading -------------------------------------------------------------

    def entries(self) -> list[dict]:
        """Every retained record, oldest first."""
        with self._mutex:
            return [dict(e) for e in self._entries]

    def tail(self, n: int = 5) -> list[dict]:
        """The ``n`` most recent records, oldest first."""
        with self._mutex:
            items = list(self._entries)
        return [dict(e) for e in items[-n:]]

    def grouped(self) -> list[dict]:
        """Retained records grouped by fingerprint, ranked by the time
        sunk into their dominant wait class (ties by total latency).

        A group whose statements burned 800ms blocked on locks outranks
        one that spent 900ms of honest cpu: the wait-dominated group is
        the one an operator can actually fix.  Records without a
        fingerprint (pre-upgrade entries) group under their raw statement
        text instead of listing as duplicates.
        """
        groups: dict[str, dict] = {}
        for e in self.entries():
            key = e.get("fingerprint") or e["statement"]
            group = groups.get(key)
            if group is None:
                group = {"fingerprint": e.get("fingerprint", ""),
                         "statement": e["statement"], "count": 0,
                         "total_ms": 0.0, "max_ms": 0.0, "last_ts": 0.0,
                         "waits": {}}
                groups[key] = group
            group["count"] += 1
            group["total_ms"] += e["duration_ms"]
            group["max_ms"] = max(group["max_ms"], e["duration_ms"])
            group["last_ts"] = max(group["last_ts"], e["ts"])
            for cls, ms in (e.get("waits") or {}).items():
                group["waits"][cls] = group["waits"].get(cls, 0.0) + ms
        for g in groups.values():
            waits = g["waits"]
            if waits:
                dominant, dominant_ms = max(waits.items(),
                                            key=lambda kv: kv[1])
            else:
                dominant, dominant_ms = "", 0.0
            g["dominant_wait"] = dominant
            g["dominant_wait_ms"] = round(dominant_ms, 3)
            g["waits"] = {cls: round(ms, 3)
                          for cls, ms in sorted(waits.items())}
        rows = sorted(groups.values(),
                      key=lambda g: (-g["dominant_wait_ms"], -g["total_ms"],
                                     g["statement"]))
        for g in rows:
            g["total_ms"] = round(g["total_ms"], 3)
            g["max_ms"] = round(g["max_ms"], 3)
        return rows

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()

    def render_text(self) -> str:
        """A human-readable tail, one line per record, newest last."""
        entries = self.entries()
        if not entries:
            return "(no slow queries recorded)"
        lines = []
        for e in entries:
            cache = e.get("cache") or ""
            tag = f"  cache:{cache}" if cache else ""
            dominant = e.get("dominant_wait") or ""
            wait_tag = f"  wait:{dominant}" if dominant else ""
            lines.append(
                f"{e['duration_ms']:9.1f}ms  lock {e['lock_wait_ms']:7.1f}ms  "
                f"io {e['io'].get('total', 0):4d}  [{e['outcome']}]{tag}"
                f"{wait_tag}  {e['statement']}")
        return "\n".join(lines)
