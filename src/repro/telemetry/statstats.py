"""pg_stat_statements-style statement fingerprint analytics.

A *fingerprint* identifies the shape of a statement: literals are
stripped (every quoted string and numeric constant becomes ``?``),
whitespace collapses, identifiers are kept verbatim.  Two executions of
``replace (Dept.name = "x") where Dept.budget = 100`` and
``... = "y") where ... = 101`` therefore aggregate under one
fingerprint, while ``retrieve (Emp.name)`` and ``retrieve (Emp.salary)``
stay distinct -- which fields a statement touches *is* its shape.

Per fingerprint the aggregator accumulates calls, errors, rows,
physical reads/writes, lock-wait milliseconds, and WAL bytes, and tracks
latency in a streaming **log-bucket histogram**: geometric bucket bounds
(each double the last) whose counts yield p50/p95/p99 by interpolation
without ever storing samples, so a fingerprint's footprint is a fixed
few hundred bytes no matter how many calls it sees.

The table is bounded (``capacity`` distinct fingerprints); when a new
shape arrives at a full table, the least-called entry is evicted --
the pg_stat_statements dealloc policy.  Recording is thread-safe and
does no I/O: every input is a number the caller already had.

The aggregator also publishes into the shared metrics registry
(``statement_calls_total`` / ``statement_rows_total`` /
``statement_errors_total`` counters and the ``statement_latency_ms``
histogram, all labelled by fingerprint) so ``/metrics`` exposes the same
numbers Prometheus-style.
"""

from __future__ import annotations

import hashlib
import re
import threading
import time

from repro.telemetry.metrics import NULL_METRICS
from repro.telemetry.waitevents import base_event

#: bounded distinct fingerprints (eviction beyond this).
DEFAULT_CAPACITY = 256

#: log-bucket latency bounds in milliseconds: 0.05 ms doubling up to
#: ~52 s.  Geometric spacing keeps relative quantile error bounded
#: (one bucket = at most 2x) across six decades of latency.
LATENCY_BUCKETS_MS = tuple(0.05 * (2 ** i) for i in range(21))

_STRING_RE = re.compile(r"'(?:[^'\\]|\\.)*'|\"(?:[^\"\\]|\\.)*\"")
#: a number not preceded by an identifier char or a dot (so ``Emp1`` and
#: ``Emp.dept`` survive while ``= 100`` and ``> 10.5`` are stripped).
_NUMBER_RE = re.compile(r"(?<![\w.])-?\d+(?:\.\d+)?")


def normalize_statement(text: str) -> str:
    """The fingerprint's normal form: literals stripped, identifiers kept."""
    collapsed = " ".join(text.split())
    collapsed = _STRING_RE.sub("?", collapsed)
    return _NUMBER_RE.sub("?", collapsed)


def fingerprint(text: str) -> tuple[str, str]:
    """``(fingerprint id, normalized text)`` for one statement."""
    normalized = normalize_statement(text)
    digest = hashlib.sha1(normalized.encode("utf-8")).hexdigest()[:12]
    return digest, normalized


class LogBucketHistogram:
    """Streaming quantiles over geometric buckets; no samples stored."""

    __slots__ = ("counts", "total", "sum")

    bounds = LATENCY_BUCKETS_MS

    def __init__(self) -> None:
        #: per-bucket (non-cumulative) counts; one extra slot for +Inf.
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += 1
        self.sum += value

    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating within its bucket.

        Values beyond the last bound report the last bound (the estimate
        saturates rather than extrapolating into the unbounded bucket).
        """
        if self.total == 0:
            return 0.0
        target = q * self.total
        seen = 0
        for i, bound in enumerate(self.bounds):
            count = self.counts[i]
            if count and seen + count >= target:
                lo = self.bounds[i - 1] if i else 0.0
                fraction = (target - seen) / count
                return lo + (bound - lo) * fraction
            seen += count
        return self.bounds[-1]

    def to_dict(self) -> dict:
        return {"bounds_ms": list(self.bounds), "counts": list(self.counts),
                "count": self.total, "sum_ms": round(self.sum, 3)}


class _Entry:
    """The running aggregate of one fingerprint."""

    __slots__ = ("fingerprint", "statement", "calls", "errors", "rows",
                 "physical_reads", "physical_writes", "lock_wait_ms",
                 "wal_bytes", "latency", "last_ts", "waits")

    def __init__(self, fp: str, statement: str) -> None:
        self.fingerprint = fp
        self.statement = statement
        self.calls = 0
        self.errors = 0
        self.rows = 0
        self.physical_reads = 0
        self.physical_writes = 0
        self.lock_wait_ms = 0.0
        self.wal_bytes = 0
        self.latency = LogBucketHistogram()
        self.last_ts = 0.0
        #: wait-event class -> cumulative milliseconds (lock:* collapsed)
        self.waits: dict[str, float] = {}

    def to_dict(self) -> dict:
        dominant = ""
        if self.waits:
            dominant = max(self.waits.items(), key=lambda kv: kv[1])[0]
        return {
            "fingerprint": self.fingerprint,
            "statement": self.statement,
            "waits": {event: round(ms, 3)
                      for event, ms in sorted(self.waits.items())},
            "dominant_wait": dominant,
            "calls": self.calls,
            "errors": self.errors,
            "rows": self.rows,
            "physical_reads": self.physical_reads,
            "physical_writes": self.physical_writes,
            "io_pages": self.physical_reads + self.physical_writes,
            "lock_wait_ms": round(self.lock_wait_ms, 3),
            "wal_bytes": self.wal_bytes,
            "mean_ms": round(self.latency.mean(), 3),
            "p50_ms": round(self.latency.quantile(0.50), 3),
            "p95_ms": round(self.latency.quantile(0.95), 3),
            "p99_ms": round(self.latency.quantile(0.99), 3),
            "last_ts": round(self.last_ts, 3),
        }


def _io_pages(io) -> tuple[int, int]:
    """``(reads, writes)`` from an IOSnapshot-like object or a wire dict."""
    if io is None:
        return 0, 0
    if isinstance(io, dict):
        return int(io.get("reads", 0)), int(io.get("writes", 0))
    return int(getattr(io, "physical_reads", 0)), \
        int(getattr(io, "physical_writes", 0))


class StatementStats:
    """Bounded per-fingerprint statement statistics."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 metrics=None) -> None:
        self.capacity = max(1, capacity)
        #: flipping this off makes observe() a no-op (overhead benches).
        self.enabled = True
        self.evicted = 0
        self._mutex = threading.Lock()
        self._entries: dict[str, _Entry] = {}
        m = metrics if metrics is not None else NULL_METRICS
        self._m_calls = m.counter(
            "statement_calls_total", "statement executions by fingerprint")
        self._m_errors = m.counter(
            "statement_errors_total", "failed statements by fingerprint")
        self._m_rows = m.counter(
            "statement_rows_total", "rows produced by fingerprint")
        self._m_latency = m.histogram(
            "statement_latency_ms", "statement latency by fingerprint",
            buckets=LATENCY_BUCKETS_MS)

    # -- recording -----------------------------------------------------------

    def observe(self, statement: str, duration_ms: float, io=None,
                rows: int | None = None, lock_wait_ms: float = 0.0,
                wal_bytes: int | float = 0,
                outcome: str = "ok",
                waits: dict | None = None) -> str | None:
        """Fold one finished statement in; returns its fingerprint id.

        ``waits`` is the statement's wait-event breakdown in *seconds*
        (from the wait collector); it accumulates per wait-event class
        in milliseconds, with ``lock:<resource>`` collapsed to ``lock``.
        """
        if not self.enabled:
            return None
        fp, normalized = fingerprint(statement)
        reads, writes = _io_pages(io)
        with self._mutex:
            entry = self._entries.get(fp)
            if entry is None:
                if len(self._entries) >= self.capacity:
                    victim = min(self._entries.values(),
                                 key=lambda e: (e.calls, e.last_ts))
                    del self._entries[victim.fingerprint]
                    self.evicted += 1
                entry = _Entry(fp, normalized)
                self._entries[fp] = entry
            entry.calls += 1
            if outcome != "ok":
                entry.errors += 1
            if rows is not None:
                entry.rows += rows
            entry.physical_reads += reads
            entry.physical_writes += writes
            entry.lock_wait_ms += lock_wait_ms
            entry.wal_bytes += int(wal_bytes)
            entry.latency.observe(duration_ms)
            entry.last_ts = time.time()
            for event, seconds in (waits or {}).items():
                cls = base_event(event)
                entry.waits[cls] = (entry.waits.get(cls, 0.0)
                                    + seconds * 1000.0)
        self._m_calls.inc(fingerprint=fp)
        if outcome != "ok":
            self._m_errors.inc(fingerprint=fp)
        if rows:
            self._m_rows.inc(rows, fingerprint=fp)
        self._m_latency.observe(duration_ms, fingerprint=fp)
        return fp

    # -- reading -------------------------------------------------------------

    def entries(self, order_by: str = "calls",
                limit: int | None = None) -> list[dict]:
        """Aggregates as dicts, largest ``order_by`` first."""
        with self._mutex:
            rows = [e.to_dict() for e in self._entries.values()]
        rows.sort(key=lambda r: (-r.get(order_by, 0), r["fingerprint"]))
        return rows[:limit] if limit else rows

    def top(self, n: int = 5, order_by: str = "calls") -> list[dict]:
        return self.entries(order_by=order_by, limit=n)

    def get(self, fp: str) -> dict | None:
        with self._mutex:
            entry = self._entries.get(fp)
            return entry.to_dict() if entry is not None else None

    def snapshot(self) -> dict:
        """The wire/HTTP document: totals plus every tracked entry."""
        rows = self.entries()
        return {
            "distinct": len(rows),
            "capacity": self.capacity,
            "evicted": self.evicted,
            "calls": sum(r["calls"] for r in rows),
            "entries": rows,
        }

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()
        self.evicted = 0

    def render_text(self, cache_rates: dict | None = None) -> str:
        """The ``\\fingerprints`` table, most-called first.

        ``cache_rates`` (from
        :meth:`repro.cache.ResultCache.fingerprint_rates`) joins the
        result cache's per-fingerprint hit/miss counts into a ``cache%``
        column -- statements the cache never saw show ``-``.
        """
        rows = self.entries()
        if not rows:
            return "(no statements recorded)"
        rates = cache_rates or {}
        lines = [f"{'calls':>7} {'errs':>5} {'rows':>8} {'io':>7} "
                 f"{'lock ms':>9} {'wal B':>9} {'p50':>8} {'p95':>8} "
                 f"{'p99':>8} {'cache%':>7} {'top wait':>14}  statement"]
        for r in rows:
            rate = rates.get(r["fingerprint"])
            cache_col = (f"{rate['hit_rate'] * 100.0:6.1f}%"
                         if rate is not None else f"{'-':>7}")
            dominant = r.get("dominant_wait") or "-"
            wait_col = f"{dominant:>14}"
            lines.append(
                f"{r['calls']:7d} {r['errors']:5d} {r['rows']:8d} "
                f"{r['io_pages']:7d} {r['lock_wait_ms']:9.1f} "
                f"{r['wal_bytes']:9d} {r['p50_ms']:8.2f} {r['p95_ms']:8.2f} "
                f"{r['p99_ms']:8.2f} {cache_col} {wait_col}  "
                f"[{r['fingerprint']}] {r['statement'][:70]}")
        if self.evicted:
            lines.append(f"({self.evicted} fingerprint(s) evicted; "
                         f"capacity {self.capacity})")
        return "\n".join(lines)
