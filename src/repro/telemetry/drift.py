"""Model-vs-actual drift tracking.

The paper's evaluation (Section 6) is purely analytical; this repo also
runs the same workload on the real engine.  The drift monitor closes the
loop *continuously*: every measured query over the two-set model schema
records the cost-model prediction next to the observed physical I/O, and
the relative error is tracked per (strategy, query kind).  A healthy
reproduction keeps drift small; a regression in the engine (or a model
change) shows up here before it shows up in a figure.

Predictions are supplied by callers (see
:func:`repro.workloads.simulate.model_prediction`) so this module stays
free of cost-model imports and can score any predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DriftRecord:
    """One prediction/observation pair."""

    kind: str          #: "read" | "update"
    strategy: str      #: "none" | "inplace" | "separate"
    predicted: float
    observed: float

    @property
    def rel_error(self) -> float:
        """|observed - predicted| / predicted (observed itself when the
        model predicts zero)."""
        if self.predicted == 0:
            return float(abs(self.observed))
        return abs(self.observed - self.predicted) / abs(self.predicted)


@dataclass
class DriftMonitor:
    """Accumulates drift records and summarises relative error."""

    records: list = field(default_factory=list)

    def record(self, kind: str, strategy: str,
               predicted: float, observed: float) -> DriftRecord:
        rec = DriftRecord(kind, strategy, float(predicted), float(observed))
        self.records.append(rec)
        return rec

    def reset(self) -> None:
        self.records.clear()

    # -- selection / aggregation ---------------------------------------------

    def select(self, kind: str | None = None,
               strategy: str | None = None) -> list[DriftRecord]:
        return [
            r for r in self.records
            if (kind is None or r.kind == kind)
            and (strategy is None or r.strategy == strategy)
        ]

    def mean_rel_error(self, kind: str | None = None,
                       strategy: str | None = None) -> float:
        """Relative error of the mean observation against the mean
        prediction (queries are randomized; individual queries wobble
        around the model's expectation, the average is what it predicts)."""
        picked = self.select(kind, strategy)
        if not picked:
            return 0.0
        predicted = sum(r.predicted for r in picked) / len(picked)
        observed = sum(r.observed for r in picked) / len(picked)
        if predicted == 0:
            return float(abs(observed))
        return abs(observed - predicted) / abs(predicted)

    def max_rel_error(self, kind: str | None = None,
                      strategy: str | None = None) -> float:
        picked = self.select(kind, strategy)
        return max((r.rel_error for r in picked), default=0.0)

    def groups(self) -> list[tuple[str, str]]:
        """Distinct (strategy, kind) pairs seen, sorted."""
        return sorted({(r.strategy, r.kind) for r in self.records})

    # -- reporting -----------------------------------------------------------

    def report(self) -> str:
        """A human-readable drift table."""
        if not self.records:
            return "model-vs-actual drift: (no measured queries)"
        lines = [
            "model-vs-actual drift (cost-model prediction vs. measured I/O):",
            f"  {'strategy':10s} {'kind':7s} {'n':>4s} {'predicted':>10s} "
            f"{'observed':>9s} {'rel.err':>8s}",
        ]
        for strategy, kind in self.groups():
            picked = self.select(kind, strategy)
            predicted = sum(r.predicted for r in picked) / len(picked)
            observed = sum(r.observed for r in picked) / len(picked)
            err = self.mean_rel_error(kind, strategy)
            lines.append(
                f"  {strategy:10s} {kind:7s} {len(picked):4d} {predicted:10.1f} "
                f"{observed:9.1f} {err:7.1%}"
            )
        return "\n".join(lines)
