"""An in-process metrics time-series store with threshold alerting.

Point-in-time scrapes cannot answer "when did the lock-wait share
spike?" -- by the time someone looks, the counters only show totals.
The :class:`TimeSeriesStore` closes that gap without any external
dependency: registered *probes* (callables returning ``{series: value}``
dicts over the existing metrics registry, the wait-event collector, the
replication status, the result cache) are sampled at a fixed interval
into per-series ring buffers with bounded retention, so the recent past
is always queryable (``/timeseries``, rate helpers) at a fixed memory
cost.

On top of it sits a small :class:`AlertEngine`: named threshold rules
evaluated every sampling tick, each carrying firing/resolved state with
transition timestamps, a bounded transition history (so ``/health``
flaps leave a trace), an ``alert_firing{alert=...}`` gauge and an
``alert_transitions_total{alert=...,to=...}`` counter in the registry.
Rules read the store and the probes' latest values only -- evaluating
alerts is as observer-neutral as sampling.

The :class:`TelemetrySampler` is the single daemon thread driving all
periodic collection: time-series sampling, ASH session snapshots, and
alert evaluation all run from its tick, so one ``--sample-interval``
flag governs the whole always-on layer and ``0`` turns it off wholesale.
Ticks never take the engine latch and never touch pages.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.telemetry.metrics import NULL_METRICS

#: default per-series retention: 600 points = 10 minutes at 1 Hz.
DEFAULT_RETENTION_POINTS = 600
#: alert state transitions kept for flap forensics.
TRANSITION_HISTORY = 256


class TimeSeriesStore:
    """Ring-buffered (ts, value) series fed by registered probes."""

    def __init__(self, retention_points: int = DEFAULT_RETENTION_POINTS) -> None:
        self.retention_points = max(2, retention_points)
        self._mutex = threading.Lock()
        self._series: dict[str, deque] = {}
        self._probes: list = []
        self.samples_taken = 0

    # -- probes ------------------------------------------------------------

    def register(self, probe) -> None:
        """Add a probe: a callable returning ``{series_name: value}``.

        Probes must be cheap and side-effect free -- they run on every
        sampling tick.  A probe that raises is skipped for that tick
        (a broken probe must not kill the sampler).
        """
        self._probes.append(probe)

    # -- sampling ----------------------------------------------------------

    def sample_once(self, ts: float | None = None) -> dict[str, float]:
        """Run every probe and append one point per series; returns the
        merged ``{series: value}`` of this tick."""
        ts = time.time() if ts is None else ts
        merged: dict[str, float] = {}
        for probe in self._probes:
            try:
                merged.update(probe())
            except Exception:
                continue  # a broken probe must not kill the sampler
        with self._mutex:
            for name, value in merged.items():
                ring = self._series.get(name)
                if ring is None:
                    ring = deque(maxlen=self.retention_points)
                    self._series[name] = ring
                ring.append((round(ts, 3), value))
            self.samples_taken += 1
        return merged

    def append(self, name: str, value: float,
               ts: float | None = None) -> None:
        """Append one point directly (tests, ad-hoc series)."""
        ts = time.time() if ts is None else ts
        with self._mutex:
            ring = self._series.get(name)
            if ring is None:
                ring = deque(maxlen=self.retention_points)
                self._series[name] = ring
            ring.append((round(ts, 3), value))

    # -- reading -----------------------------------------------------------

    def names(self) -> list[str]:
        with self._mutex:
            return sorted(self._series)

    def series(self, name: str, since: float | None = None) -> list[tuple]:
        """``[(ts, value), ...]`` oldest first; empty for unknown names."""
        with self._mutex:
            ring = self._series.get(name)
            points = list(ring) if ring is not None else []
        if since is not None:
            points = [p for p in points if p[0] >= since]
        return points

    def latest(self, name: str) -> float | None:
        with self._mutex:
            ring = self._series.get(name)
            return ring[-1][1] if ring else None

    def delta(self, name: str, window_s: float) -> tuple[float, float]:
        """``(value delta, time delta)`` between the newest point and the
        oldest point inside the window -- the building block of rates
        and share-over-window alert rules.  ``(0, 0)`` without 2 points.
        """
        points = self.series(name, since=time.time() - window_s)
        if len(points) < 2:
            return 0.0, 0.0
        (t0, v0), (t1, v1) = points[0], points[-1]
        return v1 - v0, t1 - t0

    def rate(self, name: str, window_s: float) -> float:
        """Per-second rate of a cumulative series over the window."""
        dv, dt = self.delta(name, window_s)
        return dv / dt if dt > 0 else 0.0

    def snapshot(self, window_s: float | None = None,
                 names: list[str] | None = None) -> dict:
        """The ``/timeseries`` document."""
        since = (time.time() - window_s) if window_s else None
        wanted = names if names else self.names()
        return {
            "retention_points": self.retention_points,
            "samples_taken": self.samples_taken,
            "window_s": window_s,
            "series": {name: [[ts, value] for ts, value
                              in self.series(name, since=since)]
                       for name in wanted},
        }

    def clear(self) -> None:
        with self._mutex:
            self._series.clear()
            self.samples_taken = 0


class AlertRule:
    """One threshold rule: ``fn()`` -> (value, firing?)."""

    __slots__ = ("name", "description", "severity", "threshold", "fn")

    def __init__(self, name: str, description: str, fn,
                 severity: str = "warning",
                 threshold: float | None = None) -> None:
        self.name = name
        self.description = description
        self.severity = severity
        self.threshold = threshold
        self.fn = fn


class AlertEngine:
    """Threshold rules with firing/resolved state over the store."""

    def __init__(self, metrics=None) -> None:
        metrics = metrics if metrics is not None else NULL_METRICS
        self._mutex = threading.Lock()
        self._rules: dict[str, AlertRule] = {}
        #: name -> {"state", "since", "value", "transitions"}
        self._states: dict[str, dict] = {}
        self._history: deque = deque(maxlen=TRANSITION_HISTORY)
        self.evaluations = 0
        self._g_firing = metrics.gauge(
            "alert_firing", "1 while the named alert is firing, else 0")
        self._m_transitions = metrics.counter(
            "alert_transitions_total",
            "alert state changes, by alert and new state")

    def add_rule(self, name: str, description: str, fn,
                 severity: str = "warning",
                 threshold: float | None = None) -> None:
        with self._mutex:
            self._rules[name] = AlertRule(name, description, fn,
                                          severity, threshold)
            self._states.setdefault(name, {
                "state": "ok", "since": time.time(), "value": None,
                "transitions": 0,
            })
        self._g_firing.set(0, alert=name)

    def evaluate(self, ts: float | None = None) -> list[dict]:
        """Run every rule once; returns the currently firing alerts."""
        ts = time.time() if ts is None else ts
        with self._mutex:
            rules = list(self._rules.values())
        for rule in rules:
            try:
                value, firing = rule.fn()
            except Exception:
                continue  # a broken rule must not kill the sampler
            with self._mutex:
                state = self._states[rule.name]
                state["value"] = value
                new = "firing" if firing else "ok"
                if new != state["state"]:
                    state["state"] = new
                    state["since"] = ts
                    state["transitions"] += 1
                    self._history.append({
                        "ts": round(ts, 3), "alert": rule.name,
                        "to": "firing" if firing else "resolved",
                        "value": value, "severity": rule.severity,
                    })
                    self._m_transitions.inc(
                        alert=rule.name,
                        to="firing" if firing else "resolved")
                    self._g_firing.set(1 if firing else 0, alert=rule.name)
        with self._mutex:
            self.evaluations += 1
        return self.firing()

    def firing(self) -> list[dict]:
        return [a for a in self._alerts() if a["state"] == "firing"]

    def _alerts(self) -> list[dict]:
        with self._mutex:
            out = []
            for name, rule in self._rules.items():
                state = self._states[name]
                out.append({
                    "alert": name,
                    "severity": rule.severity,
                    "description": rule.description,
                    "threshold": rule.threshold,
                    "state": state["state"],
                    "since": round(state["since"], 3),
                    "value": state["value"],
                    "transitions": state["transitions"],
                })
        out.sort(key=lambda a: (a["state"] != "firing", a["alert"]))
        return out

    def snapshot(self) -> dict:
        """The ``/alerts`` document: every rule's state + flap history."""
        alerts = self._alerts()
        with self._mutex:
            history = list(self._history)
        return {
            "evaluations": self.evaluations,
            "firing": sum(1 for a in alerts if a["state"] == "firing"),
            "alerts": alerts,
            "history": history,
        }

    def render_text(self) -> str:
        """The ``\\alerts`` view."""
        doc = self.snapshot()
        if not doc["alerts"]:
            return "(no alert rules installed)"
        lines = [f"alerts: {doc['firing']} firing, "
                 f"{len(doc['alerts'])} rule(s), "
                 f"{doc['evaluations']} evaluation(s)"]
        for a in doc["alerts"]:
            value = a["value"]
            shown = (f"{value:.4f}" if isinstance(value, float)
                     else str(value))
            threshold = (f" (threshold {a['threshold']})"
                         if a["threshold"] is not None else "")
            lines.append(f"  [{a['state']:^6}] {a['alert']:<22} "
                         f"value {shown}{threshold}  "
                         f"x{a['transitions']} transition(s)  "
                         f"-- {a['description']}")
        for h in list(doc["history"])[-5:]:
            lines.append(f"  {h['ts']:.3f}  {h['alert']} -> {h['to']} "
                         f"(value {h['value']})")
        return "\n".join(lines)


class TelemetrySampler:
    """The daemon thread driving ASH + time-series + alert ticks."""

    def __init__(self, interval: float = 1.0,
                 name: str = "repro-sampler") -> None:
        self.interval = interval
        self._name = name
        self._ticks: list = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.ticks_run = 0

    def add(self, fn) -> None:
        """Register a tick callback (called every interval, in order)."""
        self._ticks.append(fn)

    def tick_once(self) -> None:
        """Run every callback once (tests and manual collection)."""
        for fn in self._ticks:
            try:
                fn()
            except Exception:
                continue  # one broken tick must not starve the others
        self.ticks_run += 1

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "TelemetrySampler":
        if self.interval <= 0 or self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, name=self._name,
                                        daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.tick_once()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
