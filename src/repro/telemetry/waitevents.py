"""Wait-event accounting: where statements spend their time.

Every second of a served statement's wall-clock time is attributed to
exactly one *wait event* -- the Oracle / Postgres ``pg_stat_activity``
taxonomy adapted to this engine's actual blocking points:

* ``admission_wait``   -- waiting in the admission scheduler for a
  slot to execute (formerly ``engine_latch``, back when one global
  latch serialized every statement; ``engine_latch`` remains accepted
  as a query alias so old dashboards keep working);
* ``lock:<resource>``  -- waiting in the 2PL lock manager, attributed
  per contended resource (a multi-resource wait splits its time evenly
  across the resources that actually blocked it);
* ``buffer_io``        -- a buffer-pool miss or dirty write-back moving
  a page between the pool and the (simulated) disk;
* ``wal_flush``        -- forcing the write-ahead log;
* ``queue_wait``       -- queued in the bounded worker pool before a
  worker picked the statement up;
* ``repl_ack``         -- a semi-synchronous writer waiting for its
  follower quorum;
* ``client_net``       -- a live session with no statement in flight
  (only the ASH sampler produces this one: it is the idle state, never
  part of a statement's own breakdown);
* ``cpu``              -- the residual: statement wall time not covered
  by any measured wait.  Per statement ``cpu`` is computed as
  ``(queue_wait + execution wall) - sum(measured waits)``, so the
  breakdown always sums to the statement's full wall-clock time --
  attribution is complete by construction.

The :class:`WaitEventCollector` is the cheap enter/exit layer the
engine is threaded with.  Accumulation has two independent sinks:

* **global counters** -- ``wait_seconds_total{event=...}`` and
  ``wait_events_total{event=...}`` in the shared metrics registry, plus
  the ``admission_wait_seconds`` histogram; always fed, even for
  engine work outside any statement (embedded execution, recovery);
* **the active statement context** -- a ``threading.local`` slot the
  session layer installs around each served statement; engine code deep
  in the stack (buffer pool, WAL, lock manager) records into it without
  any plumbing, and the session folds the finished breakdown into its
  per-session totals, the per-fingerprint statement statistics, and the
  slow-query log.

The context also carries the *current* wait (event, detail, since) so
the ASH sampler can snapshot in-flight waits -- a session blocked on a
lock for 3 seconds shows up in every sample of those 3 seconds.

Everything is observer-neutral: recording is perf_counter arithmetic
and dict updates -- no page I/O, no engine latch -- and the collector
can be disabled wholesale (``enabled = False``) for overhead A/B runs.
Components constructed standalone default to :data:`NULL_WAITS`, a
no-op with the same surface.
"""

from __future__ import annotations

import threading
import time

from repro.telemetry.metrics import NULL_METRICS

ADMISSION_WAIT = "admission_wait"
#: legacy name for :data:`ADMISSION_WAIT` (pre-admission-scheduler the
#: blocking point was one global engine latch); accepted everywhere an
#: event name is read, normalised on the way in.
ENGINE_LATCH = "engine_latch"
BUFFER_IO = "buffer_io"
WAL_FLUSH = "wal_flush"
QUEUE_WAIT = "queue_wait"
CLIENT_NET = "client_net"
REPL_ACK = "repl_ack"
CPU = "cpu"
#: lock waits are per-resource: ``lock:Emp1``, ``lock:__schema``, ...
LOCK_PREFIX = "lock:"

#: the taxonomy (lock waits appear as ``lock:<resource>``).
WAIT_EVENTS = (ADMISSION_WAIT, LOCK_PREFIX + "<resource>", BUFFER_IO,
               WAL_FLUSH, QUEUE_WAIT, CLIENT_NET, REPL_ACK, CPU)

#: admission wait histogram bounds (seconds): admission is normally
#: uncontended (microseconds), but under conflicting footprints waits
#: reach tens of milliseconds -- the buckets must resolve both regimes.
LATCH_WAIT_BUCKETS = (0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.01,
                      0.05, 0.1, 0.5, 1.0)


def base_event(event: str) -> str:
    """Collapse ``lock:<resource>`` to ``lock``; other events pass through."""
    return "lock" if event.startswith(LOCK_PREFIX) else event


def canonical_event(event: str) -> str:
    """Normalise legacy event names (``engine_latch`` ->
    ``admission_wait``); canonical names pass through unchanged."""
    return ADMISSION_WAIT if event == ENGINE_LATCH else event


class StatementWaitContext:
    """The wait ledger of one in-flight statement."""

    __slots__ = ("session_id", "session", "statement", "started",
                 "waits", "current")

    def __init__(self, session_id: int, session: str,
                 statement: str) -> None:
        self.session_id = session_id
        self.session = session
        self.statement = statement
        self.started = time.time()
        #: event -> [seconds, count]
        self.waits: dict[str, list] = {}
        #: (event, detail, since_ts) while blocked; None while on CPU
        self.current: tuple | None = None

    def add(self, event: str, seconds: float, count: int = 1) -> None:
        slot = self.waits.get(event)
        if slot is None:
            self.waits[event] = [seconds, count]
        else:
            slot[0] += seconds
            slot[1] += count


class _Waiting:
    """``with collector.wait(event):`` -- time a blocking call and record
    it, exposing it as the context's current wait while it runs."""

    __slots__ = ("_collector", "_event", "_detail", "_started", "_prev")

    def __init__(self, collector: "WaitEventCollector", event: str,
                 detail: str) -> None:
        self._collector = collector
        self._event = event
        self._detail = detail

    def __enter__(self) -> "_Waiting":
        self._started = time.perf_counter()
        ctx = self._collector._active_ctx()
        self._prev = None
        if ctx is not None:
            self._prev = ctx.current
            ctx.current = (self._event, self._detail, time.time())
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._started
        ctx = self._collector._active_ctx()
        if ctx is not None:
            ctx.current = self._prev
        self._collector.record(self._event, elapsed)


class _NullWaiting:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        pass


_NULL_WAITING = _NullWaiting()


class WaitEventCollector:
    """Per-process wait accounting: global totals + per-statement ledger."""

    def __init__(self, metrics=None) -> None:
        metrics = metrics if metrics is not None else NULL_METRICS
        #: flipping this off makes every hook a near-no-op (A/B benches).
        self.enabled = True
        self._local = threading.local()
        self._mutex = threading.Lock()
        #: session_id -> in-flight StatementWaitContext (for ASH sampling)
        self._contexts: dict[int, StatementWaitContext] = {}
        #: event -> [seconds, count] (global, survives statement ends)
        self._totals: dict[str, list] = {}
        #: statement wall-clock accounted so far (queue wait included):
        #: the denominator of every attribution share.
        self.statement_seconds = 0.0
        self.statements_finished = 0
        self._m_wait_seconds = metrics.counter(
            "wait_seconds_total", "time waited, by wait event")
        self._m_wait_events = metrics.counter(
            "wait_events_total", "wait occurrences, by wait event")
        self._m_latch_wait = metrics.histogram(
            "admission_wait_seconds",
            "time spent waiting for statement admission",
            buckets=LATCH_WAIT_BUCKETS)
        self._m_latch_hold = metrics.counter(
            "admission_hold_seconds_total",
            "time statements spent admitted (holding an execution slot)")

    # -- statement scope ---------------------------------------------------

    def begin_statement(self, session_id: int, session: str,
                        statement: str) -> StatementWaitContext | None:
        """Install a wait ledger for the statement this thread is about
        to run; returns None when the collector is disabled."""
        if not self.enabled:
            return None
        ctx = StatementWaitContext(session_id, session, statement)
        self._local.ctx = ctx
        with self._mutex:
            self._contexts[session_id] = ctx
        return ctx

    def finish_statement(self, ctx: StatementWaitContext | None,
                         duration_s: float) -> dict[str, float]:
        """Close the ledger; returns the per-event breakdown in seconds.

        ``duration_s`` is the statement's execution wall time (queue wait
        excluded -- it is already in the ledger); the ``cpu`` residual
        tops the breakdown up so it sums to queue wait + execution wall.
        """
        if ctx is None:
            return {}
        self._local.ctx = None
        with self._mutex:
            if self._contexts.get(ctx.session_id) is ctx:
                del self._contexts[ctx.session_id]
        breakdown = {event: slot[0] for event, slot in ctx.waits.items()}
        wall = duration_s + breakdown.get(QUEUE_WAIT, 0.0)
        cpu = max(0.0, wall - sum(breakdown.values()))
        breakdown[CPU] = cpu
        self._add_total(CPU, cpu, 1)
        self._m_wait_seconds.inc(cpu, event=CPU)
        self._m_wait_events.inc(event=CPU)
        with self._mutex:
            self.statement_seconds += wall
            self.statements_finished += 1
        return breakdown

    def _active_ctx(self) -> StatementWaitContext | None:
        return getattr(self._local, "ctx", None)

    # -- recording ---------------------------------------------------------

    def record(self, event: str, seconds: float, count: int = 1) -> None:
        """Attribute ``seconds`` of wait to ``event``: global counters
        always, plus this thread's active statement ledger if any."""
        if not self.enabled:
            return
        self._add_total(event, seconds, count)
        self._m_wait_seconds.inc(seconds, event=event)
        self._m_wait_events.inc(count, event=event)
        ctx = self._active_ctx()
        if ctx is not None:
            ctx.add(event, seconds, count)

    def wait(self, event: str, detail: str = ""):
        """Context manager timing a blocking call as one wait event."""
        if not self.enabled:
            return _NULL_WAITING
        return _Waiting(self, event, detail)

    def mark_waiting(self, event: str, detail: str = ""):
        """Expose a blocking region as the current wait for ASH sampling
        without recording time (the caller records the measured split on
        exit, e.g. the lock manager's per-resource shares).  Returns a
        token for :meth:`unmark_waiting`; None when nothing to mark."""
        if not self.enabled:
            return None
        ctx = self._active_ctx()
        if ctx is None:
            return None
        prev = ctx.current
        ctx.current = (event, detail, time.time())
        return (ctx, prev)

    def unmark_waiting(self, token) -> None:
        if token is not None:
            ctx, prev = token
            ctx.current = prev

    def admission_granted(self, waited_s: float) -> None:
        """One statement admitted: histogram + wait attribution."""
        if not self.enabled:
            return
        self._m_latch_wait.observe(waited_s)
        self.record(ADMISSION_WAIT, waited_s)

    def admission_released(self, held_s: float) -> None:
        """One statement left the engine: cumulative occupancy counter."""
        if self.enabled:
            self._m_latch_hold.inc(held_s)

    # legacy names (pre-admission-scheduler callers)
    latch_acquired = admission_granted
    latch_released = admission_released

    def _add_total(self, event: str, seconds: float, count: int) -> None:
        with self._mutex:
            slot = self._totals.get(event)
            if slot is None:
                self._totals[event] = [seconds, count]
            else:
                slot[0] += seconds
                slot[1] += count

    # -- reading -----------------------------------------------------------

    def sample(self) -> list[dict]:
        """One ASH-style snapshot of every in-flight statement.

        Reads plain attributes under the collector's own mutex -- no
        engine latch, no page I/O.  A context with no current wait is on
        CPU (executing).
        """
        now = time.time()
        with self._mutex:
            contexts = list(self._contexts.values())
        samples = []
        for ctx in contexts:
            current = ctx.current
            if current is not None:
                event, detail, since = current
                wait_s = max(0.0, now - since)
            else:
                event, detail, wait_s = CPU, "", 0.0
            samples.append({
                "session_id": ctx.session_id,
                "session": ctx.session,
                "statement": ctx.statement,
                "event": event,
                "detail": detail,
                "wait_s": round(wait_s, 6),
                "statement_age_s": round(max(0.0, now - ctx.started), 6),
            })
        return samples

    def totals(self) -> list[dict]:
        """Cumulative per-event totals, largest first, with shares of the
        accounted statement wall-clock."""
        with self._mutex:
            rows = [{"event": event, "seconds": round(slot[0], 6),
                     "count": slot[1]}
                    for event, slot in self._totals.items()]
            accounted = self.statement_seconds
        rows.sort(key=lambda r: (-r["seconds"], r["event"]))
        for row in rows:
            row["share"] = round(row["seconds"] / accounted, 4) \
                if accounted else 0.0
        return rows

    def total_for(self, event: str) -> float:
        with self._mutex:
            slot = self._totals.get(canonical_event(event))
            return slot[0] if slot is not None else 0.0

    def lock_wait_seconds(self) -> float:
        """Cumulative seconds across every ``lock:<resource>`` event."""
        with self._mutex:
            return sum(slot[0] for event, slot in self._totals.items()
                       if event.startswith(LOCK_PREFIX))

    def snapshot(self) -> dict:
        """The wire/HTTP document: totals plus attribution coverage."""
        rows = self.totals()
        attributed = sum(r["seconds"] for r in rows)
        with self._mutex:
            accounted = self.statement_seconds
            finished = self.statements_finished
        return {
            "enabled": self.enabled,
            "statement_seconds": round(accounted, 6),
            "statements": finished,
            "attributed_seconds": round(attributed, 6),
            "coverage": round(attributed / accounted, 4) if accounted else 0.0,
            "events": rows,
        }

    def render_text(self) -> str:
        """The ``\\waits`` table: event, share, total, count."""
        rows = self.totals()
        if not rows:
            return "(no waits recorded)"
        lines = [f"{'share':>7} {'seconds':>12} {'count':>9}  event"]
        for r in rows:
            lines.append(f"{r['share'] * 100:6.1f}% {r['seconds']:12.6f} "
                         f"{r['count']:9d}  {r['event']}")
        with self._mutex:
            accounted = self.statement_seconds
            finished = self.statements_finished
        lines.append(f"(accounted statement wall-clock "
                     f"{accounted:.6f}s over {finished} statement(s))")
        return "\n".join(lines)

    def reset(self) -> None:
        with self._mutex:
            self._totals.clear()
            self._contexts.clear()
            self.statement_seconds = 0.0
            self.statements_finished = 0


class NullWaitCollector:
    """Collector stand-in for components built without telemetry."""

    __slots__ = ()

    enabled = False

    def begin_statement(self, session_id, session, statement):
        return None

    def finish_statement(self, ctx, duration_s) -> dict:
        return {}

    def record(self, event, seconds, count=1) -> None:
        pass

    def wait(self, event, detail=""):
        return _NULL_WAITING

    def mark_waiting(self, event, detail=""):
        return None

    def unmark_waiting(self, token) -> None:
        pass

    def admission_granted(self, waited_s) -> None:
        pass

    def admission_released(self, held_s) -> None:
        pass

    latch_acquired = admission_granted
    latch_released = admission_released

    def sample(self) -> list:
        return []

    def totals(self) -> list:
        return []

    def total_for(self, event) -> float:
        return 0.0

    def lock_wait_seconds(self) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {"enabled": False, "statement_seconds": 0.0, "statements": 0,
                "attributed_seconds": 0.0, "coverage": 0.0, "events": []}

    def render_text(self) -> str:
        return "(wait events not collected)"

    def reset(self) -> None:
        pass


NULL_WAITS = NullWaitCollector()
