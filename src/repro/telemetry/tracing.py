"""Structured per-query tracing with I/O attribution.

A :class:`Tracer` records a tree of :class:`Span` objects per traced
query: ``query -> parse / plan / execute -> scan / functional_join /
replica_read / ... `` plus engine-side spans (``update_propagation``,
``link_maintenance``).  Every span carries the physical/logical I/O that
happened while it was open, read straight off the engine's shared
:class:`~repro.storage.stats.IOStatistics`, so a trace decomposes a
query's cost exactly the way the paper's cost terms do -- but measured,
not modelled.

Tracing is off by default and costs one attribute check per guarded call
site when disabled.  Enabled, spans are kept in memory in completion
order and exported as JSON-lines via :meth:`Tracer.to_jsonl` /
:meth:`Tracer.export`.

Two kinds of spans exist:

* **live spans** (:meth:`Tracer.span`): a context manager that measures
  wall-clock time and I/O between enter and exit;
* **recorded spans** (:meth:`Tracer.record`): pre-aggregated operator
  statistics (from EXPLAIN ANALYZE's meter) attached retroactively under
  the currently open span, so per-row operators do not pay per-row span
  overhead.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

_IO_FIELDS = (
    "physical_reads",
    "physical_writes",
    "logical_reads",
    "buffer_hits",
    "evictions",
    "dirty_writebacks",
)


@dataclass
class Span:
    """One timed, I/O-attributed region of work."""

    trace_id: int | str
    span_id: int
    parent_id: int | None
    name: str
    attrs: dict = field(default_factory=dict)
    duration_ms: float = 0.0
    #: wall-clock open time (epoch seconds) -- ``duration_ms`` stays on
    #: ``perf_counter``, but spans from different processes need a shared
    #: clock to be ordered into one tree.
    start_ts: float = 0.0
    io: dict = field(default_factory=dict)
    #: I/O charged to child spans; ``self_io()`` subtracts it.
    child_io: dict = field(default_factory=dict)

    def set(self, key: str, value) -> None:
        """Attach an attribute to the span."""
        self.attrs[key] = value

    @property
    def total_io(self) -> int:
        return self.io.get("physical_reads", 0) + self.io.get("physical_writes", 0)

    def self_io(self) -> dict:
        """This span's I/O minus what its children already account for."""
        return {
            name: self.io.get(name, 0) - self.child_io.get(name, 0)
            for name in _IO_FIELDS
        }

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attrs": self.attrs,
            "start_ts": round(self.start_ts, 6),
            "duration_ms": round(self.duration_ms, 3),
            "io": self.io,
            "self_io": self.self_io(),
        }


class Tracer:
    """Collects spans for one database instance (or one server session).

    ``trace_id`` pins every root span to an externally minted id (the
    client's, in cross-process propagation) instead of the local counter;
    ``session_id`` is stamped into every span's attributes so spans from
    concurrent sessions remain attributable after they are merged.
    """

    def __init__(self, stats=None, enabled: bool = False,
                 trace_id: int | str | None = None,
                 session_id: int | None = None) -> None:
        #: the engine's shared IOStatistics (bound by Telemetry).
        self.stats = stats
        self.enabled = enabled
        self.trace_id = trace_id
        self.session_id = session_id
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_span_id = 1
        self._next_trace_id = 1

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop all finished spans (open spans keep recording)."""
        self.spans.clear()

    # -- span creation -------------------------------------------------------

    def _read_io(self) -> dict:
        stats = self.stats
        if stats is None:
            return dict.fromkeys(_IO_FIELDS, 0)
        return {name: getattr(stats, name) for name in _IO_FIELDS}

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a live span; yields it for attribute updates."""
        if not self.enabled:
            yield None
            return
        if self._stack:
            trace_id = self._stack[-1].trace_id
        elif self.trace_id is not None:
            trace_id = self.trace_id
        else:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
        attrs = dict(attrs)
        if self.session_id is not None:
            attrs.setdefault("session_id", self.session_id)
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            attrs=attrs,
            start_ts=time.time(),
        )
        self._next_span_id += 1
        before = self._read_io()
        started = time.perf_counter()
        self._stack.append(span)
        try:
            yield span
        finally:
            span.duration_ms = (time.perf_counter() - started) * 1000.0
            after = self._read_io()
            span.io = {key: after[key] - before[key] for key in _IO_FIELDS}
            self._stack.pop()
            if self._stack:
                parent = self._stack[-1]
                for key, value in span.io.items():
                    parent.child_io[key] = parent.child_io.get(key, 0) + value
            self.spans.append(span)

    def record(self, name: str, attrs: dict | None = None,
               io: dict | None = None, parent: Span | None = None,
               duration_ms: float = 0.0,
               start_ts: float | None = None) -> Span:
        """Attach a pre-aggregated span (e.g. one EXPLAIN ANALYZE operator).

        The span is parented under ``parent`` (default: the innermost open
        span) and its I/O is *not* rolled into the parent's ``child_io`` --
        recorded operators describe work the enclosing live span already
        measured.
        """
        if parent is None and self._stack:
            parent = self._stack[-1]
        if parent is not None:
            trace_id = parent.trace_id
        elif self.trace_id is not None:
            trace_id = self.trace_id
        else:
            trace_id = self._next_trace_id
        attrs = dict(attrs or {})
        if self.session_id is not None:
            attrs.setdefault("session_id", self.session_id)
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span_id,
            parent_id=parent.span_id if parent else None,
            name=name,
            attrs=attrs,
            duration_ms=duration_ms,
            # retrospective spans are recorded at their *end*: back-date
            start_ts=(time.time() - duration_ms / 1000.0)
            if start_ts is None else start_ts,
            io={key: (io or {}).get(key, 0) for key in _IO_FIELDS},
        )
        self._next_span_id += 1
        if parent is None and self.trace_id is None:
            self._next_trace_id += 1
        self.spans.append(span)
        return span

    # -- export --------------------------------------------------------------

    def to_jsonl(self) -> str:
        """All finished spans, one JSON object per line."""
        return "\n".join(json.dumps(span.to_dict()) for span in self.spans)

    def export(self, path) -> int:
        """Write the JSONL trace to ``path``; returns spans written."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            if text:
                handle.write(text + "\n")
        return len(self.spans)

    def spans_named(self, name: str) -> list[Span]:
        """Finished spans with the given name, in completion order."""
        return [span for span in self.spans if span.name == name]
