"""A small metrics registry: counters, gauges, and histograms.

Every engine component that does physically interesting work publishes
into one shared :class:`MetricsRegistry` (owned by the database's
:class:`~repro.telemetry.Telemetry`):

* the buffer pool: hits, misses, evictions, dirty write-backs;
* the simulated disk: physical reads/writes, page allocations;
* the replication manager: propagations, fan-out, link-object touches;
* the secondary (B+-tree / path) indexes: lookups, range scans, entry
  maintenance;
* the query runner: per-query I/O and row-count histograms.

Metrics support flat label sets (``counter.inc(kind="read")``) and render
both as a plain-text table (:meth:`MetricsRegistry.render_text`) and in
the Prometheus exposition format (:meth:`MetricsRegistry.render_prometheus`),
so a scrape endpoint or a test can consume the same numbers.

Components that can be constructed standalone (a bare ``BufferPool`` in a
unit test) default to :data:`NULL_METRICS`, a no-op registry with the same
surface.

Every metric carries its own small mutex: statements now execute
concurrently inside one engine, so counter bumps from different worker
threads must not lose increments.  The locks are leaves in the engine's
lock hierarchy -- no metric callback takes any other lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition spec:
    backslash, double-quote, and newline must be backslash-escaped."""
    return (value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"'
                     for name, value in key)
    return "{" + inner + "}"


@dataclass
class Counter:
    """A monotonically increasing value, optionally split by labels."""

    name: str
    help: str = ""
    _values: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    kind = "counter"

    def inc(self, amount: int | float = 1, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> int | float:
        return self._values.get(_label_key(labels), 0)

    def total(self) -> int | float:
        """The sum across every label combination."""
        with self._lock:
            return sum(self._values.values())

    def samples(self):
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            yield self.name + _render_labels(key), value


@dataclass
class Gauge:
    """A value that goes up and down (resident frames, live pages, ...)."""

    name: str
    help: str = ""
    _values: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    kind = "gauge"

    def set(self, value: int | float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = value

    def inc(self, amount: int | float = 1, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def set_max(self, value: int | float, **labels) -> None:
        """Ratchet: keep the largest value ever set (high-water marks)."""
        key = _label_key(labels)
        with self._lock:
            if value > self._values.get(key, 0):
                self._values[key] = value

    def value(self, **labels) -> int | float:
        return self._values.get(_label_key(labels), 0)

    def samples(self):
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            yield self.name + _render_labels(key), value


#: bucket bounds suited to per-query page-I/O counts.
DEFAULT_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 1000)


@dataclass
class Histogram:
    """A cumulative-bucket histogram in the Prometheus style."""

    name: str
    help: str = ""
    buckets: tuple = DEFAULT_BUCKETS
    _counts: dict = field(default_factory=dict)
    _sums: dict = field(default_factory=dict)
    _totals: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    kind = "histogram"

    def observe(self, value: int | float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.setdefault(key,
                                             [0] * (len(self.buckets) + 1))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            counts[-1] += 1  # the +Inf bucket
            self._sums[key] = self._sums.get(key, 0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels) -> int:
        return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels) -> int | float:
        return self._sums.get(_label_key(labels), 0)

    def mean(self, **labels) -> float:
        n = self.count(**labels)
        return self.sum(**labels) / n if n else 0.0

    def samples(self):
        with self._lock:
            snap = [(key, list(self._counts[key]), self._sums[key],
                     self._totals[key]) for key in sorted(self._counts)]
        for key, counts, total_sum, total_count in snap:
            for bound, cumulative in zip(self.buckets, counts):
                labels = key + (("le", str(bound)),)
                yield f"{self.name}_bucket" + _render_labels(labels), cumulative
            yield (
                f"{self.name}_bucket" + _render_labels(key + (("le", "+Inf"),)),
                counts[-1],
            )
            yield f"{self.name}_sum" + _render_labels(key), total_sum
            yield f"{self.name}_count" + _render_labels(key), total_count


class MetricsRegistry:
    """Get-or-create registry of named metrics."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory, help_: str):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory(name, help_)
                    self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_: str = "") -> Counter:
        return self._get(name, Counter, help_)

    def gauge(self, name: str, help_: str = "") -> Gauge:
        return self._get(name, Gauge, help_)

    def histogram(self, name: str, help_: str = "",
                  buckets: tuple = DEFAULT_BUCKETS) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = Histogram(name, help_, buckets)
                    self._metrics[name] = metric
        return metric

    # -- convenience ---------------------------------------------------------

    def inc(self, name: str, amount: int | float = 1, **labels) -> None:
        self.counter(name).inc(amount, **labels)

    def observe(self, name: str, value: int | float, **labels) -> None:
        self.histogram(name).observe(value, **labels)

    def value(self, name: str, **labels) -> int | float:
        metric = self._metrics.get(name)
        return metric.value(**labels) if metric is not None else 0

    def metrics(self):
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- rendering -----------------------------------------------------------

    def render_text(self) -> str:
        """A plain fixed-width dump, one sample per line."""
        lines = []
        for metric in self.metrics():
            for sample_name, value in metric.samples():
                rendered = f"{value:.3f}".rstrip("0").rstrip(".") \
                    if isinstance(value, float) else str(value)
                lines.append(f"{sample_name:55s} {rendered}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        lines = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample_name, value in metric.samples():
                lines.append(f"{sample_name} {value}")
        return "\n".join(lines) + ("\n" if lines else "")


class _NullMetric:
    """Accepts every metric operation and does nothing."""

    __slots__ = ()

    def inc(self, amount=1, **labels) -> None:
        pass

    def set(self, value, **labels) -> None:
        pass

    def set_max(self, value, **labels) -> None:
        pass

    def observe(self, value, **labels) -> None:
        pass

    def value(self, **labels) -> int:
        return 0

    def total(self) -> int:
        return 0


_NULL_METRIC = _NullMetric()


class NullMetricsRegistry:
    """Registry stand-in for components built without telemetry."""

    __slots__ = ()

    def counter(self, name: str, help_: str = "") -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help_: str = "") -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, help_: str = "", buckets=DEFAULT_BUCKETS) -> _NullMetric:
        return _NULL_METRIC

    def inc(self, name: str, amount=1, **labels) -> None:
        pass

    def observe(self, name: str, value, **labels) -> None:
        pass

    def value(self, name: str, **labels) -> int:
        return 0

    def metrics(self) -> list:
        return []

    def reset(self) -> None:
        pass

    def render_text(self) -> str:
        return "(no metrics recorded)"

    def render_prometheus(self) -> str:
        return ""


NULL_METRICS = NullMetricsRegistry()
