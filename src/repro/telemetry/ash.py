"""Active Session History: a bounded ring of session wait snapshots.

The pg_stat_activity / Performance-Schema idea: a daemon sampler (the
server's :class:`~repro.telemetry.tsstore.TelemetrySampler`) snapshots
every live session's *current* state at a fixed interval -- which
statement it is running and which wait event it is blocked on right now
(``cpu`` when executing, ``client_net`` when idle between statements) --
into a fixed-capacity ring.  Time-weighted aggregation then falls out of
counting: if 60 of the last 100 samples of a session show
``lock:Emp1``, that session spent ~60% of the window blocked on that
lock, without any per-event logging on the hot path.

Samples are plain dicts::

    {"ts": ..., "session_id": 3, "session": "127.0.0.1:51234",
     "statement": "retrieve ( Emp1 . name )", "fingerprint": "a1b2...",
     "event": "lock:Emp1", "detail": "X(Emp1)", "wait_s": 1.204,
     "statement_age_s": 1.31, "in_txn": False}

The ring is bounded (oldest samples evicted first) and every surface is
a filterable read: by time window, by fingerprint, by wait event / the
resource inside it, by session.  ``profile()`` turns a window into the
per-event (or per-fingerprint, per-session) share table that ``\\ash``
and ``/ash`` render.

Recording and reading are thread-safe and observer-neutral: one mutex
around a ``deque``, no page I/O, no engine latch.  Statement
fingerprints are computed at *sample* time (a few per second), never on
the statement hot path.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.telemetry.statstats import fingerprint
from repro.telemetry.waitevents import CLIENT_NET, canonical_event

#: default ring capacity: at 1 Hz and 8 sessions, ~8.5 minutes of history.
DEFAULT_CAPACITY = 4096


class ActiveSessionHistory:
    """Bounded newest-last history of sampled session wait states."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._mutex = threading.Lock()
        self._ring: deque = deque(maxlen=max(1, capacity))
        #: every sample ever taken (the ring only keeps the newest).
        self.sampled_total = 0
        #: sampler passes completed (one pass = one sample per session).
        self.passes = 0

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    # -- recording ---------------------------------------------------------

    def sample(self, waits, sessions=None, ts: float | None = None) -> int:
        """Take one sampling pass; returns the samples recorded.

        ``waits`` is the database's
        :class:`~repro.telemetry.waitevents.WaitEventCollector` (its
        in-flight statement contexts become ``cpu``/wait samples);
        ``sessions`` is an optional iterable of live
        :class:`~repro.server.session.Session` objects -- sessions with
        no statement in flight are recorded as ``client_net`` (idle),
        so the history covers every live session, not just busy ones.
        """
        ts = time.time() if ts is None else ts
        samples = waits.sample()
        busy_ids = {s["session_id"] for s in samples}
        for sample in samples:
            sample["ts"] = round(ts, 3)
            sample["fingerprint"] = fingerprint(sample["statement"])[0] \
                if sample["statement"] else ""
        for session in sessions or ():
            if session.id in busy_ids or session.closed:
                continue
            samples.append({
                "ts": round(ts, 3),
                "session_id": session.id,
                "session": session.name,
                "statement": "",
                "fingerprint": "",
                "event": CLIENT_NET,
                "detail": "idle",
                "wait_s": 0.0,
                "statement_age_s": 0.0,
                "in_txn": session.in_txn,
            })
        self.record(samples)
        return len(samples)

    def record(self, samples: list[dict]) -> None:
        """Append pre-built samples (tests drive the ring directly)."""
        with self._mutex:
            self._ring.extend(samples)
            self.sampled_total += len(samples)
            self.passes += 1

    # -- reading -----------------------------------------------------------

    def samples(self, since: float | None = None,
                until: float | None = None,
                fingerprint: str | None = None,
                event: str | None = None,
                session_id: int | None = None,
                limit: int | None = None) -> list[dict]:
        """Retained samples, oldest first, filtered.

        ``event`` matches exactly, or -- for lock waits -- by the
        resource alone (``event="lock:Emp1"``) or the whole class
        (``event="lock"`` matches every ``lock:<resource>``).  Legacy
        event names are accepted (``engine_latch`` matches today's
        ``admission_wait`` samples).
        """
        if event is not None:
            event = canonical_event(event)
        with self._mutex:
            items = list(self._ring)
        out = []
        for s in items:
            if since is not None and s["ts"] < since:
                continue
            if until is not None and s["ts"] > until:
                continue
            if fingerprint is not None and s.get("fingerprint") != fingerprint:
                continue
            if event is not None:
                got = s.get("event", "")
                if got != event and not got.startswith(event + ":"):
                    continue
            if session_id is not None and s.get("session_id") != session_id:
                continue
            out.append(dict(s))
        if limit is not None and limit > 0:
            out = out[-limit:]
        return out

    def profile(self, by: str = "event", since: float | None = None,
                until: float | None = None,
                event: str | None = None) -> list[dict]:
        """Sample counts grouped ``by`` one field, with shares.

        Each sample approximates one interval of wall-clock spent in
        that state, so shares read directly as time shares.
        """
        if by not in ("event", "fingerprint", "session", "statement"):
            raise ValueError(f"cannot profile by {by!r}")
        counts: dict[str, int] = {}
        statements: dict[str, str] = {}
        total = 0
        for s in self.samples(since=since, until=until, event=event):
            key = str(s.get(by) or "")
            counts[key] = counts.get(key, 0) + 1
            if s.get("statement") and key not in statements:
                statements[key] = s["statement"]
            total += 1
        rows = [{by: key, "samples": count,
                 "share": round(count / total, 4) if total else 0.0}
                for key, count in counts.items()]
        if by in ("fingerprint", "session"):
            for row in rows:
                row["statement"] = statements.get(row[by], "")[:80]
        rows.sort(key=lambda r: (-r["samples"], r[by]))
        return rows

    def snapshot(self, window_s: float | None = None,
                 fingerprint: str | None = None,
                 event: str | None = None,
                 limit: int = 50) -> dict:
        """The ``ash`` verb / ``/ash`` document: profile + recent samples."""
        since = (time.time() - window_s) if window_s else None
        samples = self.samples(since=since, fingerprint=fingerprint,
                               event=event)
        counts: dict[str, int] = {}
        for s in samples:
            counts[s["event"]] = counts.get(s["event"], 0) + 1
        total = len(samples)
        profile = [{"event": k, "samples": v,
                    "share": round(v / total, 4) if total else 0.0}
                   for k, v in counts.items()]
        profile.sort(key=lambda r: (-r["samples"], r["event"]))
        return {
            "capacity": self.capacity,
            "retained": len(self),
            "sampled_total": self.sampled_total,
            "passes": self.passes,
            "window_s": window_s,
            "matched": total,
            "profile": profile,
            "by_fingerprint": self.profile(
                "fingerprint", since=since, event=event)[:10],
            "samples": samples[-max(0, limit):],
        }

    def __len__(self) -> int:
        with self._mutex:
            return len(self._ring)

    def clear(self) -> None:
        with self._mutex:
            self._ring.clear()

    def render_text(self, window_s: float | None = 60.0) -> str:
        """The ``\\ash`` view: wait profile over the window, then the
        hottest fingerprints inside it."""
        doc = self.snapshot(window_s=window_s, limit=0)
        if not doc["matched"]:
            if self.sampled_total:
                return (f"(no samples in the last {window_s:.0f}s; "
                        f"{self.sampled_total} retained earlier)")
            return "(no ASH samples recorded; is the sampler running?)"
        header = (f"active session history: {doc['matched']} samples"
                  + (f" in the last {window_s:.0f}s" if window_s else "")
                  + f" (ring {doc['retained']}/{doc['capacity']})")
        lines = [header, f"{'share':>7} {'samples':>8}  wait event"]
        for row in doc["profile"]:
            lines.append(f"{row['share'] * 100:6.1f}% {row['samples']:8d}"
                         f"  {row['event']}")
        hot = [r for r in doc["by_fingerprint"] if r["fingerprint"]]
        if hot:
            lines.append("hottest statements (by samples):")
            for row in hot[:5]:
                lines.append(f"{row['share'] * 100:6.1f}% "
                             f"{row['samples']:8d}  [{row['fingerprint']}] "
                             f"{row['statement'][:60]}")
        return "\n".join(lines)
