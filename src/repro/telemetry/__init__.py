"""repro.telemetry: tracing, metrics, and model-drift monitoring.

One :class:`Telemetry` object per database bundles the three observability
surfaces:

* :class:`~repro.telemetry.tracing.Tracer` -- structured per-query spans
  with I/O attribution, exported as JSONL;
* :class:`~repro.telemetry.metrics.MetricsRegistry` -- counters, gauges,
  and histograms fed by the buffer pool, disk, replication manager, and
  indexes, rendered plain or Prometheus-style;
* :class:`~repro.telemetry.drift.DriftMonitor` -- the Section 6 cost
  model's predictions scored against measured query I/O;
* :class:`~repro.telemetry.slowlog.SlowQueryLog` -- a bounded ring of
  statements that crossed the latency threshold, with their plan, I/O,
  lock-wait breakdown, and outcome;
* :class:`~repro.telemetry.statstats.StatementStats` -- per-fingerprint
  statement aggregates (calls, rows, I/O, lock waits, WAL bytes, and a
  streaming latency histogram);
* :class:`~repro.telemetry.repledger.ReplicationLedger` -- measured
  charge/credit accounting per replication path, feeding the workload
  monitor's keep/add/drop ranking;
* :class:`~repro.telemetry.waitevents.WaitEventCollector` -- wait-event
  accounting (engine latch, locks, buffer I/O, WAL flush, queue, quorum
  acks, cpu residual) attributing every second of statement wall-clock
  to a named wait.

The server layers :class:`~repro.telemetry.ash.ActiveSessionHistory`
(sampled session wait states) and a
:class:`~repro.telemetry.tsstore.TimeSeriesStore` +
:class:`~repro.telemetry.tsstore.AlertEngine` on top, driven by one
:class:`~repro.telemetry.tsstore.TelemetrySampler` daemon thread.

Everything is off-or-cheap by default: tracing is opt-in, metric
increments are plain dict updates, and drift records are only produced by
the model workload driver.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.telemetry.drift import DriftMonitor, DriftRecord
from repro.telemetry.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.telemetry.repledger import ReplicationLedger
from repro.telemetry.slowlog import SlowQueryLog
from repro.telemetry.statstats import StatementStats
from repro.telemetry.tracing import Span, Tracer
from repro.telemetry.waitevents import (
    NULL_WAITS,
    NullWaitCollector,
    WaitEventCollector,
)


class Telemetry:
    """The per-database observability bundle."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.waits = WaitEventCollector(metrics=self.metrics)
        self._tracer = Tracer()
        self._tracer_local = threading.local()
        self.drift = DriftMonitor()
        self.slowlog = SlowQueryLog(metrics=self.metrics)
        self.statements = StatementStats(metrics=self.metrics)
        self.repledger = ReplicationLedger(metrics=self.metrics)
        # Pre-register the query histograms so their help text is set
        # before the runner's get-or-create observe() calls.
        self.metrics.histogram("query_io_pages",
                               "physical page I/O per executed statement")
        self.metrics.histogram("query_rows",
                               "rows returned per executed statement")

    @property
    def tracer(self) -> Tracer:
        """The active tracer: a thread-local override when a served
        statement is executing under :meth:`tracer_scope`, else the
        database-wide tracer.  Statements on different worker threads
        therefore trace into private span lists with no cross-talk."""
        override = getattr(self._tracer_local, "tracer", None)
        return override if override is not None else self._tracer

    @tracer.setter
    def tracer(self, tracer: Tracer) -> None:
        self._tracer = tracer

    @contextmanager
    def tracer_scope(self, tracer: Tracer):
        """Route this thread's spans into ``tracer`` for the duration."""
        previous = getattr(self._tracer_local, "tracer", None)
        self._tracer_local.tracer = tracer
        try:
            yield tracer
        finally:
            self._tracer_local.tracer = previous

    def attach_stats(self, stats) -> None:
        """Bind the engine's shared IOStatistics (for span I/O deltas)."""
        self._tracer.stats = stats

    def reset(self) -> None:
        """Forget everything recorded so far (tracing stays on/off as is)."""
        self.metrics.reset()
        self.tracer.clear()
        self.drift.reset()
        self.slowlog.clear()
        self.statements.clear()
        self.repledger.clear()
        self.waits.reset()


__all__ = [
    "Counter",
    "DriftMonitor",
    "DriftRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_WAITS",
    "NullMetricsRegistry",
    "NullWaitCollector",
    "ReplicationLedger",
    "SlowQueryLog",
    "StatementStats",
    "Span",
    "Telemetry",
    "Tracer",
    "WaitEventCollector",
]
