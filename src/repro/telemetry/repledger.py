"""The replication effectiveness ledger: measured cost vs. benefit.

The paper's economics are simple: a replicated field pays for itself
when the functional joins it *avoids* outweigh the propagation writes it
*incurs*.  The cost model predicts that trade-off; this ledger accounts
for it on the live workload, one entry per replication path:

* **charges** -- every update propagation through the inverted path.
  The fan-out rewrite dirties at most ``min(P_source, fanout)`` source
  pages (the same sorted-probe bound the batched join obeys: one page
  per distinct object, one write per page), so that is what a
  propagation is charged; a separate-strategy replica write charges one
  replica page.
* **credits** -- every read served from a replicated field.  The
  counterfactual is the functional join the read avoided, priced with
  the sorted-probe formula: an ordered sweep over each avoided hop's
  target file touches ``min(P_hop, rows)`` pages
  (:func:`repro.costmodel.sortedprobe.sorted_probe_pages`).

Both sides are therefore in the same unit -- model pages under the
batched executor's physics -- and deliberately *deterministic*: they do
not depend on buffer-pool residency, so a hot cache cannot make an
over-replicated field look free.  ``net = credited - charged``; negative
means the path costs more in propagation than it saves in joins, and
:meth:`repro.monitor.WorkloadMonitor.candidates` turns that into a
``drop replicate`` candidate.

Recording is thread-safe and does no I/O of its own: charges and
credits are computed from page counts the engine already tracks
in memory.
"""

from __future__ import annotations

import threading

from repro.costmodel.sortedprobe import sorted_probe_pages
from repro.telemetry.metrics import NULL_METRICS


def counterfactual_hop_pages(db, type_name: str, rows: int) -> float:
    """Pages one batched join hop into ``type_name``'s file(s) would have
    read to resolve ``rows`` probes: ``sorted_probe_pages(P_hop, rows)``
    over every set holding that type (or a subtype).  A type with no set
    (possible mid-schema-change) contributes 0.
    """
    if rows <= 0:
        return 0.0
    root = db.registry.root_name(type_name)
    pages = sum(
        s.num_pages() for s in db.catalog.sets.values()
        if db.registry.root_name(s.type_name) == root
    )
    return sorted_probe_pages(pages, rows)


def counterfactual_join_pages(db, path, rows: int) -> float:
    """Pages a batched functional join over ``path``'s forward chain
    would have read to serve ``rows`` source rows: one sorted-probe
    sweep per hop of the chain."""
    return sum(counterfactual_hop_pages(db, type_name, rows)
               for type_name in path.resolved.type_names[1:])


class _PathLedger:
    """The running account of one replication path."""

    __slots__ = ("path", "propagations", "fanout", "charged_pages",
                 "reads_served", "rows_served", "credited_pages")

    def __init__(self, path: str) -> None:
        self.path = path
        self.propagations = 0
        self.fanout = 0
        self.charged_pages = 0.0
        self.reads_served = 0
        self.rows_served = 0
        self.credited_pages = 0.0

    @property
    def net_pages(self) -> float:
        return self.credited_pages - self.charged_pages

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "propagations": self.propagations,
            "fanout": self.fanout,
            "charged_pages": round(self.charged_pages, 3),
            "reads_served": self.reads_served,
            "rows_served": self.rows_served,
            "credited_pages": round(self.credited_pages, 3),
            "net_pages": round(self.net_pages, 3),
        }


class ReplicationLedger:
    """Per-path charge/credit accounting for every replication path."""

    def __init__(self, metrics=None) -> None:
        #: flipping this off makes charge()/credit() no-ops.
        self.enabled = True
        self._mutex = threading.Lock()
        self._entries: dict[str, _PathLedger] = {}
        m = metrics if metrics is not None else NULL_METRICS
        self._m_charged = m.counter(
            "replication_ledger_charged_pages_total",
            "model pages charged to propagation writes, by path")
        self._m_credited = m.counter(
            "replication_ledger_credited_pages_total",
            "model pages credited to reads served from replicas, by path")

    def _entry(self, path_text: str) -> _PathLedger:
        entry = self._entries.get(path_text)
        if entry is None:
            entry = _PathLedger(path_text)
            self._entries[path_text] = entry
        return entry

    # -- recording -----------------------------------------------------------

    def charge(self, path_text: str, pages: float, fanout: int = 0) -> None:
        """One propagation wrote ``fanout`` objects costing ``pages``."""
        if not self.enabled:
            return
        with self._mutex:
            entry = self._entry(path_text)
            entry.propagations += 1
            entry.fanout += fanout
            entry.charged_pages += pages
        if pages:
            self._m_charged.inc(pages, path=path_text)

    def credit(self, path_text: str, pages: float, rows: int = 0) -> None:
        """One read served ``rows`` values from a replica, avoiding a
        join worth ``pages``."""
        if not self.enabled:
            return
        with self._mutex:
            entry = self._entry(path_text)
            entry.reads_served += 1
            entry.rows_served += rows
            entry.credited_pages += pages
        if pages:
            self._m_credited.inc(pages, path=path_text)

    # -- reading -------------------------------------------------------------

    def net(self, path_text: str) -> float:
        """Credited minus charged pages (0 for an unseen path)."""
        with self._mutex:
            entry = self._entries.get(path_text)
            return entry.net_pages if entry is not None else 0.0

    def entries(self) -> list[dict]:
        """Every path's account, best net benefit first."""
        with self._mutex:
            rows = [e.to_dict() for e in self._entries.values()]
        rows.sort(key=lambda r: (-r["net_pages"], r["path"]))
        return rows

    def forget(self, path_text: str) -> None:
        """Drop one path's account (its ``drop replicate`` ran)."""
        with self._mutex:
            self._entries.pop(path_text, None)

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()

    def render_text(self) -> str:
        """The ``\\ledger`` table, best net benefit first."""
        rows = self.entries()
        if not rows:
            return "(no replication activity recorded)"
        lines = [f"{'net pages':>11} {'credited':>10} {'reads':>7} "
                 f"{'charged':>10} {'props':>6} {'fanout':>7}  path"]
        for r in rows:
            lines.append(
                f"{r['net_pages']:+11.1f} {r['credited_pages']:10.1f} "
                f"{r['reads_served']:7d} {r['charged_pages']:10.1f} "
                f"{r['propagations']:6d} {r['fanout']:7d}  {r['path']}")
        lines.append("(positive net: the replica pays for itself; "
                     "negative: propagation outweighs reads)")
        return "\n".join(lines)
