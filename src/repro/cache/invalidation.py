"""Resource-set computation for result-cache invalidation.

The cache reuses the lock manager's footprint computation
(:mod:`repro.server.locks`), which already expands a write with every
replication-path structure the propagation rewrites -- the inverted-path
index of the paper turned into a precise invalidation set.  This module
provides the two extra pieces the cache needs:

* resource sets for the **facade-level** DML entry points
  (``db.insert`` / ``db.update`` / ``db.delete``), which are called both
  directly by API users and per-row by the bulk executors -- so every
  mutation path invalidates, not just the text statements;
* a **file -> resource** mapping for replica coherence: a follower
  applies the primary's redo frames, which carry file ids, and must
  invalidate the owning set's cached reads before its applied LSN
  advances.

Imports from ``repro.server.locks`` are function-level: the cache package
is constructed by :class:`~repro.schema.database.Database`, which the
server package itself imports.
"""

from __future__ import annotations


def write_resources(db, set_name: str, fields) -> frozenset:
    """The exclusive resource set of an update touching ``fields``.

    Mirrors the ``UpdatePlan`` branch of ``footprint_for_plan``: the
    written set plus every replication-path structure the changed fields
    force the statement to rewrite (source set, downstream type sets,
    replica set).
    """
    from repro.server.locks import _write_propagation_locks

    exclusive = {set_name}
    _write_propagation_locks(db, set_name, set(fields), exclusive)
    return frozenset(exclusive)


def structural_resources(db, set_name: str) -> frozenset:
    """The exclusive resource set of an insert/delete on ``set_name``.

    Mirrors the ``DeletePlan`` branch of ``footprint_for_plan``: every
    path sourced at the set maintains link entries in the downstream sets
    and rows in its replica set, so membership changes reach them all.
    """
    from repro.server.locks import _sets_of_type

    exclusive = {set_name}
    for path in db.catalog.paths_on_source(set_name):
        exclusive.add(path.source_set)
        for type_name in path.resolved.type_names[1:]:
            exclusive |= _sets_of_type(db, type_name)
        if path.replica_set:
            exclusive.add(path.replica_set)
    return frozenset(exclusive)


def retrieve_footprint(db, stmt):
    """``(footprint resources, cacheable)`` of a parsed retrieve.

    A retrieve is cacheable only when its footprint has no exclusive
    resources -- a read of a lazily propagated path drains the pending
    queue (hidden-field writes), so serving it from cache would skip the
    refresh the statement promises.
    """
    from repro.server.locks import footprint_for_statement

    footprint = footprint_for_statement(db, stmt)
    if footprint.exclusive:
        return frozenset(), False
    return footprint.shared, True


def file_resource_map(db) -> dict[int, str]:
    """Map every catalog-known file id to the set resource that owns it.

    Heap files are named for their set; replication structures (replica
    sets, link files, lazy pending logs) and secondary indexes map to the
    resource their root set locks under -- the same convention
    ``repro.server.locks`` uses.  Files absent from the map (unknown /
    transient) make the caller fall back to a full invalidation.
    """
    mapping: dict[int, str] = {}
    for obj_set in db.catalog.sets.values():
        mapping[obj_set.file_id] = obj_set.name
    for link in db.catalog.links.values():
        mapping[link.file.heap.file_id] = link.source_set
    for info in db.catalog.indexes.values():
        mapping[info.index.tree.file_id] = info.set_name
    for path in db.catalog.paths.values():
        replica = db.replication.replica_sets.get(path.path_id)
        if replica is not None:
            mapping[replica.file_id] = path.replica_set
        if path.lazy:
            try:
                heap = db.storage.file(
                    f"__lazy{path.path_id}_{path.source_set}")
            except KeyError:
                continue
            mapping[heap.file_id] = path.source_set
    return mapping


def invalidate_applied_entry(db, entry) -> int:
    """Replica coherence: invalidate after applying one shipped entry.

    Called by the follower under its apply latch, *before* the applied
    LSN advances -- so a cached read on a replica is never staler than
    the replica itself.  DDL entries reshape the catalog and invalidate
    everything; DML entries invalidate exactly the sets owning the
    touched files, falling back to a full flush when a file id is not in
    the catalog map (conservative, never stale).
    """
    cache = db.resultcache
    if len(cache) == 0:
        return 0
    if entry.kind != "dml":
        return cache.invalidate_all(reason="replica")
    from repro.recovery.wal import WalRecordType

    mapping = file_resource_map(db)
    resources: set[str] = set()
    for record in entry.records():
        if record.type not in (WalRecordType.PAGE_AFTER,
                               WalRecordType.ALLOC):
            continue  # BEGIN/COMMIT carry no file
        resource = mapping.get(record.file_id)
        if resource is None:
            return cache.invalidate_all(reason="replica")
        resources.add(resource)
    if not resources:
        return 0
    return cache.invalidate(resources, reason="replica")
