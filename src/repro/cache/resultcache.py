"""A bounded derived-result cache with replication-catalog invalidation.

The cache stores the finished rows of ``retrieve`` statements keyed by
the exact (whitespace-collapsed) statement text.  Each entry additionally
carries two pieces of metadata:

* its **fingerprint** (:func:`repro.telemetry.statstats.fingerprint` --
  literals stripped), which groups entries of one statement *shape* so
  ``\\fingerprints`` can report per-shape hit rates;
* its **footprint**: the set-level resource set the lock manager derives
  from the plan + replication catalog before execution
  (:func:`repro.server.locks.footprint_for_plan`).  The footprint is the
  paper's inverted-path knowledge turned into an invalidation index --
  it names the scanned set, every set a functional join traverses, the
  replica sets read, and the ``__schema`` resource every statement
  shares.

Invalidation is therefore *precise*, never a full flush: a write
invalidates only the entries whose footprint intersects the write's
exclusive resource set, which the same lock-footprint computation already
expands with every propagation target of the replication catalog (a
``replace`` on ``S.repfield`` reaches ``S``, ``S'``, and every
referencing set -- and nothing else).  DDL takes the ``__schema``
resource exclusively, which every entry's footprint carries, so schema
changes implicitly invalidate everything.

The cache itself is a byte-bounded LRU: fills beyond ``capacity_bytes``
evict least-recently-served entries; an entry larger than the whole
budget is simply not cached.  All operations are O(footprint) thanks to
an inverted resource -> keys index, thread-safe, and do no I/O.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from repro.telemetry.metrics import NULL_METRICS
from repro.telemetry.statstats import fingerprint

#: default byte budget for cached rows (estimated, see ``_entry_bytes``).
DEFAULT_CACHE_BYTES = 4 * 1024 * 1024

#: ``\cache`` / snapshot: how many hottest entries to show.
_TOP_ENTRIES = 8


def cache_key(text: str) -> str:
    """The cache key of one statement: its whitespace-collapsed text.

    Literals are *kept* -- two retrieves differing only in a constant
    share a fingerprint but are different queries with different rows,
    so they must be distinct entries.
    """
    return " ".join(text.split())


def _entry_bytes(key: str, columns, rows, plan: str) -> int:
    """A deterministic size estimate of one entry (bookkeeping included)."""
    total = 96 + len(key) + len(plan)
    total += sum(16 + len(c) for c in columns)
    for row in rows:
        total += 24
        for value in row:
            total += 16 + len(str(value))
    return total


class CacheEntry:
    """One cached result; ``alive`` flips False on invalidation."""

    __slots__ = ("key", "fingerprint", "columns", "rows", "plan",
                 "footprint", "nbytes", "hits", "filled_at", "alive")

    def __init__(self, key: str, fp: str, columns, rows, plan: str,
                 footprint: frozenset) -> None:
        self.key = key
        self.fingerprint = fp
        self.columns = tuple(columns)
        self.rows = tuple(rows)
        self.plan = plan
        self.footprint = frozenset(footprint)
        self.nbytes = _entry_bytes(key, self.columns, self.rows, plan)
        self.hits = 0
        self.filled_at = time.time()
        self.alive = True

    def to_dict(self) -> dict:
        return {
            "statement": self.key,
            "fingerprint": self.fingerprint,
            "rows": len(self.rows),
            "bytes": self.nbytes,
            "hits": self.hits,
            "footprint": sorted(self.footprint),
        }


class ResultCache:
    """Byte-bounded LRU of retrieve results with footprint invalidation."""

    def __init__(self, capacity_bytes: int = DEFAULT_CACHE_BYTES,
                 enabled: bool = False, metrics=None) -> None:
        self.capacity_bytes = max(1, capacity_bytes)
        #: the database-level default; served sessions may override it
        #: per-session with ``\set cache on|off``
        self.enabled = enabled
        self._mutex = threading.Lock()
        #: key -> entry, least-recently-served first
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        #: resource -> set of keys whose footprint contains it
        self._by_resource: dict[str, set[str]] = {}
        self._bytes = 0
        # plain totals (mirrored into the metrics registry below)
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.evictions = 0
        self.invalidations = {"write": 0, "ddl": 0, "replica": 0, "all": 0}
        #: fingerprint -> [hits, misses] for the ``\fingerprints`` join
        self._fp_counts: dict[str, list[int]] = {}
        m = metrics if metrics is not None else NULL_METRICS
        self._m_hits = m.counter(
            "result_cache_hits_total", "statements served from the result cache")
        self._m_misses = m.counter(
            "result_cache_misses_total",
            "cacheable statements that missed the result cache")
        self._m_bypass = m.counter(
            "result_cache_bypass_total",
            "statements that bypassed the result cache, by reason")
        self._m_invalidations = m.counter(
            "result_cache_invalidations_total",
            "cache entries invalidated, by reason")
        self._m_evictions = m.counter(
            "result_cache_evictions_total", "cache entries evicted by the LRU")
        self._m_bytes = m.gauge(
            "result_cache_bytes", "estimated bytes of cached result rows")
        self._m_entries = m.gauge(
            "result_cache_entries", "entries in the result cache")
        self._m_hits.inc(0)
        self._m_misses.inc(0)
        self._m_evictions.inc(0)

    # -- probing / serving -------------------------------------------------

    def get(self, key: str) -> CacheEntry | None:
        """Peek at a live entry without counting a hit (the served path
        probes first, acquires the entry's footprint locks, then commits
        to the hit with :meth:`hit` once the locks are held)."""
        with self._mutex:
            entry = self._entries.get(key)
            return entry if entry is not None and entry.alive else None

    def hit(self, entry: CacheEntry):
        """Serve ``entry``: returns it (moved to MRU, counters bumped), or
        None if it was invalidated between :meth:`get` and the caller
        acquiring its footprint locks -- the caller then executes."""
        with self._mutex:
            if not entry.alive or entry.key not in self._entries:
                return None
            self._entries.move_to_end(entry.key)
            entry.hits += 1
            self.hits += 1
            self._fp_counts.setdefault(entry.fingerprint, [0, 0])[0] += 1
        self._m_hits.inc()
        return entry

    def miss(self, text: str) -> None:
        """Count a cacheable statement that found no live entry."""
        fp, __ = fingerprint(text)
        with self._mutex:
            self.misses += 1
            self._fp_counts.setdefault(fp, [0, 0])[1] += 1
        self._m_misses.inc()

    def bypass(self, reason: str) -> None:
        """Count a statement that was not allowed to use the cache."""
        with self._mutex:
            self.bypasses += 1
        self._m_bypass.inc(reason=reason)

    # -- filling -----------------------------------------------------------

    def fill(self, text: str, columns, rows, plan: str,
             footprint) -> bool:
        """Insert one finished retrieve result; True if it was kept.

        ``footprint`` is the statement's resource set from
        ``footprint_for_plan`` (its shared set -- a cacheable retrieve has
        no exclusive resources).  Oversized results are not cached; fills
        evict from the LRU end until the entry fits.
        """
        key = cache_key(text)
        fp, __ = fingerprint(text)
        entry = CacheEntry(key, fp, columns, rows, plan, footprint)
        if entry.nbytes > self.capacity_bytes:
            return False
        with self._mutex:
            old = self._entries.pop(key, None)
            if old is not None:
                self._drop_locked(old)
            while self._bytes + entry.nbytes > self.capacity_bytes:
                __, victim = self._entries.popitem(last=False)
                self._drop_locked(victim)
                self.evictions += 1
                self._m_evictions.inc()
            self._entries[key] = entry
            self._bytes += entry.nbytes
            for resource in entry.footprint:
                self._by_resource.setdefault(resource, set()).add(key)
            self._update_gauges_locked()
        return True

    def _drop_locked(self, entry: CacheEntry) -> None:
        entry.alive = False
        self._bytes -= entry.nbytes
        for resource in entry.footprint:
            keys = self._by_resource.get(resource)
            if keys is not None:
                keys.discard(entry.key)
                if not keys:
                    del self._by_resource[resource]
        self._update_gauges_locked()

    def _update_gauges_locked(self) -> None:
        self._m_bytes.set(self._bytes)
        self._m_entries.set(len(self._entries))

    # -- invalidation ------------------------------------------------------

    def invalidate(self, resources, reason: str = "write") -> int:
        """Drop every entry whose footprint intersects ``resources``.

        This is the replication-catalog invalidation index at work: the
        caller passes a write's exclusive resource set (propagation
        targets included) and only intersecting entries go -- disjoint
        entries stay warm.  Returns the number invalidated.
        """
        with self._mutex:
            keys: set[str] = set()
            for resource in resources:
                keys |= self._by_resource.get(resource, set())
            for key in keys:
                entry = self._entries.pop(key, None)
                if entry is not None:
                    self._drop_locked(entry)
            count = len(keys)
            if count:
                self.invalidations[reason] = (
                    self.invalidations.get(reason, 0) + count)
        if count:
            self._m_invalidations.inc(count, reason=reason)
        return count

    def invalidate_all(self, reason: str = "all") -> int:
        """Drop everything (DDL via ``__schema``, replica resyncs, ...)."""
        with self._mutex:
            count = len(self._entries)
            for entry in self._entries.values():
                entry.alive = False
            self._entries.clear()
            self._by_resource.clear()
            self._bytes = 0
            if count:
                self.invalidations[reason] = (
                    self.invalidations.get(reason, 0) + count)
            self._update_gauges_locked()
        if count:
            self._m_invalidations.inc(count, reason=reason)
        return count

    def clear(self) -> int:
        """``\\cache clear``: drop entries, keep the counters."""
        return self.invalidate_all(reason="all")

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        with self._mutex:
            return self._bytes

    def fingerprint_rates(self) -> dict[str, dict]:
        """``fingerprint -> {"hits", "misses", "hit_rate"}`` for the
        ``\\fingerprints`` join with the statement aggregator."""
        with self._mutex:
            counts = {fp: list(hm) for fp, hm in self._fp_counts.items()}
        out = {}
        for fp, (hits, misses) in counts.items():
            total = hits + misses
            out[fp] = {"hits": hits, "misses": misses,
                       "hit_rate": (hits / total) if total else 0.0}
        return out

    def snapshot(self) -> dict:
        """The wire / HTTP document (``cache`` verb, ``/cache``)."""
        with self._mutex:
            entries = list(self._entries.values())
            doc = {
                "enabled": self.enabled,
                "entries": len(entries),
                "bytes": self._bytes,
                "capacity_bytes": self.capacity_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "bypasses": self.bypasses,
                "evictions": self.evictions,
                "invalidations": dict(self.invalidations),
            }
        total = doc["hits"] + doc["misses"]
        doc["hit_rate"] = (doc["hits"] / total) if total else 0.0
        hottest = sorted(entries, key=lambda e: (-e.hits, e.key))
        doc["hottest"] = [e.to_dict() for e in hottest[:_TOP_ENTRIES]]
        return doc

    def stats(self) -> dict:
        """Alias for :meth:`snapshot` (symmetry with other collectors)."""
        return self.snapshot()

    def render_text(self) -> str:
        """The ``\\cache`` meta-command output."""
        doc = self.snapshot()
        inv = doc["invalidations"]
        lines = [
            f"result cache {'on' if doc['enabled'] else 'off'}  "
            f"entries {doc['entries']}  "
            f"bytes {doc['bytes']}/{doc['capacity_bytes']}",
            f"hits {doc['hits']}  misses {doc['misses']}  "
            f"hit rate {doc['hit_rate'] * 100:.1f}%  "
            f"bypasses {doc['bypasses']}  evictions {doc['evictions']}",
            f"invalidations  write {inv.get('write', 0)}  "
            f"ddl {inv.get('ddl', 0)}  replica {inv.get('replica', 0)}  "
            f"all {inv.get('all', 0)}",
        ]
        if doc["hottest"]:
            lines.append("hottest entries:")
            for e in doc["hottest"]:
                lines.append(
                    f"  x{e['hits']:<5} {e['rows']:5d} row(s) "
                    f"{e['bytes']:7d}B  [{e['fingerprint']}]  "
                    f"{e['statement'][:60]}")
        return "\n".join(lines)
