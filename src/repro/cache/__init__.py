"""repro.cache: the derived-result cache.

A byte-bounded LRU of finished ``retrieve`` results whose invalidation
index is the same footprint computation the lock manager performs --
the replication catalog's inverted paths tell us exactly which sets a
write's propagation reaches, so a ``replace`` invalidates only the
cached results whose footprint intersects it, never the whole cache.
See ``docs/caching.md``.
"""

from __future__ import annotations

from repro.cache.invalidation import (
    file_resource_map,
    invalidate_applied_entry,
    retrieve_footprint,
    structural_resources,
    write_resources,
)
from repro.cache.resultcache import (
    DEFAULT_CACHE_BYTES,
    CacheEntry,
    ResultCache,
    cache_key,
)

__all__ = [
    "CacheEntry",
    "DEFAULT_CACHE_BYTES",
    "ResultCache",
    "cache_key",
    "file_resource_map",
    "invalidate_applied_entry",
    "retrieve_footprint",
    "structural_resources",
    "write_resources",
]
