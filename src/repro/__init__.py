"""repro: field replication in an object-oriented DBMS.

A full reproduction of Shekita & Carey, *Performance Enhancement Through
Replication in an Object-Oriented DBMS* (SIGMOD 1989 / UW-Madison TR #817):
an EXODUS-style storage engine, an EXTRA-like object model, the in-place
and separate field-replication strategies with inverted paths and link
objects, a replication-aware query processor, the paper's analytical I/O
cost model, and an empirical workload simulator.

Quickstart::

    from repro import Database, TypeDefinition, char_field, int_field, ref_field

    db = Database()
    db.define_type(TypeDefinition("DEPT", [char_field("name", 20)]))
    db.define_type(TypeDefinition("EMP", [char_field("name", 20),
                                          int_field("salary"),
                                          ref_field("dept", "DEPT")]))
    db.create_set("Dept", "DEPT")
    db.create_set("Emp1", "EMP")
    db.replicate("Emp1.dept.name")          # eliminate the functional join
    rows = db.execute(
        "retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary > 100000"
    ).rows
"""

from repro.errors import ReproError
from repro.objects.types import (
    FieldDef,
    FieldKind,
    TypeDefinition,
    char_field,
    float_field,
    int_field,
    ref_field,
)
from repro.replication.spec import Strategy
from repro.schema.database import Database
from repro.storage.oid import OID

__version__ = "1.0.0"

__all__ = [
    "Database",
    "FieldDef",
    "FieldKind",
    "OID",
    "ReproError",
    "Strategy",
    "TypeDefinition",
    "char_field",
    "float_field",
    "int_field",
    "ref_field",
    "__version__",
]
