"""Named object sets (``create Emp1: {own ref EMP}``)."""

from repro.sets.objectset import ObjectSet

__all__ = ["ObjectSet"]
