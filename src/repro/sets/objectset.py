"""Named top-level sets.

``create Emp1: {own ref EMP}`` creates a named set stored as one disk file
whose pages contain only the member objects (Section 2.2).  ``own ref``
means existence dependency: deleting the set deletes its members, but not
the objects they merely reference.

An :class:`ObjectSet` offers *raw* operations only -- no replication or
index maintenance happens here.  The :class:`~repro.schema.database.Database`
facade wraps these raw operations with replication propagation and index
upkeep; code that bypasses the facade is expected to know what it is doing
(bulk loaders do).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import FieldError
from repro.objects.instance import StoredObject
from repro.objects.store import ObjectStore
from repro.objects.types import TypeDefinition
from repro.storage.heapfile import HeapFile
from repro.storage.oid import OID


class ObjectSet:
    """A named set of objects of one type, stored as one disk file."""

    def __init__(self, name: str, type_name: str, store: ObjectStore, heap: HeapFile) -> None:
        self.name = name
        self.type_name = type_name
        self.store = store
        self.heap = heap

    @property
    def type_def(self) -> TypeDefinition:
        """The current (possibly replication-widened) member type."""
        return self.store.registry.get(self.type_name)

    @property
    def file_id(self) -> int:
        """The id of the backing disk file."""
        return self.heap.file_id

    # -- raw operations -------------------------------------------------

    def make_object(self, values: dict) -> StoredObject:
        """Build a member object, rejecting writes to hidden fields."""
        for name in values:
            if self.type_def.has_field(name) and self.type_def.field_def(name).hidden:
                raise FieldError(
                    f"field {name!r} of set {self.name!r} is replication-internal"
                )
        return StoredObject(self.type_def, dict(values))

    def raw_insert(self, obj: StoredObject) -> OID:
        """Store a member object (no replication / index upkeep)."""
        return self.store.insert(self.heap, obj)

    def read(self, oid: OID) -> StoredObject:
        """Dereference a member OID."""
        return self.store.read(oid)

    def raw_update(self, oid: OID, obj: StoredObject) -> None:
        """Overwrite a member object (no replication / index upkeep)."""
        self.store.update(oid, obj)

    def raw_delete(self, oid: OID) -> None:
        """Remove a member object (no replication / index upkeep)."""
        self.store.delete(oid)

    def contains(self, oid: OID) -> bool:
        """Whether ``oid`` names a live member of this set's file."""
        return oid.file_id == self.file_id and self.store.exists(oid)

    def scan(self, readahead: int = 0) -> Iterator[tuple[OID, StoredObject]]:
        """Members in physical order (``readahead``: scan prefetch window)."""
        return self.store.scan(self.heap, readahead=readahead)

    def count(self) -> int:
        """Number of members (a full scan)."""
        return sum(1 for __ in self.scan())

    def num_pages(self) -> int:
        """Pages of the backing file."""
        return self.heap.num_pages()
