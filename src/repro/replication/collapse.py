"""Collapsed inverted paths (Section 4.3.3).

A 2-level in-place path ``R.a.b.field`` normally maintains two links
(``R.a^-1`` and ``a.b^-1``); collapsing merges them into one link
``R.b^-1`` whose entries are *tagged*: each source-object OID is paired
with the OID of the intermediate object it arrived through.  Updates to
the terminal's data fields then reach the source objects through a single
link-object read -- the optimization's win -- at the price of costlier
reference-attribute updates (tag-driven entry moves) and no link sharing.

Both the terminal object (the link object's owner) and every intermediate
object carry a ``(link-OID, link-ID)`` pair for the collapsed link; the
intermediate's pair is what lets the system discover that an update to its
reference attribute affects the path (the paper's tags serve exactly this
discovery).  Because a tag-carrying intermediate with a *null* forward
reference would be undiscoverable, collapsed paths require the reference
chain to stay non-null -- consistent with the paper's advice to collapse
only static paths.
"""

from __future__ import annotations

from repro.errors import ReplicationError
from repro.objects.instance import LinkEntry, StoredObject
from repro.objects.store import ObjectStore
from repro.replication.spec import ReplicationPath
from repro.storage.oid import OID
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # annotation-only; avoids an import cycle with schema
    from repro.schema.catalog import Catalog, LinkDef


class CollapsedPaths:
    """Maintenance of collapsed 2-level in-place paths."""

    def __init__(self, catalog: Catalog, store: ObjectStore) -> None:
        self.catalog = catalog
        self.store = store

    # -- helpers ------------------------------------------------------------

    def _link(self, path: ReplicationPath) -> LinkDef:
        return self.catalog.get_link(path.link_sequence[0])

    def _hidden_changes(self, path: ReplicationPath,
                        terminal: StoredObject | None) -> dict[str, object]:
        from repro.objects.instance import _default_for

        terminal_type = self.store.registry.get(path.resolved.terminal_type)
        changes = {}
        for fname, hname in zip(path.replicated_field_names, path.hidden_fields):
            changes[hname] = (
                terminal.values[fname]
                if terminal is not None
                else _default_for(terminal_type.field_def(fname).kind)
            )
        return changes

    def _chain(self, path: ReplicationPath) -> tuple[str, str]:
        a, b = path.resolved.ref_chain
        return a, b

    # -- membership ---------------------------------------------------------

    def after_insert(self, path: ReplicationPath, oid: OID,
                     obj: StoredObject) -> dict[str, object]:
        """Enroll a new source object; returns its hidden-value changes."""
        ref_a, ref_b = self._chain(path)
        mid_oid = obj.ref(ref_a)
        if mid_oid is None:
            return self._hidden_changes(path, None)
        mid = self.store.read(mid_oid)
        terminal_oid = mid.ref(ref_b)
        if terminal_oid is None:
            raise ReplicationError(
                f"collapsed path {path.text!r} requires {ref_b!r} to be non-null"
            )
        self._add_entry(path, oid, mid_oid, terminal_oid)
        return self._hidden_changes(path, self.store.read(terminal_oid))

    def before_delete(self, path: ReplicationPath, oid: OID, obj: StoredObject) -> None:
        """Withdraw a source object from the collapsed link."""
        ref_a, __ = self._chain(path)
        mid_oid = obj.ref(ref_a)
        if mid_oid is None:
            return
        self._remove_entry(path, oid, mid_oid)

    def on_source_ref_change(self, path: ReplicationPath, oid: OID,
                             old: StoredObject, new: StoredObject) -> dict[str, object]:
        """The source object's first hop moved: relocate its tagged entry."""
        self.before_delete(path, oid, old)
        return self.after_insert(path, oid, new)

    # -- owner / intermediate updates -----------------------------------------

    def on_owner_update(self, link: LinkDef, oid: OID, old: StoredObject,
                        new: StoredObject, changed: set[str]) -> None:
        """Dispatch an update to an object carrying the collapsed link id.

        The carrier is either the terminal (it owns the link object) or an
        intermediate (its pair exists for tag discovery); the roles are
        told apart by the stored owner OID.
        """
        entry = new.link_entry_for(self._path_for_link(link).link_sequence[0])
        path = self._path_for_link(link)
        link_obj = link.file.read(entry.link_oid)
        if link_obj.owner == oid:
            self._on_terminal_update(path, link, oid, new, changed)
        else:
            self._on_intermediate_update(path, link, oid, old, new, changed)

    def _path_for_link(self, link: LinkDef) -> ReplicationPath:
        uses = self.catalog.paths_using_link(link.link_id)
        if not uses:
            raise ReplicationError(f"collapsed link {link.link_id} has no path")
        return uses[0].path  # collapsed links are private to one path

    def _on_terminal_update(self, path: ReplicationPath, link: LinkDef, oid: OID,
                            new: StoredObject, changed: set[str]) -> None:
        touched = [f for f in path.replicated_field_names if f in changed]
        if not touched:
            return
        changes = self._hidden_changes(path, new)
        source_set = self.catalog.get_set(path.source_set)
        entry = new.link_entry_for(path.link_sequence[0])
        members = sorted(m for m, __tag in link.file.members(entry.link_oid))
        # One link-object read reached every source object: the collapse win.
        for member in members:
            self._apply(source_set, member, changes)

    def _on_intermediate_update(self, path: ReplicationPath, link: LinkDef,
                                mid_oid: OID, old: StoredObject,
                                new: StoredObject, changed: set[str]) -> None:
        __, ref_b = self._chain(path)
        if ref_b not in changed:
            return
        new_terminal_oid = new.ref(ref_b)
        if new_terminal_oid is None:
            raise ReplicationError(
                f"collapsed path {path.text!r} requires {ref_b!r} to stay non-null"
            )
        entry = new.link_entry_for(path.link_sequence[0])
        old_link_obj = link.file.read(entry.link_oid)
        moving = [(m, tag) for m, tag in old_link_obj.entries if tag == mid_oid]
        # Detach from the old owner's link object.
        for pair in moving:
            link.file.remove(entry.link_oid, pair)
        remaining = link.file.read(entry.link_oid)
        if remaining.is_empty():
            owner = self.store.read(old_link_obj.owner)
            owner.remove_link_entry(path.link_sequence[0])
            self.store.update(old_link_obj.owner, owner)
            link.file.delete(entry.link_oid)
        # Attach to the new owner's link object.
        for member, __tag in moving:
            self._add_entry(path, member, mid_oid, new_terminal_oid)
        # Refresh the moved members' replicated values.
        changes = self._hidden_changes(path, self.store.read(new_terminal_oid))
        source_set = self.catalog.get_set(path.source_set)
        for member, __tag in sorted(moving):
            self._apply(source_set, member, changes)

    # -- entry plumbing -------------------------------------------------------

    def _add_entry(self, path: ReplicationPath, member: OID, tag: OID,
                   terminal_oid: OID) -> None:
        link = self._link(path)
        link_id = path.link_sequence[0]
        terminal = self.store.read(terminal_oid)
        tentry = terminal.link_entry_for(link_id)
        if tentry is None:
            link_oid = link.file.create(terminal_oid, [(member, tag)])
            terminal.add_link_entry(LinkEntry(link_oid, link_id))
            self.store.update(terminal_oid, terminal)
        else:
            link_oid = tentry.link_oid
            link.file.add(link_oid, (member, tag))
        # The intermediate carries the pair too, for discovery.
        mid = self.store.read(tag)
        mentry = mid.link_entry_for(link_id)
        if mentry is None or mentry.link_oid != link_oid:
            mid.add_link_entry(LinkEntry(link_oid, link_id))
            self.store.update(tag, mid)

    def _remove_entry(self, path: ReplicationPath, member: OID, tag: OID) -> None:
        link = self._link(path)
        link_id = path.link_sequence[0]
        mid = self.store.read(tag)
        mentry = mid.link_entry_for(link_id)
        if mentry is None:
            return
        link.file.remove(mentry.link_oid, (member, tag))
        link_obj = link.file.read(mentry.link_oid)
        if not any(t == tag for __m, t in link_obj.entries):
            mid.remove_link_entry(link_id)
            self.store.update(tag, mid)
        if link_obj.is_empty():
            owner = self.store.read(link_obj.owner)
            owner.remove_link_entry(link_id)
            self.store.update(link_obj.owner, owner)
            link.file.delete(mentry.link_oid)

    def record_expected(self, path: ReplicationPath, oid: OID, obj: StoredObject,
                        expected_links: dict) -> None:
        """Contribute this source object's expected membership to verify()."""
        ref_a, ref_b = self._chain(path)
        mid_oid = obj.ref(ref_a)
        if mid_oid is None:
            return
        terminal_oid = self.store.read(mid_oid).ref(ref_b)
        if terminal_oid is None:
            return
        expected_links.setdefault(path.link_sequence[0], {}).setdefault(
            terminal_oid, set()
        ).add(oid)

    def _apply(self, source_set, oid: OID, changes: dict[str, object]) -> None:
        obj = self.store.read(oid)
        for fname, value in changes.items():
            info = self.catalog.index_on_field(source_set.name, fname)
            if info is not None:
                info.index.update(obj.values.get(fname), value, oid)
            obj.set(fname, value)
        self.store.update(oid, obj)
