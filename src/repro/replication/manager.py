"""The replication manager.

This is the component a DBA's ``replicate Emp1.dept.org.name`` statement
lands in.  It owns:

* **path registration** -- widening the source type with hidden fields
  through subtyping, allocating the link sequence (sharing links across
  paths with a common prefix), creating link files / replica sets, and
  bulk-building structures over existing data;
* **operation hooks** -- the maintenance of Sections 4.1.1/4.1.2/5.2 for
  object insertion, deletion, and updates to both data fields and
  reference attributes, dispatched through the link IDs and replica
  entries stored in the affected object;
* **consistency checking** -- :meth:`ReplicationManager.verify` recomputes
  every replicated value and every link/replica structure from the forward
  paths and raises :class:`~repro.errors.IntegrityError` on any drift.

Updates are propagated eagerly unless a path was registered with
``lazy=True`` (the paper's future-work variant), in which case source
updates are queued and drained on the next read through
:meth:`refresh_path` -- see :mod:`repro.replication.lazy`.
"""

from __future__ import annotations

from repro.errors import (
    IntegrityError,
    ReplicationError,
)
from repro.costmodel.sortedprobe import sorted_probe_pages
from repro.objects.instance import StoredObject, _default_for
from repro.objects.store import ObjectStore
from repro.objects.types import FieldDef, FieldKind, TypeDefinition
from repro.replication.collapse import CollapsedPaths
from repro.replication.inverted import InvertedPaths
from repro.replication.lazy import LazyQueue
from repro.replication.links import LinkFile
from repro.replication.spec import (
    ReplicationPath,
    Strategy,
    hidden_ref_field,
    hidden_value_field,
    replica_set_name,
    replica_type_name,
)
from repro.schema.paths import resolve_path
from repro.telemetry import Telemetry
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # annotation-only; avoids an import cycle with schema
    from repro.schema.catalog import Catalog, LinkDef
from repro.sets.objectset import ObjectSet
from repro.storage.manager import StorageManager
from repro.storage.oid import OID


class ReplicationManager:
    """Coordinates every replication path of one database."""

    def __init__(self, catalog: Catalog, store: ObjectStore, storage: StorageManager,
                 inline_singleton_links: bool = False, telemetry=None) -> None:
        self.catalog = catalog
        self.store = store
        self.storage = storage
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.replica_sets: dict[int, ObjectSet] = {}
        self.inverted = InvertedPaths(catalog, store, self.replica_sets,
                                      inline_singletons=inline_singleton_links,
                                      telemetry=self.telemetry)
        self.collapsed = CollapsedPaths(catalog, store)
        self.lazy = LazyQueue(storage)
        #: set by the Database facade: lazy refreshes drain outside any DML
        #: statement, so they open their own WAL statement scope through it
        self.recovery = None
        metrics = self.telemetry.metrics
        self._m_propagations = metrics.counter(
            "replication_propagations_total",
            "terminal/link updates propagated to source-set hidden fields")
        self._m_fanout = metrics.counter(
            "replication_fanout_total",
            "source objects rewritten by update propagation")
        self._m_replica_writes = metrics.counter(
            "replication_replica_writes_total",
            "replica-set objects rewritten (separate strategy)")

    # ==================================================================
    # path lifecycle
    # ==================================================================

    def register_path(self, text: str, strategy: Strategy,
                      collapsed: bool = False, lazy: bool = False,
                      cluster_links: bool = False) -> ReplicationPath:
        """Process a ``replicate`` statement and build its structures.

        ``cluster_links`` applies the §4.3.2 optimization to an n-level
        in-place path: all its links are co-located in one link file so a
        propagation reads related link objects from (mostly) the same
        pages.  Co-located links are private -- clustering goals conflict
        with sharing, exactly as the paper observes.
        """
        resolved = resolve_path(text, self.catalog.set_type_of, self.catalog.registry.get)
        if resolved.text in self.catalog.paths:
            from repro.errors import DuplicateReplicationPathError

            raise DuplicateReplicationPathError(f"path {text!r} already replicated")
        if collapsed and (strategy is not Strategy.IN_PLACE or resolved.level != 2):
            raise ReplicationError(
                "collapsed inverted paths are supported for 2-level in-place paths"
            )
        if lazy and strategy is not Strategy.IN_PLACE:
            raise ReplicationError("lazy propagation applies to in-place paths")
        if cluster_links and (
            strategy is not Strategy.IN_PLACE or collapsed or resolved.level < 2
        ):
            raise ReplicationError(
                "link clustering applies to multi-level in-place paths"
            )
        path_id = self.catalog.allocate_path_id()
        if strategy is Strategy.IN_PLACE:
            path = self._register_inplace(resolved, path_id, collapsed, lazy,
                                          cluster_links)
        else:
            path = self._register_separate(resolved, path_id)
        if lazy:
            self.lazy.register(path)
        return path

    def _register_inplace(self, resolved, path_id: int, collapsed: bool,
                          lazy: bool, cluster_links: bool = False) -> ReplicationPath:
        hidden = tuple(
            FieldDef(
                hidden_value_field(path_id, f.name),
                f.kind,
                size=f.size,
                ref_type=f.ref_type,
                hidden=True,
            )
            for f in resolved.replicated_fields
        )
        self._widen_source_type(resolved.source_set, path_id, hidden)
        if collapsed:
            link_ids = (self._create_collapsed_link(resolved).link_id,)
        elif cluster_links:
            link_ids = self._create_clustered_links(resolved, path_id)
        else:
            link_ids = tuple(
                self._link_for(resolved.source_set, prefix).link_id
                for prefix in resolved.prefix_chains()
            )
        path = ReplicationPath(
            path_id=path_id,
            resolved=resolved,
            strategy=Strategy.IN_PLACE,
            link_sequence=link_ids,
            collapsed=collapsed,
            lazy=lazy,
            hidden_fields=tuple(f.name for f in hidden),
        )
        self.catalog.add_path(path)
        self._bulk_build(path)
        return path

    def _register_separate(self, resolved, path_id: int) -> ReplicationPath:
        rep_fields = [
            FieldDef(f.name, f.kind, size=f.size, ref_type=f.ref_type)
            for f in resolved.replicated_fields
        ]
        rep_type = TypeDefinition(replica_type_name(path_id), rep_fields)
        self.catalog.registry.register(rep_type)
        heap = self.storage.create_file(replica_set_name(path_id, resolved.source_set))
        self.replica_sets[path_id] = ObjectSet(
            replica_set_name(path_id, resolved.source_set), rep_type.name, self.store, heap
        )
        hidden = (
            FieldDef(hidden_ref_field(path_id), FieldKind.REF,
                     ref_type=rep_type.name, hidden=True),
        )
        self._widen_source_type(resolved.source_set, path_id, hidden)
        # The inverted path of an n-level separate path has n - 1 links.
        link_ids = tuple(
            self._link_for(resolved.source_set, prefix).link_id
            for prefix in list(resolved.prefix_chains())[: resolved.level - 1]
        )
        path = ReplicationPath(
            path_id=path_id,
            resolved=resolved,
            strategy=Strategy.SEPARATE,
            link_sequence=link_ids,
            hidden_fields=(),
            hidden_ref=hidden[0].name,
            replica_set=replica_set_name(path_id, resolved.source_set),
            replica_type=rep_type.name,
        )
        self.catalog.add_path(path)
        self._bulk_build(path)
        return path

    def _widen_source_type(self, source_set: str, path_id: int,
                           hidden: tuple[FieldDef, ...]) -> None:
        obj_set = self.catalog.get_set(source_set)
        old = obj_set.type_def
        new = old.subtype_with_hidden(f"{old.name}__p{path_id}", list(hidden))
        self.catalog.registry.replace(obj_set.type_name, new)

    def _link_for(self, source_set: str, prefix: tuple[str, ...]) -> LinkDef:
        link = self.catalog.link_for_prefix(source_set, prefix)
        if link is None:
            heap = self.storage.create_file(
                f"__link_{source_set}_{'_'.join(prefix)}"
            )
            link = self.catalog.register_link(source_set, prefix, LinkFile(heap))
        return link

    def _create_clustered_links(self, resolved, path_id: int) -> tuple[int, ...]:
        """§4.3.2: all links of the path share one (private) link file."""
        heap = self.storage.create_file(
            f"__xlink{path_id}_{resolved.source_set}_{'_'.join(resolved.ref_chain)}"
        )
        file = LinkFile(heap)
        link_ids: list[int] = []
        parent: int | None = None
        for prefix in resolved.prefix_chains():
            link = self.catalog.register_link(
                resolved.source_set, prefix, file,
                private=True, parent_link_id=parent,
            )
            link_ids.append(link.link_id)
            parent = link.link_id
        return tuple(link_ids)

    def _create_collapsed_link(self, resolved) -> LinkDef:
        heap = self.storage.create_file(
            f"__clink_{resolved.source_set}_{'_'.join(resolved.ref_chain)}"
        )
        return self.catalog.register_link(
            resolved.source_set, resolved.ref_chain, LinkFile(heap, collapsed=True),
            collapsed=True,
        )

    def _bulk_build(self, path: ReplicationPath) -> None:
        """Build structures and fill hidden fields over existing members.

        Unlike incremental maintenance, the bulk build cannot rely on the
        enter-cascade: when this path *shares* a pre-existing link, the
        owners along it entered that link long ago, so every link of this
        path's sequence is ensured explicitly, chain by chain.

        Scanning the source set in physical order makes link objects /
        replica objects come out in (approximately) the same physical order
        as the sets they shadow, the clustering both strategies rely on.
        """
        src = self.catalog.get_set(path.source_set)
        if path.collapsed:
            for oid, obj in list(src.scan()):
                changes = self.collapsed.after_insert(path, oid, obj)
                self.apply_hidden_changes(src, oid, changes, maintain_indexes=False)
            return
        chain = path.resolved.ref_chain
        counted: set[OID] = set()
        for oid, obj in list(src.scan()):
            oids = [oid]
            objs = [obj]
            for ref_name in chain[: len(path.link_sequence)]:
                nxt = objs[-1].ref(ref_name)
                if nxt is None:
                    break
                oids.append(nxt)
                objs.append(self.store.read(nxt))
            for i in range(len(oids) - 1):
                link = self.catalog.get_link(path.link_sequence[i])
                self._ensure_direct(link, oids[i + 1], oids[i])
            if path.strategy is Strategy.SEPARATE:
                changes = {
                    path.hidden_ref: self._bulk_replica_ref(path, oids, objs, counted)
                }
            else:
                changes = self._hidden_values_for(path, obj)
            self.apply_hidden_changes(src, oid, changes, maintain_indexes=False)

    def _ensure_direct(self, link: LinkDef, owner_oid: OID, member_oid: OID) -> None:
        """Cascade-free membership insert used by the bulk build."""
        self.inverted.attach(link, owner_oid, member_oid, cascade=False)

    def _bulk_replica_ref(self, path: ReplicationPath, oids, objs,
                          counted: set[OID]) -> OID | None:
        """Replica accounting for one chain during a separate bulk build.

        The terminal's reference count grows once per distinct level-(n-1)
        participant (once per source object when n = 1).
        """
        if len(oids) < len(path.link_sequence) + 1:
            return None  # broken chain
        last_oid, last_obj = oids[-1], objs[-1]
        terminal_oid = last_obj.ref(path.resolved.ref_chain[-1])
        if terminal_oid is None:
            return None
        if last_oid not in counted:
            counted.add(last_oid)
            return self.inverted.bump_replica(path, terminal_oid, +1)
        return self.inverted.replica_oid_for(path, terminal_oid)

    def drop_path(self, text: str) -> None:
        """Remove a replication path and dismantle structures it alone uses.

        Links shared with surviving paths are left intact; links now unused
        are torn down wholesale (their owners' ``(link-OID, link-ID)``
        pairs detached, the link file dropped).
        """
        path = self.catalog.get_path(text)
        if path.index_names:
            raise ReplicationError(
                f"drop indexes {path.index_names} before dropping path {text!r}"
            )
        self.catalog.drop_path(text)
        src = self.catalog.get_set(path.source_set)
        for position, link_id in enumerate(path.link_sequence, start=1):
            if self.catalog.paths_using_link(link_id):
                continue  # still shared with a surviving path
            self._teardown_link(link_id, path, position)
        if path.strategy is Strategy.SEPARATE:
            self._teardown_replicas(path, src)
        # Narrow the source type and strip hidden values from records.  The
        # surviving records are decoded under the wide layout first, then
        # re-encoded under the narrow one.
        hidden_names = list(path.hidden_fields)
        if path.hidden_ref:
            hidden_names.append(path.hidden_ref)
        new_type = src.type_def
        for name in hidden_names:
            new_type = new_type.without_field(name)
        survivors = [
            (
                oid,
                StoredObject(
                    new_type,
                    {f.name: obj.values[f.name] for f in new_type.fields},
                    obj.link_entries,
                    obj.replica_entries,
                ),
            )
            for oid, obj in src.scan()
        ]
        self.catalog.registry.replace(src.type_name, new_type)
        for oid, slim in survivors:
            self.store.update(oid, slim)
        if path.lazy:
            self.lazy.unregister(path)

    def _teardown_link(self, link_id: int, path: ReplicationPath,
                       position: int) -> None:
        link = self.catalog.get_link(link_id)
        touched: set[OID] = set()
        for __link_oid, link_obj in list(link.file.scan()):
            touched.add(link_obj.owner)
            if link.collapsed:
                touched.update(tag for __m, tag in link_obj.entries)
        # Inlined singleton entries (§4.3.1) never appear in the link file;
        # find their owners by walking the forward prefix from the source.
        if self.inverted.inline_singletons and not link.collapsed:
            src = self.catalog.get_set(path.source_set)
            prefix = list(path.resolved.ref_chain[:position])
            for __oid, obj in src.scan():
                owner = self._terminal_oid(obj, prefix)
                if owner is not None:
                    touched.add(owner)
        for oid in touched:
            obj = self.store.read(oid)
            obj.remove_link_entry(link_id)
            self.store.update(oid, obj)
        self.catalog.remove_link(link_id)
        # Co-located links (§4.3.2) share one file; drop it only once the
        # last link using it is gone.
        file_id = link.file.heap.file_id
        still_used = any(
            other.file.heap.file_id == file_id for other in self.catalog.links.values()
        )
        if not still_used:
            self.storage.drop_file(self.storage.file_name(file_id))

    def _teardown_replicas(self, path: ReplicationPath, src: ObjectSet) -> None:
        seen: set[OID] = set()
        for __oid, obj in src.scan():
            terminal_oid = self._terminal_oid(obj, path.resolved.ref_chain)
            if terminal_oid is None or terminal_oid in seen:
                continue
            seen.add(terminal_oid)
            terminal = self.store.read(terminal_oid)
            if terminal.replica_entry_for(path.path_id) is not None:
                terminal.remove_replica_entry(path.path_id)
                self.store.update(terminal_oid, terminal)
        replica = self.replica_sets.pop(path.path_id)
        self.storage.drop_file(replica.name)

    # ==================================================================
    # hooks called by the Database facade
    # ==================================================================

    def after_insert(self, obj_set: ObjectSet, oid: OID, obj: StoredObject) -> None:
        """Maintain every path emanating from ``obj_set`` for a new member."""
        changes: dict[str, object] = {}
        for path in self.catalog.paths_on_source(obj_set.name):
            if path.collapsed:
                changes.update(self.collapsed.after_insert(path, oid, obj))
                continue
            changes.update(self._enroll_source_object(path, oid, obj))
        if changes:
            # The caller (Database.insert) adds index entries for the final
            # object afterwards, so skip index maintenance here.
            self.apply_hidden_changes(obj_set, oid, changes, maintain_indexes=False)

    def before_delete(self, obj_set: ObjectSet, oid: OID, obj: StoredObject) -> None:
        """Withdraw a member; refuse when other objects still reference it."""
        if obj.link_entries:
            raise IntegrityError(
                f"object {oid} is referenced on replication path(s); delete referencers first"
            )
        if obj.replica_entries:
            raise IntegrityError(
                f"object {oid} has live replicas; delete referencers first"
            )
        for path in self.catalog.paths_on_source(obj_set.name):
            self._withdraw_source_object(path, oid, obj)

    def _enroll_source_object(self, path: ReplicationPath, oid: OID,
                              obj: StoredObject) -> dict[str, object]:
        """Membership + hidden-value computation for one source object."""
        chain = path.resolved.ref_chain
        first_ref = obj.ref(chain[0])
        if path.strategy is Strategy.IN_PLACE:
            if first_ref is not None:
                first_link = self.catalog.get_link(path.link_sequence[0])
                self.inverted.ensure_membership(first_link, first_ref, oid)
            return self._hidden_values_for(path, obj)
        # separate
        if path.level == 1:
            replica_oid = (
                self.inverted.bump_replica(path, first_ref, +1)
                if first_ref is not None
                else None
            )
        else:
            if first_ref is not None:
                first_link = self.catalog.get_link(path.link_sequence[0])
                self.inverted.ensure_membership(first_link, first_ref, oid)
            terminal_oid = self._terminal_oid(obj, chain)
            replica_oid = self.inverted.replica_oid_for(path, terminal_oid)
        return {path.hidden_ref: replica_oid}

    def _withdraw_source_object(self, path: ReplicationPath, oid: OID,
                                obj: StoredObject) -> None:
        chain = path.resolved.ref_chain
        if path.collapsed:
            self.collapsed.before_delete(path, oid, obj)
            return
        first_ref = obj.ref(chain[0])
        if first_ref is None:
            return
        if path.strategy is Strategy.SEPARATE and path.level == 1:
            self.inverted.bump_replica(path, first_ref, -1)
            return
        first_link = self.catalog.get_link(path.link_sequence[0])
        self.inverted.remove_membership(first_link, first_ref, oid)

    # ------------------------------------------------------------------
    # update propagation
    # ------------------------------------------------------------------

    def propagate_update(self, obj_set: ObjectSet, oid: OID, old: StoredObject,
                         new: StoredObject, changed: set[str]) -> dict[str, object]:
        """Handle the replication consequences of an update to ``oid``.

        Called *after* the new image was stored.  Returns hidden-field
        changes that must be applied to ``oid`` itself (a source object
        whose reference attribute moved gets fresh replicated values).
        """
        own_changes: dict[str, object] = {}
        # 1. This object is a source-set member whose first hop changed.
        for path in self.catalog.paths_on_source(obj_set.name):
            first = path.resolved.ref_chain[0]
            if first not in changed:
                continue
            if path.collapsed:
                own_changes.update(
                    self.collapsed.on_source_ref_change(path, oid, old, new)
                )
                continue
            self._withdraw_source_object(path, oid, old)
            own_changes.update(self._enroll_source_object(path, oid, new))
        # 2. This object sits on inverted paths (it owns link objects or
        #    inline entries).
        for lentry in list(new.link_entries):
            link = self.catalog.get_link(lentry.base_id)
            if link.collapsed:
                self.collapsed.on_owner_update(link, oid, old, new, changed)
                continue
            for use in self.catalog.paths_using_link(link.link_id):
                self._propagate_through_link(use.path, use.position, link,
                                             oid, old, new, changed)
        # 3. This object is the terminal of separate paths (replica entries).
        for rentry in list(new.replica_entries):
            path = self.catalog.get_path_by_id(rentry.path_id)
            touched = {
                f: new.values[f]
                for f in path.replicated_field_names
                if f in changed
            }
            if touched:
                self._m_replica_writes.inc()
                # a separate-strategy propagation dirties one replica page
                self.telemetry.repledger.charge(path.text, 1.0, fanout=1)
                tracer = self.telemetry.tracer
                if tracer.enabled:
                    with tracer.span("update_propagation", path=path.text,
                                     kind="replica_write"):
                        self._write_replica(path, rentry, touched)
                else:
                    self._write_replica(path, rentry, touched)
        return own_changes

    def _write_replica(self, path: ReplicationPath, rentry,
                       touched: dict[str, object]) -> None:
        replica_set = self.replica_sets[path.path_id]
        replica = replica_set.read(rentry.replica_oid)
        for fname, value in touched.items():
            replica.set(fname, value)
        replica_set.raw_update(rentry.replica_oid, replica)

    def _propagate_through_link(self, path: ReplicationPath, position: int,
                                link: LinkDef, oid: OID, old: StoredObject,
                                new: StoredObject, changed: set[str]) -> None:
        chain = path.resolved.ref_chain
        if path.strategy is Strategy.IN_PLACE:
            if position == path.level:
                touched = [f for f in path.replicated_field_names if f in changed]
                if touched:
                    self._propagate_values(path, link, oid, new)
            if position < path.level and chain[position] in changed:
                self._ref_surgery(path, position, link, oid, old, new)
                self._propagate_values(path, link, oid, new)
            return
        # separate paths: only reference attributes matter through links
        last = len(path.link_sequence)
        if position == last and chain[position] in changed:
            old_terminal = old.ref(chain[position])
            new_terminal = new.ref(chain[position])
            if old_terminal is not None:
                self.inverted.bump_replica(path, old_terminal, -1)
            replica_oid = (
                self.inverted.bump_replica(path, new_terminal, +1)
                if new_terminal is not None
                else None
            )
            self._rewrite_hidden_over_closure(path, link, oid,
                                              {path.hidden_ref: replica_oid})
        elif position < last and chain[position] in changed:
            self._ref_surgery(path, position, link, oid, old, new)
            terminal_oid = self._terminal_oid(new, chain[position:])
            replica_oid = self.inverted.replica_oid_for(path, terminal_oid)
            self._rewrite_hidden_over_closure(path, link, oid,
                                              {path.hidden_ref: replica_oid})

    def _ref_surgery(self, path: ReplicationPath, position: int, link: LinkDef,
                     oid: OID, old: StoredObject, new: StoredObject) -> None:
        """Move this object's membership in the next-deeper link."""
        ref_name = path.resolved.ref_chain[position]
        # The child is simply the next link of this path's sequence, which
        # also resolves correctly for private (co-located) link chains.
        child = self.catalog.get_link(path.link_sequence[position])
        old_target = old.ref(ref_name)
        new_target = new.ref(ref_name)
        if old_target is not None:
            self.inverted.remove_membership(child, old_target, oid)
        if new_target is not None:
            self.inverted.ensure_membership(child, new_target, oid)

    def _propagate_values(self, path: ReplicationPath, link: LinkDef, oid: OID,
                          new: StoredObject) -> None:
        """Push current terminal values to every source object under ``oid``."""
        if path.lazy:
            self.lazy.invalidate(path, oid)
            return
        self.push_values(path, link, oid, new)

    def push_values(self, path: ReplicationPath, link: LinkDef, oid: OID,
                    at_object: StoredObject) -> None:
        """Eagerly rewrite hidden values over the closure under ``oid``.

        ``at_object`` is the (current) object owning ``link``; the terminal
        is reached from it through the remaining forward references.
        """
        position = len(link.prefix)
        chain = path.resolved.ref_chain
        if position == path.level:
            terminal = at_object
        else:
            terminal = self.store.traverse(at_object, list(chain[position:]))
        changes = {}
        for fname, hname in zip(path.replicated_field_names, path.hidden_fields):
            changes[hname] = (
                terminal.values[fname] if terminal is not None
                else _default_value(self.store.registry.get(path.resolved.terminal_type)
                                    .field_def(fname))
            )
        self._rewrite_hidden_over_closure(path, link, oid, changes)

    def _rewrite_hidden_over_closure(self, path: ReplicationPath, link: LinkDef,
                                     oid: OID, changes: dict[str, object]) -> None:
        source_set = self.catalog.get_set(path.source_set)
        targets = self.inverted.closure_to_source(link, oid)
        self._m_propagations.inc()
        tracer = self.telemetry.tracer
        if tracer.enabled:
            with tracer.span("update_propagation", path=path.text) as span:
                fanout = self._apply_over_targets(source_set, targets, changes)
                span.set("fanout", fanout)
        else:
            fanout = self._apply_over_targets(source_set, targets, changes)
        self._m_fanout.inc(fanout)
        # the fan-out rewrite dirties at most one source page per distinct
        # target object -- the same sorted-probe bound the batched join obeys
        self.telemetry.repledger.charge(
            path.text, sorted_probe_pages(source_set.num_pages(), fanout),
            fanout=fanout)

    def _apply_over_targets(self, source_set: ObjectSet, targets,
                            changes: dict[str, object]) -> int:
        fanout = 0
        for target in targets:
            self.apply_hidden_changes(source_set, target, changes)
            fanout += 1
        return fanout

    # ------------------------------------------------------------------
    # hidden-field writes (index-maintaining)
    # ------------------------------------------------------------------

    def apply_hidden_changes(self, obj_set: ObjectSet, oid: OID,
                             changes: dict[str, object],
                             maintain_indexes: bool = True) -> None:
        """Write hidden-field changes, keeping path indexes consistent."""
        obj = self.store.read(oid)
        for fname, value in changes.items():
            if maintain_indexes:
                info = self.catalog.index_on_field(obj_set.name, fname)
                if info is not None:
                    info.index.update(obj.values.get(fname), value, oid)
            obj.set(fname, value)
        self.store.update(oid, obj)

    def _hidden_values_for(self, path: ReplicationPath, obj: StoredObject) -> dict:
        terminal = self.store.traverse(obj, list(path.resolved.ref_chain))
        changes = {}
        terminal_type = self.store.registry.get(path.resolved.terminal_type)
        for fname, hname in zip(path.replicated_field_names, path.hidden_fields):
            changes[hname] = (
                terminal.values[fname]
                if terminal is not None
                else _default_value(terminal_type.field_def(fname))
            )
        return changes

    def _terminal_oid(self, obj: StoredObject, chain) -> OID | None:
        """OID of the object at the end of ``chain`` starting from ``obj``."""
        chain = list(chain)
        current = obj
        for ref_name in chain[:-1]:
            current = self.store.follow(current, ref_name)
            if current is None:
                return None
        return current.ref(chain[-1])

    # ------------------------------------------------------------------
    # lazy propagation
    # ------------------------------------------------------------------

    def refresh_path(self, path: ReplicationPath) -> int:
        """Drain pending lazy invalidations; returns objects refreshed.

        The drain mutates pages outside any DML statement, so it runs in a
        WAL statement scope of its own (joining an enclosing one, if any).
        """
        if not path.lazy:
            return 0
        if self.recovery is not None:
            with self.recovery.statement(f"refresh {path.text}"):
                return self._refresh_path_inner(path)
        return self._refresh_path_inner(path)

    def _refresh_path_inner(self, path: ReplicationPath) -> int:
        refreshed = 0
        link = self.catalog.get_link(path.link_sequence[-1])
        for owner_oid in self.lazy.drain(path):
            if not self.store.exists(owner_oid):
                continue
            self.push_values(path, link, owner_oid, self.store.read(owner_oid))
            refreshed += 1
        return refreshed

    def refresh_all(self) -> int:
        """Refresh every lazy path."""
        return sum(self.refresh_path(p) for p in self.catalog.paths.values() if p.lazy)

    # ==================================================================
    # consistency verification
    # ==================================================================

    def verify(self) -> None:
        """Recompute every path from its forward references and compare.

        Raises :class:`IntegrityError` on the first inconsistency.  Lazy
        paths are refreshed first (their contract is consistency *after*
        refresh).
        """
        self.refresh_all()
        expected_links: dict[int, dict[OID, set]] = {}
        expected_refcounts: dict[int, dict[OID, set]] = {}
        for path in self.catalog.paths.values():
            self._verify_path(path, expected_links, expected_refcounts)
        self._verify_links(expected_links)
        self._verify_refcounts(expected_refcounts)

    def _verify_path(self, path: ReplicationPath, expected_links, expected_refcounts) -> None:
        src = self.catalog.get_set(path.source_set)
        chain = path.resolved.ref_chain
        for oid, obj in src.scan():
            terminal = self.store.traverse(obj, list(chain))
            if path.strategy is Strategy.IN_PLACE:
                self._verify_inplace_values(path, oid, obj, terminal)
            else:
                self._verify_separate_values(path, oid, obj, terminal)
            if path.collapsed:
                self.collapsed.record_expected(path, oid, obj, expected_links)
                continue
            # expected link memberships along the chain
            current_oid, current = oid, obj
            for link_id, ref_name in zip(path.link_sequence, chain):
                target_oid = current.ref(ref_name)
                if target_oid is None:
                    break
                expected_links.setdefault(link_id, {}).setdefault(
                    target_oid, set()
                ).add(current_oid)
                current_oid, current = target_oid, self.store.read(target_oid)
            if path.strategy is Strategy.SEPARATE:
                participant_oid, terminal_oid = self._separate_terminal_edge(path, oid, obj)
                if terminal_oid is not None:
                    expected_refcounts.setdefault(path.path_id, {}).setdefault(
                        terminal_oid, set()
                    ).add(participant_oid)

    def _separate_terminal_edge(self, path, oid, obj):
        """(level n-1 participant OID, terminal OID) for one source object."""
        chain = list(path.resolved.ref_chain)
        current_oid, current = oid, obj
        for ref_name in chain[:-1]:
            nxt = current.ref(ref_name)
            if nxt is None:
                return None, None
            current_oid, current = nxt, self.store.read(nxt)
        return current_oid, current.ref(chain[-1])

    def _verify_inplace_values(self, path, oid, obj, terminal) -> None:
        terminal_type = self.store.registry.get(path.resolved.terminal_type)
        for fname, hname in zip(path.replicated_field_names, path.hidden_fields):
            expected = (
                terminal.values[fname]
                if terminal is not None
                else _default_value(terminal_type.field_def(fname))
            )
            actual = obj.values.get(hname)
            if actual != expected:
                raise IntegrityError(
                    f"{path.text}: object {oid} replicates {actual!r}, "
                    f"source holds {expected!r}"
                )

    def _verify_separate_values(self, path, oid, obj, terminal) -> None:
        hidden = obj.values.get(path.hidden_ref)
        if terminal is None:
            if hidden is not None:
                raise IntegrityError(f"{path.text}: object {oid} has a replica ref "
                                     f"but its forward chain is broken")
            return
        terminal_oid = self._terminal_oid(obj, path.resolved.ref_chain)
        entry = self.store.read(terminal_oid).replica_entry_for(path.path_id)
        if entry is None:
            raise IntegrityError(f"{path.text}: terminal {terminal_oid} lacks a replica")
        if hidden != entry.replica_oid:
            raise IntegrityError(
                f"{path.text}: object {oid} points at replica {hidden}, "
                f"terminal advertises {entry.replica_oid}"
            )
        replica = self.replica_sets[path.path_id].read(entry.replica_oid)
        for fname in path.replicated_field_names:
            if replica.values[fname] != terminal.values[fname]:
                raise IntegrityError(
                    f"{path.text}: replica field {fname!r} is stale "
                    f"({replica.values[fname]!r} != {terminal.values[fname]!r})"
                )

    def _verify_links(self, expected_links: dict[int, dict[OID, set]]) -> None:
        live_link_ids = {
            lid for p in self.catalog.paths.values() for lid in p.link_sequence
        }
        for link_id in live_link_ids:
            link = self.catalog.get_link(link_id)
            expected = expected_links.get(link_id, {})
            actual: dict[OID, set] = {}
            siblings = [
                other
                for other in self.catalog.links.values()
                if other.file.heap.file_id == link.file.heap.file_id
                and other.link_id != link_id
            ]
            for link_oid, link_obj in link.file.scan():
                owner = self.store.read(link_obj.owner)
                entry = owner.link_entry_for(link_id)
                if entry is None or entry.inline or entry.link_oid != link_oid:
                    # Co-located file (§4.3.2): the object may belong to a
                    # sibling link sharing this file.
                    belongs_elsewhere = any(
                        (sib_entry := owner.link_entry_for(sib.link_id)) is not None
                        and not sib_entry.inline
                        and sib_entry.link_oid == link_oid
                        for sib in siblings
                    )
                    if belongs_elsewhere:
                        continue
                    raise IntegrityError(
                        f"link {link_id}: owner {link_obj.owner} does not point "
                        f"back at link object {link_oid}"
                    )
                if link.collapsed:
                    entries = {member for member, __tag in link_obj.entries}
                else:
                    entries = set(link_obj.entries)
                actual[link_obj.owner] = entries
            # owners served by inlined singleton entries (Section 4.3.1)
            for owner_oid in expected:
                if owner_oid in actual:
                    continue
                entry = self.store.read(owner_oid).link_entry_for(link_id)
                if entry is not None and entry.inline:
                    actual[owner_oid] = {entry.link_oid}
            if actual != expected:
                raise IntegrityError(
                    f"link {link_id}: stored inverse mapping diverges from "
                    f"forward references ({actual} != {expected})"
                )

    def _verify_refcounts(self, expected: dict[int, dict[OID, set]]) -> None:
        for path in self.catalog.paths.values():
            if path.strategy is not Strategy.SEPARATE:
                continue
            want = {
                oid: len(members)
                for oid, members in expected.get(path.path_id, {}).items()
            }
            have: dict[OID, int] = {}
            terminal_oids = set(want)
            # also sweep every replica entry we can reach through want's keys
            for terminal_oid in terminal_oids:
                entry = self.store.read(terminal_oid).replica_entry_for(path.path_id)
                if entry is not None:
                    have[terminal_oid] = entry.refcount
            if want != have:
                raise IntegrityError(
                    f"{path.text}: replica refcounts diverge ({have} != {want})"
                )
            count = self.replica_sets[path.path_id].count()
            if count != len(want):
                raise IntegrityError(
                    f"{path.text}: replica set holds {count} objects, expected {len(want)}"
                )


def _default_value(fdef: FieldDef):
    return _default_for(fdef.kind)
