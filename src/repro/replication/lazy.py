"""Deferred (lazy) propagation.

The paper's future-work list includes "replication techniques in which
updates are not propagated until needed" (Section 8).  This module
implements that variant for in-place paths:

* when a source-side value changes, the eager closure traversal is
  replaced by a single small append to the path's *pending log* -- the OID
  of the terminal-side object whose subtree is now stale;
* the next reader of the path's replicated data (or an explicit
  ``refresh``) drains the log and performs the propagation once, however
  many updates accumulated.

The pending log lives in its own heap file so the deferred work is
physically accounted for (one small record per invalidation); an in-memory
mirror keeps duplicate invalidations free.
"""

from __future__ import annotations

from repro.replication.spec import ReplicationPath
from repro.storage.heapfile import RID
from repro.storage.manager import StorageManager
from repro.storage.oid import OID


class LazyQueue:
    """Per-path pending-invalidation logs."""

    def __init__(self, storage: StorageManager) -> None:
        self.storage = storage
        self._pending: dict[int, dict[OID, RID]] = {}

    def register(self, path: ReplicationPath) -> None:
        """Create the pending log for a lazy path."""
        self.storage.create_file(self._file_name(path))
        self._pending[path.path_id] = {}

    def unregister(self, path: ReplicationPath) -> None:
        """Drop the pending log."""
        self.storage.drop_file(self._file_name(path))
        self._pending.pop(path.path_id, None)

    def invalidate(self, path: ReplicationPath, owner_oid: OID) -> None:
        """Queue the subtree under ``owner_oid`` for refresh (idempotent)."""
        pending = self._pending[path.path_id]
        if owner_oid in pending:
            return
        heap = self.storage.file(self._file_name(path))
        pending[owner_oid] = heap.insert(owner_oid.pack())

    def drain(self, path: ReplicationPath) -> list[OID]:
        """Pop all pending owners, clearing the log; sorted for clustering."""
        pending = self._pending.get(path.path_id, {})
        heap = self.storage.file(self._file_name(path))
        owners = sorted(pending)
        for rid in pending.values():
            heap.delete(rid)
        self._pending[path.path_id] = {}
        return owners

    def reload(self, path: ReplicationPath) -> None:
        """Rebuild the in-memory mirror from the persisted pending log
        (used when a snapshot is loaded)."""
        heap = self.storage.file(self._file_name(path))
        self._pending[path.path_id] = {
            OID.unpack(body): rid for rid, body in heap.scan()
        }

    def pending_count(self, path: ReplicationPath) -> int:
        """How many stale subtrees are queued."""
        return len(self._pending.get(path.path_id, {}))

    def is_stale(self, path: ReplicationPath) -> bool:
        """Whether reads must refresh before trusting replicated values."""
        return bool(self._pending.get(path.path_id))

    @staticmethod
    def _file_name(path: ReplicationPath) -> str:
        return f"__lazy{path.path_id}_{path.source_set}"
