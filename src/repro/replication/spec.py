"""Replication path specifications.

A :class:`ReplicationPath` is the catalog record of one ``replicate ...``
statement: the resolved reference path, the chosen strategy, the *link
sequence* (Section 4.1.3) identifying the links of its inverted path, and
the names of the hidden fields it added to the source type.

Link-id assignment is the catalog's job; the invariants encoded here:

* **in-place** paths of level *n* have *n* links -- one per ref-chain
  prefix (``Emp1.dept``, ``Emp1.dept.org``, ...),
* **separate** paths of level *n* have *n - 1* links (the terminal hop is
  replaced by the direct source-object -> replica pointer, Section 5.2),
* paths sharing a prefix share the link ids of that prefix, across
  strategies ("links can even be shared by the two strategies", §5.3),
* a **collapsed** in-place path (Section 4.3.3) has a single private link
  whose entries are tagged; it shares nothing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # annotation-only; avoids an import cycle with schema
    from repro.schema.paths import ResolvedPath


class Strategy(enum.Enum):
    """The two storage strategies of Sections 4 and 5."""

    IN_PLACE = "inplace"
    SEPARATE = "separate"


def hidden_value_field(path_id: int, field_name: str) -> str:
    """Name of the hidden field holding a replicated value (in-place)."""
    return f"__rep{path_id}_{field_name}"


def hidden_ref_field(path_id: int) -> str:
    """Name of the hidden field holding the replica OID (separate)."""
    return f"__repref{path_id}"


def replica_set_name(path_id: int, source_set: str) -> str:
    """Name of the replica set S' of a separate path."""
    return f"__replicas{path_id}_{source_set}"


def replica_type_name(path_id: int) -> str:
    """Name of the replica object type of a separate path."""
    return f"__REP{path_id}"


@dataclass
class ReplicationPath:
    """One registered replication path."""

    path_id: int
    resolved: "ResolvedPath"
    strategy: Strategy
    #: The link sequence: link ids, position 1 first.  Length = level for
    #: in-place, level - 1 for separate, 1 for collapsed.
    link_sequence: tuple[int, ...]
    collapsed: bool = False
    #: Deferred propagation (the paper's future-work extension).
    lazy: bool = False
    #: Hidden value-field names in the source type, aligned with
    #: ``resolved.replicated_fields`` (in-place / collapsed only).
    hidden_fields: tuple[str, ...] = ()
    #: Hidden replica-ref field in the source type (separate only).
    hidden_ref: str | None = None
    #: Replica set / type names (separate only).
    replica_set: str | None = None
    replica_type: str | None = None
    #: Names of indexes built on this path's replicated data.
    index_names: list = field(default_factory=list)

    @property
    def text(self) -> str:
        """The replication path in source form."""
        return self.resolved.text

    @property
    def level(self) -> int:
        """Forward-path level (number of functional joins eliminated)."""
        return self.resolved.level

    @property
    def source_set(self) -> str:
        """Name of the set the path emanates from."""
        return self.resolved.source_set

    @property
    def replicated_field_names(self) -> tuple[str, ...]:
        """Names of the terminal fields this path replicates."""
        return tuple(f.name for f in self.resolved.replicated_fields)

    def hidden_field_for(self, terminal_field: str) -> str:
        """The source-type hidden field holding ``terminal_field``'s copy."""
        for fname, hidden in zip(self.replicated_field_names, self.hidden_fields):
            if fname == terminal_field:
                return hidden
        from repro.errors import UnknownReplicationPathError

        raise UnknownReplicationPathError(
            f"path {self.text!r} does not replicate field {terminal_field!r}"
        )
