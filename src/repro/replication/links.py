"""Link objects (Section 4.1).

A *link object* implements one entry of an inverse mapping: for a
referenced object D it holds the sorted OIDs of the objects that reference
D across one link of an inverted path.  Link objects are stored in a
*separate file per link* so that they never disrupt the clustering of the
data sets (the paper stores them "in a separate set"), and -- when built in
bulk -- in the same physical order as the objects that own them, so update
propagation reads them in clustered order.

Record layout::

    owner OID (8) | entry count (4) | sorted entries...

Entries are 8-byte member OIDs for ordinary links, or 16-byte
``member OID | tag OID`` pairs for *collapsed* links (Section 4.3.3), where
the tag names the intermediate object a member arrived through.
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ReplicationError
from repro.storage.heapfile import HeapFile
from repro.storage.oid import OID

_HEADER = struct.Struct(">8sI")


@dataclass
class LinkObject:
    """A decoded link object."""

    owner: OID
    #: sorted member OIDs, or sorted ``(member, tag)`` pairs when collapsed
    entries: list

    def is_empty(self) -> bool:
        return not self.entries


class LinkFile:
    """The storage set holding all link objects of one link."""

    def __init__(self, heap: HeapFile, collapsed: bool = False) -> None:
        self.heap = heap
        self.collapsed = collapsed
        self._entry_width = 16 if collapsed else 8

    # -- encoding ---------------------------------------------------------

    def _encode(self, link: LinkObject) -> bytes:
        parts = [_HEADER.pack(link.owner.pack(), len(link.entries))]
        for entry in link.entries:
            if self.collapsed:
                member, tag = entry
                parts.append(member.pack() + tag.pack())
            else:
                parts.append(entry.pack())
        return b"".join(parts)

    def _decode(self, raw: bytes) -> LinkObject:
        owner_raw, count = _HEADER.unpack_from(raw, 0)
        entries = []
        pos = _HEADER.size
        for __ in range(count):
            if self.collapsed:
                entries.append((OID.unpack(raw, pos), OID.unpack(raw, pos + 8)))
            else:
                entries.append(OID.unpack(raw, pos))
            pos += self._entry_width
        return LinkObject(OID.unpack(owner_raw), entries)

    # -- operations ---------------------------------------------------------

    def create(self, owner: OID, entries: list) -> OID:
        """Store a new link object; returns its (stable) link-OID."""
        link = LinkObject(owner, sorted(entries))
        rid = self.heap.insert(self._encode(link))
        return OID(self.heap.file_id, rid[0], rid[1])

    def read(self, link_oid: OID) -> LinkObject:
        """Load a link object by its OID."""
        self._check(link_oid)
        return self._decode(self.heap.read((link_oid.page_no, link_oid.slot)))

    def write(self, link_oid: OID, link: LinkObject) -> None:
        """Store back a modified link object (relocation is transparent)."""
        self._check(link_oid)
        self.heap.update((link_oid.page_no, link_oid.slot), self._encode(link))

    def delete(self, link_oid: OID) -> None:
        """Remove a link object."""
        self._check(link_oid)
        self.heap.delete((link_oid.page_no, link_oid.slot))

    def add(self, link_oid: OID, entry) -> bool:
        """Insert ``entry`` keeping sort order; returns False if present.

        The sorted order allows the binary-search deletion the paper calls
        for, and keeps propagation I/O clustered for physically based OIDs.
        """
        link = self.read(link_oid)
        idx = bisect.bisect_left(link.entries, entry)
        if idx < len(link.entries) and link.entries[idx] == entry:
            return False
        link.entries.insert(idx, entry)
        self.write(link_oid, link)
        return True

    def remove(self, link_oid: OID, entry) -> tuple[bool, bool]:
        """Binary-search removal; returns ``(removed, now_empty)``.

        The link object is *not* deleted here even when it empties -- the
        caller must also detach the owner's link entry, so it owns the
        whole cascade.
        """
        link = self.read(link_oid)
        idx = bisect.bisect_left(link.entries, entry)
        if idx >= len(link.entries) or link.entries[idx] != entry:
            return False, link.is_empty()
        del link.entries[idx]
        self.write(link_oid, link)
        return True, link.is_empty()

    def contains(self, link_oid: OID, entry) -> bool:
        """Binary-search membership test."""
        link = self.read(link_oid)
        idx = bisect.bisect_left(link.entries, entry)
        return idx < len(link.entries) and link.entries[idx] == entry

    def members(self, link_oid: OID) -> list:
        """The entries of one link object."""
        return self.read(link_oid).entries

    def scan(self) -> Iterator[tuple[OID, LinkObject]]:
        """All link objects in physical order."""
        for rid, raw in self.heap.scan():
            yield OID(self.heap.file_id, rid[0], rid[1]), self._decode(raw)

    def _check(self, link_oid: OID) -> None:
        if link_oid.file_id != self.heap.file_id:
            raise ReplicationError(
                f"link OID {link_oid} does not belong to link file {self.heap.file_id}"
            )
