"""Field replication: the paper's core contribution.

* :mod:`repro.replication.links` -- link objects (inverse mappings),
* :mod:`repro.replication.inverted` -- inverted-path membership algebra,
* :mod:`repro.replication.manager` -- path lifecycle + update propagation,
* :mod:`repro.replication.collapse` -- collapsed inverted paths (§4.3.3),
* :mod:`repro.replication.lazy` -- deferred propagation (future work, §8).
"""

from repro.replication.links import LinkFile, LinkObject
from repro.replication.manager import ReplicationManager
from repro.replication.spec import ReplicationPath, Strategy

__all__ = [
    "LinkFile",
    "LinkObject",
    "ReplicationManager",
    "ReplicationPath",
    "Strategy",
]
