"""Inverted-path maintenance (Sections 4.1 and 5.2).

An inverted path is a chain of links; each link maps referenced objects to
their referencers through :class:`~repro.replication.links.LinkFile`
objects.  This module owns the *membership* algebra:

* :meth:`InvertedPaths.ensure_membership` -- the referencer enters a link;
  when the referenced object thereby enters the path for the first time,
  the effect ripples to deeper links ("a link object may have to be created
  for not just D, but O, too") and, for separate paths, to the terminal's
  replica reference count.
* :meth:`InvertedPaths.remove_membership` -- the inverse ripple: emptied
  link objects are deleted, their owners' ``(link-OID, link-ID)`` pairs
  detached, and deeper memberships withdrawn.
* :meth:`InvertedPaths.closure_to_source` -- walk a link chain downwards to
  the source-set objects, the step every update propagation ends with.

All operations are idempotent, which is what makes shared links (several
replication paths with a common prefix, Section 4.1.4) safe: each path may
replay the same membership change and only the first replay acts.
"""

from __future__ import annotations

from repro.objects.instance import INLINE_LINK_FLAG as _INLINE
from repro.objects.instance import LinkEntry, ReplicaEntry, StoredObject
from repro.objects.store import ObjectStore
from repro.replication.spec import ReplicationPath, Strategy
from repro.storage.oid import OID
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # annotation-only; avoids an import cycle with schema
    from repro.schema.catalog import Catalog, LinkDef


class InvertedPaths:
    """Membership maintenance over the link registry.

    When ``inline_singletons`` is set, the §4.3.1 optimization applies:
    a link object holding one OID is never materialised -- the lone
    referencer's OID is stored directly in the owner's ``(link-OID,
    link-ID)`` pair (flagged inline), upgraded to a real link object when a
    second referencer arrives and downgraded back when membership drops to
    one.
    """

    def __init__(self, catalog: Catalog, store: ObjectStore, replica_sets,
                 inline_singletons: bool = False, telemetry=None) -> None:
        self.catalog = catalog
        self.store = store
        #: path_id -> replica ObjectSet (owned by the ReplicationManager).
        self.replica_sets = replica_sets
        self.inline_singletons = inline_singletons
        if telemetry is None:
            from repro.telemetry import Telemetry

            telemetry = Telemetry()
        self.telemetry = telemetry
        self._m_link_touches = telemetry.metrics.counter(
            "replication_link_touches_total",
            "link-object membership inserts/removals")
        self._m_replica_bumps = telemetry.metrics.counter(
            "replication_replica_bumps_total",
            "replica reference-count adjustments (separate strategy)")

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def ensure_membership(self, link: LinkDef, owner_oid: OID, member_oid: OID) -> None:
        """Make ``member`` a referencer of ``owner`` across ``link``.

        If the owner already carries an entry for the link it is already on
        the path, so deeper invariants hold and only the (idempotent)
        member insertion happens.  Otherwise the owner newly enters the
        path and the entry ripples deeper.
        """
        self.attach(link, owner_oid, member_oid, cascade=True)

    def attach(self, link: LinkDef, owner_oid: OID, member_oid: OID,
               cascade: bool = True) -> None:
        """Membership insert; ``cascade=False`` for bulk builds that ensure
        every link of a chain explicitly."""
        self._m_link_touches.inc()
        tracer = self.telemetry.tracer
        if tracer.enabled:
            with tracer.span("link_maintenance", op="attach",
                             link_id=link.link_id):
                self._attach(link, owner_oid, member_oid, cascade)
        else:
            self._attach(link, owner_oid, member_oid, cascade)

    def _attach(self, link: LinkDef, owner_oid: OID, member_oid: OID,
                cascade: bool) -> None:
        owner = self.store.read(owner_oid)
        entry = owner.link_entry_for(link.link_id)
        if entry is None:
            if self.inline_singletons:
                owner.add_link_entry(
                    LinkEntry(member_oid, link.link_id | _INLINE)
                )
            else:
                link_oid = link.file.create(owner_oid, [member_oid])
                owner.add_link_entry(LinkEntry(link_oid, link.link_id))
            self.store.update(owner_oid, owner)
            if cascade:
                self._cascade_enter(link, owner_oid, owner)
            return
        if entry.inline:
            if entry.link_oid == member_oid:
                return
            # second referencer: upgrade to a real link object
            link_oid = link.file.create(owner_oid, [entry.link_oid, member_oid])
            owner.add_link_entry(LinkEntry(link_oid, link.link_id))
            self.store.update(owner_oid, owner)
            return
        link.file.add(entry.link_oid, member_oid)

    def remove_membership(self, link: LinkDef, owner_oid: OID, member_oid: OID) -> None:
        """Withdraw ``member`` from ``owner``'s link object across ``link``.

        When the link object empties it is deleted, the owner's link entry
        detached, and the owner's own memberships one level deeper are
        withdrawn in turn.
        """
        self._m_link_touches.inc()
        tracer = self.telemetry.tracer
        if tracer.enabled:
            with tracer.span("link_maintenance", op="remove",
                             link_id=link.link_id):
                self._remove_membership(link, owner_oid, member_oid)
        else:
            self._remove_membership(link, owner_oid, member_oid)

    def _remove_membership(self, link: LinkDef, owner_oid: OID,
                           member_oid: OID) -> None:
        owner = self.store.read(owner_oid)
        entry = owner.link_entry_for(link.link_id)
        if entry is None:
            return
        if entry.inline:
            if entry.link_oid != member_oid:
                return
            owner.remove_link_entry(link.link_id)
            self.store.update(owner_oid, owner)
            self._cascade_leave(link, owner_oid, owner)
            return
        removed, empty = link.file.remove(entry.link_oid, member_oid)
        if not removed:
            return
        if empty:
            link.file.delete(entry.link_oid)
            owner.remove_link_entry(link.link_id)
            self.store.update(owner_oid, owner)
            self._cascade_leave(link, owner_oid, owner)
            return
        if self.inline_singletons:
            members = link.file.members(entry.link_oid)
            if len(members) == 1:
                # downgrade: inline the last referencer
                link.file.delete(entry.link_oid)
                owner.add_link_entry(LinkEntry(members[0], link.link_id | _INLINE))
                self.store.update(owner_oid, owner)

    def _cascade_enter(self, link: LinkDef, owner_oid: OID, owner: StoredObject) -> None:
        for child in self.catalog.child_links(link):
            target = owner.ref(child.prefix[-1])
            if target is not None:
                self.ensure_membership(child, target, owner_oid)
        for path, terminal_ref in self._separate_paths_ending_at(link):
            target = owner.ref(terminal_ref)
            if target is not None:
                self.bump_replica(path, target, +1)

    def _cascade_leave(self, link: LinkDef, owner_oid: OID, owner: StoredObject) -> None:
        for child in self.catalog.child_links(link):
            target = owner.ref(child.prefix[-1])
            if target is not None:
                self.remove_membership(child, target, owner_oid)
        for path, terminal_ref in self._separate_paths_ending_at(link):
            target = owner.ref(terminal_ref)
            if target is not None:
                self.bump_replica(path, target, -1)

    def _separate_paths_ending_at(self, link: LinkDef):
        """Separate paths whose inverted path ends at ``link``: their
        terminal hop is the owner's last reference attribute."""
        out = []
        for use in self.catalog.paths_using_link(link.link_id):
            path = use.path
            if (
                path.strategy is Strategy.SEPARATE
                and path.link_sequence
                and path.link_sequence[-1] == link.link_id
                and use.position == len(path.link_sequence)
            ):
                out.append((path, path.resolved.ref_chain[-1]))
        return out

    # ------------------------------------------------------------------
    # closure
    # ------------------------------------------------------------------

    def closure_to_source(self, link: LinkDef, owner_oid: OID) -> list[OID]:
        """Source-set OIDs reachable from ``owner`` down this link chain.

        The result is sorted, so callers propagate in clustered order --
        the point of keeping OIDs physically based (Section 4.1).
        """
        out = self._closure(link, owner_oid)
        out.sort()
        return out

    def _closure(self, link: LinkDef, owner_oid: OID) -> list[OID]:
        owner = self.store.read(owner_oid)
        entry = owner.link_entry_for(link.link_id)
        if entry is None:
            return []
        if entry.inline:
            members = [entry.link_oid]
        else:
            members = link.file.members(entry.link_oid)
        if len(link.prefix) == 1:
            return list(members)
        if link.parent_link_id is not None:
            parent = self.catalog.get_link(link.parent_link_id)
        else:
            parent = self.catalog.link_for_prefix(link.source_set, link.prefix[:-1])
        out: list[OID] = []
        for member in members:
            out.extend(self._closure(parent, member))
        return out

    # ------------------------------------------------------------------
    # separate-replication replica accounting
    # ------------------------------------------------------------------

    def bump_replica(self, path: ReplicationPath, terminal_oid: OID, delta: int) -> OID | None:
        """Adjust the terminal's replica reference count by ±1.

        On the first reference a replica object is created in S' with the
        terminal's current replicated values; on the last withdrawal the
        replica is garbage collected.  Returns the replica OID (None after
        a collecting decrement).
        """
        self._m_replica_bumps.inc()
        terminal = self.store.read(terminal_oid)
        entry = terminal.replica_entry_for(path.path_id)
        replica_set = self.replica_sets[path.path_id]
        if delta > 0:
            if entry is None:
                values = {
                    f: terminal.values[f] for f in path.replicated_field_names
                }
                replica_oid = replica_set.raw_insert(
                    StoredObject(replica_set.type_def, values)
                )
                terminal.set_replica_entry(ReplicaEntry(replica_oid, 1, path.path_id))
            else:
                terminal.set_replica_entry(
                    ReplicaEntry(entry.replica_oid, entry.refcount + 1, path.path_id)
                )
                replica_oid = entry.replica_oid
            self.store.update(terminal_oid, terminal)
            return replica_oid
        # decrement
        if entry is None:
            return None
        if entry.refcount <= 1:
            replica_set.raw_delete(entry.replica_oid)
            terminal.remove_replica_entry(path.path_id)
            self.store.update(terminal_oid, terminal)
            return None
        terminal.set_replica_entry(
            ReplicaEntry(entry.replica_oid, entry.refcount - 1, path.path_id)
        )
        self.store.update(terminal_oid, terminal)
        return entry.replica_oid

    def replica_oid_for(self, path: ReplicationPath, terminal_oid: OID | None) -> OID | None:
        """The replica OID currently serving ``terminal`` on ``path``."""
        if terminal_oid is None:
            return None
        entry = self.store.read(terminal_oid).replica_entry_for(path.path_id)
        return entry.replica_oid if entry is not None else None
