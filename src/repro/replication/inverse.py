"""Inverse functions over inverted paths (future work, Section 8).

The paper closes with "ways in which inverted paths can be used for
referential integrity and in implementing inverse functions (or
bidirectional reference attributes)".  Referential integrity is already
enforced by the manager (deletions of referenced objects are refused);
this module supplies the *inverse function*: given a referenced object,
enumerate its referencers.

When a replication path already maintains the needed link, the answer
comes straight from the link object (or the inlined entry) -- a few I/Os.
Otherwise the fallback scans the referencing set, reporting that it did so,
which is exactly the trade a DBA weighs when deciding to replicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import InvalidPathError
from repro.objects.types import FieldKind
from repro.storage.oid import OID

if TYPE_CHECKING:  # annotation-only
    from repro.schema.database import Database


@dataclass(frozen=True)
class InverseResult:
    """Referencers of one object across one reference attribute."""

    #: OIDs of the referencing objects, sorted (clustered order).
    referencers: tuple[OID, ...]
    #: True when a maintained link answered; False for a fallback scan.
    via_link: bool


def referencers(db: "Database", referencing_set: str, ref_field: str,
                target_oid: OID) -> InverseResult:
    """All members of ``referencing_set`` whose ``ref_field`` is ``target``.

    ``referencers(db, "Emp1", "dept", D)`` is the inverse function
    ``Emp1.dept^-1(D)``.  Uses the shared link on the prefix when any
    replication path maintains one; falls back to a set scan otherwise.
    """
    obj_set = db.catalog.get_set(referencing_set)
    fdef = obj_set.type_def.field_def(ref_field)
    if fdef.kind is not FieldKind.REF:
        raise InvalidPathError(
            f"{referencing_set}.{ref_field} is not a reference attribute"
        )
    link = db.catalog.link_for_prefix(referencing_set, (ref_field,))
    if link is not None and _link_is_live(db, link.link_id):
        target = db.store.read(target_oid)
        entry = target.link_entry_for(link.link_id)
        if entry is None:
            return InverseResult((), via_link=True)
        if entry.inline:
            return InverseResult((entry.link_oid,), via_link=True)
        members = sorted(link.file.members(entry.link_oid))
        return InverseResult(tuple(members), via_link=True)
    found = sorted(
        oid
        for oid, obj in obj_set.scan()
        if obj.values.get(ref_field) == target_oid
    )
    return InverseResult(tuple(found), via_link=False)


def _link_is_live(db: "Database", link_id: int) -> bool:
    return bool(db.catalog.paths_using_link(link_id))


def closure_referencers(db: "Database", path_text: str,
                        target_oid: OID) -> InverseResult:
    """Source-set objects reaching ``target`` through a replicated path.

    ``closure_referencers(db, "Emp1.dept.org.name", O)`` answers "which
    employees would see an update to O?" -- the full inverted-path walk the
    propagation machinery performs, exposed as a query primitive.
    """
    path = db.catalog.get_path(path_text)
    if not path.link_sequence:
        # 1-level separate path: no links; fall back to the single-hop scan
        ref = path.resolved.ref_chain[0]
        return referencers(db, path.source_set, ref, target_oid)
    if path.collapsed:
        target = db.store.read(target_oid)
        entry = target.link_entry_for(path.link_sequence[0])
        if entry is None:
            return InverseResult((), via_link=True)
        link = db.catalog.get_link(path.link_sequence[0])
        members = sorted({m for m, __tag in link.file.members(entry.link_oid)})
        return InverseResult(tuple(members), via_link=True)
    last_link = db.catalog.get_link(path.link_sequence[-1])
    sources = db.replication.inverted.closure_to_source(last_link, target_oid)
    return InverseResult(tuple(sources), via_link=True)
