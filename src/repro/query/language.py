"""The query language: statements and their text parser.

The paper writes queries in an EXTRA/QUEL-ish syntax::

    retrieve (Emp1.name, Emp1.salary, Emp1.dept.name)
    where Emp1.salary > 100000

    replace (S.field = newvalue, S.repfield = "newvalue")
    where S.field2 = 17

    delete from Emp1 where Emp1.age >= 65

This module parses that surface syntax into plain statement objects; the
planner (:mod:`repro.query.planner`) resolves them against the schema.
Supported predicates are single comparisons on a scalar field of the
queried set -- exactly the query class of the paper's cost model -- plus
``and``-conjunctions of such comparisons as a convenience.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError

COMPARE_OPS = ("<=", ">=", "!=", "=", "<", ">")


@dataclass(frozen=True)
class FieldRef:
    """A (possibly path-valued) field reference like ``Emp1.dept.name``."""

    set_name: str
    chain: tuple[str, ...]
    field: str

    @property
    def text(self) -> str:
        return ".".join((self.set_name,) + self.chain + (self.field,))

    @staticmethod
    def parse(text: str) -> "FieldRef":
        parts = text.strip().split(".")
        if len(parts) < 2 or not all(p.isidentifier() for p in parts):
            raise ParseError(f"bad field reference {text!r}")
        return FieldRef(parts[0], tuple(parts[1:-1]), parts[-1])


@dataclass(frozen=True)
class Comparison:
    """``ref op literal`` -- the model's single-clause predicate."""

    ref: FieldRef
    op: str
    value: object

    def matches(self, actual) -> bool:
        if self.op == "=":
            return actual == self.value
        if self.op == "!=":
            return actual != self.value
        if self.op == "<":
            return actual < self.value
        if self.op == "<=":
            return actual <= self.value
        if self.op == ">":
            return actual > self.value
        if self.op == ">=":
            return actual >= self.value
        raise ParseError(f"unknown operator {self.op!r}")

    @property
    def text(self) -> str:
        value = f'"{self.value}"' if isinstance(self.value, str) else str(self.value)
        return f"{self.ref.text} {self.op} {value}"


@dataclass(frozen=True)
class Where:
    """A conjunction of comparisons (usually just one)."""

    clauses: tuple[Comparison, ...]

    def matches(self, lookup) -> bool:
        """``lookup(field_ref)`` supplies the scanned object's values."""
        return all(c.matches(lookup(c.ref)) for c in self.clauses)

    @property
    def text(self) -> str:
        return " and ".join(c.text for c in self.clauses)


#: Supported aggregate functions over retrieve targets.
AGGREGATES = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class Retrieve:
    """``retrieve (targets...) where ...``

    ``aggregates`` aligns with ``targets``: None for a plain projection,
    or one of :data:`AGGREGATES` -- ``retrieve (count(Emp1.name),
    avg(Emp1.salary))`` folds the result to a single row.  Mixing
    aggregated and plain targets is rejected (there is no group-by).
    """

    targets: tuple[FieldRef, ...]
    where: Where | None = None
    aggregates: tuple[str | None, ...] | None = None
    #: ``order by`` key (any plannable field reference, replicated paths
    #: included) and direction; ``limit`` caps the row count after sorting.
    order_by: FieldRef | None = None
    descending: bool = False
    limit: int | None = None
    #: ``group by`` keys; every plain target must appear here, and the
    #: aggregates fold per group.
    group_by: tuple[FieldRef, ...] = ()

    @property
    def is_aggregate(self) -> bool:
        return self.aggregates is not None and any(self.aggregates)


@dataclass(frozen=True)
class Replace:
    """``replace (Set.field = value, ...) where ...``"""

    set_name: str
    assignments: tuple[tuple[str, object], ...]
    where: Where | None = None


@dataclass(frozen=True)
class Delete:
    """``delete from Set where ...``"""

    set_name: str
    where: Where | None = None


_NUMBER = re.compile(r"^[+-]?\d+(\.\d+)?$")


def _parse_literal(token: str):
    token = token.strip()
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "'\"":
        return token[1:-1]
    if _NUMBER.match(token):
        return float(token) if "." in token else int(token)
    raise ParseError(f"bad literal {token!r} (strings need quotes)")


def _split_top_level(text: str, sep: str) -> list[str]:
    """Split on ``sep`` outside quotes."""
    parts, depth_quote, current = [], None, []
    i = 0
    while i < len(text):
        ch = text[i]
        if depth_quote:
            current.append(ch)
            if ch == depth_quote:
                depth_quote = None
        elif ch in "'\"":
            depth_quote = ch
            current.append(ch)
        elif text[i:i + len(sep)] == sep:
            parts.append("".join(current))
            current = []
            i += len(sep)
            continue
        else:
            current.append(ch)
        i += 1
    parts.append("".join(current))
    return parts


def _parse_comparison(text: str) -> Comparison:
    for op in COMPARE_OPS:
        if op in text:
            left, __, right = text.partition(op)
            return Comparison(FieldRef.parse(left), op, _parse_literal(right))
    raise ParseError(f"no comparison operator in {text!r}")


def _parse_where(text: str | None) -> Where | None:
    if text is None or not text.strip():
        return None
    clauses = tuple(
        _parse_comparison(chunk) for chunk in _split_top_level(text, " and ")
    )
    return Where(clauses)


def _split_where(body: str) -> tuple[str, str | None]:
    match = re.search(r"\bwhere\b", body)
    if match is None:
        return body, None
    return body[: match.start()], body[match.end():]


def parse_statement(text: str) -> Retrieve | Replace | Delete:
    """Parse one statement; raises :class:`ParseError` on malformed input."""
    body = text.strip().rstrip(";")
    if body.startswith("retrieve"):
        return _parse_retrieve(body[len("retrieve"):])
    if body.startswith("replace"):
        return _parse_replace(body[len("replace"):])
    if body.startswith("delete"):
        return _parse_delete(body[len("delete"):])
    raise ParseError(f"statement must start with retrieve/replace/delete: {text!r}")


def _extract_parens(body: str) -> tuple[str, str]:
    body = body.strip()
    if not body.startswith("("):
        raise ParseError(f"expected '(' in {body!r}")
    depth, quote = 0, None
    for i, ch in enumerate(body):
        if quote:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return body[1:i], body[i + 1:]
    raise ParseError(f"unbalanced parentheses in {body!r}")


_AGG = re.compile(r"^(count|sum|avg|min|max)\s*\((.+)\)$", re.DOTALL)


def _parse_target(text: str) -> tuple[str | None, FieldRef]:
    text = text.strip()
    match = _AGG.match(text)
    if match:
        return match.group(1), FieldRef.parse(match.group(2))
    return None, FieldRef.parse(text)


def _parse_retrieve(rest: str) -> Retrieve:
    inner, tail = _extract_parens(rest)
    parsed = [_parse_target(t) for t in _split_top_level(inner, ",")]
    if not parsed:
        raise ParseError("retrieve needs at least one target")
    aggregates = tuple(fn for fn, __ in parsed)
    targets = tuple(ref for __, ref in parsed)
    sets = {t.set_name for t in targets}
    if len(sets) != 1:
        raise ParseError(f"retrieve targets must share one set, got {sorted(sets)}")
    # strip trailing "limit N" then "order by X [asc|desc]" then "where ..."
    limit = None
    order_ref = None
    descending = False
    match = re.search(r"\blimit\s+(\d+)\s*$", tail)
    if match:
        limit = int(match.group(1))
        tail = tail[: match.start()]
    match = re.search(r"\border\s+by\s+([\w.]+)(\s+(?:asc|desc))?\s*$", tail)
    if match:
        order_ref = FieldRef.parse(match.group(1))
        descending = (match.group(2) or "").strip() == "desc"
        tail = tail[: match.start()]
        if order_ref.set_name != targets[0].set_name:
            raise ParseError("order-by field must belong to the queried set")
    group_by: tuple[FieldRef, ...] = ()
    match = re.search(r"\bgroup\s+by\s+([\w.]+(?:\s*,\s*[\w.]+)*)\s*$", tail)
    if match:
        group_by = tuple(
            FieldRef.parse(chunk) for chunk in match.group(1).split(",")
        )
        tail = tail[: match.start()]
    body, where_text = _split_where(tail)
    if body.strip():
        raise ParseError(f"unexpected text after targets: {body.strip()!r}")
    if order_ref is not None and any(aggregates):
        raise ParseError("order by cannot combine with aggregates")
    if not group_by and any(aggregates) and not all(aggregates):
        raise ParseError(
            "cannot mix aggregated and plain targets without a group by"
        )
    if group_by:
        if not any(aggregates):
            raise ParseError("group by needs at least one aggregated target")
        plain = {ref.text for fn, ref in zip(aggregates, targets) if fn is None}
        keys = {ref.text for ref in group_by}
        if not plain <= keys:
            raise ParseError(
                f"plain targets {sorted(plain - keys)} must appear in group by"
            )
        if order_ref is not None:
            raise ParseError("order by cannot combine with group by")
    return Retrieve(
        targets,
        _parse_where(where_text),
        aggregates=aggregates if any(aggregates) else None,
        order_by=order_ref,
        descending=descending,
        limit=limit,
        group_by=group_by,
    )


def _parse_replace(rest: str) -> Replace:
    inner, tail = _extract_parens(rest)
    assignments = []
    set_names = set()
    for chunk in _split_top_level(inner, ","):
        left, sep, right = chunk.partition("=")
        if not sep:
            raise ParseError(f"assignment needs '=': {chunk!r}")
        ref = FieldRef.parse(left)
        if ref.chain:
            raise ParseError(f"replace assigns plain fields only: {ref.text!r}")
        set_names.add(ref.set_name)
        assignments.append((ref.field, _parse_literal(right)))
    if len(set_names) != 1:
        raise ParseError(f"replace assignments must share one set, got {sorted(set_names)}")
    body, where_text = _split_where(tail)
    if body.strip():
        raise ParseError(f"unexpected text after assignments: {body.strip()!r}")
    return Replace(set_names.pop(), tuple(assignments), _parse_where(where_text))


def _parse_delete(rest: str) -> Delete:
    rest = rest.strip()
    if not rest.startswith("from"):
        raise ParseError("delete syntax: delete from Set [where ...]")
    rest = rest[len("from"):]
    body, where_text = _split_where(rest)
    set_name = body.strip()
    if not set_name.isidentifier():
        raise ParseError(f"bad set name {set_name!r}")
    return Delete(set_name, _parse_where(where_text))
