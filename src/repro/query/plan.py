"""Query plans.

A retrieve plan is an access path plus one *fetch step* per target:

* ``LocalField``       -- read a field of the scanned object (free),
* ``HiddenField``      -- read a hidden replicated value (free: this is the
  functional join that replication eliminated),
* ``ReplicaFetch``     -- follow the hidden replica ref into S' (one
  functional join against the small replica set -- separate replication),
* ``HiddenRefJump``    -- start from a replicated *reference* (a collapsed
  path, Section 3.3.3) and finish with a shorter functional join,
* ``FunctionalJoin``   -- the unassisted chain of OID dereferences.

Plans render to a compact ``explain()`` string so tests and examples can
assert which strategy the planner picked.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.language import FieldRef, Where
from repro.schema.catalog import IndexInfo


@dataclass(frozen=True)
class IndexScan:
    """Drive the query from a B+-tree on the filter field.

    Either an equality probe (``eq`` set) or a range scan bounded by
    ``lo`` / ``hi`` (strict flags exclude the bound itself).  Bounds may
    combine two where-clauses on the same field (``x >= a and x <= b``).
    """

    index: IndexInfo
    eq: object = None
    lo: object = None
    lo_strict: bool = False
    hi: object = None
    hi_strict: bool = False

    def explain(self) -> str:
        kind = "clustered" if self.index.clustered else "unclustered"
        if self.eq is not None:
            cond = f"= {self.eq!r}"
        else:
            parts = []
            if self.lo is not None:
                parts.append(f"{'>' if self.lo_strict else '>='} {self.lo!r}")
            if self.hi is not None:
                parts.append(f"{'<' if self.hi_strict else '<='} {self.hi!r}")
            cond = " and ".join(parts) if parts else "full"
        return f"IndexScan({self.index.name} [{kind}] {cond})"


@dataclass(frozen=True)
class FileScan:
    """Scan the whole set file, filtering as we go."""

    set_name: str

    def explain(self) -> str:
        return f"FileScan({self.set_name})"


@dataclass(frozen=True)
class LocalField:
    target: FieldRef
    field_name: str

    def explain(self) -> str:
        return f"local({self.field_name})"


@dataclass(frozen=True)
class HiddenField:
    target: FieldRef
    hidden_field: str
    path_text: str

    def explain(self) -> str:
        return f"replicated({self.path_text} -> {self.hidden_field})"


@dataclass(frozen=True)
class ReplicaFetch:
    target: FieldRef
    hidden_ref: str
    path_id: int
    field_name: str
    path_text: str

    def explain(self) -> str:
        return f"replica({self.path_text} via {self.hidden_ref}.{self.field_name})"


@dataclass(frozen=True)
class HiddenRefJump:
    target: FieldRef
    hidden_field: str
    remaining_chain: tuple[str, ...]
    field_name: str
    path_text: str

    def explain(self) -> str:
        hops = ".".join(self.remaining_chain + (self.field_name,))
        return f"jump({self.path_text} -> {self.hidden_field} then {hops})"


@dataclass(frozen=True)
class FunctionalJoin:
    target: FieldRef
    chain: tuple[str, ...]
    field_name: str

    def explain(self) -> str:
        return f"join({'.'.join(self.chain)}.{self.field_name})"


FetchStep = LocalField | HiddenField | ReplicaFetch | HiddenRefJump | FunctionalJoin
AccessPath = IndexScan | FileScan


@dataclass(frozen=True)
class RetrievePlan:
    set_name: str
    access: AccessPath
    steps: tuple[FetchStep, ...]
    where: Where | None
    #: lazy paths that must be refreshed before replicated data is trusted
    refresh_paths: tuple[str, ...] = ()
    materialize: bool = True
    #: per-step aggregate function names (None entries = plain projection)
    aggregates: tuple[str | None, ...] | None = None
    #: sort key fetch step, direction, and row cap
    order_step: FetchStep | None = None
    descending: bool = False
    limit: int | None = None
    #: group-by key fetch steps (aggregates then fold per key tuple)
    group_steps: tuple[FetchStep, ...] = ()
    #: executor strategy for OID-dereference steps: "naive" row-at-a-time
    #: probes or "batched" sort-and-dedupe sweeps (Database.join_mode)
    join_mode: str = "batched"

    def batchable_steps(self) -> tuple[FetchStep, ...]:
        """Every fetch step that dereferences OIDs (and so batches)."""
        candidates = list(self.steps) + list(self.group_steps)
        if self.order_step is not None:
            candidates.append(self.order_step)
        return tuple(
            s for s in candidates
            if isinstance(s, (FunctionalJoin, HiddenRefJump, ReplicaFetch))
        )

    def explain(self) -> str:
        parts = [self.access.explain()]
        if self.aggregates:
            parts.extend(
                f"{fn}({step.explain()})" if fn else step.explain()
                for fn, step in zip(self.aggregates, self.steps)
            )
        else:
            parts.extend(step.explain() for step in self.steps)
        if self.where is not None:
            parts.append(f"filter({self.where.text})")
        if self.group_steps:
            keys = ", ".join(step.explain() for step in self.group_steps)
            parts.append(f"group({keys})")
        if self.order_step is not None:
            direction = "desc" if self.descending else "asc"
            parts.append(f"sort({self.order_step.explain()} {direction})")
        if self.limit is not None:
            parts.append(f"limit({self.limit})")
        if self.refresh_paths:
            parts.append(f"refresh({', '.join(self.refresh_paths)})")
        if self.batchable_steps() or (
            self.where is not None and any(c.ref.chain for c in self.where.clauses)
        ):
            # the executor strategy only matters when something dereferences
            # OIDs; "mode", not "join_mode", so plans without a functional
            # join never contain the substring "join"
            parts.append(f"mode({self.join_mode})")
        return " -> ".join(parts)


@dataclass(frozen=True)
class UpdatePlan:
    set_name: str
    access: AccessPath
    assignments: tuple[tuple[str, object], ...]
    where: Where | None

    def explain(self) -> str:
        sets = ", ".join(f"{k}={v!r}" for k, v in self.assignments)
        parts = [self.access.explain(), f"update({sets})"]
        if self.where is not None:
            parts.append(f"filter({self.where.text})")
        return " -> ".join(parts)


@dataclass(frozen=True)
class DeletePlan:
    set_name: str
    access: AccessPath
    where: Where | None

    def explain(self) -> str:
        parts = [self.access.explain(), "delete"]
        if self.where is not None:
            parts.append(f"filter({self.where.text})")
        return " -> ".join(parts)
