"""Set-oriented execution: batched sort-and-dedupe functional joins.

The naive executor dereferences one OID per hop per row, which turns a
functional join into random I/O and re-reads a shared target object once
per referencer.  This module is the assembly-style counterpart: drain the
access path in batches of :attr:`Database.join_batch_rows` rows, extract
each hop level's next-hop OIDs, sort them by ``(file_id, page_no, slot)``,
dedupe, resolve the whole level with one ordered sweep
(:meth:`ObjectStore.read_many`), and fan the values back to their rows --
so each target page is touched at most once per batch and the sweep reads
the file in physical order.  File scans additionally opt into heap-page
read-ahead sized to the buffer pool.

Row order, row values, and raised errors match the naive executor exactly
(parity is tested over the full query corpus); only the physical I/O
pattern changes.  When metering (EXPLAIN ANALYZE), hop levels appear as
the same ``hop <ref>`` children the naive path produces, with per-level
``distinct`` / ``dedup`` batch statistics; rows whose chain ends at a NULL
reference are counted as ``nulls`` on the join operator and never create
a hop child for a level they did not reach.
"""

from __future__ import annotations

from itertools import islice

from repro.query.analyze import Meter, OperatorStats
from repro.query.plan import (
    FileScan,
    FunctionalJoin,
    HiddenField,
    HiddenRefJump,
    IndexScan,
    LocalField,
    ReplicaFetch,
    RetrievePlan,
)
from repro.storage.constants import SCAN_READAHEAD_PAGES
from repro.storage.oid import OID


def scan_readahead(db) -> int:
    """Read-ahead window for a batched file scan, sized to the pool.

    Small pools get no read-ahead: prefetching more pages than the pool
    can hold evicts the window before the cursor arrives and turns each
    page into two physical reads.
    """
    window = min(SCAN_READAHEAD_PAGES, db.storage.pool.capacity // 2)
    return window if window >= 2 else 0


def iter_batches(db, plan: RetrievePlan, meter: Meter | None = None,
                 scan_op: OperatorStats | None = None):
    """Yield lists of filtered ``(oid, obj)`` rows, one batch at a time.

    Scan I/O -- including read-ahead and any batched filter joins, exactly
    the work the naive path charges to its scan -- is attributed to
    ``scan_op`` when metering.
    """
    raw = iter(_raw_rows(db, plan))
    batch_rows = db.join_batch_rows
    while True:
        mark = meter.begin() if meter is not None else None
        batch = list(islice(raw, batch_rows))
        done = len(batch) < batch_rows
        if batch and plan.where is not None:
            batch = filter_batch(db, plan.set_name, plan.where, batch)
        if meter is not None:
            meter.end(mark, scan_op)
            scan_op.rows += len(batch)
        if batch:
            yield batch
        if done:
            return


def _raw_rows(db, plan: RetrievePlan):
    """Unfiltered ``(oid, obj)`` rows in access order.

    Index scans are batched too: a window of index-qualified OIDs resolves
    through one ordered sweep, then rows surface in index-key order.
    """
    obj_set = db.catalog.get_set(plan.set_name)
    if isinstance(plan.access, FileScan):
        yield from obj_set.scan(readahead=scan_readahead(db))
        return
    assert isinstance(plan.access, IndexScan)
    from repro.query.executor import _index_oids

    oids = iter(_index_oids(plan.access))
    while True:
        window = list(islice(oids, db.join_batch_rows))
        if not window:
            return
        objmap = db.store.read_many(window)
        for oid in window:
            yield oid, objmap[oid]


# ---------------------------------------------------------------------------
# batched filtering (path-valued where clauses)
# ---------------------------------------------------------------------------


def filter_batch(db, set_name: str, where, batch: list) -> list:
    """Apply ``where`` to a batch, batching its path-valued lookups.

    Local and in-place-replicated clause values come straight off each
    object; separate-replica and functional-join clause values are
    resolved for the whole batch in one sweep per distinct path before any
    predicate runs.
    """
    cache: dict[tuple, list] = {}
    for clause in where.clauses:
        ref = clause.ref
        key = (ref.chain, ref.field)
        if not ref.chain or key in cache:
            continue
        path = db.catalog.find_path(set_name, ref.chain, ref.field)
        if path is not None and path.hidden_fields:
            continue  # replicated in place: read per row below, no I/O
        if path is not None and path.hidden_ref is not None:
            refs = [obj.values[path.hidden_ref] for __, obj in batch]
            cache[key] = replica_values(db, refs, ref.field)
        else:
            starts = [obj.ref(ref.chain[0]) for __, obj in batch]
            cache[key] = resolve_chain_values(db, starts, ref.chain[1:],
                                              ref.field)
    out = []
    for i, (oid, obj) in enumerate(batch):
        def lookup(ref, i=i, obj=obj):
            if not ref.chain:
                return obj.values[ref.field]
            cached = cache.get((ref.chain, ref.field))
            if cached is not None:
                return cached[i]
            path = db.catalog.find_path(set_name, ref.chain, ref.field)
            return obj.values[path.hidden_field_for(ref.field)]

        if where.matches(lookup):
            out.append((oid, obj))
    return out


# ---------------------------------------------------------------------------
# batched fetch steps
# ---------------------------------------------------------------------------


def resolve_step_batch(db, step, batch: list, meter: Meter | None = None,
                       op: OperatorStats | None = None) -> list:
    """One fetch step's values for every row of the batch, in row order."""
    objs = [obj for __, obj in batch]
    if isinstance(step, LocalField):
        return [obj.values[step.field_name] for obj in objs]
    if isinstance(step, HiddenField):
        return [obj.values[step.hidden_field] for obj in objs]
    if isinstance(step, ReplicaFetch):
        refs = [obj.values[step.hidden_ref] for obj in objs]
        return replica_values(db, refs, step.field_name, op=op)
    if isinstance(step, HiddenRefJump):
        starts = [obj.values[step.hidden_field] for obj in objs]
        labels = ["hop jump"] + [f"hop {r}" for r in step.remaining_chain]
        return resolve_chain_values(db, starts, step.remaining_chain,
                                    step.field_name, hop_labels=labels,
                                    meter=meter, op=op)
    assert isinstance(step, FunctionalJoin)
    starts = [obj.ref(step.chain[0]) for obj in objs]
    labels = [f"hop {r}" for r in step.chain]
    return resolve_chain_values(db, starts, step.chain[1:], step.field_name,
                                hop_labels=labels, meter=meter, op=op)


def replica_values(db, refs: list[OID | None], field_name: str,
                   op: OperatorStats | None = None) -> list:
    """Batch-dereference replica refs (separate replication's S' join)."""
    live = [r for r in refs if r is not None]
    objmap = db.store.read_many(live) if live else {}
    if op is not None:
        op.nulls += len(refs) - len(live)
        distinct = len(set(live))
        op.distinct += distinct
        op.dedup_saved += len(live) - distinct
    return [objmap[r].values[field_name] if r is not None else None
            for r in refs]


def resolve_chain_values(db, start_oids: list, chain, field_name: str,
                         hop_labels: list[str] | None = None,
                         meter: Meter | None = None,
                         op: OperatorStats | None = None) -> list:
    """Resolve a reference chain for many rows, one sweep per hop level.

    ``start_oids`` is aligned with the rows (None entries short-circuit to
    a NULL value, as the naive join does).  Returns the terminal field
    values in row order.  With metering, each level's sweep is attributed
    to a ``hop_labels[level]`` child of ``op`` -- created only when the
    level has at least one live reference, so all-NULL levels leave no
    phantom hop -- and rows that never reach the terminal are counted on
    ``op.nulls``.
    """
    n = len(start_oids)
    current = list(start_oids)
    live = [i for i in range(n) if current[i] is not None]
    values = [None] * n
    n_levels = 1 + len(chain)
    for level in range(n_levels):
        if not live:
            break
        probes = [current[i] for i in live]
        hop = None
        if op is not None and hop_labels is not None:
            hop = op.child(hop_labels[level])
        mark = meter.begin() if (meter is not None and hop is not None) else None
        objmap = db.store.read_many(probes)
        if mark is not None:
            meter.end(mark, hop)
        if hop is not None:
            hop.rows += len(probes)
            distinct = len(objmap)
            hop.distinct += distinct
            hop.dedup_saved += len(probes) - distinct
        if level < len(chain):
            ref_name = chain[level]
            still = []
            for i in live:
                nxt = objmap[current[i]].ref(ref_name)
                current[i] = nxt
                if nxt is not None:
                    still.append(i)
            live = still
        else:
            for i in live:
                values[i] = objmap[current[i]].values[field_name]
    if op is not None:
        op.nulls += n - len(live)
    return values
