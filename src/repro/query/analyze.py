"""EXPLAIN ANALYZE support: per-operator execution statistics.

When a plan is executed with ``analyze=True`` the executor attributes
every page of I/O to the operator that caused it -- the access path, each
fetch step (with per-hop sub-operators for functional joins), the sort /
group key fetches, replica-refresh work, and output materialisation.  The
result is a tree of :class:`OperatorStats` whose top level sums exactly
to the query's :class:`~repro.storage.stats.IOSnapshot` -- the empirical
analogue of the paper's per-term cost decomposition, but produced by one
executed query instead of a model.

Measurement is deliberately cheap: the meter reads six integer counters
off the shared :class:`~repro.storage.stats.IOStatistics` before and
after each operator step (no snapshot dict copies), so ANALYZE overhead
is a few attribute reads per row.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OperatorStats:
    """Execution statistics for one plan operator (or join hop)."""

    name: str
    detail: str = ""
    rows: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    logical_reads: int = 0
    buffer_hits: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0
    #: rows whose reference chain ended at a NULL before this operator's
    #: level was reached (no hop child is created for a never-taken hop)
    nulls: int = 0
    #: batched join only: distinct OIDs actually swept at this hop level
    distinct: int = 0
    #: batched join only: probe OIDs dropped by sort-and-dedupe
    dedup_saved: int = 0
    children: list["OperatorStats"] = field(default_factory=list)

    @property
    def total_io(self) -> int:
        """Physical reads + writes -- the paper's cost unit."""
        return self.physical_reads + self.physical_writes

    def child(self, name: str, detail: str = "") -> "OperatorStats":
        """Get-or-create a named sub-operator (e.g. one join hop)."""
        for existing in self.children:
            if existing.name == name:
                return existing
        created = OperatorStats(name, detail)
        self.children.append(created)
        return created

    def io_dict(self) -> dict:
        return {
            "physical_reads": self.physical_reads,
            "physical_writes": self.physical_writes,
            "logical_reads": self.logical_reads,
            "buffer_hits": self.buffer_hits,
            "evictions": self.evictions,
            "dirty_writebacks": self.dirty_writebacks,
        }


class Meter:
    """Attributes I/O deltas from the shared counters to operators.

    Not re-entrant: the executor is single-threaded, and nested
    attribution (join hops inside a fetch step) uses explicit paired
    ``begin``/``end`` calls so a hop's I/O lands in both the hop and its
    parent operator.
    """

    __slots__ = ("stats",)

    def __init__(self, stats) -> None:
        self.stats = stats

    def begin(self) -> tuple:
        stats = self.stats
        return (
            stats.physical_reads,
            stats.physical_writes,
            stats.logical_reads,
            stats.buffer_hits,
            stats.evictions,
            stats.dirty_writebacks,
        )

    def end(self, mark: tuple, op: OperatorStats) -> None:
        stats = self.stats
        op.physical_reads += stats.physical_reads - mark[0]
        op.physical_writes += stats.physical_writes - mark[1]
        op.logical_reads += stats.logical_reads - mark[2]
        op.buffer_hits += stats.buffer_hits - mark[3]
        op.evictions += stats.evictions - mark[4]
        op.dirty_writebacks += stats.dirty_writebacks - mark[5]


def operators_total_io(operators) -> int:
    """Physical I/O summed over the *top-level* operators (children are
    already contained in their parents)."""
    return sum(op.total_io for op in operators)


def render_analyze(result) -> str:
    """Render a ``QueryResult``'s operator tree as a fixed-width table."""
    if not result.operators:
        return "(no operator statistics; run with analyze=True)"
    header = (
        f"{'operator':44s} {'rows':>7s} {'reads':>6s} {'writes':>6s} "
        f"{'logical':>7s} {'hits':>6s}"
    )
    lines = [header, "-" * len(header)]

    def emit(op: OperatorStats, depth: int) -> None:
        label = "  " * depth + op.name
        if op.detail:
            label += f" {op.detail}"
        extras = []
        if op.distinct:
            extras.append(f"distinct={op.distinct}")
        if op.dedup_saved:
            extras.append(f"dedup={op.dedup_saved}")
        if op.nulls:
            extras.append(f"null={op.nulls}")
        if extras:
            label += f" [{' '.join(extras)}]"
        if len(label) > 44:
            label = label[:41] + "..."
        lines.append(
            f"{label:44s} {op.rows:7d} {op.physical_reads:6d} "
            f"{op.physical_writes:6d} {op.logical_reads:7d} {op.buffer_hits:6d}"
        )
        for sub in op.children:
            emit(sub, depth + 1)

    for op in result.operators:
        emit(op, 0)
    lines.append("-" * len(header))
    io = result.io
    lines.append(
        f"{'total':44s} {len(result.rows):7d} {io.physical_reads:6d} "
        f"{io.physical_writes:6d} {io.logical_reads:7d} {io.buffer_hits:6d}"
    )
    if io.evictions or io.dirty_writebacks:
        lines.append(
            f"({io.evictions} eviction(s), {io.dirty_writebacks} dirty write-back(s))"
        )
    return "\n".join(lines)
