"""Query processing: language, planner, replication-aware executor."""

from repro.query.executor import QueryResult
from repro.query.language import (
    Comparison,
    Delete,
    FieldRef,
    Replace,
    Retrieve,
    Where,
    parse_statement,
)
from repro.query.runner import execute_statement, execute_text, explain_text

__all__ = [
    "Comparison",
    "Delete",
    "FieldRef",
    "QueryResult",
    "Replace",
    "Retrieve",
    "Where",
    "execute_statement",
    "execute_text",
    "explain_text",
    "parse_statement",
]
