"""The planner: resolve statements against the schema and pick fetch steps.

The interesting decision is per path-valued target, in priority order:

1. an **in-place** replication path covering the full target path: read the
   hidden field -- zero extra I/O ("query processing will know about field
   replication and exploit it whenever possible", Section 3.1);
2. a **separate** path covering it: one functional join into the small,
   tightly clustered replica set S';
3. a replicated **reference attribute** covering a path prefix (collapsed
   path, Section 3.3.3): jump via the hidden OID and functionally join the
   (shorter) rest -- the longest prefix wins;
4. otherwise: the plain functional join.

Access path: an index scan when the (single) where-clause compares an
indexed field of the queried set; a file scan otherwise.  An equality
predicate may also be served by an index on a *replicated path* (Section
3.3.4), mapping terminal values straight to source objects.
"""

from __future__ import annotations

from repro.errors import PlanningError
from repro.objects.types import FieldKind
from repro.query.language import Delete, FieldRef, Replace, Retrieve, Where
from repro.query.plan import (
    DeletePlan,
    FetchStep,
    FileScan,
    FunctionalJoin,
    HiddenField,
    HiddenRefJump,
    IndexScan,
    LocalField,
    ReplicaFetch,
    RetrievePlan,
    UpdatePlan,
)
from repro.replication.spec import Strategy
from repro.schema.database import Database


def plan_retrieve(db: Database, stmt: Retrieve, materialize: bool = True) -> RetrievePlan:
    """Build a plan for a retrieve statement."""
    set_name = stmt.targets[0].set_name
    obj_set = db.catalog.get_set(set_name)
    refresh: list[str] = []
    if stmt.is_aggregate:
        if any(t.field == "all" for t in stmt.targets):
            raise PlanningError("aggregates over 'all' are not supported")
        targets = stmt.targets
        aggregates = stmt.aggregates
    else:
        groups = tuple(_expand_all(db, obj_set, target) for target in stmt.targets)
        targets = tuple(t for group in groups for t in group)
        aggregates = None
    steps = tuple(_plan_target(db, obj_set, target, refresh) for target in targets)
    order_step = (
        _plan_target(db, obj_set, stmt.order_by, refresh)
        if stmt.order_by is not None
        else None
    )
    group_steps = tuple(
        _plan_target(db, obj_set, ref, refresh) for ref in stmt.group_by
    )
    access, residual = _plan_access(db, set_name, stmt.where)
    return RetrievePlan(
        set_name=set_name,
        access=access,
        steps=steps,
        where=residual,
        refresh_paths=tuple(dict.fromkeys(refresh)),
        materialize=materialize,
        aggregates=aggregates,
        order_step=order_step,
        descending=stmt.descending,
        limit=stmt.limit,
        group_steps=group_steps,
        join_mode=getattr(db, "join_mode", "batched"),
    )


def plan_replace(db: Database, stmt: Replace) -> UpdatePlan:
    """Build a plan for a replace statement."""
    obj_set = db.catalog.get_set(stmt.set_name)
    for fname, __value in stmt.assignments:
        fdef = obj_set.type_def.field_def(fname)
        if fdef.hidden:
            raise PlanningError(f"field {fname!r} is replication-internal")
    access, residual = _plan_access(db, stmt.set_name, stmt.where)
    return UpdatePlan(stmt.set_name, access, stmt.assignments, residual)


def plan_delete(db: Database, stmt: Delete) -> DeletePlan:
    """Build a plan for a delete statement."""
    db.catalog.get_set(stmt.set_name)
    access, residual = _plan_access(db, stmt.set_name, stmt.where)
    return DeletePlan(stmt.set_name, access, residual)


def _expand_all(db: Database, obj_set, target: FieldRef) -> tuple[FieldRef, ...]:
    """Expand an ``all`` terminal into the visible fields of its type.

    ``Emp1.all`` projects every visible field of the set's type;
    ``Emp1.dept.all`` every visible field of DEPT (served by a full-object
    replication path when one exists).
    """
    if target.field != "all":
        return (target,)
    current = obj_set.type_def
    for ref_name in target.chain:
        fdef = current.field_def(ref_name)
        if fdef.kind is not FieldKind.REF:
            raise PlanningError(f"{target.text!r}: {ref_name!r} is not a reference")
        current = db.registry.get(fdef.ref_type)
    if current.has_field("all"):
        return (target,)  # a literal field named "all" wins
    return tuple(
        FieldRef(target.set_name, target.chain, f.name)
        for f in current.visible_fields()
    )


# ---------------------------------------------------------------------------
# fetch-step selection
# ---------------------------------------------------------------------------


def _plan_target(db: Database, obj_set, target: FieldRef, refresh: list[str]) -> FetchStep:
    type_def = obj_set.type_def
    if not target.chain:
        fdef = type_def.field_def(target.field)
        if fdef.hidden:
            raise PlanningError(f"field {target.field!r} is replication-internal")
        return LocalField(target, target.field)
    _validate_chain(db, type_def, target)
    # 1/2. a replication path covering the whole target path
    path = db.catalog.find_path(obj_set.name, target.chain, target.field)
    if path is not None:
        if path.strategy is Strategy.IN_PLACE:
            if path.lazy:
                refresh.append(path.text)
            return HiddenField(target, path.hidden_field_for(target.field), path.text)
        return ReplicaFetch(
            target, path.hidden_ref, path.path_id, target.field, path.text
        )
    # 3. the longest replicated reference prefix (collapsed path): a path
    #    replicating chain[:j-1] + terminal chain[j-1] materialises the OID
    #    of the level-j object, shortening the join to chain[j:].
    for j in range(len(target.chain), 1, -1):
        ref_path = db.catalog.find_path(
            obj_set.name, target.chain[: j - 1], target.chain[j - 1]
        )
        if (
            ref_path is not None
            and ref_path.strategy is Strategy.IN_PLACE
            and not ref_path.collapsed
        ):
            if ref_path.lazy:
                refresh.append(ref_path.text)
            return HiddenRefJump(
                target,
                ref_path.hidden_field_for(target.chain[j - 1]),
                target.chain[j:],
                target.field,
                ref_path.text,
            )
    # 4. plain functional join
    return FunctionalJoin(target, target.chain, target.field)


def _validate_chain(db: Database, type_def, target: FieldRef) -> None:
    current = type_def
    for ref_name in target.chain:
        fdef = current.field_def(ref_name)
        if fdef.kind is not FieldKind.REF:
            raise PlanningError(f"{target.text!r}: {ref_name!r} is not a reference")
        current = db.registry.get(fdef.ref_type)
    current.field_def(target.field)


# ---------------------------------------------------------------------------
# access-path selection
# ---------------------------------------------------------------------------


def _plan_access(db: Database, set_name: str, where: Where | None):
    """Pick index scan vs file scan; returns (access, residual_filter).

    All indexable clauses on the *same* field combine into one bounded
    range scan (``x >= a and x <= b``); the full predicate is kept as a
    residual filter for safety.
    """
    if where is None:
        return FileScan(set_name), None
    obj_set = db.catalog.get_set(set_name)
    by_index: dict[str, list] = {}
    index_infos: dict[str, object] = {}
    for clause in where.clauses:
        ref = clause.ref
        if ref.set_name != set_name:
            raise PlanningError(
                f"where clause on {ref.set_name!r} in a query over {set_name!r}"
            )
        if clause.op == "!=":
            continue  # an index cannot narrow inequality
        if not ref.chain:
            fdef = obj_set.type_def.field_def(ref.field)
            if fdef.hidden:
                raise PlanningError(f"field {ref.field!r} is replication-internal")
            info = db.catalog.index_on_field(set_name, ref.field)
        else:
            # an associative lookup on a replicated path (Section 3.3.4)
            path = db.catalog.find_path(set_name, ref.chain, ref.field)
            info = None
            if path is not None and path.index_names:
                info = db.catalog.get_index(path.index_names[0])
        if info is not None:
            by_index.setdefault(info.name, []).append(clause)
            index_infos[info.name] = info
    for name, clauses in by_index.items():
        scan = _build_index_scan(index_infos[name], clauses)
        if scan is not None:
            if getattr(db, "cost_based_planning", False):
                from repro.query.costing import choose_access

                obj_set = db.catalog.get_set(set_name)
                if not choose_access(scan, obj_set.num_pages(), obj_set.count()):
                    continue  # a full scan is expected to be cheaper
            return scan, where
    # no usable index: scan and filter, but path-valued filters need either
    # replicated data or a per-object join (handled by the executor); a
    # totally unreplicated path filter is rejected to match the model.
    for clause in where.clauses:
        if clause.ref.chain and db.catalog.find_path(
            set_name, clause.ref.chain, clause.ref.field
        ) is None:
            raise PlanningError(
                f"filter {clause.text!r} needs either an index or a replicated path"
            )
    return FileScan(set_name), where


def _build_index_scan(info, clauses) -> IndexScan | None:
    eq = lo = hi = None
    lo_strict = hi_strict = False
    for clause in clauses:
        if clause.op == "=":
            eq = clause.value
        elif clause.op in (">", ">="):
            if lo is None or clause.value > lo:
                lo, lo_strict = clause.value, clause.op == ">"
        elif clause.op in ("<", "<="):
            if hi is None or clause.value < hi:
                hi, hi_strict = clause.value, clause.op == "<"
    if eq is not None:
        return IndexScan(info, eq=eq)
    if lo is None and hi is None:
        return None
    return IndexScan(info, lo=lo, lo_strict=lo_strict, hi=hi, hi_strict=hi_strict)
