"""Cost-based access-path selection (opt-in).

Section 7.1 notes that with field replication "optimization techniques
that use static analysis and the cost models described here can be
applied".  This module applies exactly that: the planner estimates an
index scan's page count with the same Yao expectation the paper's cost
model uses, compares it with the file scan, and picks the cheaper one.

Estimation uses only the index's *running statistics* (entry count and the
min/max of numeric keys, maintained on insert/delete) -- zero planning-time
I/O, so measured query costs stay clean.

The feature is **opt-in** (``Database(cost_based_planning=True)``): the
paper's model assumes every query drives through its index, so the default
planner does too, keeping the reproduction faithful.
"""

from __future__ import annotations

from repro.costmodel.sortedprobe import sorted_probe_pages
from repro.costmodel.yao import yao
from repro.objects.types import FieldKind
from repro.query.plan import IndexScan


def functional_join_pages(set_pages: int, set_count: int, probes: float,
                          join_mode: str = "batched") -> float:
    """Expected target-file pages one functional-join level touches.

    ``naive`` prices ``probes`` unordered OID dereferences with Yao's
    expectation; ``batched`` prices one sorted, deduplicated sweep with the
    :func:`~repro.costmodel.sortedprobe.sorted_probe_pages` bound.  Without
    schema-level fanout statistics the distinct-OID count is conservatively
    ``min(probes, set_count)``.
    """
    if set_pages <= 0 or set_count <= 0 or probes <= 0:
        return 0.0
    distinct = min(probes, set_count)
    if join_mode == "batched":
        return sorted_probe_pages(set_pages, distinct)
    objects_per_page = max(1.0, set_count / set_pages)
    return set_pages * yao(set_count, objects_per_page, distinct)


def estimate_qualifying_rows(scan: IndexScan) -> float:
    """Rows the scan will surface, from the index's running statistics."""
    index = scan.index.index
    count = max(index.stat_count, 1)
    if scan.eq is not None:
        # equality: assume near-unique keys, but never less than one row
        return max(1.0, count * 0.001)
    if index.field.kind not in (FieldKind.INT, FieldKind.FLOAT):
        return count * 0.1  # no interpolation for strings: a coarse default
    lo = scan.lo if scan.lo is not None else index.stat_min
    hi = scan.hi if scan.hi is not None else index.stat_max
    if index.stat_min is None or index.stat_max is None:
        return 0.0  # empty index
    span = index.stat_max - index.stat_min
    if span <= 0:
        return float(count)
    lo = max(lo, index.stat_min)
    hi = min(hi, index.stat_max)
    fraction = max(0.0, min(1.0, (hi - lo) / span))
    return fraction * count


def index_scan_cost(scan: IndexScan, set_pages: int, set_count: int) -> float:
    """Expected pages: tree descent + leaves + Yao-scattered data pages."""
    index = scan.index.index
    rows = estimate_qualifying_rows(scan)
    leaf_capacity = index.tree.leaf_capacity
    descent = index.tree.height
    leaves = max(0.0, rows / leaf_capacity - 1)
    if set_count <= 0 or set_pages <= 0:
        return descent + leaves
    if scan.index.clustered:
        data_pages = (rows / set_count) * set_pages
    else:
        objects_per_page = max(1.0, set_count / set_pages)
        data_pages = set_pages * yao(set_count, objects_per_page, min(rows, set_count))
    return descent + leaves + data_pages


def choose_access(scan: IndexScan, set_pages: int, set_count: int) -> bool:
    """True when the index scan is expected to beat the full file scan."""
    return index_scan_cost(scan, set_pages, set_count) < set_pages
