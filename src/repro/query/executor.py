"""Plan execution.

The executor turns plans into page accesses through the object store and
indexes, counting I/O via the shared statistics.  Retrieve results are
materialised into an *output file* ``T`` (the paper's C_generate/T term)
unless the plan says otherwise; the file is dropped once written -- its
I/O has already been charged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.objects.instance import StoredObject
from repro.query.plan import (
    DeletePlan,
    FileScan,
    FunctionalJoin,
    HiddenField,
    HiddenRefJump,
    IndexScan,
    LocalField,
    ReplicaFetch,
    RetrievePlan,
    UpdatePlan,
)
from repro.schema.database import Database
from repro.storage.oid import OID
from repro.storage.stats import IOSnapshot


@dataclass
class QueryResult:
    """Rows plus execution metadata."""

    columns: tuple[str, ...]
    rows: list[tuple]
    io: IOSnapshot
    plan: str

    def __len__(self) -> int:
        return len(self.rows)


_output_counter = [0]


def execute_retrieve(db: Database, plan: RetrievePlan) -> QueryResult:
    """Run a retrieve plan and return its rows."""
    before = db.stats.snapshot()
    for path_text in plan.refresh_paths:
        db.replication.refresh_path(db.catalog.get_path(path_text))
    rows: list[tuple] = []
    sort_keys: list = []
    group_keys: list[tuple] = []
    for oid, obj in _scan(db, plan.set_name, plan.access, plan.where):
        rows.append(tuple(_fetch(db, step, obj) for step in plan.steps))
        if plan.order_step is not None:
            sort_keys.append(_fetch(db, plan.order_step, obj))
        if plan.group_steps:
            group_keys.append(
                tuple(_fetch(db, step, obj) for step in plan.group_steps)
            )
    _record_joins(db, plan, len(rows))
    if plan.group_steps:
        rows = _fold_groups(plan, rows, group_keys)
        if plan.limit is not None:
            rows = rows[: plan.limit]
        columns = tuple(
            f"{fn}({step.target.text})" if fn else step.target.text
            for fn, step in zip(plan.aggregates, plan.steps)
        )
        if plan.materialize:
            _materialize(db, rows)
        io = db.stats.snapshot() - before
        return QueryResult(columns=columns, rows=rows, io=io, plan=plan.explain())
    if plan.order_step is not None:
        # sort rows by key; NULL keys sort last regardless of direction
        paired = sorted(
            zip(sort_keys, range(len(rows))),
            key=lambda kv: ((kv[0] is None), kv[0] if kv[0] is not None else 0),
            reverse=plan.descending,
        )
        if plan.descending:
            # reverse put the Nones first; push them back to the end
            paired = [kv for kv in paired if kv[0] is not None] + [
                kv for kv in paired if kv[0] is None
            ]
        rows = [rows[i] for __, i in paired]
    if plan.limit is not None:
        rows = rows[: plan.limit]
    if plan.aggregates:
        rows = [_fold_aggregates(plan.aggregates, rows)]
        columns = tuple(
            f"{fn}({step.target.text})" if fn else step.target.text
            for fn, step in zip(plan.aggregates, plan.steps)
        )
    else:
        columns = tuple(step.target.text for step in plan.steps)
    if plan.materialize:
        _materialize(db, rows)
    io = db.stats.snapshot() - before
    return QueryResult(columns=columns, rows=rows, io=io, plan=plan.explain())


def _fold_groups(plan: RetrievePlan, rows: list[tuple],
                 group_keys: list[tuple]) -> list[tuple]:
    """Bucket rows by their group-key tuples and fold each bucket."""
    buckets: dict[tuple, list[tuple]] = {}
    for key, row in zip(group_keys, rows):
        buckets.setdefault(key, []).append(row)
    out = []
    for key in sorted(buckets, key=lambda k: tuple((v is None, v) for v in k)):
        bucket = buckets[key]
        folded = _fold_aggregates(
            [fn or "min" for fn in plan.aggregates], bucket
        )
        # plain columns: take the (identical within the group) value
        row = tuple(
            folded[i] if fn else bucket[0][i]
            for i, fn in enumerate(plan.aggregates)
        )
        out.append(row)
    return out


def _fold_aggregates(aggregates, rows: list[tuple]) -> tuple:
    """Reduce the projected rows to one aggregate row (NULLs skipped,
    SQL-style: count counts non-null values; empty input yields count 0 and
    None for the value aggregates)."""
    out = []
    for i, fn in enumerate(aggregates):
        column = [row[i] for row in rows if row[i] is not None]
        if fn == "count":
            out.append(len(column))
        elif not column:
            out.append(None)
        elif fn == "sum":
            out.append(sum(column))
        elif fn == "avg":
            out.append(sum(column) / len(column))
        elif fn == "min":
            out.append(min(column))
        else:  # max
            out.append(max(column))
    return tuple(out)


def execute_update(db: Database, plan: UpdatePlan) -> QueryResult:
    """Run a replace plan; rows report the updated OIDs."""
    before = db.stats.snapshot()
    victims = [oid for oid, __ in _scan(db, plan.set_name, plan.access, plan.where)]
    changes = dict(plan.assignments)
    root = db.registry.root_name(db.catalog.get_set(plan.set_name).type_name)
    for fname in changes:
        db.monitor.record_update(root, fname, rows=len(victims))
    for oid in victims:
        db.update(plan.set_name, oid, changes, record=False)
    io = db.stats.snapshot() - before
    return QueryResult(("oid",), [(oid,) for oid in victims], io, plan.explain())


def execute_delete(db: Database, plan: DeletePlan) -> QueryResult:
    """Run a delete plan; rows report the deleted OIDs."""
    before = db.stats.snapshot()
    victims = [oid for oid, __ in _scan(db, plan.set_name, plan.access, plan.where)]
    for oid in victims:
        db.delete(plan.set_name, oid)
    io = db.stats.snapshot() - before
    return QueryResult(("oid",), [(oid,) for oid in victims], io, plan.explain())


def _record_joins(db: Database, plan: RetrievePlan, rows: int) -> None:
    """Feed the workload monitor: each functional-join step is a path
    replication could have served."""
    if rows == 0:
        return
    for step in plan.steps:
        if not isinstance(step, FunctionalJoin):
            continue
        obj_set = db.catalog.get_set(plan.set_name)
        current = obj_set.type_def
        for ref_name in step.chain:
            current = db.registry.get(current.field_def(ref_name).ref_type)
        db.monitor.record_join(
            plan.set_name, step.chain, step.field_name,
            db.registry.root_name(current.name), rows,
        )


# ---------------------------------------------------------------------------
# row sources
# ---------------------------------------------------------------------------


def _scan(db: Database, set_name: str, access, where):
    obj_set = db.catalog.get_set(set_name)
    if isinstance(access, FileScan):
        for oid, obj in obj_set.scan():
            if where is None or _matches(db, set_name, where, obj):
                yield oid, obj
        return
    assert isinstance(access, IndexScan)
    for oid in _index_oids(access):
        obj = obj_set.read(oid)
        if where is None or _matches(db, set_name, where, obj):
            yield oid, obj


def _index_oids(access: IndexScan):
    index = access.index.index
    if access.eq is not None:
        yield from index.lookup(access.eq)
        return
    for value, oid in index.range(
        lo=access.lo, hi=access.hi, include_hi=not access.hi_strict
    ):
        if access.lo_strict and value == access.lo:
            continue
        yield oid


def _matches(db: Database, set_name: str, where, obj: StoredObject) -> bool:
    def lookup(ref):
        if not ref.chain:
            return obj.values[ref.field]
        # path-valued filter: prefer replicated data, else functional join
        path = db.catalog.find_path(set_name, ref.chain, ref.field)
        if path is not None and path.hidden_fields:
            return obj.values[path.hidden_field_for(ref.field)]
        if path is not None and path.hidden_ref is not None:
            replica_ref = obj.values[path.hidden_ref]
            if replica_ref is None:
                return None
            replica = db.replication.replica_sets[path.path_id].read(replica_ref)
            return replica.values[ref.field]
        return _join_from(db, obj.ref(ref.chain[0]), ref.chain[1:], ref.field)

    return where.matches(lookup)


# ---------------------------------------------------------------------------
# fetch steps
# ---------------------------------------------------------------------------


def _fetch(db: Database, step, obj: StoredObject):
    if isinstance(step, LocalField):
        return obj.values[step.field_name]
    if isinstance(step, HiddenField):
        return obj.values[step.hidden_field]
    if isinstance(step, ReplicaFetch):
        ref = obj.values[step.hidden_ref]
        if ref is None:
            return None
        replica = db.replication.replica_sets[step.path_id].read(ref)
        return replica.values[step.field_name]
    if isinstance(step, HiddenRefJump):
        oid = obj.values[step.hidden_field]
        return _join_from(db, oid, step.remaining_chain, step.field_name)
    assert isinstance(step, FunctionalJoin)
    start = obj.ref(step.chain[0])
    return _join_from(db, start, step.chain[1:], step.field_name)


def _join_from(db: Database, oid: OID | None, chain, field_name: str):
    if oid is None:
        return None
    current = db.store.read(oid)
    for ref_name in chain:
        nxt = current.ref(ref_name)
        if nxt is None:
            return None
        current = db.store.read(nxt)
    return current.values[field_name]


# ---------------------------------------------------------------------------
# output file generation
# ---------------------------------------------------------------------------


def _materialize(db: Database, rows: list[tuple]) -> None:
    """Write the result into a fresh output file T, then drop it.

    Generating T is charged exactly like the model's C_generate/T term;
    the file itself is temporary.
    """
    _output_counter[0] += 1
    name = f"__output{_output_counter[0]}"
    heap = db.storage.create_file(name)
    for row in rows:
        record = "\x1f".join(_render(v) for v in row).encode("utf-8")
        heap.insert(record or b"\x00")
    db.storage.pool.flush_all()
    db.storage.drop_file(name)


def _render(value) -> str:
    if isinstance(value, OID):
        return f"@{value.file_id}:{value.page_no}.{value.slot}"
    return str(value)
