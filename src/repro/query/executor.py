"""Plan execution.

The executor turns plans into page accesses through the object store and
indexes, counting I/O via the shared statistics.  Retrieve results are
materialised into an *output file* ``T`` (the paper's C_generate/T term)
unless the plan says otherwise; the file is dropped once written -- its
I/O has already been charged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.objects.instance import StoredObject
from repro.query import batchjoin
from repro.query.analyze import Meter, OperatorStats
from repro.query.plan import (
    DeletePlan,
    FileScan,
    FunctionalJoin,
    HiddenField,
    HiddenRefJump,
    IndexScan,
    LocalField,
    ReplicaFetch,
    RetrievePlan,
    UpdatePlan,
)
from repro.costmodel.sortedprobe import sorted_probe_pages
from repro.schema.database import Database
from repro.storage.oid import OID
from repro.storage.stats import IOSnapshot
from repro.telemetry.repledger import (
    counterfactual_hop_pages,
    counterfactual_join_pages,
)


@dataclass
class QueryResult:
    """Rows plus execution metadata."""

    columns: tuple[str, ...]
    rows: list[tuple]
    io: IOSnapshot
    plan: str
    #: per-operator execution statistics (EXPLAIN ANALYZE); None unless the
    #: plan was executed with ``analyze=True``.
    operators: tuple[OperatorStats, ...] | None = None
    #: result-cache disposition: "hit" | "miss" | "bypass", or None when
    #: the cache did not apply (cache off, or a write statement).
    cache: str | None = None

    def __len__(self) -> int:
        return len(self.rows)


_output_counter = [0]

_STEP_KINDS = {
    LocalField: "project",
    HiddenField: "replicated_read",
    ReplicaFetch: "replica_read",
    HiddenRefJump: "jump",
    FunctionalJoin: "functional_join",
}

_DONE = object()


def _step_kind(step) -> str:
    return _STEP_KINDS[type(step)]


def execute_retrieve(db: Database, plan: RetrievePlan,
                     analyze: bool = False) -> QueryResult:
    """Run a retrieve plan and return its rows.

    With ``analyze=True`` the result additionally carries a per-operator
    I/O breakdown whose top level sums to the query's total I/O.
    """
    before = db.stats.snapshot()
    meter = Meter(db.stats) if analyze else None
    ops: list[OperatorStats] = []

    if plan.refresh_paths:
        refresh_op = None
        if analyze:
            refresh_op = OperatorStats("refresh", ", ".join(plan.refresh_paths))
            ops.append(refresh_op)
            mark = meter.begin()
        for path_text in plan.refresh_paths:
            refreshed = db.replication.refresh_path(db.catalog.get_path(path_text))
            if refresh_op is not None:
                refresh_op.rows += refreshed
        if analyze:
            meter.end(mark, refresh_op)

    rows: list[tuple] = []
    sort_keys: list = []
    group_keys: list[tuple] = []
    if plan.join_mode == "batched":
        _run_batched(db, plan, meter, ops, rows, sort_keys, group_keys)
    elif not analyze:
        for __oid, obj in _scan(db, plan.set_name, plan.access, plan.where):
            rows.append(tuple(_fetch(db, step, obj) for step in plan.steps))
            if plan.order_step is not None:
                sort_keys.append(_fetch(db, plan.order_step, obj))
            if plan.group_steps:
                group_keys.append(
                    tuple(_fetch(db, step, obj) for step in plan.group_steps)
                )
    else:
        _run_analyzed_scan(db, plan, meter, ops, rows, sort_keys, group_keys)
    _record_joins(db, plan, len(rows))
    _record_replicated_reads(db, plan, len(rows))
    if plan.group_steps:
        rows = _fold_groups(plan, rows, group_keys)
        if plan.limit is not None:
            rows = rows[: plan.limit]
    else:
        if plan.order_step is not None:
            # sort rows by key; NULL keys sort last regardless of direction
            paired = sorted(
                zip(sort_keys, range(len(rows))),
                key=lambda kv: ((kv[0] is None), kv[0] if kv[0] is not None else 0),
                reverse=plan.descending,
            )
            if plan.descending:
                # reverse put the Nones first; push them back to the end
                paired = [kv for kv in paired if kv[0] is not None] + [
                    kv for kv in paired if kv[0] is None
                ]
            rows = [rows[i] for __, i in paired]
        if plan.limit is not None:
            rows = rows[: plan.limit]
        if plan.aggregates:
            rows = [_fold_aggregates(plan.aggregates, rows)]
    if plan.aggregates:
        columns = tuple(
            f"{fn}({step.target.text})" if fn else step.target.text
            for fn, step in zip(plan.aggregates, plan.steps)
        )
    else:
        columns = tuple(step.target.text for step in plan.steps)
    if plan.materialize:
        if analyze:
            mat_op = OperatorStats("materialize")
            ops.append(mat_op)
            mark = meter.begin()
            _materialize(db, rows)
            meter.end(mark, mat_op)
            mat_op.rows = len(rows)
        else:
            _materialize(db, rows)
    io = db.stats.snapshot() - before
    return QueryResult(columns=columns, rows=rows, io=io, plan=plan.explain(),
                       operators=tuple(ops) if analyze else None)


def _run_batched(db: Database, plan: RetrievePlan, meter: Meter | None,
                 ops: list[OperatorStats], rows: list[tuple],
                 sort_keys: list, group_keys: list[tuple]) -> None:
    """The set-oriented row loop (Database.join_mode == "batched").

    One implementation serves both plain and analyzed execution (``meter``
    is None when not analyzing) so EXPLAIN ANALYZE measures exactly the
    query it reports on.  Rows drain from the access path in batches;
    every OID-dereferencing step resolves per batch through sort-and-dedupe
    sweeps (see :mod:`repro.query.batchjoin`) instead of per-row probes.
    """
    analyze = meter is not None
    scan_op = order_op = None
    step_ops = group_ops = None
    if analyze:
        scan_op = OperatorStats("scan", plan.access.explain())
        step_ops = [OperatorStats(_step_kind(step), step.explain())
                    for step in plan.steps]
        ops.append(scan_op)
        ops.extend(step_ops)
        if plan.order_step is not None:
            order_op = OperatorStats("sort_key", plan.order_step.explain())
            ops.append(order_op)
        if plan.group_steps:
            group_ops = [OperatorStats("group_key", s.explain())
                         for s in plan.group_steps]
            ops.extend(group_ops)

    def resolve(step, batch, op):
        mark = meter.begin() if analyze else None
        values = batchjoin.resolve_step_batch(db, step, batch, meter, op)
        if analyze:
            meter.end(mark, op)
            op.rows += len(batch)
        return values

    for batch in batchjoin.iter_batches(db, plan, meter, scan_op):
        columns = [
            resolve(step, batch, step_ops[idx] if analyze else None)
            for idx, step in enumerate(plan.steps)
        ]
        for i in range(len(batch)):
            rows.append(tuple(col[i] for col in columns))
        if plan.order_step is not None:
            sort_keys.extend(resolve(plan.order_step, batch, order_op))
        if plan.group_steps:
            key_cols = [
                resolve(step, batch, group_ops[idx] if analyze else None)
                for idx, step in enumerate(plan.group_steps)
            ]
            for i in range(len(batch)):
                group_keys.append(tuple(col[i] for col in key_cols))


def _run_analyzed_scan(db: Database, plan: RetrievePlan, meter: Meter,
                       ops: list[OperatorStats], rows: list[tuple],
                       sort_keys: list, group_keys: list[tuple]) -> None:
    """The instrumented row loop: every page of I/O lands in an operator."""
    scan_op = OperatorStats("scan", plan.access.explain())
    step_ops = [OperatorStats(_step_kind(step), step.explain()) for step in plan.steps]
    ops.append(scan_op)
    ops.extend(step_ops)
    order_op = None
    if plan.order_step is not None:
        order_op = OperatorStats("sort_key", plan.order_step.explain())
        ops.append(order_op)
    group_ops = None
    if plan.group_steps:
        group_ops = [OperatorStats("group_key", s.explain()) for s in plan.group_steps]
        ops.extend(group_ops)
    iterator = iter(_scan(db, plan.set_name, plan.access, plan.where))
    while True:
        mark = meter.begin()
        item = next(iterator, _DONE)
        meter.end(mark, scan_op)
        if item is _DONE:
            break
        __oid, obj = item
        scan_op.rows += 1
        row = []
        for step, op in zip(plan.steps, step_ops):
            mark = meter.begin()
            row.append(_fetch(db, step, obj, meter, op))
            meter.end(mark, op)
            op.rows += 1
        rows.append(tuple(row))
        if order_op is not None:
            mark = meter.begin()
            sort_keys.append(_fetch(db, plan.order_step, obj, meter, order_op))
            meter.end(mark, order_op)
            order_op.rows += 1
        if group_ops is not None:
            key = []
            for step, op in zip(plan.group_steps, group_ops):
                mark = meter.begin()
                key.append(_fetch(db, step, obj, meter, op))
                meter.end(mark, op)
                op.rows += 1
            group_keys.append(tuple(key))


def _fold_groups(plan: RetrievePlan, rows: list[tuple],
                 group_keys: list[tuple]) -> list[tuple]:
    """Bucket rows by their group-key tuples and fold each bucket."""
    buckets: dict[tuple, list[tuple]] = {}
    for key, row in zip(group_keys, rows):
        buckets.setdefault(key, []).append(row)
    out = []
    for key in sorted(buckets, key=lambda k: tuple((v is None, v) for v in k)):
        bucket = buckets[key]
        folded = _fold_aggregates(
            [fn or "min" for fn in plan.aggregates], bucket
        )
        # plain columns: take the (identical within the group) value
        row = tuple(
            folded[i] if fn else bucket[0][i]
            for i, fn in enumerate(plan.aggregates)
        )
        out.append(row)
    return out


def _fold_aggregates(aggregates, rows: list[tuple]) -> tuple:
    """Reduce the projected rows to one aggregate row (NULLs skipped,
    SQL-style: count counts non-null values; empty input yields count 0 and
    None for the value aggregates)."""
    out = []
    for i, fn in enumerate(aggregates):
        column = [row[i] for row in rows if row[i] is not None]
        if fn == "count":
            out.append(len(column))
        elif not column:
            out.append(None)
        elif fn == "sum":
            out.append(sum(column))
        elif fn == "avg":
            out.append(sum(column) / len(column))
        elif fn == "min":
            out.append(min(column))
        else:  # max
            out.append(max(column))
    return tuple(out)


def execute_update(db: Database, plan: UpdatePlan,
                   analyze: bool = False) -> QueryResult:
    """Run a replace plan; rows report the updated OIDs."""
    before = db.stats.snapshot()
    victims, ops, meter = _collect_victims(db, plan, analyze)
    changes = dict(plan.assignments)
    root = db.registry.root_name(db.catalog.get_set(plan.set_name).type_name)
    for fname in changes:
        db.monitor.record_update(root, fname, rows=len(victims))
    if analyze:
        update_op = OperatorStats(
            "update", ", ".join(f"{f}={v!r}" for f, v in plan.assignments))
        ops.append(update_op)
        for oid in victims:
            mark = meter.begin()
            db.update(plan.set_name, oid, changes, record=False)
            meter.end(mark, update_op)
            update_op.rows += 1
    else:
        for oid in victims:
            db.update(plan.set_name, oid, changes, record=False)
    io = db.stats.snapshot() - before
    return QueryResult(("oid",), [(oid,) for oid in victims], io, plan.explain(),
                       operators=tuple(ops) if analyze else None)


def execute_delete(db: Database, plan: DeletePlan,
                   analyze: bool = False) -> QueryResult:
    """Run a delete plan; rows report the deleted OIDs."""
    before = db.stats.snapshot()
    victims, ops, meter = _collect_victims(db, plan, analyze)
    if analyze:
        delete_op = OperatorStats("delete", plan.set_name)
        ops.append(delete_op)
        for oid in victims:
            mark = meter.begin()
            db.delete(plan.set_name, oid)
            meter.end(mark, delete_op)
            delete_op.rows += 1
    else:
        for oid in victims:
            db.delete(plan.set_name, oid)
    io = db.stats.snapshot() - before
    return QueryResult(("oid",), [(oid,) for oid in victims], io, plan.explain(),
                       operators=tuple(ops) if analyze else None)


def _collect_victims(db: Database, plan, analyze: bool):
    """Scan for the target OIDs, metering the scan when analyzing."""
    if not analyze:
        victims = [oid for oid, __ in
                   _scan(db, plan.set_name, plan.access, plan.where)]
        return victims, [], None
    meter = Meter(db.stats)
    scan_op = OperatorStats("scan", plan.access.explain())
    victims = []
    iterator = iter(_scan(db, plan.set_name, plan.access, plan.where))
    while True:
        mark = meter.begin()
        item = next(iterator, _DONE)
        meter.end(mark, scan_op)
        if item is _DONE:
            break
        victims.append(item[0])
        scan_op.rows += 1
    return victims, [scan_op], meter


def _record_replicated_reads(db: Database, plan: RetrievePlan,
                             rows: int) -> None:
    """Feed the replication ledger: every read served from a replicated
    field is credited with the functional join it avoided, priced by the
    sorted-probe counterfactual.  Pure arithmetic over in-memory page
    counts -- no I/O of its own.
    """
    ledger = db.telemetry.repledger
    if rows == 0 or not ledger.enabled:
        return
    for step in plan.steps:
        _credit_step(db, ledger, step, rows)
    if plan.where is not None:
        for clause in plan.where.clauses:
            ref = clause.ref
            if not ref.chain:
                continue
            path = db.catalog.find_path(plan.set_name, ref.chain, ref.field)
            if path is None:
                continue
            # rows (the result count) is a conservative lower bound on how
            # many scanned objects had the predicate answered from the
            # replica; the true count is the scan cardinality.
            if path.hidden_fields:
                ledger.credit(path.text,
                              counterfactual_join_pages(db, path, rows),
                              rows=rows)
            elif path.hidden_ref is not None:
                _credit_replica_fetch(db, ledger, path, rows)


def _credit_step(db: Database, ledger, step, rows: int) -> None:
    if isinstance(step, HiddenField):
        path = db.catalog.get_path(step.path_text)
        ledger.credit(path.text, counterfactual_join_pages(db, path, rows),
                      rows=rows)
    elif isinstance(step, ReplicaFetch):
        path = db.catalog.get_path(step.path_text)
        _credit_replica_fetch(db, ledger, path, rows)
    elif isinstance(step, HiddenRefJump):
        # The jump avoids the intermediate hops of the prefix chain but
        # still reads the prefix-terminal object through the stored OID,
        # so that final hop earns no credit.
        path = db.catalog.get_path(step.path_text)
        avoided = 0.0
        for type_name in path.resolved.type_names[1:-1]:
            avoided += counterfactual_hop_pages(db, type_name, rows)
        ledger.credit(path.text, avoided, rows=rows)


def _credit_replica_fetch(db: Database, ledger, path, rows: int) -> None:
    """A separate-strategy replica read: the avoided join, minus what the
    replica sweep itself costs (floored at zero)."""
    replica_set = db.replication.replica_sets.get(path.path_id)
    sweep = sorted_probe_pages(replica_set.num_pages(), rows) \
        if replica_set is not None else 0.0
    avoided = counterfactual_join_pages(db, path, rows)
    ledger.credit(path.text, max(0.0, avoided - sweep), rows=rows)


def _record_joins(db: Database, plan: RetrievePlan, rows: int) -> None:
    """Feed the workload monitor: each functional-join step is a path
    replication could have served."""
    if rows == 0:
        return
    for step in plan.steps:
        if not isinstance(step, FunctionalJoin):
            continue
        obj_set = db.catalog.get_set(plan.set_name)
        current = obj_set.type_def
        for ref_name in step.chain:
            current = db.registry.get(current.field_def(ref_name).ref_type)
        db.monitor.record_join(
            plan.set_name, step.chain, step.field_name,
            db.registry.root_name(current.name), rows,
        )


# ---------------------------------------------------------------------------
# row sources
# ---------------------------------------------------------------------------


def _scan(db: Database, set_name: str, access, where):
    obj_set = db.catalog.get_set(set_name)
    if isinstance(access, FileScan):
        for oid, obj in obj_set.scan():
            if where is None or _matches(db, set_name, where, obj):
                yield oid, obj
        return
    assert isinstance(access, IndexScan)
    for oid in _index_oids(access):
        obj = obj_set.read(oid)
        if where is None or _matches(db, set_name, where, obj):
            yield oid, obj


def _index_oids(access: IndexScan):
    index = access.index.index
    if access.eq is not None:
        yield from index.lookup(access.eq)
        return
    for value, oid in index.range(
        lo=access.lo, hi=access.hi, include_hi=not access.hi_strict
    ):
        if access.lo_strict and value == access.lo:
            continue
        yield oid


def _matches(db: Database, set_name: str, where, obj: StoredObject) -> bool:
    def lookup(ref):
        if not ref.chain:
            return obj.values[ref.field]
        # path-valued filter: prefer replicated data, else functional join
        path = db.catalog.find_path(set_name, ref.chain, ref.field)
        if path is not None and path.hidden_fields:
            return obj.values[path.hidden_field_for(ref.field)]
        if path is not None and path.hidden_ref is not None:
            replica_ref = obj.values[path.hidden_ref]
            if replica_ref is None:
                return None
            replica = db.replication.replica_sets[path.path_id].read(replica_ref)
            return replica.values[ref.field]
        return _join_from(db, obj.ref(ref.chain[0]), ref.chain[1:], ref.field)

    return where.matches(lookup)


# ---------------------------------------------------------------------------
# fetch steps
# ---------------------------------------------------------------------------


def _fetch(db: Database, step, obj: StoredObject, meter: Meter | None = None,
           op: OperatorStats | None = None):
    if isinstance(step, LocalField):
        return obj.values[step.field_name]
    if isinstance(step, HiddenField):
        return obj.values[step.hidden_field]
    if isinstance(step, ReplicaFetch):
        ref = obj.values[step.hidden_ref]
        if ref is None:
            if op is not None:
                op.nulls += 1
            return None
        replica = db.replication.replica_sets[step.path_id].read(ref)
        return replica.values[step.field_name]
    if isinstance(step, HiddenRefJump):
        oid = obj.values[step.hidden_field]
        return _join_from(db, oid, step.remaining_chain, step.field_name,
                          meter, op, first_hop="jump")
    assert isinstance(step, FunctionalJoin)
    start = obj.ref(step.chain[0])
    return _join_from(db, start, step.chain[1:], step.field_name,
                      meter, op, first_hop=step.chain[0])


def _join_from(db: Database, oid: OID | None, chain, field_name: str,
               meter: Meter | None = None, op: OperatorStats | None = None,
               first_hop: str = ""):
    if oid is None:
        # a NULL start ref is a null-hit on the join operator itself: no
        # hop was taken, so no hop child may appear in the operator tree
        if op is not None:
            op.nulls += 1
        return None
    if meter is not None and op is not None:
        return _join_from_metered(db, oid, chain, field_name, meter, op, first_hop)
    current = db.store.read(oid)
    for ref_name in chain:
        nxt = current.ref(ref_name)
        if nxt is None:
            return None
        current = db.store.read(nxt)
    return current.values[field_name]


def _join_from_metered(db: Database, oid: OID, chain, field_name: str,
                       meter: Meter, op: OperatorStats, first_hop: str):
    """Functional join with per-hop I/O attribution (hops are children of
    the join operator; their I/O is also contained in the parent's)."""
    hop = op.child(f"hop {first_hop}" if first_hop else "hop")
    mark = meter.begin()
    current = db.store.read(oid)
    meter.end(mark, hop)
    hop.rows += 1
    for ref_name in chain:
        nxt = current.ref(ref_name)
        if nxt is None:
            # mid-chain NULL: record the null-hit and stop -- the next hop
            # was never taken, so it must not appear as a zero-row child
            op.nulls += 1
            return None
        hop = op.child(f"hop {ref_name}")
        mark = meter.begin()
        current = db.store.read(nxt)
        meter.end(mark, hop)
        hop.rows += 1
    return current.values[field_name]


# ---------------------------------------------------------------------------
# output file generation
# ---------------------------------------------------------------------------


def _materialize(db: Database, rows: list[tuple]) -> None:
    """Write the result into a fresh output file T, then drop it.

    Generating T is charged exactly like the model's C_generate/T term;
    the file itself is temporary.
    """
    _output_counter[0] += 1
    name = f"__output{_output_counter[0]}"
    heap = db.storage.create_file(name)
    for row in rows:
        record = "\x1f".join(_render(v) for v in row).encode("utf-8")
        heap.insert(record or b"\x00")
    db.storage.pool.flush_all()
    db.storage.drop_file(name)


def _render(value) -> str:
    if isinstance(value, OID):
        return f"@{value.file_id}:{value.page_no}.{value.slot}"
    return str(value)
