"""Glue: parse -> plan -> execute.

This is also where query tracing hooks in: when the database's tracer is
enabled, every statement produces a ``query`` span with ``parse``,
``plan``, and ``execute`` children, and the executed plan's per-operator
statistics (tracing forces ``analyze=True``) are attached as operator
spans under ``execute``.
"""

from __future__ import annotations

import time

from repro.query.executor import (
    QueryResult,
    execute_delete,
    execute_retrieve,
    execute_update,
)
from repro.query.language import Delete, Replace, Retrieve, parse_statement
from repro.query.planner import plan_delete, plan_replace, plan_retrieve
from repro.schema.database import Database


def _plan_statement(db: Database, stmt, materialize: bool):
    """Return ``(plan, executor_fn)`` for a parsed statement."""
    if isinstance(stmt, Retrieve):
        return plan_retrieve(db, stmt, materialize=materialize), execute_retrieve
    if isinstance(stmt, Replace):
        return plan_replace(db, stmt), execute_update
    if isinstance(stmt, Delete):
        return plan_delete(db, stmt), execute_delete
    raise TypeError(f"not a statement: {stmt!r}")


def execute_statement(db: Database, stmt, materialize: bool = True,
                      analyze: bool = False,
                      read_only: bool = False) -> QueryResult:
    """Plan and run an already-parsed statement.

    The whole statement runs in one WAL statement scope, so a multi-row
    ``replace`` or ``delete`` is atomic as a unit (each row's ``db.update``
    / ``db.delete`` joins the enclosing scope); pure retrieves leave no
    trace in the log.

    ``read_only=True`` (the served session passes it for a retrieve whose
    granted footprint is purely shared, i.e. provably WAL-free) skips the
    WAL statement scope entirely: no BEGIN append, no commit, no log
    mutex traffic -- reads scale without touching the log tail.  The
    crash-readiness check still applies.
    """
    tracer = db.telemetry.tracer
    if read_only:
        db.recovery.check_ready()
        if not tracer.enabled:
            plan, run = _plan_statement(db, stmt, materialize)
            result = run(db, plan, analyze=analyze)
        else:
            with tracer.span("plan"):
                plan, run = _plan_statement(db, stmt, materialize)
            with tracer.span("execute", plan=plan.explain()) as span:
                result = run(db, plan, analyze=True)
                span.set("rows", len(result.rows))
                _emit_operator_spans(tracer, result.operators, span)
        metrics = db.telemetry.metrics
        metrics.observe("query_io_pages", result.io.total_io)
        metrics.observe("query_rows", len(result.rows))
        return result
    with db.recovery.statement(type(stmt).__name__.lower()):
        if not tracer.enabled:
            plan, run = _plan_statement(db, stmt, materialize)
            result = run(db, plan, analyze=analyze)
        else:
            with tracer.span("plan"):
                plan, run = _plan_statement(db, stmt, materialize)
            with tracer.span("execute", plan=plan.explain()) as span:
                result = run(db, plan, analyze=True)
                span.set("rows", len(result.rows))
                _emit_operator_spans(tracer, result.operators, span)
    metrics = db.telemetry.metrics
    metrics.observe("query_io_pages", result.io.total_io)
    metrics.observe("query_rows", len(result.rows))
    return result


def _emit_operator_spans(tracer, operators, parent) -> None:
    """Attach executed-operator statistics as retrospective spans."""
    if not operators:
        return
    for op in operators:
        span = tracer.record(
            op.name, {"detail": op.detail, "rows": op.rows}, op.io_dict(),
            parent=parent,
        )
        _emit_operator_spans(tracer, op.children, span)


def serve_cached(entry, analyze: bool = False) -> QueryResult:
    """A :class:`QueryResult` from a live cache entry: the stored rows,
    a zero I/O snapshot (nothing moved), and -- under ANALYZE -- a single
    synthetic ``cache_hit`` operator instead of an executed tree."""
    from repro.query.analyze import OperatorStats
    from repro.storage.stats import IOSnapshot

    operators = None
    if analyze:
        operators = (OperatorStats("cache_hit", f"[{entry.fingerprint}]",
                                   rows=len(entry.rows)),)
    return QueryResult(columns=entry.columns, rows=list(entry.rows),
                       io=IOSnapshot(), plan=entry.plan,
                       operators=operators, cache="hit")


def cache_fill(db: Database, stmt, text: str, result: QueryResult) -> str:
    """Fill the result cache after a retrieve executed; returns the
    statement's cache disposition ("miss" when the entry was stored or at
    least counted, "bypass" when the statement is uncacheable).

    Cacheability is decided by the same footprint computation the lock
    manager uses: a retrieve whose footprint has exclusive resources
    reads a lazily propagated path (the read drains the pending queue --
    a write), so its result may not be served later without that drain.
    """
    from repro.cache import retrieve_footprint

    resources, cacheable = retrieve_footprint(db, stmt)
    if not cacheable:
        db.resultcache.bypass("lazy_refresh")
        return "bypass"
    db.resultcache.miss(text)
    db.resultcache.fill(text, result.columns, result.rows, result.plan,
                        resources)
    return "miss"


def execute_text(db: Database, text: str, materialize: bool = True,
                 analyze: bool = False) -> QueryResult:
    """Parse and run one statement of query-language text.

    This is the *embedded* entry point (shell, scripts, tests); a served
    session goes through :func:`execute_statement` instead and records
    into the slow-query log and the statement fingerprint aggregator from
    the session layer, where lock waits are known -- so no statement is
    ever recorded twice.

    When the database's result cache is enabled, a retrieve whose exact
    (whitespace-collapsed) text has a live entry is served straight from
    it -- no parse, no plan, no page I/O; executed retrieves fill the
    cache with their footprint so later writes can invalidate precisely.
    """
    tracer = db.telemetry.tracer
    cache = db.resultcache
    collapsed = " ".join(text.split())
    want_cache = (cache.enabled
                  and collapsed.split(None, 1)[:1] == ["retrieve"])
    if want_cache:
        entry = cache.get(collapsed)
        if entry is not None and cache.hit(entry) is not None:
            result = serve_cached(entry, analyze=analyze)
            duration_ms = 0.0
            fp = db.telemetry.statements.observe(
                collapsed, duration_ms, io=result.io,
                rows=len(result.rows))
            db.telemetry.slowlog.observe(
                statement=collapsed, duration_ms=duration_ms,
                plan=result.plan, rows=len(result.rows),
                fingerprint=fp or "", cache="hit")
            return result
    wal_bytes = db.telemetry.metrics.value("wal_bytes_total")
    waits = db.telemetry.waits
    wait_ctx = waits.begin_statement(0, "embedded", collapsed)
    started = time.perf_counter()
    try:
        if not tracer.enabled:
            stmt = parse_statement(text)
            result = execute_statement(db, stmt,
                                       materialize=materialize,
                                       analyze=analyze)
        else:
            with tracer.span("query",
                             statement=" ".join(text.split())) as span:
                with tracer.span("parse"):
                    stmt = parse_statement(text)
                result = execute_statement(db, stmt, materialize=materialize,
                                           analyze=analyze)
                span.set("plan", result.plan)
                span.set("rows", len(result.rows))
        if want_cache and isinstance(stmt, Retrieve):
            result.cache = cache_fill(db, stmt, collapsed, result)
    except Exception as exc:
        duration_ms = (time.perf_counter() - started) * 1000.0
        breakdown = waits.finish_statement(wait_ctx, duration_ms / 1000.0)
        fp = db.telemetry.statements.observe(
            " ".join(text.split()), duration_ms,
            outcome=type(exc).__name__, waits=breakdown)
        db.telemetry.slowlog.observe(
            statement=" ".join(text.split()),
            duration_ms=duration_ms,
            outcome=type(exc).__name__,
            fingerprint=fp or "", waits=breakdown)
        raise
    duration_ms = (time.perf_counter() - started) * 1000.0
    breakdown = waits.finish_statement(wait_ctx, duration_ms / 1000.0)
    wal_bytes = db.telemetry.metrics.value("wal_bytes_total") - wal_bytes
    fp = db.telemetry.statements.observe(
        " ".join(text.split()), duration_ms, io=result.io,
        rows=len(result.rows), wal_bytes=wal_bytes, waits=breakdown)
    db.telemetry.slowlog.observe(
        statement=" ".join(text.split()),
        duration_ms=duration_ms,
        plan=result.plan,
        io={"reads": result.io.physical_reads,
            "writes": result.io.physical_writes,
            "total": result.io.total_io},
        rows=len(result.rows),
        fingerprint=fp or "",
        cache=result.cache or "",
        waits=breakdown)
    return result


def explain_text(db: Database, text: str) -> str:
    """Plan (but do not run) a statement; returns the plan description."""
    stmt = parse_statement(text)
    plan, __ = _plan_statement(db, stmt, materialize=True)
    return plan.explain()
