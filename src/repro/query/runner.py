"""Glue: parse -> plan -> execute.

This is also where query tracing hooks in: when the database's tracer is
enabled, every statement produces a ``query`` span with ``parse``,
``plan``, and ``execute`` children, and the executed plan's per-operator
statistics (tracing forces ``analyze=True``) are attached as operator
spans under ``execute``.
"""

from __future__ import annotations

import time

from repro.query.executor import (
    QueryResult,
    execute_delete,
    execute_retrieve,
    execute_update,
)
from repro.query.language import Delete, Replace, Retrieve, parse_statement
from repro.query.planner import plan_delete, plan_replace, plan_retrieve
from repro.schema.database import Database


def _plan_statement(db: Database, stmt, materialize: bool):
    """Return ``(plan, executor_fn)`` for a parsed statement."""
    if isinstance(stmt, Retrieve):
        return plan_retrieve(db, stmt, materialize=materialize), execute_retrieve
    if isinstance(stmt, Replace):
        return plan_replace(db, stmt), execute_update
    if isinstance(stmt, Delete):
        return plan_delete(db, stmt), execute_delete
    raise TypeError(f"not a statement: {stmt!r}")


def execute_statement(db: Database, stmt, materialize: bool = True,
                      analyze: bool = False) -> QueryResult:
    """Plan and run an already-parsed statement.

    The whole statement runs in one WAL statement scope, so a multi-row
    ``replace`` or ``delete`` is atomic as a unit (each row's ``db.update``
    / ``db.delete`` joins the enclosing scope); pure retrieves leave no
    trace in the log.
    """
    tracer = db.telemetry.tracer
    with db.recovery.statement(type(stmt).__name__.lower()):
        if not tracer.enabled:
            plan, run = _plan_statement(db, stmt, materialize)
            result = run(db, plan, analyze=analyze)
        else:
            with tracer.span("plan"):
                plan, run = _plan_statement(db, stmt, materialize)
            with tracer.span("execute", plan=plan.explain()) as span:
                result = run(db, plan, analyze=True)
                span.set("rows", len(result.rows))
                _emit_operator_spans(tracer, result.operators, span)
    metrics = db.telemetry.metrics
    metrics.observe("query_io_pages", result.io.total_io)
    metrics.observe("query_rows", len(result.rows))
    return result


def _emit_operator_spans(tracer, operators, parent) -> None:
    """Attach executed-operator statistics as retrospective spans."""
    if not operators:
        return
    for op in operators:
        span = tracer.record(
            op.name, {"detail": op.detail, "rows": op.rows}, op.io_dict(),
            parent=parent,
        )
        _emit_operator_spans(tracer, op.children, span)


def execute_text(db: Database, text: str, materialize: bool = True,
                 analyze: bool = False) -> QueryResult:
    """Parse and run one statement of query-language text.

    This is the *embedded* entry point (shell, scripts, tests); a served
    session goes through :func:`execute_statement` instead and records
    into the slow-query log and the statement fingerprint aggregator from
    the session layer, where lock waits are known -- so no statement is
    ever recorded twice.
    """
    tracer = db.telemetry.tracer
    wal_bytes = db.telemetry.metrics.value("wal_bytes_total")
    started = time.perf_counter()
    try:
        if not tracer.enabled:
            result = execute_statement(db, parse_statement(text),
                                       materialize=materialize,
                                       analyze=analyze)
        else:
            with tracer.span("query",
                             statement=" ".join(text.split())) as span:
                with tracer.span("parse"):
                    stmt = parse_statement(text)
                result = execute_statement(db, stmt, materialize=materialize,
                                           analyze=analyze)
                span.set("plan", result.plan)
                span.set("rows", len(result.rows))
    except Exception as exc:
        duration_ms = (time.perf_counter() - started) * 1000.0
        fp = db.telemetry.statements.observe(
            " ".join(text.split()), duration_ms,
            outcome=type(exc).__name__)
        db.telemetry.slowlog.observe(
            statement=" ".join(text.split()),
            duration_ms=duration_ms,
            outcome=type(exc).__name__,
            fingerprint=fp or "")
        raise
    duration_ms = (time.perf_counter() - started) * 1000.0
    wal_bytes = db.telemetry.metrics.value("wal_bytes_total") - wal_bytes
    fp = db.telemetry.statements.observe(
        " ".join(text.split()), duration_ms, io=result.io,
        rows=len(result.rows), wal_bytes=wal_bytes)
    db.telemetry.slowlog.observe(
        statement=" ".join(text.split()),
        duration_ms=duration_ms,
        plan=result.plan,
        io={"reads": result.io.physical_reads,
            "writes": result.io.physical_writes,
            "total": result.io.total_io},
        rows=len(result.rows),
        fingerprint=fp or "")
    return result


def explain_text(db: Database, text: str) -> str:
    """Plan (but do not run) a statement; returns the plan description."""
    stmt = parse_statement(text)
    plan, __ = _plan_statement(db, stmt, materialize=True)
    return plan.explain()
