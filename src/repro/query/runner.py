"""Glue: parse -> plan -> execute."""

from __future__ import annotations

from repro.query.executor import (
    QueryResult,
    execute_delete,
    execute_retrieve,
    execute_update,
)
from repro.query.language import Delete, Replace, Retrieve, parse_statement
from repro.query.planner import plan_delete, plan_replace, plan_retrieve
from repro.schema.database import Database


def execute_statement(db: Database, stmt, materialize: bool = True) -> QueryResult:
    """Plan and run an already-parsed statement."""
    if isinstance(stmt, Retrieve):
        return execute_retrieve(db, plan_retrieve(db, stmt, materialize=materialize))
    if isinstance(stmt, Replace):
        return execute_update(db, plan_replace(db, stmt))
    if isinstance(stmt, Delete):
        return execute_delete(db, plan_delete(db, stmt))
    raise TypeError(f"not a statement: {stmt!r}")


def execute_text(db: Database, text: str, materialize: bool = True) -> QueryResult:
    """Parse and run one statement of query-language text."""
    return execute_statement(db, parse_statement(text), materialize=materialize)


def explain_text(db: Database, text: str) -> str:
    """Plan (but do not run) a statement; returns the plan description."""
    stmt = parse_statement(text)
    if isinstance(stmt, Retrieve):
        return plan_retrieve(db, stmt).explain()
    if isinstance(stmt, Replace):
        return plan_replace(db, stmt).explain()
    if isinstance(stmt, Delete):
        return plan_delete(db, stmt).explain()
    raise TypeError(f"not a statement: {stmt!r}")
