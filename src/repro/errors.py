"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Subclasses are grouped by the
layer that raises them (storage, objects, schema, replication, query, cost
model) which keeps ``except`` clauses precise without importing the guts of
each layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# --------------------------------------------------------------------------
# storage layer
# --------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for storage-engine errors."""


class PageFullError(StorageError):
    """A record did not fit in the target page."""


class RecordNotFoundError(StorageError):
    """A (page, slot) address does not hold a live record."""


class FileNotFoundInStoreError(StorageError):
    """An operation referenced a file id unknown to the disk."""


class BufferPoolError(StorageError):
    """The buffer pool could not satisfy a request (e.g. all pages pinned)."""


class RecordTooLargeError(StorageError):
    """A record exceeds the maximum payload a page can hold."""


class DiskFault(StorageError):
    """An injected disk failure (crash, torn write, or hard read error)."""


class WalError(StorageError):
    """The write-ahead log was malformed or misused."""


class SnapshotError(StorageError):
    """A snapshot file could not be written or read back."""


# --------------------------------------------------------------------------
# object layer
# --------------------------------------------------------------------------

class ObjectError(ReproError):
    """Base class for object-layer errors."""


class TypeDefinitionError(ObjectError):
    """An invalid type definition (duplicate fields, bad field kind...)."""


class FieldError(ObjectError):
    """A field name or value did not match the object's type."""


class SerializationError(ObjectError):
    """An object could not be encoded to / decoded from bytes."""


class DanglingReferenceError(ObjectError):
    """An OID dereference found no live object."""


# --------------------------------------------------------------------------
# schema / catalog layer
# --------------------------------------------------------------------------

class SchemaError(ReproError):
    """Base class for schema and catalog errors."""


class UnknownTypeError(SchemaError):
    """A type name is not in the catalog."""


class UnknownSetError(SchemaError):
    """A set name is not in the catalog."""


class UnknownIndexError(SchemaError):
    """An index name is not in the catalog."""


class InvalidPathError(SchemaError):
    """A reference path does not resolve against the schema."""


class DuplicateNameError(SchemaError):
    """A type / set / index name is already taken."""


class ParseError(SchemaError):
    """The DDL / query text parser rejected its input."""


# --------------------------------------------------------------------------
# replication layer
# --------------------------------------------------------------------------

class ReplicationError(ReproError):
    """Base class for replication errors."""


class DuplicateReplicationPathError(ReplicationError):
    """The same path was replicated twice on one set."""


class UnknownReplicationPathError(ReplicationError):
    """An operation referenced a replication path that does not exist."""


class IntegrityError(ReplicationError):
    """A consistency invariant between replicas and sources was violated.

    Raised by :meth:`repro.replication.manager.ReplicationManager.verify`,
    never during normal operation.
    """


# --------------------------------------------------------------------------
# query layer
# --------------------------------------------------------------------------

class QueryError(ReproError):
    """Base class for query compilation / execution errors."""


class PlanningError(QueryError):
    """The planner could not build a plan for a statement."""


# --------------------------------------------------------------------------
# cost model
# --------------------------------------------------------------------------

class CostModelError(ReproError):
    """Invalid parameters handed to the analytical cost model."""


# --------------------------------------------------------------------------
# server layer
# --------------------------------------------------------------------------

class ServerError(ReproError):
    """Base class for client/server-layer errors."""


class ProtocolError(ServerError):
    """A wire frame was malformed (bad CRC, truncation, oversize, version)."""


class ServerBusyError(ServerError):
    """The server refused work: connection limit or request queue full."""


class LockError(ServerError):
    """Base class for lock-manager errors."""


class LockTimeoutError(LockError):
    """A lock request waited longer than the configured lock-wait timeout."""


class DeadlockError(LockError):
    """This transaction was chosen as the victim of a lock cycle."""


class ReplicationLinkError(ServerError):
    """The replication link between a primary and a follower failed
    (subscription rejected, fetch timed out, stream out of order)."""


class ReplicaStaleError(ServerError):
    """A read was rejected because the replica's applied LSN lags the
    primary by more than the configured staleness bound."""

    def __init__(self, message: str, lag: int = 0, bound: int = 0) -> None:
        super().__init__(message)
        self.lag = lag
        self.bound = bound


class ReadOnlyReplicaError(ServerError):
    """A write statement was sent to an un-promoted read replica."""


class ReplicaResyncError(ServerError):
    """A follower asked for LSNs the primary's replication log no longer
    retains; the follower must be re-seeded from a fresh snapshot."""


class RemoteError(ServerError):
    """A structured error returned by a server to a client.

    ``code`` is the machine-readable error code from the wire frame
    (``lock_timeout``, ``deadlock``, ``server_busy``, ``parse_error``, ...).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
