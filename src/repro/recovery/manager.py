"""Statement atomicity and crash recovery for one database.

The :class:`RecoveryManager` is the thin layer that turns the WAL and the
fault-injected disk into a usable contract:

* :meth:`statement` wraps every DML statement (and the replication /
  link / index maintenance it cascades into) in one WAL statement scope.
  A logical error (refused delete, bad field, dangling reference) rolls
  the statement back *live*: before-images are restored, allocations are
  truncated, and the session keeps going.  A :class:`DiskFault` instead
  leaves the incomplete tail in the log and flags the database as
  crashed -- only :meth:`recover` (the "restart") makes it usable again.
* :meth:`recover` discards the buffer pool (a crash loses memory),
  redoes every committed statement from its after-images, rolls the
  trailing incomplete statement back from its before-images, truncates
  its page allocations, rebuilds session caches (heap free-space maps,
  B+-tree meta, lazy-queue mirrors), and re-verifies replication.
* :meth:`checkpoint` flushes the pool and truncates the log; DDL
  statements checkpoint implicitly so the log only ever describes DML.

Redo/undo writes bypass the I/O statistics: recovery I/O is reported in
the :class:`RecoveryReport` instead, so the paper's per-query figures
stay clean.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.recovery.faults import DiskFault
from repro.recovery.wal import WriteAheadLog


@dataclass
class RecoveryReport:
    """What one :meth:`RecoveryManager.recover` call did."""

    statements_replayed: int = 0
    statements_discarded: int = 0
    pages_redone: int = 0
    pages_rolled_back: int = 0
    pages_truncated: int = 0
    files_touched: set = field(default_factory=set)
    verified: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"recovery: {self.statements_replayed} statement(s) redone, "
            f"{self.statements_discarded} discarded; "
            f"{self.pages_redone} page(s) redone, "
            f"{self.pages_rolled_back} rolled back, "
            f"{self.pages_truncated} truncated; "
            f"{len(self.files_touched)} file(s) touched"
            + ("; replication verified" if self.verified else "")
        )


class RecoveryManager:
    """Owns the WAL and the recovery path of one :class:`Database`."""

    def __init__(self, db, wal: bool = False) -> None:
        self.db = db
        self.enabled = wal
        self.wal = (WriteAheadLog(db.telemetry.metrics,
                                  telemetry=db.telemetry,
                                  faults=db.faults)
                    if wal else None)
        # statement scopes nest per executing thread now that statements
        # run concurrently; so does the last-statement attribution below
        self._local = threading.local()
        self._m_recoveries = db.telemetry.metrics.counter(
            "recoveries_total", "crash-recovery passes completed")
        if self.wal is not None:
            db.storage.attach_wal(self.wal)

    @property
    def needs_recovery(self) -> bool:
        """Whether a disk fault interrupted a statement since the last
        recovery (the database refuses new statements until recovered)."""
        return self.wal is not None and self.wal.needs_recovery

    # -- statement scoping ---------------------------------------------------

    @contextmanager
    def statement(self, note: str = ""):
        """Make the enclosed mutations one atomic unit.

        Reentrant: nested scopes (a replace statement updating row by
        row, a lazy refresh triggered mid-query) join the outer statement.
        """
        if self.wal is None:
            yield
            return
        self.check_ready()
        depth = getattr(self._local, "depth", 0)
        if depth > 0:
            self._local.depth = depth + 1
            try:
                yield
            finally:
                self._local.depth = depth
            return
        self._local.depth = 1
        self._local.last_lsn = 0
        self.wal.begin(note)
        try:
            yield
        except DiskFault:
            self.wal.mark_crashed()
            raise
        except BaseException:
            self._rollback_live()
            raise
        else:
            try:
                self._local.last_lsn = self.wal.commit(self._current_image)
            except DiskFault:
                # the commit force failed (or a group-commit leader failed
                # the batch our records rode in): the mutation is applied
                # in memory but not durable -- only recovery, which rolls
                # the statement back from its before-images, may touch the
                # database now
                self.wal.mark_crashed()
                raise
        finally:
            self._local.depth = 0

    def check_ready(self) -> None:
        """Refuse statements until a crashed database has recovered."""
        if self.wal is not None and self.wal.needs_recovery:
            # refusing outright beats mutating resident frames the coming
            # recovery would silently discard
            raise DiskFault(
                "the database crashed mid-statement; run recover() before "
                "issuing new statements")

    def last_statement_lsn(self) -> int:
        """Commit LSN of the last top-level statement scope completed on
        this thread (0 for read-only, rolled-back, or crashed ones)."""
        return getattr(self._local, "last_lsn", 0)

    def last_statement_wal_bytes(self) -> int:
        """WAL bytes appended by the last statement scope on this thread."""
        return self.wal.last_statement_bytes() if self.wal is not None else 0

    def _current_image(self, key) -> bytes:
        """The statement's final image of a page (frame, else disk)."""
        pool = self.db.storage.pool
        frame_data = pool.peek_frame(key)
        if frame_data is not None:
            return bytes(frame_data)
        return self.db.storage.disk.peek_page(key[0], key[1])

    def _rollback_live(self) -> None:
        """Undo the active statement in a running (non-crashed) engine."""
        befores, allocs = self.wal.abort()
        disk = self.db.storage.disk
        affected = set()
        # file ids are never reused, so a missing file was dropped after
        # its records were written -- nothing of it is left to roll back
        for record in reversed(befores):
            if not disk.file_exists(record.file_id):
                continue
            disk.restore_page(record.file_id, record.page_no, record.image)
            affected.add((record.file_id, record.page_no))
        truncations: dict[int, int] = {}
        for record in allocs:
            if not disk.file_exists(record.file_id):
                continue
            affected.add((record.file_id, record.page_no))
            new_size = truncations.get(record.file_id, record.page_no)
            truncations[record.file_id] = min(new_size, record.page_no)
        self.db.storage.pool.discard_pages(affected)
        for file_id, new_size in truncations.items():
            disk.truncate_file(file_id, new_size)
        self._refresh_session_caches({fid for fid, __ in affected})

    # -- crash recovery ------------------------------------------------------

    def recover(self, verify: bool = True) -> RecoveryReport:
        """Restart after a crash: redo committed work, discard the rest."""
        if self.wal is None:
            raise DiskFault(
                "recovery requires the write-ahead log (Database(wal=True))")
        report = RecoveryReport()
        self.db.faults.disarm()  # recovery runs on repaired hardware
        pool = self.db.storage.pool
        disk = self.db.storage.disk
        pool.discard_all()  # the crash lost every in-memory frame
        for stmt in self.wal.statements():
            # records for files dropped after they were written (temp files,
            # dropped indexes) describe storage that no longer exists
            if stmt.committed:
                for record in stmt.allocs:
                    if not disk.file_exists(record.file_id):
                        continue
                    disk.ensure_pages(record.file_id, record.page_no + 1)
                    report.files_touched.add(record.file_id)
                for record in stmt.afters:
                    if not disk.file_exists(record.file_id):
                        continue
                    disk.restore_page(record.file_id, record.page_no,
                                      record.image)
                    report.pages_redone += 1
                    report.files_touched.add(record.file_id)
                report.statements_replayed += 1
            else:
                for record in reversed(stmt.befores):
                    if not disk.file_exists(record.file_id):
                        continue
                    disk.restore_page(record.file_id, record.page_no,
                                      record.image)
                    report.pages_rolled_back += 1
                    report.files_touched.add(record.file_id)
                truncations: dict[int, int] = {}
                for record in stmt.allocs:
                    if not disk.file_exists(record.file_id):
                        continue
                    report.files_touched.add(record.file_id)
                    new_size = truncations.get(record.file_id, record.page_no)
                    truncations[record.file_id] = min(new_size, record.page_no)
                for file_id, new_size in truncations.items():
                    report.pages_truncated += (
                        disk.num_pages(file_id) - new_size)
                    disk.truncate_file(file_id, new_size)
                report.statements_discarded += 1
        self.wal.needs_recovery = False
        self.wal.checkpoint()  # the disk image is now the whole truth
        self._refresh_session_caches(None)
        if verify:
            self.db.replication.verify()
            report.verified = True
        self._m_recoveries.inc()
        return report

    def checkpoint(self) -> None:
        """Force dirty pages to disk, then truncate the log."""
        if self.wal is None:
            return
        self.wal.flush()
        try:
            self.db.storage.pool.flush_all()
        except DiskFault:
            # the flush may have torn a committed page on its way down;
            # only recovery may touch the database now
            self.wal.mark_crashed()
            raise
        self.wal.checkpoint()

    def on_ddl(self) -> None:
        """DDL ran outside statement scope: its pages must become durable
        before the log can describe later DML against them."""
        if self.wal is not None and not self.wal.in_statement:
            self.checkpoint()

    # -- cache refresh -------------------------------------------------------

    def refresh_caches(self, file_ids: set | None = None) -> None:
        """Public entry point for out-of-band page restores.

        A replication follower applies shipped after-images straight to
        the disk (same redo primitives as :meth:`recover`), so it must
        rebuild the derived in-memory state of the touched files the same
        way recovery does.  ``file_ids=None`` refreshes everything.
        """
        self._refresh_session_caches(file_ids)

    def _refresh_session_caches(self, file_ids: set | None) -> None:
        """Rebuild in-memory state derived from pages that just changed.

        ``file_ids=None`` means a full restart: refresh everything.
        """
        storage = self.db.storage
        for heap in storage.heap_files():
            if file_ids is None or heap.file_id in file_ids:
                heap._rebuild_free_space()
        for info in self.db.catalog.indexes.values():
            tree = info.index.tree
            if file_ids is None or tree.file_id in file_ids:
                tree.reopen_meta()
                info.index.rebuild_stats()
        if file_ids is None:
            for path in self.db.catalog.paths.values():
                if path.lazy:
                    self.db.replication.lazy.reload(path)
