"""Deterministic disk fault injection.

Crash-safety claims are only as good as the failures they were tested
against, so the simulated disk carries a :class:`FaultInjector` that can
reproduce, on demand and bit-for-bit, the three failure modes a page
store has to survive:

* **fail-after-N-writes** -- the (N+1)-th physical page write raises
  :class:`DiskFault` and the disk goes *down* (every later I/O fails too)
  until :meth:`FaultInjector.disarm`, modelling a machine crash at an
  exact point of a workload;
* **torn page writes** -- the fatal write additionally persists a
  half-new / half-old page image before failing, the classic partial
  sector write that full-page WAL images exist to repair;
* **transient read errors** -- a seeded fraction of reads glitch; the
  disk retries with exponential backoff (accounted, never slept) and
  only raises :class:`DiskFault` when the retry budget is exhausted;
* **WAL flush failures** -- the (N+1)-th WAL force raises
  :class:`DiskFault` before any record is marked durable, modelling a
  log-device hiccup at commit time (the group-commit leader/follower
  error-propagation case).

The injector also exposes *execution probes* -- named no-op callbacks
fired from fixed points in the engine (statement start/finish).  Tests
hook them to inject barriers and prove scheduling properties (two
disjoint-footprint statements really overlap) deterministically instead
of by timing luck.

Everything is deterministic: the write counter makes crash points exact,
and the read glitches come from a private seeded RNG, so a failing crash
matrix entry replays identically.
"""

from __future__ import annotations

import random

from repro.errors import DiskFault
from repro.telemetry.metrics import NULL_METRICS

__all__ = ["MAX_READ_RETRIES", "DiskFault", "FaultInjector",
           "NetFaultInjector"]


#: Transient read glitches are retried at most this many times before the
#: read is declared a hard failure.
MAX_READ_RETRIES = 4


class FaultInjector:
    """Deterministic failure schedule for one :class:`SimulatedDisk`."""

    def __init__(self, seed: int = 0, metrics=None) -> None:
        metrics = metrics if metrics is not None else NULL_METRICS
        self._m_faults = metrics.counter(
            "faults_injected_total", "disk faults injected, by kind")
        self._m_retries = metrics.counter(
            "disk_read_retries_total", "reads retried after a transient error")
        self._m_backoff = metrics.counter(
            "disk_read_backoff_total", "accumulated (simulated) backoff units")
        self.seed = seed
        self._rng = random.Random(seed)
        #: physical page writes observed while a write failure is armed
        self.writes_seen = 0
        self._fail_after: int | None = None
        self._torn = False
        self._read_rate = 0.0
        self._read_fail_count = 0
        #: WAL forces observed while a flush failure is armed
        self.flushes_seen = 0
        self._flush_fail_after: int | None = None
        #: named execution probes: ``{"statement_start": callable, ...}``;
        #: fired synchronously from the engine when set (tests only).
        self.probes: dict = {}
        #: the disk is down: a fatal fault fired and nothing works until
        #: :meth:`disarm` (the crash-matrix "machine is off" state).
        self.dead = False

    # -- configuration -------------------------------------------------------

    @property
    def armed(self) -> bool:
        """Whether any failure mode is active (cheap disk-side check)."""
        return (self.dead or self._fail_after is not None
                or self._read_rate > 0.0)

    def fail_after_flushes(self, n: int) -> None:
        """Arm a :class:`DiskFault` on the (n+1)-th WAL force from now.

        The failure is a *log-device* hiccup: it does not take the data
        disk down, and it fires exactly once -- the flush that retries
        after :meth:`disarm` (or a new group-commit leader re-forcing
        the same batch) decides its own fate.
        """
        if n < 0:
            raise ValueError("fault point must be >= 0")
        self._flush_fail_after = n
        self.flushes_seen = 0

    def fail_after_writes(self, n: int, torn: bool = False) -> None:
        """Arm a crash on the (n+1)-th physical page write from now.

        ``torn=True`` persists a corrupted half-written image of the
        victim page before the fault fires.
        """
        if n < 0:
            raise ValueError("fault point must be >= 0")
        self._fail_after = n
        self._torn = torn
        self.writes_seen = 0

    def transient_read_errors(self, rate: float, fail_count: int = 1,
                              seed: int | None = None) -> None:
        """Make a seeded fraction of reads glitch ``fail_count`` times each."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if fail_count < 1:
            raise ValueError("fail_count must be >= 1")
        self._read_rate = rate
        self._read_fail_count = fail_count
        if seed is not None:
            self._rng = random.Random(seed)

    def disarm(self) -> None:
        """Clear every failure mode and bring a dead disk back up."""
        self._fail_after = None
        self._torn = False
        self._read_rate = 0.0
        self._read_fail_count = 0
        self._flush_fail_after = None
        self.dead = False

    def probe(self, name: str) -> None:
        """Fire the named execution probe, if a test installed one."""
        hook = self.probes.get(name)
        if hook is not None:
            hook()

    # -- disk hooks ----------------------------------------------------------

    def on_write(self, new_image: bytes, old_image: bytes) -> bytes | None:
        """Decide the fate of one physical page write.

        Returns ``None`` to let the write proceed, or a *torn* image the
        disk must persist before raising.  Raises :class:`DiskFault` for a
        clean (image-preserving) crash.
        """
        if self.dead:
            raise DiskFault("simulated disk is down (crashed earlier)")
        if self._fail_after is None:
            return None
        if self.writes_seen < self._fail_after:
            self.writes_seen += 1
            return None
        self.dead = True
        if self._torn:
            self._m_faults.inc(kind="torn_write")
            half = len(new_image) // 2
            return bytes(new_image[:half]) + bytes(old_image[half:])
        self._m_faults.inc(kind="write")
        raise DiskFault(
            f"injected write failure after {self.writes_seen} write(s)")

    def on_wal_flush(self) -> None:
        """Decide the fate of one WAL force (called with the log mutex
        held, *before* any record is marked durable)."""
        if self._flush_fail_after is None:
            return
        if self.flushes_seen < self._flush_fail_after:
            self.flushes_seen += 1
            return
        self._flush_fail_after = None  # one-shot: a retry decides its own fate
        self._m_faults.inc(kind="wal_flush")
        raise DiskFault(
            f"injected WAL flush failure after {self.flushes_seen} flush(es)")

    def resolve_read(self) -> None:
        """Decide the fate of one physical page read.

        Transient glitches are retried here with exponential backoff
        *accounting* (no wall-clock sleeping); exhausting the retry budget
        escalates to a hard :class:`DiskFault`.
        """
        if self.dead:
            raise DiskFault("simulated disk is down (crashed earlier)")
        if self._read_rate <= 0.0 or self._rng.random() >= self._read_rate:
            return
        glitches = self._read_fail_count
        self._m_faults.inc(glitches, kind="transient_read")
        backoff = 1
        for attempt in range(1, glitches + 1):
            if attempt > MAX_READ_RETRIES:
                self._m_faults.inc(kind="read")
                raise DiskFault(
                    f"read failed after {MAX_READ_RETRIES} retries")
            self._m_retries.inc()
            self._m_backoff.inc(backoff)
            backoff *= 2


class NetFaultInjector:
    """Deterministic frame-level fault schedule for a replication link.

    The disk injector above decides the fate of page writes; this one
    decides the fate of *wire frames* on the primary->follower stream.
    Four failure modes cover what a flaky network does to framed traffic:

    * ``drop``      -- the frame vanishes (the reader waits until its
      read timeout fires and reconnects);
    * ``delay``     -- the frame arrives late (``delay_seconds``);
    * ``duplicate`` -- the frame is delivered twice (the consumer must
      dedupe idempotently, e.g. by LSN / response id);
    * ``truncate``  -- only a prefix arrives and the connection dies
      mid-frame (the CRC/length framing must reject it).

    Like :class:`FaultInjector` everything is deterministic: decisions
    come from a private seeded RNG, and an explicit ``script`` of
    actions (consumed first, before the RNG rates apply) lets a test pin
    the exact frame a fault hits -- a failing matrix entry replays
    identically.
    """

    ACTIONS = ("ok", "drop", "delay", "duplicate", "truncate")

    def __init__(self, seed: int = 0, drop: float = 0.0, delay: float = 0.0,
                 duplicate: float = 0.0, truncate: float = 0.0,
                 delay_seconds: float = 0.01, script=None,
                 metrics=None) -> None:
        metrics = metrics if metrics is not None else NULL_METRICS
        for name, rate in (("drop", drop), ("delay", delay),
                           ("duplicate", duplicate), ("truncate", truncate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1]")
        if drop + delay + duplicate + truncate > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        self._m_faults = metrics.counter(
            "net_faults_injected_total",
            "replication-link frame faults injected, by kind")
        self.seed = seed
        self._rng = random.Random(seed)
        self._rates = (("drop", drop), ("delay", delay),
                       ("duplicate", duplicate), ("truncate", truncate))
        self.delay_seconds = delay_seconds
        self._script = list(script or [])
        #: frames seen / faulted, for assertions and the chaos soak
        self.frames_seen = 0
        self.faults_injected = 0

    @property
    def armed(self) -> bool:
        return bool(self._script) or any(r > 0.0 for __, r in self._rates)

    def plan_frame(self) -> str:
        """Decide the fate of the next frame; one of :data:`ACTIONS`."""
        self.frames_seen += 1
        if self._script:
            action = self._script.pop(0)
            if action not in self.ACTIONS:
                raise ValueError(f"unknown net-fault action {action!r}")
        else:
            draw = self._rng.random()
            action = "ok"
            edge = 0.0
            for kind, rate in self._rates:
                edge += rate
                if draw < edge:
                    action = kind
                    break
        if action != "ok":
            self.faults_injected += 1
            self._m_faults.inc(kind=action)
        return action
