"""Crash safety: fault injection, write-ahead logging, recovery, doctor.

The package splits the crash-safety story into four small pieces:

* :mod:`repro.recovery.faults` -- deterministic disk failure injection;
* :mod:`repro.recovery.wal` -- the page-level write-ahead log;
* :mod:`repro.recovery.manager` -- statement atomicity and restart
  recovery for one database;
* :mod:`repro.recovery.doctor` -- diagnosis and repair of replicated
  state from the forward paths;
* :mod:`repro.recovery.harness` -- the crash-matrix torture harness.
"""

from repro.recovery.doctor import DoctorReport, Finding, run_doctor
from repro.recovery.faults import MAX_READ_RETRIES, DiskFault, FaultInjector
from repro.recovery.harness import (
    CrashOutcome,
    count_writes,
    crash_matrix,
    crash_once,
    fault_points,
)
from repro.recovery.manager import RecoveryManager, RecoveryReport
from repro.recovery.wal import (
    WAL_MAGIC,
    WalError,
    WalRecord,
    WalRecordType,
    WriteAheadLog,
)

__all__ = [
    "MAX_READ_RETRIES",
    "WAL_MAGIC",
    "CrashOutcome",
    "DiskFault",
    "DoctorReport",
    "FaultInjector",
    "Finding",
    "RecoveryManager",
    "RecoveryReport",
    "WalError",
    "WalRecord",
    "WalRecordType",
    "WriteAheadLog",
    "count_writes",
    "crash_matrix",
    "crash_once",
    "fault_points",
    "run_doctor",
]
