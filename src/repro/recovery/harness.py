"""Crash-matrix torture harness.

The crash matrix is the executable form of the crash-safety claim: take
a workload, crash the disk at *every* physical write it performs (or a
sampled subset), recover, and prove that what is left is exactly some
statement-aligned prefix of the workload -- replication verified, no
torn state, nothing half-applied.

Usage shape::

    def build():
        db = Database(wal=True, frames=6)
        ... schema + replicate ...
        return db

    def steps(db):
        return [lambda: db.insert(...), lambda: db.update(...), ...]

    outcomes = crash_matrix(build, steps)

Each matrix entry runs with ``fail_after_writes(k)`` armed, executes the
steps until :class:`DiskFault` fires (counting fully completed steps),
calls :meth:`Database.recover`, and asserts :meth:`Database.verify`
passes.  A ``check(db, completed)`` callback can additionally assert the
all-or-nothing property against the number of completed statements.

Everything is deterministic, so a failing ``(fault_point, torn)`` entry
reported by the harness replays identically in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.recovery.faults import DiskFault


@dataclass
class CrashOutcome:
    """One crash-matrix entry: crash at a write index, then recover."""

    fault_point: int
    torn: bool
    crashed: bool           # False: workload finished before the fault fired
    steps_completed: int
    statements_replayed: int = 0
    statements_discarded: int = 0


def count_writes(build_db, run_steps) -> int:
    """Physical page writes one clean run of the workload performs."""
    db = build_db()
    before = db.storage.disk.stats.physical_writes
    for step in run_steps(db):
        step()
    return db.storage.disk.stats.physical_writes - before


def fault_points(total_writes: int, stride: int = 1) -> list[int]:
    """Every ``stride``-th write index, always including first and last."""
    if total_writes <= 0:
        return []
    points = list(range(0, total_writes, max(1, stride)))
    if points[-1] != total_writes - 1:
        points.append(total_writes - 1)
    return points


def crash_once(build_db, run_steps, fault_point: int,
               torn: bool = False, check=None) -> CrashOutcome:
    """Run one matrix entry: crash at ``fault_point`` writes, recover."""
    db = build_db()
    db.faults.fail_after_writes(fault_point, torn=torn)
    completed = 0
    crashed = False
    try:
        for step in run_steps(db):
            step()
            completed += 1
    except DiskFault:
        crashed = True
    outcome = CrashOutcome(fault_point=fault_point, torn=torn,
                           crashed=crashed, steps_completed=completed)
    if crashed:
        report = db.recover()
        outcome.statements_replayed = report.statements_replayed
        outcome.statements_discarded = report.statements_discarded
    else:
        db.faults.disarm()
        db.verify()
    if check is not None:
        check(db, completed)
    return outcome


def crash_matrix(build_db, run_steps, stride: int = 1,
                 torn: bool = False, check=None) -> list[CrashOutcome]:
    """Crash the workload at every ``stride``-th write index and recover.

    ``build_db`` must return a fresh ``Database(wal=True)`` each call
    (deterministic across calls); ``run_steps(db)`` returns the ordered
    list of zero-argument statement thunks.  ``check(db, completed)``,
    when given, asserts workload-specific all-or-nothing invariants
    against the recovered database.
    """
    total = count_writes(build_db, run_steps)
    outcomes = []
    for point in fault_points(total, stride):
        outcomes.append(
            crash_once(build_db, run_steps, point, torn=torn, check=check))
    return outcomes
