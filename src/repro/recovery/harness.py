"""Crash-matrix torture harness.

The crash matrix is the executable form of the crash-safety claim: take
a workload, crash the disk at *every* physical write it performs (or a
sampled subset), recover, and prove that what is left is exactly some
statement-aligned prefix of the workload -- replication verified, no
torn state, nothing half-applied.

Usage shape::

    def build():
        db = Database(wal=True, frames=6)
        ... schema + replicate ...
        return db

    def steps(db):
        return [lambda: db.insert(...), lambda: db.update(...), ...]

    outcomes = crash_matrix(build, steps)

Each matrix entry runs with ``fail_after_writes(k)`` armed, executes the
steps until :class:`DiskFault` fires (counting fully completed steps),
calls :meth:`Database.recover`, and asserts :meth:`Database.verify`
passes.  A ``check(db, completed)`` callback can additionally assert the
all-or-nothing property against the number of completed statements.

Everything is deterministic, so a failing ``(fault_point, torn)`` entry
reported by the harness replays identically in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.recovery.faults import DiskFault


@dataclass
class CrashOutcome:
    """One crash-matrix entry: crash at a write index, then recover."""

    fault_point: int
    torn: bool
    crashed: bool           # False: workload finished before the fault fired
    steps_completed: int
    statements_replayed: int = 0
    statements_discarded: int = 0


def count_writes(build_db, run_steps) -> int:
    """Physical page writes one clean run of the workload performs."""
    db = build_db()
    before = db.storage.disk.stats.physical_writes
    for step in run_steps(db):
        step()
    return db.storage.disk.stats.physical_writes - before


def fault_points(total_writes: int, stride: int = 1) -> list[int]:
    """Every ``stride``-th write index, always including first and last."""
    if total_writes <= 0:
        return []
    points = list(range(0, total_writes, max(1, stride)))
    if points[-1] != total_writes - 1:
        points.append(total_writes - 1)
    return points


def crash_once(build_db, run_steps, fault_point: int,
               torn: bool = False, check=None) -> CrashOutcome:
    """Run one matrix entry: crash at ``fault_point`` writes, recover."""
    db = build_db()
    db.faults.fail_after_writes(fault_point, torn=torn)
    completed = 0
    crashed = False
    try:
        for step in run_steps(db):
            step()
            completed += 1
    except DiskFault:
        crashed = True
    outcome = CrashOutcome(fault_point=fault_point, torn=torn,
                           crashed=crashed, steps_completed=completed)
    if crashed:
        report = db.recover()
        outcome.statements_replayed = report.statements_replayed
        outcome.statements_discarded = report.statements_discarded
    else:
        db.faults.disarm()
        db.verify()
    if check is not None:
        check(db, completed)
    return outcome


def crash_matrix(build_db, run_steps, stride: int = 1,
                 torn: bool = False, check=None) -> list[CrashOutcome]:
    """Crash the workload at every ``stride``-th write index and recover.

    ``build_db`` must return a fresh ``Database(wal=True)`` each call
    (deterministic across calls); ``run_steps(db)`` returns the ordered
    list of zero-argument statement thunks.  ``check(db, completed)``,
    when given, asserts workload-specific all-or-nothing invariants
    against the recovered database.
    """
    total = count_writes(build_db, run_steps)
    outcomes = []
    for point in fault_points(total, stride):
        outcomes.append(
            crash_once(build_db, run_steps, point, torn=torn, check=check))
    return outcomes


# ---------------------------------------------------------------------------
# failover matrix: kill the primary, promote a follower, prove zero loss
# ---------------------------------------------------------------------------


@dataclass
class FailoverOutcome:
    """One failover-matrix entry: kill the primary, promote, compare."""

    kill_after: int            # statements acknowledged before the kill
    followers: int
    promoted_name: str
    promoted_applied_lsn: int
    primary_last_lsn: int
    promotion_seconds: float
    doctor_healthy: bool
    diffs: list[str]           # byte-level divergence from the oracle

    @property
    def clean(self) -> bool:
        """Zero acknowledged-write loss: doctor-clean and byte-identical."""
        return self.doctor_healthy and not self.diffs


def _run_embedded(db, step) -> None:
    """Run one workload step against an in-process (oracle) database."""
    from repro.query.runner import execute_text
    from repro.schema.parser import _DDL_STARTERS, execute_ddl

    if callable(step):
        step(db)
        return
    first = step.split(maxsplit=1)[0].lower() if step.split() else ""
    if first in _DDL_STARTERS:
        execute_ddl(db, step)
    else:
        execute_text(db, step)


def _run_served(primary, client, step) -> None:
    """Run one workload step against the primary, quorum-acknowledged.

    Text goes through the client (the session layer already blocks on
    the sync quorum before acking); a callable runs against the engine
    directly under the server latch -- the only way to ``insert``, which
    has no statement form -- so the harness performs the quorum wait the
    session layer would have.
    """
    if callable(step):
        with primary.sessions.latch:
            step(primary.db)
            lsn = primary.hub.log.last_lsn
        primary.hub.wait_for_sync(lsn)
    else:
        client.execute(step)


def failover_once(setup: list, statements: list, kill_after: int,
                  followers: int = 2, follower_faults=None,
                  sync_timeout: float = 30.0) -> FailoverOutcome:
    """Run one failover-matrix entry.

    Starts a primary server (``sync_replicas=1``: every acknowledged
    write has reached at least one follower) and ``followers`` replica
    servers, runs ``setup`` plus the first ``kill_after`` of
    ``statements``, then kills the primary abruptly (``die()``: no
    drain, no goodbye).  The most caught-up follower is promoted; the
    sync quorum guarantees it holds every acknowledged statement.  The
    promoted engine is then compared byte-for-byte against a fresh
    *oracle* database that executed exactly the acknowledged steps, and
    doctor-checked.

    Workload steps are either statement text (run through a real
    client) or ``callable(db)`` (run under the primary's latch --
    inserts have no statement form); both count as *acknowledged* only
    once the sync quorum holds the entry, and both must be
    deterministic because the oracle re-runs them.

    ``follower_faults``, when given, is a list of
    :class:`~repro.recovery.faults.NetFaultInjector` (one per follower,
    ``None`` entries allowed) armed on the replication links, so the
    matrix also proves the guarantee under a lossy network.
    """
    from repro.recovery.doctor import diff_databases, run_doctor
    from repro.schema.database import Database
    from repro.server.client import connect
    from repro.server.replica import Replica, ReplicaServer
    from repro.server.service import Server

    kill_after = max(0, min(kill_after, len(statements)))
    primary = Server(Database(wal=True), port=0, sync_replicas=1,
                     sync_timeout=sync_timeout).start()
    servers: list[ReplicaServer] = []
    try:
        for i in range(followers):
            faults = None
            if follower_faults is not None and i < len(follower_faults):
                faults = follower_faults[i]
            replica = Replica((primary.host, primary.port),
                              name=f"follower-{i}", max_lag_statements=-1,
                              poll_wait=0.05, min_backoff=0.01,
                              max_backoff=0.2, jitter_seed=i,
                              net_faults=faults)
            servers.append(ReplicaServer(replica, port=0).start())
        with connect(primary.host, primary.port, retry=False) as client:
            for step in setup:
                _run_served(primary, client, step)
            for step in statements[:kill_after]:
                _run_served(primary, client, step)
        primary_last_lsn = primary.hub.log.last_lsn
        primary.die()

        best = max(servers, key=lambda s: s.replica.applied_lsn)
        promotion = best.replica.promote()
        for server in servers:
            if server is not best:
                server.die()

        oracle = Database(wal=True)
        for step in setup:
            _run_embedded(oracle, step)
        for step in statements[:kill_after]:
            _run_embedded(oracle, step)

        diffs = diff_databases(best.db, oracle, "promoted", "oracle")
        report = run_doctor(best.db)
        return FailoverOutcome(
            kill_after=kill_after, followers=followers,
            promoted_name=best.replica.name,
            promoted_applied_lsn=best.replica.applied_lsn,
            primary_last_lsn=primary_last_lsn,
            promotion_seconds=promotion["seconds"],
            doctor_healthy=report.healthy, diffs=diffs)
    finally:
        primary.die()
        for server in servers:
            server.die()


def failover_matrix(setup: list, statements: list, stride: int = 1,
                    followers: int = 2, faults_factory=None,
                    sync_timeout: float = 30.0) -> list[FailoverOutcome]:
    """Kill the primary after every ``stride``-th statement and fail over.

    Covers ``kill_after`` = 0 (failover with only the setup applied)
    through ``len(statements)`` (primary dies after the full workload).
    ``faults_factory(kill_after)``, when given, must return a *fresh*
    per-follower fault-injector list for that entry (injectors are
    stateful and must not be shared across runs).
    """
    outcomes = []
    for point in fault_points(len(statements) + 1, stride):
        faults = faults_factory(point) if faults_factory is not None else None
        outcomes.append(
            failover_once(setup, statements, kill_after=point,
                          followers=followers, follower_faults=faults,
                          sync_timeout=sync_timeout))
    return outcomes
